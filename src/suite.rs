//! Umbrella crate: examples and integration tests live at the workspace root.
