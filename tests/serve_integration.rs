//! Train once, serve millions (satellite 1): a federated run is
//! finalized, exported as a sealed artifact, published to the serving
//! store, and then replayed — 1 000 forecast requests answered by the
//! serving layer must be bit-for-bit what the deployed ensemble's own
//! members predict directly, at any thread count.

use fedforecaster::budget::Budget;
use fedforecaster::config::EngineConfig;
use fedforecaster::engine::FedForecaster;
use ff_metalearn::kb::KnowledgeBase;
use ff_metalearn::metamodel::{MetaClassifierKind, MetaModel};
use ff_metalearn::synth::synthetic_kb;
use ff_models::pipeline::{decode_member_blob, PipelineId};
use ff_serve::{Artifact, Batcher, ModelStore, PredictRequest, ServeConfig, ServeRuntime};
use ff_timeseries::synthesis::{generate, SeasonSpec, SynthesisSpec, TrendSpec};
use ff_timeseries::TimeSeries;
use std::sync::Arc;

const N_CLIENTS: usize = 3;
const REPLAYED: usize = 1_000;

fn tiny_metamodel() -> MetaModel {
    let kb = KnowledgeBase::build(&synthetic_kb(8), &[2], 50);
    MetaModel::train(&kb, MetaClassifierKind::RandomForest, 0).unwrap()
}

fn federation() -> Vec<TimeSeries> {
    generate(
        &SynthesisSpec {
            n: 600,
            trend: TrendSpec::Linear(0.02),
            seasons: vec![SeasonSpec {
                period: 12.0,
                amplitude: 2.0,
            }],
            snr: Some(25.0),
            ..Default::default()
        },
        17,
    )
    .split_clients(N_CLIENTS)
}

/// The engine's own fold, re-derived from the artifact: decode every
/// member blob, predict the range, accumulate normalized-weighted
/// predictions in member order — the deployment evaluation from
/// `test_global_ensemble`, without any ff-serve code in the loop.
fn direct_forecast(artifact: &Artifact, values: &[f64], start: usize, end: usize) -> Vec<f64> {
    let wsum: f64 = artifact.members.iter().map(|(w, _)| *w).sum();
    let mut agg = vec![0.0; end - start];
    for (w, blob) in &artifact.members {
        let member = decode_member_blob(blob).expect("member blob decodes");
        let pred = member
            .predict_series(values, start, end)
            .expect("pipeline member predicts the range");
        for (a, p) in agg.iter_mut().zip(pred) {
            *a += (w / wsum) * p;
        }
    }
    agg
}

#[test]
fn train_seal_serve_replays_bit_for_bit() {
    // Train: a pipeline-search run, so every exported member is a
    // self-contained blob-v3 forecaster.
    let meta = tiny_metamodel();
    let cfg = EngineConfig {
        budget: Budget::Iterations(4),
        pipelines: Some(vec![PipelineId::LAGGED, PipelineId::TREND_LAGGED]),
        ..Default::default()
    };
    let clients = federation();
    let result = FedForecaster::new(cfg, &meta).run(&clients).unwrap();
    assert!(result.test_mse.is_finite());

    // Seal: the run exports its deployed member set.
    let artifact = result
        .export_artifact()
        .expect("an ensemble-union run exports an artifact");
    assert_eq!(
        artifact.members.len(),
        N_CLIENTS,
        "every client contributed a member"
    );
    assert_eq!(artifact.algorithm, result.best_algorithm.name());
    assert_eq!(artifact.pipeline, result.best_pipeline);
    // The sealed byte form round-trips exactly.
    let reopened = Artifact::open(&artifact.seal()).expect("sealed artifact reopens");
    assert_eq!(reopened, artifact);

    // Publish: one store key per client series.
    let store = Arc::new(ModelStore::new());
    for c in 0..N_CLIENTS {
        store.publish("fed", &format!("client-{c}"), reopened.clone());
    }

    // Replay: 1 000 requests over the clients' own series, windows in
    // the private test region, answered by the serving layer and by the
    // members directly.
    let series: Vec<Vec<f64>> = clients.iter().map(|c| c.values().to_vec()).collect();
    let requests: Vec<PredictRequest> = (0..REPLAYED)
        .map(|i| {
            let c = i % N_CLIENTS;
            let start = 100 + (i * 7) % 90;
            let end = start + 1 + i % 6;
            PredictRequest {
                tenant: "fed".into(),
                series: format!("client-{c}"),
                values: series[c].clone(),
                start,
                end,
            }
        })
        .collect();
    let expected: Vec<Vec<u64>> = requests
        .iter()
        .map(|r| {
            direct_forecast(&artifact, &r.values, r.start, r.end)
                .iter()
                .map(|v| v.to_bits())
                .collect()
        })
        .collect();

    // Serve, at one and at four workers, through both the raw batcher
    // and the admission-controlled runtime front door.
    for threads in [1usize, 4] {
        let outcome = ff_par::with_threads(threads, || Batcher::new().run(&store, &requests));
        assert_eq!(outcome.latency_histogram().count(), REPLAYED as u64);
        for (i, (got, want)) in outcome.forecasts.iter().zip(&expected).enumerate() {
            let got: Vec<u64> = got
                .as_ref()
                .unwrap_or_else(|e| panic!("request {i} failed: {e}"))
                .iter()
                .map(|v| v.to_bits())
                .collect();
            assert_eq!(&got, want, "request {i} diverged at {threads} threads");
        }

        let rt = ServeRuntime::new(
            Arc::clone(&store),
            ServeConfig {
                tenant_inflight_limit: REPLAYED,
                ..ServeConfig::default()
            },
        );
        let results = ff_par::with_threads(threads, || rt.serve(&requests));
        for (i, (got, want)) in results.iter().zip(&expected).enumerate() {
            let got: Vec<u64> = got
                .as_ref()
                .unwrap_or_else(|e| panic!("runtime request {i} failed: {e}"))
                .iter()
                .map(|v| v.to_bits())
                .collect();
            assert_eq!(
                &got, want,
                "runtime request {i} diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn coefficient_average_runs_export_nothing() {
    // A flat run whose winner averages coefficients has no member set;
    // the export is an honest None, not an empty-but-sealable artifact.
    let meta = tiny_metamodel();
    let cfg = EngineConfig {
        budget: Budget::Iterations(3),
        portfolio: Some(vec![ff_models::zoo::AlgorithmKind::LASSO]),
        ..Default::default()
    };
    let result = FedForecaster::new(cfg, &meta).run(&federation()).unwrap();
    assert!(result.ensemble_members.is_empty());
    assert!(result.export_artifact().is_none());
}
