//! End-to-end Byzantine acceptance test: Algorithm 1 must survive clients
//! that reply *on time* with corrupted content. Two of eight clients
//! attack every round — one scales its parameters and losses by 1e6, one
//! floods NaN — and a CoordinateMedian run must still complete with a
//! validation loss close to the clean baseline, quarantine both
//! attackers, report every rejection per round, and surface the
//! `fl.updates_rejected` counter in both telemetry sinks.
//!
//! Set `CHAOS_SEED` to replay the suite under a different chaos seed (the
//! CI matrix runs seeds 0/1/2). Pure adversaries corrupt deterministically
//! — the seed only drives the availability-fault schedule — so every seed
//! must produce the same verdicts.

use fedforecaster::prelude::*;
use ff_fl::chaos::{AdversarialMode, ChaosClient};
use ff_fl::client::FlClient;
use ff_fl::health::ClientState;
use ff_fl::runtime::FederatedRuntime;
use ff_metalearn::kb::KnowledgeBase;
use ff_metalearn::metamodel::{MetaClassifierKind, MetaModel};
use ff_metalearn::synth::synthetic_kb;
use ff_timeseries::synthesis::{generate, SeasonSpec, SynthesisSpec, TrendSpec};
use ff_timeseries::TimeSeries;

/// Chaos seed for this run: `CHAOS_SEED` env override, or the default.
fn chaos_seed(default: u64) -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn tiny_metamodel() -> MetaModel {
    let kb = KnowledgeBase::build(&synthetic_kb(8), &[2], 50);
    MetaModel::train(&kb, MetaClassifierKind::RandomForest, 0).unwrap()
}

fn federation(n_clients: usize) -> Vec<TimeSeries> {
    generate(
        &SynthesisSpec {
            n: 200 * n_clients,
            trend: TrendSpec::Linear(0.01),
            seasons: vec![SeasonSpec {
                period: 12.0,
                amplitude: 2.0,
            }],
            snr: Some(20.0),
            ..Default::default()
        },
        9,
    )
    .split_clients(n_clients)
}

fn honest(series: &TimeSeries) -> Box<dyn FlClient> {
    Box::new(fedforecaster::client::FedForecasterClient::new(
        series, 0.15, 0.15,
    ))
}

fn robust_cfg() -> EngineConfig {
    EngineConfig {
        budget: Budget::Iterations(3),
        aggregation: AggregationStrategy::CoordinateMedian,
        trace: TraceConfig::enabled(),
        ..Default::default()
    }
}

/// Builds the 8-client federation with adversaries at the given ids.
fn attacked_runtime(attackers: &[(usize, AdversarialMode)]) -> FederatedRuntime {
    let series = federation(8);
    let clients: Vec<Box<dyn FlClient>> = series
        .iter()
        .enumerate()
        .map(|(id, s)| match attackers.iter().find(|(a, _)| *a == id) {
            Some((_, mode)) => Box::new(ChaosClient::adversarial(
                honest(s),
                *mode,
                chaos_seed(id as u64),
            )) as Box<dyn FlClient>,
            None => honest(s),
        })
        .collect();
    FederatedRuntime::new(clients)
}

#[test]
fn coordinate_median_survives_scaling_and_nan_attackers() {
    let attackers = [
        (2usize, AdversarialMode::ScaleBy(1e6)),
        (5usize, AdversarialMode::NanInject),
    ];
    let rt = attacked_runtime(&attackers);
    let meta = tiny_metamodel();
    let result = FedForecaster::new(robust_cfg(), &meta).run_on(&rt).unwrap();

    // Clean baseline: same config, same data, no attackers.
    let clean_rt = attacked_runtime(&[]);
    let baseline = FedForecaster::new(robust_cfg(), &meta)
        .run_on(&clean_rt)
        .unwrap();

    // The attacked run completes with finite results, and its aggregated
    // validation loss lands within 10% of the clean baseline: the median
    // simply never saw the poison.
    assert!(result.best_valid_loss.is_finite());
    assert!(result.test_mse.is_finite(), "mse {}", result.test_mse);
    assert!(baseline.best_valid_loss.is_finite());
    assert!(
        (result.best_valid_loss - baseline.best_valid_loss).abs()
            <= 0.10 * baseline.best_valid_loss,
        "attacked {} vs clean {}",
        result.best_valid_loss,
        baseline.best_valid_loss
    );
    assert_eq!(result.failed_trials, 0);
    assert_eq!(result.evaluations, 3);

    // Both attackers end the run quarantined; every honest client stays
    // healthy (their on-time corrupted replies are integrity failures,
    // not transport failures — nobody else is collateral damage).
    for (id, _) in &attackers {
        assert_eq!(
            rt.client_state(*id),
            Some(ClientState::Quarantined),
            "attacker {id} should be quarantined"
        );
    }
    for id in [0usize, 1, 3, 4, 6, 7] {
        assert_eq!(
            rt.client_state(id),
            Some(ClientState::Healthy),
            "honest client {id} should be healthy"
        );
    }
    assert_eq!(result.health.count(ClientState::Quarantined), 2);
    assert_eq!(result.health.count(ClientState::Healthy), 6);
    // The clean baseline quarantines nobody.
    assert_eq!(baseline.health.count(ClientState::Healthy), 8);

    // Rejections are recorded per round, name only the attackers, and
    // show up in the rendered log.
    let rejected_ids: Vec<usize> = result
        .rounds
        .iter()
        .flat_map(|r| r.rejected.iter().map(|(id, _)| *id))
        .collect();
    assert!(!rejected_ids.is_empty(), "no rejections recorded");
    assert!(
        rejected_ids.iter().all(|id| [2, 5].contains(id)),
        "honest client rejected: {rejected_ids:?}"
    );
    assert!(rejected_ids.contains(&2) && rejected_ids.contains(&5));
    let log = render_rounds(&result.rounds);
    assert!(log.contains("rejected:"), "{log}");
    // The clean baseline rejects nothing.
    assert!(baseline.rounds.iter().all(|r| r.rejected.is_empty()));

    // The guard's work is visible in BOTH telemetry sinks.
    let telemetry = result.telemetry.expect("tracing was enabled");
    let json = telemetry.to_json_lines();
    assert!(json.contains("fl.updates_rejected"), "missing from JSON");
    let summary = telemetry.render_summary();
    assert!(
        summary.contains("byzantine defense:"),
        "missing from summary:\n{summary}"
    );
    assert!(summary.contains("updates rejected"), "{summary}");
}

/// A sign-flip attacker reports honest losses — invisible to every loss
/// screen — and must be absorbed by the robust aggregator itself during
/// the final coefficient average. The engine is pinned to a linear
/// portfolio so finalization actually averages coefficients.
#[test]
fn sign_flip_attacker_cannot_poison_linear_finalization() {
    let attackers = [(4usize, AdversarialMode::SignFlip)];
    let rt = attacked_runtime(&attackers);
    let cfg = EngineConfig {
        portfolio: Some(vec![AlgorithmKind::LASSO]),
        ..robust_cfg()
    };
    let meta = tiny_metamodel();
    let result = FedForecaster::new(cfg.clone(), &meta).run_on(&rt).unwrap();

    let clean_rt = attacked_runtime(&[]);
    let baseline = FedForecaster::new(cfg, &meta).run_on(&clean_rt).unwrap();

    assert!(result.test_mse.is_finite());
    // One flipped update out of eight cannot drag the per-coordinate
    // median far: the deployed model stays comparable to the clean run.
    assert!(
        result.test_mse <= baseline.test_mse * 1.5,
        "attacked mse {} vs clean {}",
        result.test_mse,
        baseline.test_mse
    );
}

/// Secure (masked) final aggregation composes with the default FedAvg
/// strategy: the pairwise masks cancel in the sum, so the deployed linear
/// model matches the plaintext run to round-off. (Combining masking with
/// a robust rule is rejected at validation time — covered by the config
/// unit tests — because the guard cannot screen updates it cannot see.)
#[test]
fn masked_fedavg_finalization_matches_plaintext() {
    let meta = tiny_metamodel();
    let run = |secure: bool| {
        let rt = attacked_runtime(&[]);
        let cfg = EngineConfig {
            budget: Budget::Iterations(2),
            portfolio: Some(vec![AlgorithmKind::LASSO]),
            secure_aggregation: secure,
            ..Default::default()
        };
        FedForecaster::new(cfg, &meta).run_on(&rt).unwrap()
    };
    let plain = run(false);
    let masked = run(true);
    assert!(masked.test_mse.is_finite());
    let tol = 1e-6 * plain.test_mse.abs().max(1.0);
    assert!(
        (masked.test_mse - plain.test_mse).abs() <= tol,
        "masked {} vs plaintext {}",
        masked.test_mse,
        plain.test_mse
    );
}
