//! Integration tests of federated-runtime behaviors through the full
//! FedForecaster client: sampling, fault tolerance, communication
//! accounting, and tree-aggregation modes.

use fedforecaster::client::{FedForecasterClient, OP};
use fedforecaster::config::TreeAggregation;
use fedforecaster::engine::{build_runtime, finalize_with, run_feature_engineering};
use fedforecaster::feature_engineering::GlobalFeatureSpec;
use fedforecaster::prelude::*;
use ff_bayesopt::space::{Configuration, ParamValue};
use ff_fl::client::FlClient;
use ff_fl::config::{ConfigMap, ConfigMapExt};
use ff_fl::message::Instruction;
use ff_fl::runtime::FederatedRuntime;
use ff_timeseries::synthesis::{generate, SeasonSpec, SynthesisSpec};
use ff_timeseries::TimeSeries;

fn federation(n_clients: usize) -> Vec<TimeSeries> {
    generate(
        &SynthesisSpec {
            n: 900,
            seasons: vec![SeasonSpec {
                period: 12.0,
                amplitude: 3.0,
            }],
            snr: Some(15.0),
            ..Default::default()
        },
        31,
    )
    .split_clients(n_clients)
}

fn prepared_runtime(n_clients: usize) -> FederatedRuntime {
    let cfg = EngineConfig::default();
    let rt = build_runtime(&federation(n_clients), &cfg).unwrap();
    run_feature_engineering(&rt, &GlobalFeatureSpec::lags_only(4), 0.95).unwrap();
    rt
}

fn xgb_config() -> Configuration {
    let mut c = Configuration::new();
    c.insert("algorithm".into(), ParamValue::Cat("XGBRegressor".into()));
    c
}

#[test]
fn sampled_rounds_reach_a_strict_subset() {
    let rt = prepared_runtime(6);
    let replies = rt
        .broadcast_sample(
            0.5,
            9,
            &Instruction::GetProperties(ConfigMap::new().with_str(OP, "meta_features")),
        )
        .unwrap();
    assert_eq!(replies.len(), 3);
    let ids: Vec<usize> = replies.iter().map(|(i, _)| *i).collect();
    assert!(ids.windows(2).all(|w| w[0] < w[1]), "sorted ids {ids:?}");
}

#[test]
fn tolerant_broadcast_survives_unknown_ops() {
    // FedForecaster clients answer unknown fit ops with an error metric but
    // a valid reply; the tolerant wrapper is about transport-level Error
    // replies, which a malformed op does NOT produce — so all replies count
    // as healthy here and the floor is satisfied.
    let rt = prepared_runtime(3);
    let replies = rt
        .broadcast_tolerant(
            &Instruction::Fit {
                params: vec![],
                config: ConfigMap::new()
                    .with_str(OP, "fit_eval")
                    .with_str("algorithm", "Lasso"),
            },
            3,
        )
        .unwrap();
    assert_eq!(replies.len(), 3);
}

#[test]
fn ensemble_and_per_client_aggregation_both_work_and_differ_in_kind() {
    let rt = prepared_runtime(4);
    let config = xgb_config();
    let (union_model, union_mse) =
        finalize_with(&rt, &config, TreeAggregation::EnsembleUnion).unwrap();
    assert!(matches!(
        union_model,
        fedforecaster::aggregate::GlobalModel::Ensemble { members: 4, .. }
    ));
    assert!(union_mse.is_finite());
    let (local_model, local_mse) = finalize_with(&rt, &config, TreeAggregation::PerClient).unwrap();
    assert!(matches!(
        local_model,
        fedforecaster::aggregate::GlobalModel::PerClient { .. }
    ));
    assert!(local_mse.is_finite());
    // On an IID federation (time splits of one homogeneous series) the
    // union should not be catastrophically worse than local deployment.
    assert!(
        union_mse < local_mse * 5.0,
        "union {union_mse} vs local {local_mse}"
    );
}

#[test]
fn communication_grows_linearly_with_rounds() {
    let clients = federation(3);
    let cfg = EngineConfig::default();
    let rt = build_runtime(&clients, &cfg).unwrap();
    run_feature_engineering(&rt, &GlobalFeatureSpec::lags_only(3), 0.95).unwrap();
    let (_, before_up) = rt.log().byte_totals();
    let fit_ins = Instruction::Fit {
        params: vec![],
        config: ConfigMap::new()
            .with_str(OP, "fit_eval")
            .with_str("algorithm", "Lasso"),
    };
    rt.broadcast_all(&fit_ins).unwrap();
    let (_, after_one) = rt.log().byte_totals();
    for _ in 0..3 {
        rt.broadcast_all(&fit_ins).unwrap();
    }
    let (_, after_four) = rt.log().byte_totals();
    let per_round = after_one - before_up;
    let growth = after_four - after_one;
    assert!(per_round > 0);
    // Three more identical rounds ⇒ ~3× the per-round upstream bytes.
    assert!(
        (growth as f64 - 3.0 * per_round as f64).abs() < 0.2 * per_round as f64,
        "per-round {per_round}, growth over 3 rounds {growth}"
    );
}

#[test]
fn standalone_client_direct_use() {
    // The client type is usable without the runtime (library flexibility).
    let series = federation(1).pop().unwrap();
    let mut client = FedForecasterClient::new(&series, 0.15, 0.15);
    let props = client.get_properties(&ConfigMap::new().with_str(OP, "meta_features"));
    assert!(props.contains_key("meta_features"));
    let spec = GlobalFeatureSpec::lags_only(3);
    let out = client.fit(
        &[],
        &spec.to_config_map().with_str(OP, "feature_engineering"),
    );
    assert!(!out.metrics.contains_key("error"));
}
