//! Cross-crate integration tests: the full Algorithm 1 pipeline driven
//! through the public API, including the privacy invariant over the
//! federated message log.

use fedforecaster::engine::{build_runtime, FedForecaster};
use fedforecaster::prelude::*;
use ff_metalearn::kb::KnowledgeBase;
use ff_metalearn::metamodel::{MetaClassifierKind, MetaModel};
use ff_metalearn::synth::synthetic_kb;
use ff_timeseries::synthesis::{generate, SeasonSpec, SynthesisSpec, TrendSpec};
use ff_timeseries::TimeSeries;

fn metamodel() -> MetaModel {
    let kb = KnowledgeBase::build(&synthetic_kb(12), &[3], 50);
    MetaModel::train(&kb, MetaClassifierKind::RandomForest, 0).expect("meta-model")
}

fn seasonal_federation(n_clients: usize, seed: u64) -> Vec<TimeSeries> {
    generate(
        &SynthesisSpec {
            n: 1000,
            trend: TrendSpec::Linear(0.005),
            seasons: vec![SeasonSpec {
                period: 12.0,
                amplitude: 3.0,
            }],
            snr: Some(20.0),
            missing_fraction: 0.01,
            ..Default::default()
        },
        seed,
    )
    .split_clients(n_clients)
}

#[test]
fn end_to_end_engine_run() {
    let meta = metamodel();
    let cfg = EngineConfig {
        budget: Budget::Iterations(8),
        ..Default::default()
    };
    let clients = seasonal_federation(4, 1);
    let result = FedForecaster::new(cfg, &meta).run(&clients).unwrap();
    assert!(result.test_mse.is_finite());
    assert!(result.best_valid_loss.is_finite());
    assert_eq!(result.recommended.len(), 3);
    assert_eq!(result.evaluations, 8);
}

#[test]
fn privacy_no_raw_samples_cross_the_wire() {
    // The invariant behind the paper's privacy claim: no run of raw
    // consecutive client samples appears in any client→server payload.
    let meta = metamodel();
    let cfg = EngineConfig {
        budget: Budget::Iterations(4),
        ..Default::default()
    };
    let clients = seasonal_federation(3, 2);
    let rt = build_runtime(&clients, &cfg).unwrap();
    // Engine runtimes default to bounded Counting retention; this test
    // must scan *every* payload, so keep the full transcript.
    rt.log().set_retention(ff_fl::log::Retention::Full);
    let engine = FedForecaster::new(cfg, &meta);
    let result = engine.run_on(&rt).unwrap();
    assert!(result.test_mse.is_finite());

    let log = rt.log();
    assert!(!log.is_empty());
    for c in &clients {
        let values = c.values();
        // Check several raw fragments from each client's private split.
        for start in [0usize, values.len() / 2, values.len() - 8] {
            let fragment = &values[start..start + 6];
            if fragment.iter().any(|v| v.is_nan()) {
                continue;
            }
            assert!(
                !log.leaks_float_run(fragment),
                "raw sample run leaked to the server"
            );
        }
    }
}

#[test]
fn engine_vs_baselines_on_strongly_seasonal_data() {
    // On cleanly seasonal data with a decent budget the engine should beat
    // federated N-BEATS trained under the same budget (the paper's central
    // claim at small per-client splits).
    let meta = metamodel();
    let clients = seasonal_federation(5, 3);
    let budget = Budget::Iterations(10);
    let cfg = EngineConfig {
        budget,
        ..Default::default()
    };
    let ff = FedForecaster::new(cfg, &meta).run(&clients).unwrap();
    let nb = run_federated_nbeats(&clients, budget, 30, false, 3).unwrap();
    assert!(
        ff.test_mse < nb.test_mse,
        "FedForecaster {} should beat N-Beats {} here",
        ff.test_mse,
        nb.test_mse
    );
}

#[test]
fn heterogeneous_federation_still_works() {
    // Clients with different regimes (trend vs seasonal vs noise).
    let meta = metamodel();
    let clients = vec![
        generate(
            &SynthesisSpec {
                n: 400,
                trend: TrendSpec::Linear(0.02),
                snr: Some(10.0),
                ..Default::default()
            },
            10,
        ),
        generate(
            &SynthesisSpec {
                n: 300,
                seasons: vec![SeasonSpec {
                    period: 7.0,
                    amplitude: 4.0,
                }],
                snr: Some(10.0),
                ..Default::default()
            },
            11,
        ),
        generate(
            &SynthesisSpec {
                n: 500,
                trend: TrendSpec::RandomWalk(0.3),
                snr: None,
                ..Default::default()
            },
            12,
        ),
    ];
    let cfg = EngineConfig {
        budget: Budget::Iterations(5),
        ..Default::default()
    };
    let result = FedForecaster::new(cfg, &meta).run(&clients).unwrap();
    assert!(result.test_mse.is_finite());
}

#[test]
fn missing_values_are_handled_end_to_end() {
    let meta = metamodel();
    let clients = generate(
        &SynthesisSpec {
            n: 900,
            seasons: vec![SeasonSpec {
                period: 12.0,
                amplitude: 2.0,
            }],
            missing_fraction: 0.10,
            snr: Some(10.0),
            ..Default::default()
        },
        13,
    )
    .split_clients(3);
    let cfg = EngineConfig {
        budget: Budget::Iterations(4),
        ..Default::default()
    };
    let result = FedForecaster::new(cfg, &meta).run(&clients).unwrap();
    assert!(result.test_mse.is_finite());
}

#[test]
fn random_search_and_engine_share_evaluation_protocol() {
    // Same data, same split fractions: both methods' losses are measured on
    // identical test points, so they are directly comparable.
    let meta = metamodel();
    let clients = seasonal_federation(3, 14);
    let cfg = EngineConfig {
        budget: Budget::Iterations(6),
        ..Default::default()
    };
    let ff = FedForecaster::new(cfg.clone(), &meta)
        .run(&clients)
        .unwrap();
    let rs = RandomSearch::new(cfg).run(&clients).unwrap();
    assert!(ff.test_mse.is_finite() && rs.test_mse.is_finite());
    // Both within two orders of magnitude — they optimize the same space.
    let ratio = ff.test_mse / rs.test_mse;
    assert!((0.01..100.0).contains(&ratio), "ratio {ratio}");
}

#[test]
fn time_budget_is_respected() {
    let meta = metamodel();
    let clients = seasonal_federation(3, 15);
    let cfg = EngineConfig {
        budget: Budget::Time(std::time::Duration::from_millis(1500)),
        ..Default::default()
    };
    let start = std::time::Instant::now();
    let result = FedForecaster::new(cfg, &meta).run(&clients).unwrap();
    // Generous overhead allowance: the budget bounds the *optimization*
    // loop; meta-features and finalization add a bounded tail.
    assert!(start.elapsed().as_secs() < 30);
    assert!(result.evaluations >= 1);
}

#[test]
fn exogenous_covariates_improve_covariate_driven_targets() {
    use fedforecaster::client::FedForecasterClient;
    use fedforecaster::engine::build_runtime_from;
    use fedforecaster::feature_engineering::ExogenousData;
    use ff_linalg::Matrix;

    // Target driven mostly by a covariate known at prediction time plus a
    // small autoregressive remainder — lags alone cannot explain it.
    let meta = metamodel();
    let n = 600;
    let mut clients_plain = Vec::new();
    let mut clients_exog = Vec::new();
    for c in 0..3u64 {
        let mut state = 77 + c;
        let mut rnd = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 30) as f64) - 1.0
        };
        let driver: Vec<f64> = (0..n).map(|_| rnd() * 5.0).collect();
        let mut y = vec![0.0f64];
        for t in 1..n {
            let prev: f64 = y[t - 1];
            y.push(0.3 * prev + 2.0 * driver[t] + 0.1 * rnd());
        }
        let series = TimeSeries::with_regular_index(0, 3600, y);
        let exog = ExogenousData::new(
            vec!["driver".into()],
            Matrix::from_fn(n, 1, |i, _| driver[i]),
        );
        clients_plain.push(FedForecasterClient::new(&series, 0.15, 0.15));
        clients_exog.push(FedForecasterClient::new(&series, 0.15, 0.15).with_exogenous(exog));
    }
    let cfg = EngineConfig {
        budget: Budget::Iterations(5),
        ..Default::default()
    };
    let engine = FedForecaster::new(cfg, &meta);
    let plain = engine.run_on(&build_runtime_from(clients_plain)).unwrap();
    let exog = engine.run_on(&build_runtime_from(clients_exog)).unwrap();
    assert!(
        exog.test_mse < plain.test_mse * 0.5,
        "covariate should cut the error: exog {} vs plain {}",
        exog.test_mse,
        plain.test_mse
    );
}
