//! Integration tests across substrate crates: meta-learning consistency,
//! dataset simulators feeding the engine, and FedAvg model exchange.

use ff_metalearn::aggregate::GlobalMetaFeatures;
use ff_metalearn::features::ClientMetaFeatures;
use ff_metalearn::kb::{label_federation, KnowledgeBase};
use ff_metalearn::metamodel::{evaluate_zoo, MetaClassifierKind, MetaModel};
use ff_metalearn::synth::{reallike_kb, synthetic_kb};
use ff_models::zoo::AlgorithmKind;
use ff_neural::nbeats::{NBeats, NBeatsConfig};
use ff_neural::Parameterized;

#[test]
fn kb_labels_pick_trees_on_nonlinear_dynamics() {
    // A SETAR (threshold-autoregressive) process: the map y_t = f(y_{t-1})
    // switches regimes at zero, which no linear lag model can represent.
    // The grid-search labeller must therefore choose the tree ensemble.
    let mut state = 9u64;
    let mut rnd = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 30) as f64) - 1.0
    };
    let mut y = vec![0.5f64];
    for _ in 0..900 {
        let prev: f64 = *y.last().unwrap();
        let next = if prev > 0.0 {
            -0.8 * prev + 0.3 * rnd()
        } else {
            0.9 * prev + 1.0 + 0.3 * rnd()
        };
        y.push(next);
    }
    let series = ff_timeseries::TimeSeries::with_regular_index(0, 3600, y);
    let clients = series.split_clients(3);
    let (_, algo, loss) = label_federation(&clients).unwrap();
    assert!(loss.is_finite());
    assert_eq!(
        algo,
        AlgorithmKind::XGB_REGRESSOR,
        "nonlinear data labelled {algo:?}"
    );
}

#[test]
fn metamodel_pipeline_from_kb_to_recommendation() {
    let mut datasets = synthetic_kb(24);
    datasets.extend(reallike_kb().into_iter().take(6));
    let kb = KnowledgeBase::build(&datasets, &[3, 5], 60);
    assert!(kb.len() >= 24, "kb size {}", kb.len());

    // Every record's feature vector has the documented dimension.
    for r in &kb.records {
        assert_eq!(r.features.len(), GlobalMetaFeatures::dim());
    }

    let meta = MetaModel::train(&kb, MetaClassifierKind::RandomForest, 0).unwrap();
    // Recommend for one of the KB's own federations: top-K must include
    // plausible algorithms and be deduplicated.
    let rec = meta.recommend(&kb.records[0].features, 3).unwrap();
    assert_eq!(rec.len(), 3);
    let mut dedup = rec.clone();
    dedup.dedup();
    assert_eq!(dedup.len(), 3, "duplicate recommendations");
}

#[test]
fn zoo_comparison_runs_on_real_kb() {
    let kb = KnowledgeBase::build(&synthetic_kb(32), &[5], 60);
    let results = evaluate_zoo(&kb, 1).unwrap();
    assert_eq!(results.len(), 8);
    // All classifier families better than random guessing on MRR@3 would
    // be ideal but not guaranteed at this KB size; require validity only.
    for r in results {
        assert!((0.0..=1.0).contains(&r.mrr3));
        assert!((0.0..=1.0).contains(&r.f1));
    }
}

#[test]
fn benchmark_datasets_feed_meta_extraction() {
    for ds in ff_datasets::benchmark_datasets() {
        let clients = ds.generate_federation(0, 0.05);
        let metas: Vec<ClientMetaFeatures> =
            clients.iter().map(ClientMetaFeatures::extract).collect();
        let global = GlobalMetaFeatures::aggregate(&metas);
        assert_eq!(global.values().len(), GlobalMetaFeatures::dim());
        assert!(
            global.values().iter().all(|v| v.is_finite()),
            "{} produced non-finite global meta-features",
            ds.name
        );
    }
}

#[test]
fn nbeats_weights_roundtrip_through_fedavg() {
    // Two N-BEATS nets with identical architecture: averaging their flat
    // weights must produce a net whose output is *not* generally the average
    // of outputs (nonlinear), but the mechanics must be shape-safe and
    // deterministic.
    let mut a = NBeats::new(NBeatsConfig::small(8, 1));
    let mut b = NBeats::new(NBeatsConfig::small(8, 2));
    let pa = a.params_flat();
    let pb = b.params_flat();
    assert_eq!(pa.len(), pb.len());
    let avg = ff_fl::strategy::fedavg(&[(pa.clone(), 3), (pb.clone(), 1)]).unwrap();
    assert_eq!(avg.len(), pa.len());
    for ((&x, &y), &z) in pa.iter().zip(&pb).zip(&avg) {
        let lo = x.min(y) - 1e-12;
        let hi = x.max(y) + 1e-12;
        assert!(z >= lo && z <= hi);
    }
    let mut c = NBeats::new(NBeatsConfig::small(8, 3));
    c.set_params_flat(&avg);
    assert_eq!(c.params_flat(), avg);
}

#[test]
fn wilcoxon_on_real_comparison_vectors() {
    // Reproduce the §5.2 statistical machinery on synthetic results where
    // method A dominates: p must fall below 0.05 with 12 paired datasets.
    let a: Vec<f64> = (0..12).map(|i| 1.0 + 0.01 * i as f64).collect();
    let b: Vec<f64> = a.iter().map(|v| v * 1.5).collect();
    let r = ff_timeseries::wilcoxon::wilcoxon_signed_rank(&a, &b).unwrap();
    assert!(r.p_value < 0.05, "p = {}", r.p_value);
    assert_eq!(r.n_used, 12);
}
