//! Sequential-equivalence suite for the ff-par data-parallel kernels: every
//! parallelized hot loop must produce **bit-identical** output at every
//! thread count. Each kernel is pinned under `FF_THREADS ∈ {1, 2, 8}` (via
//! the thread-local override, which takes the same resolution path), and
//! one full engine run is compared end-to-end — `RunResult` numerics and
//! the serialized global model, byte for byte — between a process-global
//! worker count of 1 and 8.

use fedforecaster::engine::FedForecaster;
use fedforecaster::prelude::*;
use ff_bayesopt::gp::GaussianProcess;
use ff_linalg::{CholeskyFactor, Matrix};
use ff_metalearn::kb::KnowledgeBase;
use ff_metalearn::metamodel::{MetaClassifierKind, MetaModel};
use ff_metalearn::synth::synthetic_kb;
use ff_models::forest::RandomForestRegressor;
use ff_models::Regressor;
use ff_timeseries::periodogram::weighted_seasonality;
use ff_timeseries::synthesis::{generate, SeasonSpec, SynthesisSpec, TrendSpec};
use ff_timeseries::TimeSeries;

/// A cheap deterministic value stream for building test inputs.
fn lcg(seed: u64) -> impl FnMut() -> f64 {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
    }
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Runs `f` under thread counts 1, 2, and 8 and asserts every run returns
/// the same value.
fn assert_thread_invariant<T: PartialEq + std::fmt::Debug>(f: impl Fn() -> T) {
    let seq = ff_par::with_threads(1, &f);
    for threads in [2usize, 8] {
        let par = ff_par::with_threads(threads, &f);
        assert_eq!(par, seq, "output changed at {threads} threads");
    }
}

#[test]
fn matmul_bits_are_thread_invariant() {
    let mut next = lcg(1);
    let a = Matrix::from_fn(96, 80, |_, _| next());
    let b = Matrix::from_fn(80, 64, |_, _| next());
    assert_thread_invariant(|| bits(a.matmul(&b).unwrap().as_slice()));
}

#[test]
fn cholesky_factor_bits_are_thread_invariant() {
    // An SPD matrix large enough to cross several 32-column panels.
    let n = 130;
    let mut next = lcg(2);
    let g = Matrix::from_fn(n, n, |_, _| next());
    let mut spd = g.gram();
    spd.add_diagonal(n as f64);
    assert_thread_invariant(|| bits(CholeskyFactor::new(&spd).unwrap().l().as_slice()));
}

#[test]
fn gp_fit_and_predict_bits_are_thread_invariant() {
    // n = 96 kernel matrix: the parallel from_fn_par fill plus the blocked
    // Cholesky behind the GP fit.
    let mut next = lcg(3);
    let xs: Vec<Vec<f64>> = (0..96).map(|_| vec![next(), next(), next()]).collect();
    let ys: Vec<f64> = xs.iter().map(|x| x[0].sin() + 0.5 * x[1] - x[2]).collect();
    let probes: Vec<Vec<f64>> = (0..16).map(|_| vec![next(), next(), next()]).collect();
    assert_thread_invariant(|| {
        let gp = GaussianProcess::fit_auto(1e-6, &xs, &ys).unwrap();
        let mut out = Vec::new();
        for p in &probes {
            let (m, v) = gp.predict(p);
            out.push(m.to_bits());
            out.push(v.to_bits());
        }
        out.push(gp.log_marginal_likelihood().to_bits());
        out
    });
}

#[test]
fn forest_fit_bits_are_thread_invariant() {
    let mut next = lcg(4);
    let x = Matrix::from_fn(200, 6, |_, _| next());
    let y: Vec<f64> = (0..200)
        .map(|i| x.get(i, 0) * 2.0 - x.get(i, 3) + x.get(i, 5).abs())
        .collect();
    assert_thread_invariant(|| {
        let mut f = RandomForestRegressor::new(24, 6, 7);
        f.fit(&x, &y).unwrap();
        (
            bits(&f.predict(&x).unwrap()),
            bits(f.feature_importances().unwrap()),
        )
    });
}

#[test]
fn weighted_seasonality_bits_are_thread_invariant() {
    let clients: Vec<Vec<f64>> = (0..6)
        .map(|c| {
            (0..400)
                .map(|t| (2.0 * std::f64::consts::PI * t as f64 / (9.0 + c as f64)).sin())
                .collect()
        })
        .collect();
    let refs: Vec<&[f64]> = clients.iter().map(|c| c.as_slice()).collect();
    let w: Vec<f64> = (1..=6).map(|i| i as f64).collect();
    assert_thread_invariant(|| {
        weighted_seasonality(&refs, &w, 3, 2.0)
            .into_iter()
            .map(|s| (s.period.to_bits(), s.power.to_bits()))
            .collect::<Vec<_>>()
    });
}

#[test]
fn kb_grid_labelling_is_thread_invariant() {
    let datasets = synthetic_kb(3);
    assert_thread_invariant(|| {
        let kb = KnowledgeBase::build(&datasets, &[2], 100);
        kb.records
            .iter()
            .map(|r| {
                (
                    r.dataset.clone(),
                    r.best_algorithm,
                    r.best_mse.to_bits(),
                    bits(&r.features),
                )
            })
            .collect::<Vec<_>>()
    });
}

fn federation(n_clients: usize, seed: u64) -> Vec<TimeSeries> {
    generate(
        &SynthesisSpec {
            n: 900,
            trend: TrendSpec::Linear(0.01),
            seasons: vec![SeasonSpec {
                period: 12.0,
                amplitude: 2.5,
            }],
            snr: Some(20.0),
            ..Default::default()
        },
        seed,
    )
    .split_clients(n_clients)
}

/// The acceptance bar for the whole PR: one full Algorithm 1 run must be
/// bit-identical between 1 and 8 workers — every loss, the winning config,
/// the communication totals, and the serialized global model.
#[test]
fn full_engine_run_is_bit_identical_across_thread_counts() {
    // The meta-model is trained once (outside the comparison) so both runs
    // share it; the global worker count is what FL client threads resolve
    // through, which the thread-local override cannot reach.
    let kb = KnowledgeBase::build(&synthetic_kb(8), &[2], 50);
    let meta = MetaModel::train(&kb, MetaClassifierKind::RandomForest, 0).unwrap();
    let run = |threads: usize| {
        ff_par::set_global_threads(threads);
        let cfg = EngineConfig {
            budget: Budget::Iterations(5),
            seed: 7,
            ..Default::default()
        };
        let result = FedForecaster::new(cfg, &meta)
            .run(&federation(3, 11))
            .unwrap();
        // Everything except wall-clock, rendered to comparable form. The
        // Debug rendering of f64 round-trips exactly, so the model string
        // is a faithful byte-for-byte serialization of the deployed model.
        (
            result.best_algorithm,
            format!("{:?}", result.best_config).into_bytes(),
            result.best_valid_loss.to_bits(),
            result.test_mse.to_bits(),
            format!("{:?}", result.global_model).into_bytes(),
            result.evaluations,
            bits(&result.loss_history),
            result.recommended.clone(),
            result.bytes_to_clients,
            result.bytes_to_server,
            result.failed_trials,
        )
    };
    let seq = run(1);
    let par = run(8);
    assert_eq!(par, seq, "engine output changed with the worker count");
    // Leave the ambient count as hardware-auto resolution for other tests.
    ff_par::set_global_threads(
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    );
}
