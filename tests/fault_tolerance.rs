//! End-to-end chaos acceptance test: Algorithm 1 must complete on a
//! federation where half the clients misbehave — panicking, hanging past
//! the deadline, corrupting their replies — with the faulty clients
//! quarantined, the dropouts reported per round, and neither the rounds
//! nor runtime teardown blocking on the hung client.

use std::time::{Duration, Instant};

use fedforecaster::client::{FedForecasterClient, OP};
use fedforecaster::prelude::*;
use ff_fl::chaos::ChaosClient;
use ff_fl::client::{EvalOutput, FitOutput, FlClient};
use ff_fl::config::{ConfigMap, ConfigMapExt};
use ff_fl::health::ClientState;
use ff_fl::runtime::FederatedRuntime;
use ff_metalearn::kb::KnowledgeBase;
use ff_metalearn::metamodel::{MetaClassifierKind, MetaModel};
use ff_metalearn::synth::synthetic_kb;
use ff_timeseries::synthesis::{generate, SeasonSpec, SynthesisSpec, TrendSpec};
use ff_timeseries::TimeSeries;

/// Chaos seed for this run: `CHAOS_SEED` env override (the CI matrix runs
/// several), or the test's default. The suite's assertions are
/// seed-independent — probabilities here are 0 or 1 — so every seed must
/// reach the same verdicts.
fn chaos_seed(default: u64) -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn tiny_metamodel() -> MetaModel {
    let kb = KnowledgeBase::build(&synthetic_kb(8), &[2], 50);
    MetaModel::train(&kb, MetaClassifierKind::RandomForest, 0).unwrap()
}

fn federation(n_clients: usize) -> Vec<TimeSeries> {
    generate(
        &SynthesisSpec {
            n: 200 * n_clients,
            trend: TrendSpec::Linear(0.01),
            seasons: vec![SeasonSpec {
                period: 12.0,
                amplitude: 2.0,
            }],
            snr: Some(20.0),
            ..Default::default()
        },
        9,
    )
    .split_clients(n_clients)
}

fn good_client(series: &TimeSeries) -> Box<dyn FlClient> {
    Box::new(FedForecasterClient::new(series, 0.15, 0.15))
}

fn chaos_policy() -> RoundPolicy {
    RoundPolicy {
        deadline: Some(Duration::from_millis(1500)),
        min_responses: 2,
        retries: 0,
        backoff: Duration::ZERO,
    }
}

/// The ISSUE acceptance scenario: 8 clients — two panic on every call, one
/// hangs far past the deadline, one corrupts every reply — and a
/// multi-round engine run still completes on the 4 healthy survivors.
#[test]
fn engine_completes_on_half_faulty_federation() {
    let series = federation(8);
    let clients: Vec<Box<dyn FlClient>> = series
        .iter()
        .enumerate()
        .map(|(id, s)| match id {
            1 | 4 => Box::new(ChaosClient::panicking(good_client(s))) as Box<dyn FlClient>,
            5 => Box::new(ChaosClient::hanging(good_client(s), Duration::from_secs(8))),
            6 => Box::new(ChaosClient::corrupting(good_client(s), chaos_seed(7))),
            _ => good_client(s),
        })
        .collect();
    let mut rt = FederatedRuntime::new(clients);
    rt.set_shutdown_timeout(Duration::from_millis(250));

    let cfg = EngineConfig {
        budget: Budget::Iterations(3),
        round_policy: chaos_policy(),
        ..Default::default()
    };
    let meta = tiny_metamodel();
    let result = FedForecaster::new(cfg, &meta).run_on(&rt).unwrap();

    assert!(result.test_mse.is_finite(), "mse {}", result.test_mse);
    assert!(result.best_valid_loss.is_finite());
    assert!(!result.rounds.is_empty());

    // Every faulty client is quarantined; every healthy one stays healthy.
    for id in [1usize, 4, 5, 6] {
        assert_eq!(
            rt.client_state(id),
            Some(ClientState::Quarantined),
            "client {id} should be quarantined"
        );
    }
    for id in [0usize, 2, 3, 7] {
        assert_eq!(
            rt.client_state(id),
            Some(ClientState::Healthy),
            "client {id} should be healthy"
        );
    }
    let report = &result.health;
    assert_eq!(report.count(ClientState::Quarantined), 4);
    assert_eq!(report.count(ClientState::Healthy), 4);

    // Dropouts are recorded per round, and only the faulty clients appear.
    let dropped: Vec<usize> = result
        .rounds
        .iter()
        .flat_map(|r| r.dropouts.iter().map(|(id, _)| *id))
        .collect();
    assert!(!dropped.is_empty(), "no dropouts recorded");
    assert!(
        dropped.iter().all(|id| [1, 4, 5, 6].contains(id)),
        "{dropped:?}"
    );
    // The first round sees all three failure modes at once.
    let first = &result.rounds[0];
    assert_eq!(first.participants, 8);
    assert_eq!(first.usable, 4);
    assert_eq!(first.dropouts.len(), 4);
    let log = render_rounds(&result.rounds);
    assert!(log.contains("panicked"), "{log}");

    // No trial was lost: 4 healthy responders always beat min_responses=2.
    assert_eq!(result.failed_trials, 0);
    assert_eq!(result.evaluations, 3);
    assert_eq!(result.loss_history.len(), 3);

    // Teardown must detach the hung client, not wait out its 8 s naps.
    let started = Instant::now();
    drop(rt);
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "drop blocked for {:?}",
        started.elapsed()
    );
}

/// Wraps a well-behaved client but reports a NaN validation loss for every
/// tuning-loop fit, like a client whose local solver diverged.
struct PoisonLoss {
    inner: FedForecasterClient,
}

impl FlClient for PoisonLoss {
    fn get_properties(&mut self, config: &ConfigMap) -> ConfigMap {
        self.inner.get_properties(config)
    }
    fn fit(&mut self, params: &[f64], config: &ConfigMap) -> FitOutput {
        let mut out = self.inner.fit(params, config);
        if config.str_or(OP, "") == "fit_eval" {
            out.metrics = out.metrics.with_float("valid_loss", f64::NAN);
        }
        out
    }
    fn evaluate(&mut self, params: &[f64], config: &ConfigMap) -> EvalOutput {
        self.inner.evaluate(params, config)
    }
}

/// A non-finite client loss is a round dropout, not a trial abort: the
/// aggregated loss comes from the finite survivors and the poisoned client
/// is listed in the round report — but it is NOT a transport failure, so
/// the client stays healthy.
#[test]
fn non_finite_loss_is_excluded_not_fatal() {
    let series = federation(3);
    let clients: Vec<Box<dyn FlClient>> = series
        .iter()
        .enumerate()
        .map(|(id, s)| {
            if id == 1 {
                Box::new(PoisonLoss {
                    inner: FedForecasterClient::new(s, 0.15, 0.15),
                }) as Box<dyn FlClient>
            } else {
                good_client(s)
            }
        })
        .collect();
    let rt = FederatedRuntime::new(clients);
    let cfg = EngineConfig {
        budget: Budget::Iterations(3),
        round_policy: RoundPolicy {
            min_responses: 1,
            ..RoundPolicy::default()
        },
        ..Default::default()
    };
    let meta = tiny_metamodel();
    let result = FedForecaster::new(cfg, &meta).run_on(&rt).unwrap();

    assert!(result.test_mse.is_finite());
    assert_eq!(result.failed_trials, 0);
    assert_eq!(result.loss_history.len(), 3);
    assert!(result.loss_history.iter().all(|l| l.is_finite()));

    // Every optimization round flagged client 1's loss as non-finite and
    // aggregated over the other two.
    let opt_rounds: Vec<_> = result
        .rounds
        .iter()
        .filter(|r| r.phase == "optimization")
        .collect();
    assert_eq!(opt_rounds.len(), 3);
    for r in &opt_rounds {
        assert_eq!(r.non_finite, vec![1]);
        assert_eq!(r.usable, 2);
        assert_eq!(r.responses, 3);
        assert!(r.dropouts.is_empty());
    }
    // Reporting a bad number is an application-level fault; the transport
    // succeeded, so health is unaffected.
    assert_eq!(rt.client_state(1), Some(ClientState::Healthy));
}
