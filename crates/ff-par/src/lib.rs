//! Deterministic data parallelism for the FedForecaster numerics stack.
//!
//! Zero-dependency (std-only) scoped thread pool built on
//! [`std::thread::scope`] plus an atomic work queue. The crate exists to
//! make the workspace's hot kernels — matmul, Cholesky panels, GP kernel
//! matrices, per-tree forest fits, meta-feature extraction, KB labelling —
//! use every core **without ever changing a single output bit**:
//!
//! - **Index-ordered results.** [`par_map_indexed`] / [`par_chunks_map`]
//!   place each task's result by its *index*, never by completion order.
//! - **Fixed-shape reductions.** [`par_reduce`] combines partial results in
//!   a binary tree whose shape depends only on the task count — never on
//!   the thread count or on which worker finished first. No atomics-into-
//!   float accumulation anywhere.
//! - **Exact sequential fallback.** One worker (or `FF_THREADS=1`, or a
//!   nested call from inside a worker) executes the *same* arithmetic in
//!   the same order, so parallel and sequential runs are bit-identical.
//! - **Panic propagation.** A panicking task is captured, the pool drains
//!   without deadlocking, and the payload is re-raised on the caller (the
//!   lowest-indexed panicking task wins, deterministically).
//!
//! Thread-count resolution, highest priority first:
//! 1. a thread-local override installed by [`with_threads`] /
//!    [`ParConfig::scope`] (scoped to the calling thread);
//! 2. the process-global count from [`set_global_threads`] /
//!    [`ParConfig::install_global`];
//! 3. the `FF_THREADS` environment variable (read once);
//! 4. [`std::thread::available_parallelism`].

mod pool;

pub use pool::{
    par_chunks_map, par_chunks_mut, par_map_indexed, par_reduce, run_indexed, stats, worker_loads,
    StatsSnapshot,
};

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker-count policy for a component (0 = inherit the ambient
/// resolution: thread-local override → global → `FF_THREADS` → hardware).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ParConfig {
    /// Worker threads; `0` means "auto".
    pub threads: usize,
}

impl ParConfig {
    /// Inherit the ambient thread count (the default).
    pub fn auto() -> ParConfig {
        ParConfig { threads: 0 }
    }

    /// Exactly one worker: the bit-exact sequential fallback.
    pub fn sequential() -> ParConfig {
        ParConfig { threads: 1 }
    }

    /// A fixed worker count.
    pub fn with_threads(threads: usize) -> ParConfig {
        ParConfig { threads }
    }

    /// The worker count this config resolves to right now.
    pub fn resolve(&self) -> usize {
        if self.threads != 0 {
            self.threads
        } else {
            effective_threads()
        }
    }

    /// Runs `f` with this config's thread count installed as the calling
    /// thread's override (no-op for `auto`). Determinism does not depend
    /// on this — it only controls how many workers the kernels under `f`
    /// may use from this thread.
    pub fn scope<R>(&self, f: impl FnOnce() -> R) -> R {
        if self.threads == 0 {
            f()
        } else {
            with_threads(self.threads, f)
        }
    }

    /// Installs this config process-wide (no-op for `auto`). Worker threads
    /// spawned later (e.g. FL client threads) resolve through the global,
    /// so engines install their configured count here before a run.
    pub fn install_global(&self) {
        if self.threads != 0 {
            set_global_threads(self.threads);
        }
    }
}

/// Process-global worker count; 0 = not yet resolved.
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Per-thread override; 0 = none.
    static OVERRIDE_THREADS: Cell<usize> = const { Cell::new(0) };
    /// True while executing inside an ff-par worker: nested calls run
    /// sequentially instead of spawning (and instead of self-deadlocking).
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// The worker count kernels on this thread will use.
pub fn effective_threads() -> usize {
    let o = OVERRIDE_THREADS.with(|c| c.get());
    if o != 0 {
        return o;
    }
    let g = GLOBAL_THREADS.load(Ordering::Relaxed);
    if g != 0 {
        return g;
    }
    let n = std::env::var("FF_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    // First resolver wins; losers re-read so every thread agrees.
    let _ = GLOBAL_THREADS.compare_exchange(0, n, Ordering::Relaxed, Ordering::Relaxed);
    GLOBAL_THREADS.load(Ordering::Relaxed)
}

/// Sets the process-global worker count (clamped to ≥ 1). Overrides
/// `FF_THREADS` for every thread without an active [`with_threads`] scope.
pub fn set_global_threads(n: usize) {
    GLOBAL_THREADS.store(n.max(1), Ordering::Relaxed);
}

/// Runs `f` with `n` workers as this thread's override, restoring the
/// previous override on exit (panic-safe). The override is thread-local:
/// it does not affect other threads already running.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE_THREADS.with(|c| c.set(self.0));
        }
    }
    let prev = OVERRIDE_THREADS.with(|c| c.replace(n.max(1)));
    let _restore = Restore(prev);
    f()
}

/// True when the current thread is an ff-par worker (nested parallel calls
/// fall back to sequential execution).
pub fn in_worker() -> bool {
    IN_WORKER.with(|c| c.get())
}

pub(crate) struct WorkerGuard {
    prev: bool,
}

impl WorkerGuard {
    pub(crate) fn enter() -> WorkerGuard {
        let prev = IN_WORKER.with(|c| c.replace(true));
        WorkerGuard { prev }
    }
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        IN_WORKER.with(|c| c.set(prev));
    }
}

/// A work-partitioning helper for row/chunk-parallel kernels: the length of
/// each contiguous chunk when `total` items are split into roughly
/// `oversubscribe × workers` tasks of at least `min_per_chunk` items.
///
/// The returned length may (deliberately) depend on the ambient thread
/// count — use it **only** for partitioning work whose per-item results are
/// independent of the partition (row fills, per-tree fits). Reductions must
/// go through [`par_reduce`], whose shape is fixed by the task count alone.
pub fn partition_len(total: usize, min_per_chunk: usize) -> usize {
    let workers = effective_threads().max(1);
    let target_tasks = workers.saturating_mul(4).max(1);
    total
        .div_ceil(target_tasks)
        .max(min_per_chunk.max(1))
        .max(1)
}

/// The deterministic dual of [`partition_len`]: the length of each
/// contiguous shard when `total` items are split into at most `max_shards`
/// shards of at least `min_shard` items — a pure function of the workload,
/// **never** of the ambient thread count.
///
/// This is the shard-sizing discipline fleet rounds and the serving batcher
/// share: because the partition depends only on `(total, max_shards,
/// min_shard)`, per-shard partials merged in shard index order give
/// bit-identical results at any `FF_THREADS` setting.
pub fn shard_len(total: usize, max_shards: usize, min_shard: usize) -> usize {
    total
        .div_ceil(max_shards.max(1))
        .max(min_shard.max(1))
        .max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests below mutate the process-global thread count; serialize them
    /// so cargo's parallel test harness cannot interleave the mutations.
    fn global_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn config_resolution_precedence() {
        let _g = global_lock();
        // Explicit config beats everything.
        assert_eq!(ParConfig::with_threads(3).resolve(), 3);
        assert_eq!(ParConfig::sequential().resolve(), 1);
        // Thread-local override beats the global.
        set_global_threads(2);
        with_threads(5, || {
            assert_eq!(effective_threads(), 5);
            assert_eq!(ParConfig::auto().resolve(), 5);
            // Nested override shadows, then restores.
            with_threads(7, || assert_eq!(effective_threads(), 7));
            assert_eq!(effective_threads(), 5);
        });
        assert_eq!(effective_threads(), 2);
    }

    #[test]
    fn scope_installs_and_restores() {
        let _g = global_lock();
        set_global_threads(2);
        let seen = ParConfig::with_threads(4).scope(effective_threads);
        assert_eq!(seen, 4);
        assert_eq!(effective_threads(), 2);
        // Auto scope is a pass-through.
        let seen = ParConfig::auto().scope(effective_threads);
        assert_eq!(seen, 2);
    }

    #[test]
    fn set_global_zero_clamps_to_one() {
        let _g = global_lock();
        set_global_threads(0);
        assert_eq!(effective_threads(), 1);
        set_global_threads(2);
    }

    #[test]
    fn partition_len_bounds() {
        with_threads(4, || {
            let len = partition_len(1000, 8);
            assert!(len >= 8);
            assert!(len <= 1000);
            assert_eq!(partition_len(0, 8), 8);
            // Tiny totals never produce zero-length chunks.
            assert!(partition_len(1, 1) >= 1);
        });
    }

    #[test]
    fn shard_len_ignores_thread_count() {
        let _g = global_lock();
        // Identical at every thread setting: the whole point.
        let at = |t| with_threads(t, || shard_len(10_000, 64, 8));
        assert_eq!(at(1), at(4));
        assert_eq!(at(1), at(32));
        assert_eq!(shard_len(10_000, 64, 8), 157);
        // Floors: min_shard wins over tiny shards, and nothing is ever 0.
        assert_eq!(shard_len(10, 64, 8), 8);
        assert_eq!(shard_len(0, 64, 0), 1);
        assert_eq!(shard_len(100, 0, 0), 100);
    }
}
