//! The scoped worker pool: an atomic index queue drained by
//! [`std::thread::scope`] workers, with index-ordered result placement,
//! fixed-shape reductions, and panic propagation.

use crate::{effective_threads, in_worker, WorkerGuard};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Cumulative pool counters (process-global, monotonic).
static TASKS_RUN: AtomicU64 = AtomicU64::new(0);
static IDLE_US: AtomicU64 = AtomicU64::new(0);
static POOLS_SPAWNED: AtomicU64 = AtomicU64::new(0);
/// Tasks enqueued but not yet claimed by a worker, across all live pools.
static QUEUE_DEPTH: AtomicU64 = AtomicU64::new(0);
/// High-water mark of `QUEUE_DEPTH`.
static QUEUE_PEAK: AtomicU64 = AtomicU64::new(0);
/// Tasks claimed per worker slot, cumulative. Slot = the worker's spawn
/// index within its pool (wrapped at the array size), so a persistent
/// imbalance between slot 0 and the rest shows up here.
const WORKER_SLOTS: usize = 64;
static WORKER_TASKS: [AtomicU64; WORKER_SLOTS] = [const { AtomicU64::new(0) }; WORKER_SLOTS];

/// A snapshot of the process-global pool counters. Callers that want
/// per-phase numbers take a snapshot before and after and subtract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Tasks executed on pool workers (sequential fallbacks not counted).
    pub tasks: u64,
    /// Cumulative worker tail-idle time: for each pool, the summed gap
    /// between each worker finishing and the *last* worker finishing —
    /// the load-imbalance cost of the run.
    pub idle_us: u64,
    /// Pools (scoped spawns) created.
    pub pools: u64,
    /// Tasks currently enqueued but unclaimed across all live pools
    /// (instantaneous, not monotonic; 0 when no pool is running).
    pub queue_depth: u64,
    /// High-water mark of `queue_depth` over the process lifetime.
    pub queue_peak: u64,
}

/// Reads the cumulative pool counters.
pub fn stats() -> StatsSnapshot {
    StatsSnapshot {
        tasks: TASKS_RUN.load(Ordering::Relaxed),
        idle_us: IDLE_US.load(Ordering::Relaxed),
        pools: POOLS_SPAWNED.load(Ordering::Relaxed),
        queue_depth: QUEUE_DEPTH.load(Ordering::Relaxed),
        queue_peak: QUEUE_PEAK.load(Ordering::Relaxed),
    }
}

/// Cumulative tasks claimed per worker slot, trailing zero slots trimmed.
/// Take before/after copies and subtract to get a per-phase distribution;
/// all-equal entries mean a balanced pool, a heavy slot 0 with light
/// tails means the queue drained before every worker got going.
pub fn worker_loads() -> Vec<u64> {
    let mut loads: Vec<u64> = WORKER_TASKS
        .iter()
        .map(|c| c.load(Ordering::Relaxed))
        .collect();
    while loads.last() == Some(&0) {
        loads.pop();
    }
    loads
}

/// Runs tasks `0..n` and returns their results **in index order**,
/// regardless of which worker computed what and when.
///
/// With one effective worker, with `n < 2`, or when called from inside a
/// worker (nested parallelism), this degenerates to a plain sequential
/// loop over the same closure — the bit-exact fallback the determinism
/// contract relies on.
///
/// If any task panics, the panic payload of the lowest-indexed panicking
/// task is re-raised here after all workers have stopped; the pool never
/// deadlocks on a panic.
pub fn run_indexed<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = effective_threads().min(n);
    if workers <= 1 || in_worker() {
        return (0..n).map(f).collect();
    }
    pool_run(n, workers, &f)
}

fn pool_run<R, F>(n: usize, workers: usize, f: &F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let next = AtomicUsize::new(0);
    // Queue-depth accounting: all n tasks enter the queue up front, each
    // claim decrements. Leftovers (a panic stops claims early) are
    // reconciled after the scope from the claim counter.
    let depth = QUEUE_DEPTH.fetch_add(n as u64, Ordering::Relaxed) + n as u64;
    QUEUE_PEAK.fetch_max(depth, Ordering::Relaxed);
    // Lowest-indexed panic wins so propagation is deterministic.
    let panic_slot: Mutex<Option<(usize, Box<dyn std::any::Any + Send>)>> = Mutex::new(None);
    let (buckets, finishes): (Vec<Vec<(usize, R)>>, Vec<Instant>) = std::thread::scope(|s| {
        let (next, panic_slot) = (&next, &panic_slot);
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                s.spawn(move || {
                    let _guard = WorkerGuard::enter();
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        QUEUE_DEPTH.fetch_sub(1, Ordering::Relaxed);
                        match catch_unwind(AssertUnwindSafe(|| f(i))) {
                            Ok(r) => local.push((i, r)),
                            Err(p) => {
                                let mut slot = panic_slot.lock().unwrap_or_else(|e| e.into_inner());
                                match &*slot {
                                    Some((j, _)) if *j <= i => {}
                                    _ => *slot = Some((i, p)),
                                }
                                break;
                            }
                        }
                    }
                    WORKER_TASKS[w % WORKER_SLOTS].fetch_add(local.len() as u64, Ordering::Relaxed);
                    (local, Instant::now())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("ff-par worker died outside catch_unwind"))
            .unzip()
    });
    // `fetch_add` hands out consecutive integers, so `min(next, n)` is
    // exactly how many tasks were claimed even if a panic stopped the
    // drain; return the unclaimed remainder to the depth counter.
    let claimed = next.load(Ordering::Relaxed).min(n);
    QUEUE_DEPTH.fetch_sub((n - claimed) as u64, Ordering::Relaxed);
    POOLS_SPAWNED.fetch_add(1, Ordering::Relaxed);
    TASKS_RUN.fetch_add(n as u64, Ordering::Relaxed);
    if let Some(&last) = finishes.iter().max() {
        let idle: u64 = finishes
            .iter()
            .map(|&t| last.duration_since(t).as_micros() as u64)
            .sum();
        IDLE_US.fetch_add(idle, Ordering::Relaxed);
    }
    if let Some((_, payload)) = panic_slot.into_inner().unwrap_or_else(|e| e.into_inner()) {
        resume_unwind(payload);
    }
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in buckets.into_iter().flatten() {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("ff-par: task produced no result"))
        .collect()
}

/// Maps `f(index, &item)` over a slice in parallel; results come back in
/// slice order.
pub fn par_map_indexed<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    run_indexed(items.len(), |i| f(i, &items[i]))
}

/// Splits `items` into contiguous chunks of `chunk_len` (the final chunk
/// may be shorter) and maps `f(chunk_index, chunk)` over them in parallel;
/// results come back in chunk order.
pub fn par_chunks_map<T, R, F>(items: &[T], chunk_len: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    let chunk_len = chunk_len.max(1);
    let n_chunks = items.len().div_ceil(chunk_len);
    run_indexed(n_chunks, |c| {
        let lo = c * chunk_len;
        let hi = (lo + chunk_len).min(items.len());
        f(c, &items[lo..hi])
    })
}

/// Applies `f(chunk_index, chunk)` to disjoint mutable chunks of `data` in
/// parallel. Because the chunks are disjoint, every element is written by
/// exactly one task; as long as `f`'s arithmetic per element does not
/// depend on the chunk boundaries, the result is bit-identical at every
/// thread count (this is the workhorse behind row-parallel matmul and the
/// Cholesky trailing update).
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let chunk_len = chunk_len.max(1);
    let n_chunks = data.len().div_ceil(chunk_len);
    if effective_threads() <= 1 || in_worker() || n_chunks <= 1 {
        for (c, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(c, chunk);
        }
        return;
    }
    // Hand each worker exclusive access to its chunk through a take-once
    // cell; the per-chunk lock is amortized over the whole chunk.
    let cells: Vec<Mutex<Option<&mut [T]>>> = data
        .chunks_mut(chunk_len)
        .map(|c| Mutex::new(Some(c)))
        .collect();
    run_indexed(n_chunks, |c| {
        let chunk = cells[c]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .expect("ff-par: chunk taken twice");
        f(c, chunk);
    });
}

/// Computes `task(0..n)` in parallel and reduces the results with
/// `combine` over a **fixed-shape binary tree**: adjacent pairs by index,
/// level by level. The tree shape depends only on `n`, never on the thread
/// count or completion order, so floating-point reductions are bit-stable
/// across `FF_THREADS` settings. Returns `None` for `n == 0`.
pub fn par_reduce<T, F, C>(n: usize, task: F, combine: C) -> Option<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    C: Fn(T, T) -> T,
{
    if n == 0 {
        return None;
    }
    let mut layer = run_indexed(n, task);
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        let mut it = layer.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(combine(a, b)),
                None => next.push(a),
            }
        }
        layer = next;
    }
    layer.pop()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::with_threads;

    #[test]
    fn results_come_back_in_index_order() {
        for &threads in &[1usize, 2, 3, 8] {
            for n in [0usize, 1, 2, 7, 64, 257] {
                let out = with_threads(threads, || run_indexed(n, |i| i * 3));
                assert_eq!(out, (0..n).map(|i| i * 3).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn par_map_and_chunks_preserve_order() {
        let items: Vec<u64> = (0..100).collect();
        for &threads in &[1usize, 2, 8] {
            with_threads(threads, || {
                let mapped = par_map_indexed(&items, |i, &x| x + i as u64);
                assert_eq!(mapped, items.iter().map(|&x| 2 * x).collect::<Vec<_>>());
                for chunk_len in [1usize, 3, 10, 99, 100, 1000] {
                    let chunks = par_chunks_map(&items, chunk_len, |c, s| (c, s.to_vec()));
                    let mut flat = Vec::new();
                    for (c, (idx, s)) in chunks.iter().enumerate() {
                        assert_eq!(c, *idx);
                        flat.extend_from_slice(s);
                    }
                    assert_eq!(flat, items);
                }
            });
        }
    }

    #[test]
    fn chunks_mut_writes_every_element_once() {
        for &threads in &[1usize, 2, 8] {
            with_threads(threads, || {
                let mut data = vec![0u32; 103];
                par_chunks_mut(&mut data, 7, |_c, chunk| {
                    for v in chunk.iter_mut() {
                        *v += 1;
                    }
                });
                assert!(data.iter().all(|&v| v == 1));
            });
        }
    }

    #[test]
    fn reduce_shape_is_thread_count_invariant() {
        // Floats chosen so that a different association order would give a
        // different bit pattern; the fixed tree must not care about threads.
        let task = |i: usize| 1.0f64 / (i as f64 + 1.0);
        let baseline = with_threads(1, || par_reduce(1000, task, |a, b| a + b)).unwrap();
        for &threads in &[2usize, 3, 8] {
            let v = with_threads(threads, || par_reduce(1000, task, |a, b| a + b)).unwrap();
            assert_eq!(v.to_bits(), baseline.to_bits(), "threads={threads}");
        }
        // And the tree differs from a left fold, proving the shape is real.
        let left_fold: f64 = (0..1000).map(task).sum();
        assert!((left_fold - baseline).abs() < 1e-9);
        assert!(par_reduce(0, task, |a, b| a + b).is_none());
        assert_eq!(par_reduce(1, |_| 42u32, |a, b| a + b), Some(42));
    }

    #[test]
    fn panicking_task_propagates_without_deadlock() {
        for &threads in &[1usize, 2, 8] {
            let caught = with_threads(threads, || {
                catch_unwind(AssertUnwindSafe(|| {
                    run_indexed(50, |i| {
                        if i == 13 || i == 31 {
                            panic!("task {i} exploded");
                        }
                        i
                    })
                }))
            });
            let payload = caught.expect_err("panic must propagate");
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_default();
            assert!(msg.contains("exploded"), "got: {msg}");
            // The pool is still usable afterwards.
            let ok = with_threads(threads, || run_indexed(10, |i| i));
            assert_eq!(ok.len(), 10);
        }
    }

    #[test]
    fn sequential_fallback_propagates_lowest_index_panic() {
        // threads=1 runs inline: the first panicking index raises first.
        let caught = with_threads(1, || {
            catch_unwind(AssertUnwindSafe(|| {
                run_indexed(10, |i| {
                    if i >= 4 {
                        panic!("boom at {i}");
                    }
                    i
                })
            }))
        });
        let msg = caught
            .expect_err("panic expected")
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert_eq!(msg, "boom at 4");
    }

    #[test]
    fn nested_calls_fall_back_to_sequential() {
        let nested_flags = with_threads(4, || {
            run_indexed(8, |_| {
                // Inside a worker: nested parallelism must not spawn.
                let inner = run_indexed(16, |j| (j, crate::in_worker()));
                assert_eq!(
                    inner.iter().map(|(j, _)| *j).collect::<Vec<_>>(),
                    (0..16).collect::<Vec<_>>()
                );
                inner.iter().all(|(_, w)| *w)
            })
        });
        assert!(nested_flags.into_iter().all(|w| w));
        assert!(!crate::in_worker());
    }

    #[test]
    fn stats_are_monotonic_and_count_pool_tasks() {
        let before = stats();
        with_threads(4, || run_indexed(32, |i| i));
        let after = stats();
        assert!(after.tasks >= before.tasks + 32);
        assert!(after.pools > before.pools);
        assert!(after.idle_us >= before.idle_us);
        // The 32-task burst raised the high-water mark at least that far.
        assert!(after.queue_peak >= 32);
        assert!(after.queue_peak >= before.queue_peak);
    }

    #[test]
    fn worker_loads_account_for_every_claimed_task() {
        // Other tests run concurrently, so only deltas are assertable:
        // this pool's 48 tasks all land in some worker slot, and the
        // queue drains back to where it started once the pool is done.
        let loads_before = worker_loads();
        with_threads(4, || run_indexed(48, |i| i * i));
        let loads_after = worker_loads();
        let total_before: u64 = loads_before.iter().sum();
        let total_after: u64 = loads_after.iter().sum();
        assert!(
            total_after >= total_before + 48,
            "worker loads grew {} -> {}",
            total_before,
            total_after
        );
        assert!(loads_after.len() <= WORKER_SLOTS);
        // A panicking pool still reconciles the depth counter: an
        // unbalanced decrement would wrap the u64 toward the maximum.
        // (Other tests' pools may be in flight, so only the absence of
        // underflow is assertable here.)
        let _ = with_threads(4, || {
            catch_unwind(AssertUnwindSafe(|| {
                run_indexed(40, |i| {
                    if i == 3 {
                        panic!("boom");
                    }
                    i
                })
            }))
        });
        assert!(stats().queue_depth < (1 << 32), "queue depth underflowed");
    }
}
