//! Property-based tests for the pool's determinism contract: arbitrary
//! task counts and chunk sizes preserve order, panics propagate without
//! deadlocking, and nested parallelism falls back to sequential.

use ff_par::{
    in_worker, par_chunks_map, par_chunks_mut, par_map_indexed, par_reduce, run_indexed,
    with_threads,
};
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};

proptest! {
    #[test]
    fn map_preserves_order_for_arbitrary_sizes(
        n in 0usize..400,
        threads in 1usize..9,
    ) {
        let items: Vec<u64> = (0..n as u64).collect();
        let out = with_threads(threads, || par_map_indexed(&items, |i, &x| x * 2 + i as u64));
        prop_assert_eq!(out, items.iter().map(|&x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn chunks_map_reassembles_exactly(
        n in 0usize..400,
        chunk_len in 1usize..50,
        threads in 1usize..9,
    ) {
        let items: Vec<u64> = (0..n as u64).map(|x| x.wrapping_mul(2654435761)).collect();
        let chunks = with_threads(threads, || {
            par_chunks_map(&items, chunk_len, |c, s| (c, s.to_vec()))
        });
        let mut flat = Vec::new();
        for (expect_idx, (idx, s)) in chunks.into_iter().enumerate() {
            prop_assert_eq!(expect_idx, idx);
            prop_assert!(s.len() <= chunk_len);
            flat.extend(s);
        }
        prop_assert_eq!(flat, items);
    }

    #[test]
    fn chunks_mut_touches_each_element_exactly_once(
        n in 0usize..400,
        chunk_len in 1usize..50,
        threads in 1usize..9,
    ) {
        let mut data = vec![0u8; n];
        with_threads(threads, || {
            par_chunks_mut(&mut data, chunk_len, |_c, chunk| {
                for v in chunk.iter_mut() {
                    *v += 1;
                }
            })
        });
        prop_assert!(data.iter().all(|&v| v == 1));
    }

    #[test]
    fn reduce_is_bitwise_thread_invariant(
        n in 1usize..600,
        threads in 2usize..9,
    ) {
        // Harmonic-style terms make float addition order observable.
        let task = |i: usize| 1.0f64 / (i as f64 + 1.0);
        let seq = with_threads(1, || par_reduce(n, task, |a, b| a + b)).unwrap();
        let par = with_threads(threads, || par_reduce(n, task, |a, b| a + b)).unwrap();
        prop_assert_eq!(seq.to_bits(), par.to_bits());
    }

    #[test]
    fn panicking_task_propagates_and_pool_survives(
        n in 1usize..200,
        bad in 0usize..200,
        threads in 1usize..9,
    ) {
        let bad = bad % n;
        let result = with_threads(threads, || {
            catch_unwind(AssertUnwindSafe(|| {
                run_indexed(n, |i| {
                    if i == bad {
                        panic!("deterministic failure");
                    }
                    i
                })
            }))
        });
        prop_assert!(result.is_err());
        // No deadlock, and the pool still works after the panic.
        let again = with_threads(threads, || run_indexed(n, |i| i + 1));
        prop_assert_eq!(again.len(), n);
    }

    #[test]
    fn nested_parallelism_runs_sequentially_inside_workers(
        outer in 2usize..20,
        inner in 0usize..50,
        threads in 2usize..9,
    ) {
        let rows = with_threads(threads, || {
            run_indexed(outer, |i| {
                // Nested call must not spawn (in_worker() is set) and must
                // still return index-ordered results.
                let nested = run_indexed(inner, |j| j * i);
                (in_worker(), nested)
            })
        });
        for (i, (was_worker, nested)) in rows.into_iter().enumerate() {
            prop_assert!(was_worker);
            prop_assert_eq!(nested, (0..inner).map(|j| j * i).collect::<Vec<_>>());
        }
        prop_assert!(!in_worker());
    }
}
