//! Property tests for recovery: arbitrary byte soup and arbitrarily
//! damaged valid logs must never panic the reader, and the clean prefix
//! must always decode to exactly the records that were durably appended
//! before the damage.

use ff_ckpt::{corrupt, crc32, read_wal, Wal, MAGIC};
use proptest::prelude::*;

fn tmp(tag: &str, case: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ff-ckpt-prop-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}-{case}.wal"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary bytes after a valid magic: the reader returns some clean
    /// prefix without panicking, and every returned record's CRC holds.
    #[test]
    fn arbitrary_tail_never_panics(case in 0u64..1_000_000, tail in proptest::collection::vec(any::<u8>(), 0..512)) {
        let path = tmp("soup", case);
        let mut raw = MAGIC.to_vec();
        raw.extend_from_slice(&tail);
        std::fs::write(&path, &raw).unwrap();
        let read = read_wal(&path).unwrap();
        prop_assert!(read.valid_len as usize <= raw.len());
        prop_assert_eq!(read.valid_len + read.dropped_bytes, raw.len() as u64);
    }

    /// Truncating a valid log at any byte recovers a prefix of the
    /// appended records, in order, unmodified.
    #[test]
    fn truncation_recovers_a_record_prefix(
        case in 0u64..1_000_000,
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..48), 1..12),
        cut in 0u64..64,
    ) {
        let path = tmp("trunc", case);
        let mut wal = Wal::create(&path).unwrap();
        for p in &payloads {
            wal.append(p).unwrap();
        }
        // Keep the magic header intact — losing it is a hard Corrupt error
        // covered by a dedicated unit test, not a torn tail.
        let len = std::fs::metadata(&path).unwrap().len();
        corrupt::truncate_tail(&path, cut.min(len - MAGIC.len() as u64)).unwrap();
        let read = read_wal(&path).unwrap();
        prop_assert!(read.records.len() <= payloads.len());
        for (got, want) in read.records.iter().zip(&payloads) {
            prop_assert_eq!(got, want);
        }
    }

    /// Flipping any single bit anywhere past the header loses records at
    /// or after the flip, never before it, and never corrupts a record
    /// silently (the CRC catches payload flips; length-field flips tear
    /// the frame chain).
    #[test]
    fn single_bit_flip_never_corrupts_the_prefix(
        case in 0u64..1_000_000,
        payloads in proptest::collection::vec(proptest::collection::vec(1u8..255, 4..32), 2..8),
        offset_pick in any::<u64>(),
        bit in 0u8..8,
    ) {
        let path = tmp("flip", case);
        let mut wal = Wal::create(&path).unwrap();
        for p in &payloads {
            wal.append(p).unwrap();
        }
        let len = std::fs::metadata(&path).unwrap().len();
        let body = len - MAGIC.len() as u64;
        let offset = MAGIC.len() as u64 + offset_pick % body;
        corrupt::flip_bit(&path, offset, bit).unwrap();
        let read = read_wal(&path).unwrap();
        // Whatever survives must be an exact prefix of what was written —
        // a flipped bit may cost records, never alter one undetected.
        // (A flip in a length field can even make later frame boundaries
        // re-align by luck; the CRC still rejects misframed payloads.)
        for (got, want) in read.records.iter().zip(&payloads) {
            prop_assert_eq!(got, want);
        }
        prop_assert!(read.records.len() < payloads.len() || read.records.len() == payloads.len());
    }

    /// crc32 is stable and sensitive: equal input, equal output; one
    /// flipped bit, different output.
    #[test]
    fn crc32_detects_single_bit_errors(data in proptest::collection::vec(any::<u8>(), 1..256), idx in any::<usize>(), bit in 0u8..8) {
        let base = crc32(&data);
        prop_assert_eq!(base, crc32(&data));
        let mut mutated = data.clone();
        let i = idx % mutated.len();
        mutated[i] ^= 1 << bit;
        prop_assert_ne!(base, crc32(&mutated));
    }
}
