//! Corruption injectors for recovery tests: the damage a real deployment
//! accumulates — truncated files, flipped bits, garbage tails — applied
//! deterministically so every CI run exercises the same wounds.

use crate::{io_err, CkptError, Result};
use std::fs::OpenOptions;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Truncates the last `n` bytes off the file (clamped at empty).
pub fn truncate_tail(path: &Path, n: u64) -> Result<()> {
    let file = OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| io_err(path, "open", e))?;
    let len = file.metadata().map_err(|e| io_err(path, "stat", e))?.len();
    file.set_len(len.saturating_sub(n))
        .map_err(|e| io_err(path, "truncate", e))?;
    Ok(())
}

/// Flips bit `bit` (0–7) of the byte at `offset`. Offsets past the end
/// are an error — the test asked to damage bytes that do not exist.
pub fn flip_bit(path: &Path, offset: u64, bit: u8) -> Result<()> {
    let mut file = OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)
        .map_err(|e| io_err(path, "open", e))?;
    let len = file.metadata().map_err(|e| io_err(path, "stat", e))?.len();
    if offset >= len {
        return Err(CkptError::Corrupt(format!(
            "flip_bit offset {offset} past end of {len}-byte file"
        )));
    }
    let mut byte = [0u8; 1];
    file.seek(SeekFrom::Start(offset))
        .map_err(|e| io_err(path, "seek", e))?;
    file.read_exact(&mut byte)
        .map_err(|e| io_err(path, "read", e))?;
    byte[0] ^= 1 << (bit & 7);
    file.seek(SeekFrom::Start(offset))
        .map_err(|e| io_err(path, "seek", e))?;
    file.write_all(&byte)
        .map_err(|e| io_err(path, "write", e))?;
    Ok(())
}

/// Appends `bytes` of deterministic pseudo-random garbage (splitmix64
/// over `seed`) — a torn record from a *different* future write.
pub fn append_garbage(path: &Path, bytes: usize, seed: u64) -> Result<()> {
    let mut file = OpenOptions::new()
        .append(true)
        .open(path)
        .map_err(|e| io_err(path, "open", e))?;
    let mut state = seed;
    let mut out = Vec::with_capacity(bytes);
    while out.len() < bytes {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        out.extend_from_slice(&z.to_le_bytes());
    }
    out.truncate(bytes);
    file.write_all(&out)
        .map_err(|e| io_err(path, "append to", e))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{read_wal, Wal};
    use std::path::PathBuf;

    fn wal_with(n: u8, name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ff-ckpt-corrupt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let mut wal = Wal::create(&path).unwrap();
        for i in 0..n {
            wal.append(&[i; 64]).unwrap();
        }
        path
    }

    #[test]
    fn truncation_loses_only_the_tail() {
        let path = wal_with(5, "trunc.wal");
        truncate_tail(&path, 10).unwrap();
        let read = read_wal(&path).unwrap();
        assert_eq!(read.records.len(), 4);
        assert!(read.is_torn());
    }

    #[test]
    fn bit_flip_in_last_record_drops_it() {
        let path = wal_with(3, "flip.wal");
        let len = std::fs::metadata(&path).unwrap().len();
        flip_bit(&path, len - 20, 3).unwrap();
        let read = read_wal(&path).unwrap();
        assert_eq!(read.records.len(), 2, "CRC must catch the flipped bit");
        assert!(read.is_torn());
        assert!(flip_bit(&path, len + 5, 0).is_err());
    }

    #[test]
    fn garbage_tail_is_discarded() {
        let path = wal_with(2, "garbage.wal");
        append_garbage(&path, 37, 99).unwrap();
        let read = read_wal(&path).unwrap();
        assert_eq!(read.records.len(), 2);
        assert!(read.is_torn());
        assert_eq!(read.dropped_bytes, 37);
    }
}
