//! Durable write-ahead checkpoint log, std-only and zero-dependency like
//! `ff-par` and `ff-trace`.
//!
//! A coordinator that crashes at trial 900 of a thousand-trial run loses
//! everything unless its progress survives on disk. This crate provides
//! the storage half of crash tolerance:
//!
//! - [`Wal`] — an append-only record log. Every record is length-framed
//!   and CRC-32 checksummed; appends are durable (`fsync`) before the
//!   caller proceeds, so a record the caller saw committed is a record
//!   recovery will see.
//! - [`read_wal`] — torn-tail-tolerant recovery: reading stops at the
//!   first frame whose length or checksum does not validate and reports
//!   the clean prefix. A crash mid-write, a truncated file, or flipped
//!   bits in the tail lose at most the records after the damage — never
//!   a panic, never an unbounded allocation from a hostile length field.
//! - [`rewrite`] — atomic compaction: the replacement log is written to a
//!   temporary sibling, fsynced, and renamed over the original, so a
//!   crash during compaction leaves either the old log or the new one,
//!   never a half-written hybrid.
//! - [`CrashPoint`] — a deterministic crash-injection taxonomy (also
//!   parsed from the `FF_CRASH_AT` environment variable) so tests and CI
//!   can kill a run at any commit point — after record N, halfway
//!   through a frame, or just before a compaction rename — and assert
//!   recovery lands on the last valid record.
//! - [`corrupt`] — fault injectors (truncation, bit flips, garbage
//!   tails) for recovery tests.
//!
//! The payload bytes are opaque here; the engine layers its own record
//! codec on top.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

pub mod corrupt;

/// 8-byte file header: magic + format version. Bump the trailing digit on
/// any incompatible frame-format change.
pub const MAGIC: [u8; 8] = *b"FFCKPT01";

/// Upper bound on a single record's payload, rejected at both ends. A
/// corrupt length field can claim at most this much, bounding what a
/// hostile or damaged log can make recovery allocate.
pub const MAX_RECORD_LEN: u32 = 1 << 28; // 256 MiB

/// Bytes of framing per record: u32 payload length + u32 CRC-32.
pub const FRAME_HEADER: u64 = 8;

/// Checkpoint-log errors.
#[derive(Debug)]
pub enum CkptError {
    /// An I/O operation failed (message includes the path and cause).
    Io(String),
    /// The log is structurally invalid beyond recovery (bad magic, or a
    /// record offered for append exceeds [`MAX_RECORD_LEN`]).
    Corrupt(String),
    /// An injected [`CrashPoint`] fired. Production runs never see this;
    /// the crash harness matches on it to distinguish a simulated kill
    /// from a real failure.
    Crash(CrashPoint),
}

impl std::fmt::Display for CkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptError::Io(m) => write!(f, "checkpoint I/O error: {m}"),
            CkptError::Corrupt(m) => write!(f, "corrupt checkpoint log: {m}"),
            CkptError::Crash(p) => write!(f, "injected crash at {p:?}"),
        }
    }
}

impl std::error::Error for CkptError {}

/// Shorthand result.
pub type Result<T> = std::result::Result<T, CkptError>;

pub(crate) fn io_err(path: &Path, what: &str, e: std::io::Error) -> CkptError {
    CkptError::Io(format!("{what} {}: {e}", path.display()))
}

// ---------------------------------------------------------------------------
// CRC-32
// ---------------------------------------------------------------------------

/// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

// ---------------------------------------------------------------------------
// Crash injection
// ---------------------------------------------------------------------------

/// Deterministic kill points for the crash-injection harness. Counters
/// are 1-based and count events *within the process that armed the
/// point*: `AfterRecord(3)` kills on the third successful append.
///
/// `MidRecord` is the interesting one: it writes a deliberately torn
/// frame — the header plus only half the payload — syncs it, and then
/// "dies", reproducing exactly the bytes a power cut mid-`write` leaves
/// behind. Recovery must discard that frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Die after engine trial N commits durably (engine-level; the WAL
    /// itself never fires this).
    AfterTrial(u32),
    /// Die immediately after the Nth append is durable.
    AfterRecord(u32),
    /// Die halfway through writing the Nth record's frame, leaving a
    /// torn tail on disk.
    MidRecord(u32),
    /// Die during the Nth [`rewrite`] after the temporary file is
    /// written but before the atomic rename — the old log must survive.
    PreRename(u32),
}

impl CrashPoint {
    /// Parses the `FF_CRASH_AT` syntax: `trial:N`, `record:N`,
    /// `mid-record:N`, or `pre-rename:N`.
    pub fn parse(s: &str) -> Option<CrashPoint> {
        let (kind, n) = s.split_once(':')?;
        let n: u32 = n.trim().parse().ok()?;
        match kind.trim() {
            "trial" => Some(CrashPoint::AfterTrial(n)),
            "record" => Some(CrashPoint::AfterRecord(n)),
            "mid-record" => Some(CrashPoint::MidRecord(n)),
            "pre-rename" => Some(CrashPoint::PreRename(n)),
            _ => None,
        }
    }

    /// Reads the standard `FF_CRASH_AT` environment variable.
    pub fn from_env() -> Option<CrashPoint> {
        std::env::var("FF_CRASH_AT")
            .ok()
            .and_then(|v| CrashPoint::parse(&v))
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Append-only checkpoint log writer. Every [`append`](Self::append) is
/// framed (`u32` length, `u32` CRC-32, payload) and fsynced before it
/// returns, so a completed call means the record survives a crash.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    bytes: u64,
    records: u64,
    fsync: bool,
    crash: Option<CrashPoint>,
    appends_seen: u32,
}

impl Wal {
    /// Creates (or truncates) the log at `path` and writes the header.
    pub fn create(path: &Path) -> Result<Wal> {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| io_err(path, "create", e))?;
        file.write_all(&MAGIC)
            .map_err(|e| io_err(path, "write header of", e))?;
        file.sync_all().map_err(|e| io_err(path, "sync", e))?;
        Ok(Wal {
            file,
            path: path.to_path_buf(),
            bytes: MAGIC.len() as u64,
            records: 0,
            fsync: true,
            crash: None,
            appends_seen: 0,
        })
    }

    /// Opens the log for appending after recovery: the file is truncated
    /// to `valid_len` (the clean-prefix length reported by [`read_wal`]),
    /// discarding any torn tail, and `records` restores the append
    /// counter.
    pub fn open_append(path: &Path, valid_len: u64, records: u64) -> Result<Wal> {
        let mut file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| io_err(path, "open", e))?;
        file.set_len(valid_len)
            .map_err(|e| io_err(path, "truncate", e))?;
        file.seek(SeekFrom::End(0))
            .map_err(|e| io_err(path, "seek", e))?;
        file.sync_all().map_err(|e| io_err(path, "sync", e))?;
        Ok(Wal {
            file,
            path: path.to_path_buf(),
            bytes: valid_len,
            records,
            fsync: true,
            crash: None,
            appends_seen: 0,
        })
    }

    /// Disables the per-append fsync (for overhead benchmarking only —
    /// durability then depends on the OS page cache).
    pub fn set_fsync(&mut self, fsync: bool) {
        self.fsync = fsync;
    }

    /// Arms a crash point. The next append (or rewrite via
    /// [`Wal::rewrite`]) matching the point returns
    /// [`CkptError::Crash`] after leaving the exact on-disk state a real
    /// crash at that instant would leave.
    pub fn arm_crash(&mut self, crash: Option<CrashPoint>) {
        self.crash = crash;
    }

    /// The armed crash point, if any.
    pub fn crash_point(&self) -> Option<CrashPoint> {
        self.crash
    }

    /// Appends one record durably. On success the record is framed,
    /// written, and fsynced. An armed [`CrashPoint::MidRecord`] writes a
    /// torn frame instead and reports the injected crash; an armed
    /// [`CrashPoint::AfterRecord`] completes the append durably first.
    pub fn append(&mut self, payload: &[u8]) -> Result<()> {
        if payload.len() as u64 > MAX_RECORD_LEN as u64 {
            return Err(CkptError::Corrupt(format!(
                "record of {} bytes exceeds MAX_RECORD_LEN",
                payload.len()
            )));
        }
        self.appends_seen += 1;
        let mut frame = Vec::with_capacity(payload.len() + FRAME_HEADER as usize);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        if let Some(CrashPoint::MidRecord(n)) = self.crash {
            if n == self.appends_seen {
                // A power cut mid-write: half the frame reaches the disk.
                let torn = &frame[..frame.len() / 2];
                self.file
                    .write_all(torn)
                    .and_then(|_| self.file.sync_all())
                    .map_err(|e| io_err(&self.path, "append (torn)", e))?;
                return Err(CkptError::Crash(CrashPoint::MidRecord(n)));
            }
        }
        self.file
            .write_all(&frame)
            .map_err(|e| io_err(&self.path, "append to", e))?;
        if self.fsync {
            self.file
                .sync_all()
                .map_err(|e| io_err(&self.path, "sync", e))?;
        }
        self.bytes += frame.len() as u64;
        self.records += 1;
        if let Some(CrashPoint::AfterRecord(n)) = self.crash {
            if n == self.appends_seen {
                return Err(CkptError::Crash(CrashPoint::AfterRecord(n)));
            }
        }
        Ok(())
    }

    /// Bytes in the log (header + all durable frames).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Records durably appended over the log's lifetime.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Atomically replaces the log's contents with `records` (compaction)
    /// and returns a fresh writer positioned after them. `crash_now`
    /// injects [`CrashPoint::PreRename`]: the temporary file is written
    /// and synced, but the rename never happens — the original log is
    /// untouched, which is exactly the atomicity recovery relies on.
    pub fn rewrite(self, records: &[Vec<u8>], crash_now: bool) -> Result<Wal> {
        let path = self.path.clone();
        let fsync = self.fsync;
        let crash = self.crash;
        drop(self);
        rewrite_inner(&path, records, crash_now)?;
        let read = read_wal(&path)?;
        let mut wal = Wal::open_append(&path, read.valid_len, read.records.len() as u64)?;
        wal.set_fsync(fsync);
        wal.arm_crash(crash);
        Ok(wal)
    }
}

/// Atomically rewrites the log at `path` to contain exactly `records`.
/// Write-temp + fsync + rename: a crash anywhere leaves either the old
/// log or the complete new one.
pub fn rewrite(path: &Path, records: &[Vec<u8>]) -> Result<()> {
    rewrite_inner(path, records, false)
}

fn rewrite_inner(path: &Path, records: &[Vec<u8>], crash_before_rename: bool) -> Result<()> {
    let tmp = path.with_extension("wal.tmp");
    {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)
            .map_err(|e| io_err(&tmp, "create", e))?;
        file.write_all(&MAGIC)
            .map_err(|e| io_err(&tmp, "write header of", e))?;
        for payload in records {
            if payload.len() as u64 > MAX_RECORD_LEN as u64 {
                return Err(CkptError::Corrupt(format!(
                    "record of {} bytes exceeds MAX_RECORD_LEN",
                    payload.len()
                )));
            }
            file.write_all(&(payload.len() as u32).to_le_bytes())
                .and_then(|_| file.write_all(&crc32(payload).to_le_bytes()))
                .and_then(|_| file.write_all(payload))
                .map_err(|e| io_err(&tmp, "write to", e))?;
        }
        file.sync_all().map_err(|e| io_err(&tmp, "sync", e))?;
    }
    if crash_before_rename {
        return Err(CkptError::Crash(CrashPoint::PreRename(0)));
    }
    std::fs::rename(&tmp, path).map_err(|e| io_err(path, "rename over", e))?;
    // Persist the directory entry too, where the platform allows opening
    // a directory read-only (Linux does).
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// What recovery found in a log.
#[derive(Debug, Clone)]
pub struct WalRead {
    /// Every record in the clean prefix, in append order.
    pub records: Vec<Vec<u8>>,
    /// Byte length of the clean prefix (pass to [`Wal::open_append`]).
    pub valid_len: u64,
    /// Bytes after the clean prefix that were discarded as a torn or
    /// corrupt tail (`0` for a cleanly closed log).
    pub dropped_bytes: u64,
}

impl WalRead {
    /// Whether recovery had to discard a damaged tail.
    pub fn is_torn(&self) -> bool {
        self.dropped_bytes > 0
    }
}

/// Reads a checkpoint log, tolerating a torn or corrupted tail: scanning
/// stops at the first frame whose length is implausible, whose bytes run
/// past the file, or whose CRC does not match, and everything before it
/// is returned. Never panics; a bad magic header is [`CkptError::Corrupt`]
/// (there is no prefix worth trusting in a file that was never a log).
pub fn read_wal(path: &Path) -> Result<WalRead> {
    let mut file = File::open(path).map_err(|e| io_err(path, "open", e))?;
    let mut buf = Vec::new();
    file.read_to_end(&mut buf)
        .map_err(|e| io_err(path, "read", e))?;
    if buf.len() < MAGIC.len() || buf[..MAGIC.len()] != MAGIC {
        return Err(CkptError::Corrupt(format!(
            "{}: missing FFCKPT01 header",
            path.display()
        )));
    }
    let mut records = Vec::new();
    let mut pos = MAGIC.len();
    // Stops at the first bad length, overrun, or CRC mismatch: everything
    // past that point is tail damage, not data.
    while let Some(header) = buf.get(pos..pos + FRAME_HEADER as usize) {
        let len = u32::from_le_bytes(header[..4].try_into().unwrap());
        let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
        if len > MAX_RECORD_LEN {
            break; // implausible length: treat as tail damage
        }
        let start = pos + FRAME_HEADER as usize;
        let Some(payload) = buf.get(start..start + len as usize) else {
            break; // frame runs past the file: torn tail
        };
        if crc32(payload) != crc {
            break; // bit rot or torn payload
        }
        records.push(payload.to_vec());
        pos = start + len as usize;
    }
    Ok(WalRead {
        records,
        valid_len: pos as u64,
        dropped_bytes: (buf.len() - pos) as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ff-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_read_roundtrip() {
        let path = tmp("roundtrip.wal");
        let mut wal = Wal::create(&path).unwrap();
        for i in 0..10u8 {
            wal.append(&[i; 33]).unwrap();
        }
        assert_eq!(wal.records(), 10);
        let read = read_wal(&path).unwrap();
        assert_eq!(read.records.len(), 10);
        assert_eq!(read.records[7], vec![7u8; 33]);
        assert!(!read.is_torn());
        assert_eq!(read.valid_len, wal.bytes());
    }

    #[test]
    fn empty_records_and_empty_log_are_fine() {
        let path = tmp("empty.wal");
        let mut wal = Wal::create(&path).unwrap();
        wal.append(&[]).unwrap();
        let read = read_wal(&path).unwrap();
        assert_eq!(read.records, vec![Vec::<u8>::new()]);
        let path2 = tmp("empty2.wal");
        Wal::create(&path2).unwrap();
        assert!(read_wal(&path2).unwrap().records.is_empty());
    }

    #[test]
    fn open_append_continues_the_log() {
        let path = tmp("reopen.wal");
        let mut wal = Wal::create(&path).unwrap();
        wal.append(b"one").unwrap();
        drop(wal);
        let read = read_wal(&path).unwrap();
        let mut wal = Wal::open_append(&path, read.valid_len, read.records.len() as u64).unwrap();
        wal.append(b"two").unwrap();
        assert_eq!(wal.records(), 2);
        let read = read_wal(&path).unwrap();
        assert_eq!(read.records, vec![b"one".to_vec(), b"two".to_vec()]);
    }

    #[test]
    fn mid_record_crash_leaves_recoverable_torn_tail() {
        let path = tmp("torn.wal");
        let mut wal = Wal::create(&path).unwrap();
        wal.arm_crash(Some(CrashPoint::MidRecord(3)));
        wal.append(b"alpha").unwrap();
        wal.append(b"beta").unwrap();
        let err = wal.append(b"gamma-long-payload").unwrap_err();
        assert!(matches!(err, CkptError::Crash(CrashPoint::MidRecord(3))));
        let read = read_wal(&path).unwrap();
        assert_eq!(read.records, vec![b"alpha".to_vec(), b"beta".to_vec()]);
        assert!(read.is_torn());
        // Recovery + append over the torn tail works.
        let mut wal = Wal::open_append(&path, read.valid_len, read.records.len() as u64).unwrap();
        wal.append(b"gamma-long-payload").unwrap();
        let read = read_wal(&path).unwrap();
        assert_eq!(read.records.len(), 3);
        assert!(!read.is_torn());
    }

    #[test]
    fn after_record_crash_is_durable_first() {
        let path = tmp("after.wal");
        let mut wal = Wal::create(&path).unwrap();
        wal.arm_crash(Some(CrashPoint::AfterRecord(2)));
        wal.append(b"a").unwrap();
        let err = wal.append(b"b").unwrap_err();
        assert!(matches!(err, CkptError::Crash(CrashPoint::AfterRecord(2))));
        let read = read_wal(&path).unwrap();
        assert_eq!(read.records.len(), 2, "the crashing append was durable");
        assert!(!read.is_torn());
    }

    #[test]
    fn rewrite_compacts_atomically() {
        let path = tmp("rewrite.wal");
        let mut wal = Wal::create(&path).unwrap();
        for i in 0..5u8 {
            wal.append(&[i]).unwrap();
        }
        let kept: Vec<Vec<u8>> = vec![vec![3], vec![4]];
        let mut wal = wal.rewrite(&kept, false).unwrap();
        wal.append(&[5]).unwrap();
        let read = read_wal(&path).unwrap();
        assert_eq!(read.records, vec![vec![3u8], vec![4], vec![5]]);
    }

    #[test]
    fn pre_rename_crash_preserves_the_old_log() {
        let path = tmp("prerename.wal");
        let mut wal = Wal::create(&path).unwrap();
        wal.append(b"keep-me").unwrap();
        let err = wal.rewrite(&[b"replacement".to_vec()], true).unwrap_err();
        assert!(matches!(err, CkptError::Crash(CrashPoint::PreRename(_))));
        let read = read_wal(&path).unwrap();
        assert_eq!(
            read.records,
            vec![b"keep-me".to_vec()],
            "old log must survive"
        );
    }

    #[test]
    fn oversized_record_rejected_on_both_ends() {
        let path = tmp("oversize.wal");
        let mut wal = Wal::create(&path).unwrap();
        wal.append(b"fine").unwrap();
        // Forge a frame claiming a huge length: the reader must stop at
        // it without allocating the claimed size.
        let mut raw = std::fs::read(&path).unwrap();
        raw.extend_from_slice(&(MAX_RECORD_LEN + 1).to_le_bytes());
        raw.extend_from_slice(&[0u8; 40]);
        std::fs::write(&path, &raw).unwrap();
        let read = read_wal(&path).unwrap();
        assert_eq!(read.records.len(), 1);
        assert!(read.is_torn());
    }

    #[test]
    fn missing_magic_is_corrupt_not_panic() {
        let path = tmp("nomagic.wal");
        std::fs::write(&path, b"whatever this is").unwrap();
        assert!(matches!(read_wal(&path), Err(CkptError::Corrupt(_))));
        std::fs::write(&path, b"abc").unwrap();
        assert!(matches!(read_wal(&path), Err(CkptError::Corrupt(_))));
    }

    #[test]
    fn crash_point_parsing() {
        assert_eq!(
            CrashPoint::parse("trial:3"),
            Some(CrashPoint::AfterTrial(3))
        );
        assert_eq!(
            CrashPoint::parse("record:12"),
            Some(CrashPoint::AfterRecord(12))
        );
        assert_eq!(
            CrashPoint::parse("mid-record:1"),
            Some(CrashPoint::MidRecord(1))
        );
        assert_eq!(
            CrashPoint::parse("pre-rename:2"),
            Some(CrashPoint::PreRename(2))
        );
        assert_eq!(CrashPoint::parse("nonsense"), None);
        assert_eq!(CrashPoint::parse("trial:x"), None);
    }
}
