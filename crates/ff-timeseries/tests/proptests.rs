//! Property-based tests for the time-series substrate.

use ff_timeseries::{acf, interpolate, series::TimeSeries, stationarity, stats};
use proptest::prelude::*;

fn finite_values(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e3f64..1e3, len)
}

proptest! {
    #[test]
    fn acf_is_bounded_and_starts_at_one(x in finite_values(64)) {
        let r = acf::acf(&x, 16);
        prop_assert_eq!(r[0], 1.0);
        for &v in &r {
            prop_assert!(v.abs() <= 1.0 + 1e-6, "acf out of bounds: {}", v);
        }
    }

    #[test]
    fn pacf_is_finite(x in finite_values(64)) {
        for v in acf::pacf(&x, 16) {
            prop_assert!(v.is_finite());
        }
    }

    #[test]
    fn interpolation_removes_all_nans_and_preserves_observed(
        x in finite_values(32),
        mask in prop::collection::vec(any::<bool>(), 32),
    ) {
        // Keep at least one observed point.
        let mut values = x.clone();
        for (v, &m) in values.iter_mut().zip(&mask) {
            if m {
                *v = f64::NAN;
            }
        }
        values[0] = x[0];
        let mut s = TimeSeries::with_regular_index(0, 60, values);
        interpolate::interpolate_linear(&mut s);
        prop_assert_eq!(s.missing_count(), 0);
        // Observed points are untouched.
        for (i, (&orig, &m)) in x.iter().zip(&mask).enumerate() {
            if i == 0 || !m {
                prop_assert!((s.values()[i] - orig).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn interpolated_values_stay_within_neighbour_range(x in finite_values(16)) {
        let mut values = x.clone();
        // Knock out the middle third.
        for v in values.iter_mut().take(10).skip(5) {
            *v = f64::NAN;
        }
        let lo = x[4].min(x[10]);
        let hi = x[4].max(x[10]);
        let mut s = TimeSeries::with_regular_index(0, 60, values);
        interpolate::interpolate_linear(&mut s);
        for i in 5..10 {
            prop_assert!(s.values()[i] >= lo - 1e-9 && s.values()[i] <= hi + 1e-9);
        }
    }

    #[test]
    fn client_split_partitions_series(x in finite_values(57), k in 1usize..8) {
        let s = TimeSeries::with_regular_index(0, 60, x.clone());
        let parts = s.split_clients(k);
        prop_assert_eq!(parts.len(), k);
        let total: usize = parts.iter().map(|p| p.len()).sum();
        prop_assert_eq!(total, 57);
        let rejoined: Vec<f64> = parts.iter().flat_map(|p| p.values().to_vec()).collect();
        prop_assert_eq!(rejoined, x);
        // Sizes differ by at most one.
        let sizes: Vec<usize> = parts.iter().map(|p| p.len()).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        prop_assert!(max - min <= 1);
    }

    #[test]
    fn train_valid_split_partitions(x in finite_values(30), frac in 0.0f64..1.0) {
        let s = TimeSeries::with_regular_index(0, 60, x.clone());
        let (tr, va) = s.train_valid_split(frac);
        prop_assert_eq!(tr.len() + va.len(), 30);
        prop_assert!(!tr.is_empty() && !va.is_empty());
    }

    #[test]
    fn differencing_reduces_length_correctly(x in finite_values(20), order in 0usize..4) {
        let d = stationarity::difference(&x, order);
        prop_assert_eq!(d.len(), 20 - order);
    }

    #[test]
    fn entropy_is_nonnegative_and_kl_nonnegative(
        p in prop::collection::vec(0.01f64..1.0, 8),
        q in prop::collection::vec(0.01f64..1.0, 8),
    ) {
        let norm = |v: &[f64]| -> Vec<f64> {
            let s: f64 = v.iter().sum();
            v.iter().map(|x| x / s).collect()
        };
        let p = norm(&p);
        let q = norm(&q);
        prop_assert!(stats::entropy(&p) >= 0.0);
        prop_assert!(stats::kl_divergence(&p, &q, 1e-12) >= -1e-9);
        prop_assert!(stats::kl_divergence(&p, &p, 1e-12).abs() < 1e-9);
    }

    #[test]
    fn summary_bounds(x in finite_values(25)) {
        let s = stats::summary(&x);
        prop_assert!(s.min <= s.mean + 1e-9 && s.mean <= s.max + 1e-9);
        prop_assert!(s.std >= 0.0);
    }

    #[test]
    fn skewness_sign_flips_under_negation(x in finite_values(25)) {
        let neg: Vec<f64> = x.iter().map(|v| -v).collect();
        let s1 = stats::skewness(&x);
        let s2 = stats::skewness(&neg);
        prop_assert!((s1 + s2).abs() < 1e-6_f64.max(1e-9 * s1.abs()));
    }

    #[test]
    fn kurtosis_is_translation_and_scale_invariant(x in finite_values(25), a in 0.5f64..5.0, b in -10.0f64..10.0) {
        let k1 = stats::kurtosis(&x);
        let tx: Vec<f64> = x.iter().map(|v| a * v + b).collect();
        let k2 = stats::kurtosis(&tx);
        prop_assert!((k1 - k2).abs() < 1e-6 * (1.0 + k1.abs()), "{k1} vs {k2}");
    }
}
