//! Autocorrelation and partial autocorrelation.
//!
//! The pACF drives two Table 1 meta-features ("Significant Lags using pACF"
//! and "Insignificant lags between 1st and last significant ones") and the
//! lag-feature count of §4.2.1(3).

use ff_linalg::vector;

/// Sample autocorrelation function up to `max_lag` (inclusive), using the
/// biased estimator `ρ̂(k) = c(k)/c(0)`. `NaN`s should be interpolated away
/// before calling; any remaining NaNs are treated as the series mean.
pub fn acf(x: &[f64], max_lag: usize) -> Vec<f64> {
    let n = x.len();
    if n == 0 {
        return vec![];
    }
    let clean: Vec<f64> = {
        let m = vector::mean(
            &x.iter()
                .copied()
                .filter(|v| !v.is_nan())
                .collect::<Vec<_>>(),
        );
        x.iter().map(|&v| if v.is_nan() { m } else { v }).collect()
    };
    let mean = vector::mean(&clean);
    let c0: f64 = clean.iter().map(|&v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
    let max_lag = max_lag.min(n.saturating_sub(1));
    let mut out = Vec::with_capacity(max_lag + 1);
    out.push(1.0);
    if c0 <= 1e-300 {
        out.resize(max_lag + 1, 0.0);
        return out;
    }
    // Each lag's covariance sum is independent and produced whole by one
    // task, so the parallel path is bit-identical to the sequential loop.
    let lag_corr = |k: usize| {
        let ck: f64 = (0..n - k)
            .map(|t| (clean[t] - mean) * (clean[t + k] - mean))
            .sum::<f64>()
            / n as f64;
        ck / c0
    };
    /// Below this many multiply-adds (~n·max_lag), stay sequential.
    const PAR_MIN_WORK: usize = 65_536;
    if n * max_lag >= PAR_MIN_WORK {
        out.extend(ff_par::run_indexed(max_lag, |idx| lag_corr(idx + 1)));
    } else {
        out.extend((1..=max_lag).map(lag_corr));
    }
    out
}

/// Partial autocorrelation via the Durbin–Levinson recursion. `pacf[0]` is
/// defined as 1; `pacf[k]` for `k ≥ 1` is the lag-k partial autocorrelation.
pub fn pacf(x: &[f64], max_lag: usize) -> Vec<f64> {
    let rho = acf(x, max_lag);
    let max_lag = rho.len().saturating_sub(1);
    let mut out = vec![1.0];
    if max_lag == 0 {
        return out;
    }
    // Durbin–Levinson: phi[k][j] coefficients of the AR(k) fit.
    let mut phi_prev = vec![0.0; max_lag + 1];
    let mut phi_curr = vec![0.0; max_lag + 1];
    phi_prev[1] = rho[1];
    out.push(rho[1]);
    for k in 2..=max_lag {
        let mut num = rho[k];
        let mut den = 1.0;
        for j in 1..k {
            num -= phi_prev[j] * rho[k - j];
            den -= phi_prev[j] * rho[j];
        }
        let phi_kk = if den.abs() < 1e-12 { 0.0 } else { num / den };
        phi_curr[k] = phi_kk;
        for j in 1..k {
            phi_curr[j] = phi_prev[j] - phi_kk * phi_prev[k - j];
        }
        out.push(phi_kk);
        std::mem::swap(&mut phi_prev, &mut phi_curr);
    }
    out
}

/// Lags whose pACF magnitude exceeds the 95% white-noise band `1.96/√n`.
/// Lag 0 is excluded. Returns lag indices in increasing order.
pub fn significant_pacf_lags(x: &[f64], max_lag: usize) -> Vec<usize> {
    let n = x.len();
    if n < 3 {
        return vec![];
    }
    let threshold = 1.96 / (n as f64).sqrt();
    pacf(x, max_lag)
        .iter()
        .enumerate()
        .skip(1)
        .filter(|(_, &v)| v.abs() > threshold)
        .map(|(k, _)| k)
        .collect()
}

/// Number of *insignificant* lags strictly between the first and last
/// significant pACF lags — a Table 1 meta-feature capturing how "gappy"
/// the dependence structure is.
pub fn insignificant_gap_count(significant: &[usize]) -> usize {
    match (significant.first(), significant.last()) {
        (Some(&first), Some(&last)) if last > first => (last - first + 1) - significant.len(),
        _ => 0,
    }
}

/// Default maximum lag used across the workspace: `min(n/2, 10·log10(n))`,
/// the statsmodels-style rule of thumb.
pub fn default_max_lag(n: usize) -> usize {
    if n < 4 {
        return 1;
    }
    let rule = (10.0 * (n as f64).log10()).floor() as usize;
    rule.min(n / 2).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic AR(1) driven by a fixed pseudo-noise sequence.
    fn ar1(phi: f64, n: usize) -> Vec<f64> {
        let mut x = vec![0.0; n];
        let mut state = 0x12345678u64;
        for t in 1..n {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = ((state >> 33) as f64 / (1u64 << 30) as f64) - 1.0;
            x[t] = phi * x[t - 1] + u;
        }
        x
    }

    #[test]
    fn acf_lag_zero_is_one() {
        let x = ar1(0.5, 200);
        let r = acf(&x, 10);
        assert_eq!(r[0], 1.0);
        assert!(r.iter().all(|v| v.abs() <= 1.0 + 1e-9));
    }

    #[test]
    fn acf_of_ar1_decays_geometrically() {
        let x = ar1(0.8, 5000);
        let r = acf(&x, 3);
        assert!((r[1] - 0.8).abs() < 0.05, "rho1={}", r[1]);
        assert!((r[2] - 0.64).abs() < 0.07, "rho2={}", r[2]);
    }

    #[test]
    fn pacf_of_ar1_cuts_off_after_lag_one() {
        let x = ar1(0.7, 5000);
        let p = pacf(&x, 6);
        assert!((p[1] - 0.7).abs() < 0.05, "pacf1={}", p[1]);
        for &v in &p[2..] {
            assert!(v.abs() < 0.08, "pacf tail should vanish, got {v}");
        }
    }

    #[test]
    fn significant_lags_of_ar1_is_lag_one() {
        let x = ar1(0.7, 2000);
        let lags = significant_pacf_lags(&x, 10);
        assert!(lags.contains(&1));
        // Almost all of the remaining lags must be insignificant.
        assert!(lags.len() <= 3, "lags={lags:?}");
    }

    #[test]
    fn constant_series_has_no_significant_lags() {
        let x = vec![3.0; 100];
        assert!(significant_pacf_lags(&x, 10).is_empty());
    }

    #[test]
    fn insignificant_gap_counting() {
        assert_eq!(insignificant_gap_count(&[1, 2, 3]), 0);
        assert_eq!(insignificant_gap_count(&[1, 5]), 3);
        assert_eq!(insignificant_gap_count(&[2]), 0);
        assert_eq!(insignificant_gap_count(&[]), 0);
        assert_eq!(insignificant_gap_count(&[1, 3, 7]), 4);
    }

    #[test]
    fn default_max_lag_rules() {
        assert_eq!(default_max_lag(2), 1);
        assert_eq!(default_max_lag(100), 20);
        assert_eq!(default_max_lag(10), 5); // n/2 binds
    }

    #[test]
    fn acf_is_bit_identical_across_thread_counts() {
        // 4000·30 crosses the parallel work cutoff.
        let x = ar1(0.6, 4000);
        let seq = ff_par::with_threads(1, || acf(&x, 30));
        for &threads in &[2usize, 8] {
            let par = ff_par::with_threads(threads, || acf(&x, 30));
            for (a, b) in par.iter().zip(&seq) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn acf_handles_empty_and_nan() {
        assert!(acf(&[], 5).is_empty());
        let x = vec![1.0, f64::NAN, 3.0, 2.0, f64::NAN, 4.0, 2.5, 3.5];
        let r = acf(&x, 3);
        assert!(r.iter().all(|v| v.is_finite()));
    }
}
