//! Simplified Prophet-style trend models (§4.2.1(1)).
//!
//! The paper fits a Prophet model to estimate the trend component, choosing
//! between flat (stationary series), linear-with-changepoints, and logistic
//! growth. We reproduce exactly that role: a ridge-regularized
//! piecewise-linear changepoint trend, a logistic growth curve fitted by
//! damped Gauss–Newton, and an ADF-driven selector.

use crate::stationarity;
use ff_linalg::{solve, Matrix};

/// Which growth family a fitted trend belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrendKind {
    /// No trend (stationary series): the fitted trend is the sample mean.
    Flat,
    /// Piecewise-linear trend with changepoints.
    Linear,
    /// Saturating logistic growth.
    Logistic,
}

/// A fitted trend model that can be evaluated at any (fractional) index.
#[derive(Debug, Clone)]
pub struct TrendModel {
    kind: TrendKind,
    /// Flat: `[mean]`. Linear: `[intercept, slope, delta_1.., delta_m]`.
    /// Logistic: `[capacity, rate, midpoint, floor]`.
    params: Vec<f64>,
    /// Changepoint locations (indices) for the linear family.
    changepoints: Vec<f64>,
    /// Training length (for extrapolation bookkeeping).
    n: usize,
}

impl TrendModel {
    /// Fits the trend family selected by the ADF test, mirroring §4.2.1(1):
    /// stationary ⇒ flat; otherwise fit both linear-changepoint and logistic
    /// trends and keep the one with the lower SSE.
    pub fn fit_auto(y: &[f64]) -> TrendModel {
        if y.len() < 12 || stationarity::is_stationary(y) {
            return Self::fit_flat(y);
        }
        let linear = Self::fit_linear(y, default_changepoints(y.len()));
        match Self::fit_logistic(y) {
            Some(logistic) => {
                if sse(&logistic, y) < sse(&linear, y) {
                    logistic
                } else {
                    linear
                }
            }
            None => linear,
        }
    }

    /// Flat trend: the sample mean everywhere.
    pub fn fit_flat(y: &[f64]) -> TrendModel {
        let mean = ff_linalg::vector::mean(
            &y.iter()
                .copied()
                .filter(|v| !v.is_nan())
                .collect::<Vec<_>>(),
        );
        TrendModel {
            kind: TrendKind::Flat,
            params: vec![mean],
            changepoints: vec![],
            n: y.len(),
        }
    }

    /// Piecewise-linear trend with `n_changepoints` evenly spaced
    /// changepoints over the first 80% of the series (Prophet's default
    /// placement), fitted by ridge regression on the slope deltas.
    pub fn fit_linear(y: &[f64], n_changepoints: usize) -> TrendModel {
        let n = y.len();
        if n < 3 {
            return Self::fit_flat(y);
        }
        let cps: Vec<f64> = (1..=n_changepoints)
            .map(|i| 0.8 * n as f64 * i as f64 / (n_changepoints + 1) as f64)
            .collect();
        let p = 2 + cps.len();
        let x = Matrix::from_fn(n, p, |t, j| match j {
            0 => 1.0,
            1 => t as f64,
            _ => (t as f64 - cps[j - 2]).max(0.0),
        });
        // Small ridge on everything; Prophet uses a Laplace prior on deltas —
        // ridge is the L2 analogue and keeps the fit strictly convex.
        let clean: Vec<f64> = y
            .iter()
            .map(|&v| if v.is_nan() { 0.0 } else { v })
            .collect();
        let params = solve::ridge(&x, &clean, 1e-3).unwrap_or_else(|_| vec![0.0; p]);
        TrendModel {
            kind: TrendKind::Linear,
            params,
            changepoints: cps,
            n,
        }
    }

    /// Logistic growth `g(t) = floor + C / (1 + exp(-k (t - m)))` fitted by
    /// damped Gauss–Newton. Returns `None` when the fit fails to improve on
    /// a trivial initialization (e.g. non-sigmoid data).
    pub fn fit_logistic(y: &[f64]) -> Option<TrendModel> {
        let n = y.len();
        if n < 8 {
            return None;
        }
        let clean: Vec<f64> = y.iter().copied().filter(|v| !v.is_nan()).collect();
        if clean.is_empty() {
            return None;
        }
        let lo = clean.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = clean.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let range = (hi - lo).max(1e-9);
        // Initialization: capacity slightly above the observed range.
        let mut params = [
            1.2 * range,
            4.0 / n as f64,
            n as f64 / 2.0,
            lo - 0.1 * range,
        ];
        let eval = |p: &[f64; 4], t: f64| p[3] + p[0] / (1.0 + (-p[1] * (t - p[2])).exp());
        let sse_of = |p: &[f64; 4]| -> f64 {
            y.iter()
                .enumerate()
                .filter(|(_, v)| !v.is_nan())
                .map(|(t, &v)| {
                    let e = v - eval(p, t as f64);
                    e * e
                })
                .sum()
        };
        let mut best = sse_of(&params);
        let mut damping = 1.0;
        for _ in 0..50 {
            // Gauss–Newton step on residuals r_t = y_t - g(t).
            let mut jtj = Matrix::zeros(4, 4);
            let mut jtr = vec![0.0; 4];
            for (t, &v) in y.iter().enumerate() {
                if v.is_nan() {
                    continue;
                }
                let tf = t as f64;
                let z = (-params[1] * (tf - params[2])).exp();
                let denom = 1.0 + z;
                let sig = 1.0 / denom;
                let dsig = z / (denom * denom);
                // ∂g/∂C, ∂g/∂k, ∂g/∂m, ∂g/∂floor
                let grad = [
                    sig,
                    params[0] * dsig * (tf - params[2]),
                    -params[0] * dsig * params[1],
                    1.0,
                ];
                let r = v - eval(&params, tf);
                for a in 0..4 {
                    jtr[a] += grad[a] * r;
                    for b in 0..4 {
                        let cur = jtj.get(a, b);
                        jtj.set(a, b, cur + grad[a] * grad[b]);
                    }
                }
            }
            jtj.add_diagonal(damping);
            let f = match ff_linalg::cholesky::CholeskyFactor::new_with_jitter(&jtj, 1e-8, 8) {
                Ok(f) => f,
                Err(_) => break,
            };
            let step = match f.solve(&jtr) {
                Ok(s) => s,
                Err(_) => break,
            };
            let mut cand = params;
            for (c, s) in cand.iter_mut().zip(&step) {
                *c += s;
            }
            // Keep rate positive and capacity meaningful.
            cand[0] = cand[0].max(1e-6);
            cand[1] = cand[1].clamp(1e-9, 10.0);
            let cand_sse = sse_of(&cand);
            if cand_sse < best {
                best = cand_sse;
                params = cand;
                damping = (damping * 0.5).max(1e-6);
            } else {
                damping *= 4.0;
                if damping > 1e8 {
                    break;
                }
            }
        }
        Some(TrendModel {
            kind: TrendKind::Logistic,
            params: params.to_vec(),
            changepoints: vec![],
            n,
        })
    }

    /// Evaluates the trend at (possibly fractional or out-of-sample) index `t`.
    pub fn eval(&self, t: f64) -> f64 {
        match self.kind {
            TrendKind::Flat => self.params[0],
            TrendKind::Linear => {
                let mut v = self.params[0] + self.params[1] * t;
                for (cp, delta) in self.changepoints.iter().zip(&self.params[2..]) {
                    v += delta * (t - cp).max(0.0);
                }
                v
            }
            TrendKind::Logistic => {
                let [c, k, m, floor] = [
                    self.params[0],
                    self.params[1],
                    self.params[2],
                    self.params[3],
                ];
                floor + c / (1.0 + (-k * (t - m)).exp())
            }
        }
    }

    /// The trend values over the training index range.
    pub fn in_sample(&self) -> Vec<f64> {
        (0..self.n).map(|t| self.eval(t as f64)).collect()
    }

    /// The fitted family.
    pub fn kind(&self) -> TrendKind {
        self.kind
    }
}

/// Prophet-like default: 1 changepoint per ~40 observations, capped at 25.
pub fn default_changepoints(n: usize) -> usize {
    (n / 40).clamp(1, 25)
}

fn sse(model: &TrendModel, y: &[f64]) -> f64 {
    y.iter()
        .enumerate()
        .filter(|(_, v)| !v.is_nan())
        .map(|(t, &v)| {
            let e = v - model.eval(t as f64);
            e * e
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_trend_is_mean() {
        let y = [2.0, 4.0, 6.0];
        let m = TrendModel::fit_flat(&y);
        assert_eq!(m.kind(), TrendKind::Flat);
        assert!((m.eval(0.0) - 4.0).abs() < 1e-12);
        assert!((m.eval(100.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn linear_trend_recovers_slope() {
        let y: Vec<f64> = (0..200).map(|t| 5.0 + 0.3 * t as f64).collect();
        let m = TrendModel::fit_linear(&y, 3);
        let fitted = m.in_sample();
        for (f, t) in fitted.iter().zip(&y) {
            assert!((f - t).abs() < 0.5, "fit {f} vs true {t}");
        }
    }

    #[test]
    fn changepoint_trend_tracks_slope_break() {
        // Slope 1 for the first half, slope -1 after.
        let y: Vec<f64> = (0..200)
            .map(|t| if t < 100 { t as f64 } else { 200.0 - t as f64 })
            .collect();
        let m = TrendModel::fit_linear(&y, 10);
        let err: f64 = m
            .in_sample()
            .iter()
            .zip(&y)
            .map(|(f, t)| (f - t).abs())
            .sum::<f64>()
            / y.len() as f64;
        assert!(err < 5.0, "mean abs err {err}");
    }

    #[test]
    fn logistic_fit_recovers_sigmoid() {
        let y: Vec<f64> = (0..200)
            .map(|t| 10.0 / (1.0 + (-0.08 * (t as f64 - 100.0)).exp()))
            .collect();
        let m = TrendModel::fit_logistic(&y).unwrap();
        let err: f64 = m
            .in_sample()
            .iter()
            .zip(&y)
            .map(|(f, t)| (f - t).abs())
            .sum::<f64>()
            / y.len() as f64;
        assert!(err < 0.5, "mean abs err {err}");
    }

    #[test]
    fn auto_picks_flat_for_stationary_noise() {
        let mut state = 21u64;
        let y: Vec<f64> = (0..300)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 33) as f64 / (1u64 << 30) as f64) - 1.0
            })
            .collect();
        let m = TrendModel::fit_auto(&y);
        assert_eq!(m.kind(), TrendKind::Flat);
    }

    #[test]
    fn auto_picks_growth_family_for_trending_series() {
        let y: Vec<f64> = (0..300).map(|t| 0.5 * t as f64).collect();
        let m = TrendModel::fit_auto(&y);
        assert_ne!(m.kind(), TrendKind::Flat);
        // Extrapolation should continue upward.
        assert!(m.eval(350.0) > m.eval(250.0));
    }

    #[test]
    fn logistic_saturates_for_sigmoid_data() {
        let y: Vec<f64> = (0..300)
            .map(|t| 5.0 / (1.0 + (-0.05 * (t as f64 - 150.0)).exp()))
            .collect();
        let m = TrendModel::fit_auto(&y);
        // Whatever family wins, far-future extrapolation must not explode.
        let far = m.eval(3000.0);
        assert!(far.abs() < 1e4, "extrapolation exploded: {far}");
    }

    #[test]
    fn default_changepoints_bounds() {
        assert_eq!(default_changepoints(10), 1);
        assert_eq!(default_changepoints(400), 10);
        assert_eq!(default_changepoints(100_000), 25);
    }
}
