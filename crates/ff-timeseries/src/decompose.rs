//! Classical seasonal-trend decomposition (moving-average based, the
//! `seasonal_decompose` of statsmodels): splits a series into trend,
//! seasonal, and residual components for a known period.
//!
//! Used for analysis and by tests that validate the synthetic generators;
//! the engine's feature set uses the lighter causal estimates.

use crate::{Result, TsError};

/// Additive or multiplicative decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecompositionModel {
    /// `y = trend + seasonal + residual`
    Additive,
    /// `y = trend · seasonal · residual`
    Multiplicative,
}

/// A completed decomposition. All components have the input length; the
/// trend is NaN-padded at the edges (centered moving average).
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// Centered-moving-average trend (NaN at the first/last `period/2`).
    pub trend: Vec<f64>,
    /// Period-repeating seasonal component (mean/geometric-mean normalized).
    pub seasonal: Vec<f64>,
    /// Remainder.
    pub residual: Vec<f64>,
    /// Fraction of detrended variance explained by the seasonal component
    /// (a "seasonal strength" diagnostic in `[0, 1]`).
    pub seasonal_strength: f64,
}

/// Decomposes `y` with the given integer period.
///
/// Requires at least two full periods of data and `period ≥ 2`.
pub fn seasonal_decompose(
    y: &[f64],
    period: usize,
    model: DecompositionModel,
) -> Result<Decomposition> {
    let n = y.len();
    if period < 2 {
        return Err(TsError::Numerical("period must be at least 2".into()));
    }
    if n < 2 * period {
        return Err(TsError::TooShort {
            needed: 2 * period,
            got: n,
        });
    }
    if model == DecompositionModel::Multiplicative && y.iter().any(|&v| v <= 0.0) {
        return Err(TsError::Numerical(
            "multiplicative decomposition needs positive values".into(),
        ));
    }

    // Centered moving average of window `period` (split ends for even
    // periods, the classical construction).
    let half = period / 2;
    let mut trend = vec![f64::NAN; n];
    for t in half..n - half {
        let mut acc = 0.0;
        if period.is_multiple_of(2) {
            acc += 0.5 * y[t - half] + 0.5 * y[t + half];
            for &v in &y[t - half + 1..t + half] {
                acc += v;
            }
            trend[t] = acc / period as f64;
        } else {
            for &v in &y[t - half..=t + half] {
                acc += v;
            }
            trend[t] = acc / period as f64;
        }
    }

    // Detrend.
    let detrended: Vec<f64> = y
        .iter()
        .zip(&trend)
        .map(|(&v, &tr)| {
            if tr.is_nan() {
                f64::NAN
            } else {
                match model {
                    DecompositionModel::Additive => v - tr,
                    DecompositionModel::Multiplicative => v / tr,
                }
            }
        })
        .collect();

    // Seasonal means per phase.
    let mut phase_sum = vec![0.0; period];
    let mut phase_cnt = vec![0usize; period];
    for (t, &d) in detrended.iter().enumerate() {
        if !d.is_nan() {
            phase_sum[t % period] += d;
            phase_cnt[t % period] += 1;
        }
    }
    let mut phase_mean: Vec<f64> = phase_sum
        .iter()
        .zip(&phase_cnt)
        .map(|(&s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
        .collect();
    // Normalize so the seasonal component is mean-0 (additive) / mean-1
    // (multiplicative).
    let grand = ff_linalg::vector::mean(&phase_mean);
    for p in phase_mean.iter_mut() {
        match model {
            DecompositionModel::Additive => *p -= grand,
            DecompositionModel::Multiplicative => {
                *p /= if grand.abs() > 1e-12 { grand } else { 1.0 }
            }
        }
    }
    let seasonal: Vec<f64> = (0..n).map(|t| phase_mean[t % period]).collect();

    // Residual.
    let residual: Vec<f64> = (0..n)
        .map(|t| {
            if trend[t].is_nan() {
                f64::NAN
            } else {
                match model {
                    DecompositionModel::Additive => y[t] - trend[t] - seasonal[t],
                    DecompositionModel::Multiplicative => {
                        y[t] / (trend[t] * seasonal[t]).max(1e-300)
                    }
                }
            }
        })
        .collect();

    // Seasonal strength: 1 − Var(residual) / Var(detrended), on valid rows.
    let valid: Vec<usize> = (0..n).filter(|&t| !trend[t].is_nan()).collect();
    let de: Vec<f64> = valid.iter().map(|&t| detrended[t]).collect();
    let re: Vec<f64> = valid
        .iter()
        .map(|&t| match model {
            DecompositionModel::Additive => residual[t],
            DecompositionModel::Multiplicative => residual[t] - 1.0,
        })
        .collect();
    let var_de = ff_linalg::vector::variance(&de);
    let var_re = ff_linalg::vector::variance(&re);
    let seasonal_strength = if var_de > 1e-300 {
        (1.0 - var_re / var_de).clamp(0.0, 1.0)
    } else {
        0.0
    };

    Ok(Decomposition {
        trend,
        seasonal,
        residual,
        seasonal_strength,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::TAU;

    fn seasonal_series(n: usize, period: usize, amp: f64, slope: f64) -> Vec<f64> {
        (0..n)
            .map(|t| 10.0 + slope * t as f64 + amp * (TAU * t as f64 / period as f64).sin())
            .collect()
    }

    #[test]
    fn recovers_additive_components() {
        let y = seasonal_series(240, 12, 3.0, 0.05);
        let d = seasonal_decompose(&y, 12, DecompositionModel::Additive).unwrap();
        // Trend slope ≈ 0.05 in the valid interior.
        let t50 = d.trend[50];
        let t150 = d.trend[150];
        assert!(((t150 - t50) / 100.0 - 0.05).abs() < 0.01);
        // Seasonal amplitude ≈ 3.
        let max_season = d.seasonal.iter().cloned().fold(0.0f64, f64::max);
        assert!((max_season - 3.0).abs() < 0.3, "amp {max_season}");
        // Residual is small for this noise-free series.
        let resid_max = d
            .residual
            .iter()
            .filter(|v| !v.is_nan())
            .fold(0.0f64, |m, &v| m.max(v.abs()));
        assert!(resid_max < 0.5, "residual {resid_max}");
        assert!(d.seasonal_strength > 0.95);
    }

    #[test]
    fn multiplicative_model_handles_growing_amplitude() {
        let y: Vec<f64> = (0..240)
            .map(|t| (10.0 + 0.1 * t as f64) * (1.0 + 0.3 * (TAU * t as f64 / 12.0).sin()))
            .collect();
        let d = seasonal_decompose(&y, 12, DecompositionModel::Multiplicative).unwrap();
        // Seasonal factor peaks near 1.3.
        let max_season = d.seasonal.iter().cloned().fold(0.0f64, f64::max);
        assert!((max_season - 1.3).abs() < 0.1, "factor {max_season}");
        assert!(d.seasonal_strength > 0.9);
    }

    #[test]
    fn white_noise_has_low_seasonal_strength() {
        let mut state = 3u64;
        let y: Vec<f64> = (0..300)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                10.0 + ((state >> 33) as f64 / (1u64 << 30) as f64) - 1.0
            })
            .collect();
        let d = seasonal_decompose(&y, 12, DecompositionModel::Additive).unwrap();
        assert!(
            d.seasonal_strength < 0.4,
            "strength {}",
            d.seasonal_strength
        );
    }

    #[test]
    fn edges_are_nan_padded() {
        let y = seasonal_series(60, 12, 2.0, 0.0);
        let d = seasonal_decompose(&y, 12, DecompositionModel::Additive).unwrap();
        assert!(d.trend[0].is_nan());
        assert!(d.trend[59].is_nan());
        assert!(!d.trend[30].is_nan());
    }

    #[test]
    fn input_validation() {
        assert!(seasonal_decompose(&[1.0; 10], 12, DecompositionModel::Additive).is_err());
        assert!(seasonal_decompose(&[1.0; 30], 1, DecompositionModel::Additive).is_err());
        let with_neg: Vec<f64> = (0..60).map(|t| t as f64 - 30.0).collect();
        assert!(seasonal_decompose(&with_neg, 12, DecompositionModel::Multiplicative).is_err());
    }

    #[test]
    fn odd_period_works() {
        let y = seasonal_series(140, 7, 2.0, 0.0);
        let d = seasonal_decompose(&y, 7, DecompositionModel::Additive).unwrap();
        assert!(d.seasonal_strength > 0.9);
    }
}
