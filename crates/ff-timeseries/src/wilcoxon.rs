//! Wilcoxon signed-rank test (§5.2 statistical validation).
//!
//! Compares paired samples: exact null distribution for n ≤ 25 pairs, the
//! normal approximation with tie correction beyond.

use ff_linalg::special::normal_cdf;

/// Result of a two-sided Wilcoxon signed-rank test.
#[derive(Debug, Clone, Copy)]
pub struct WilcoxonResult {
    /// The test statistic `W` (sum of ranks of positive differences,
    /// reported as the *smaller* of W+ and W− to match scipy).
    pub statistic: f64,
    /// Two-sided p-value.
    pub p_value: f64,
    /// Number of non-zero differences actually used.
    pub n_used: usize,
}

/// Two-sided Wilcoxon signed-rank test on paired samples.
///
/// Zero differences are dropped (the standard "wilcox" zero handling).
/// Returns `None` when fewer than 3 non-zero pairs remain.
///
/// # Examples
///
/// ```
/// use ff_timeseries::wilcoxon::wilcoxon_signed_rank;
///
/// // Method A is consistently better (lower) than method B.
/// let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
/// let b = [2.0, 4.0, 6.0, 8.0, 10.0, 12.0];
/// let r = wilcoxon_signed_rank(&a, &b).unwrap();
/// assert!((r.p_value - 0.03125).abs() < 1e-9); // exact small-sample p
/// ```
pub fn wilcoxon_signed_rank(a: &[f64], b: &[f64]) -> Option<WilcoxonResult> {
    assert_eq!(a.len(), b.len(), "paired samples must have equal length");
    let diffs: Vec<f64> = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| x - y)
        .filter(|d| *d != 0.0 && !d.is_nan())
        .collect();
    let n = diffs.len();
    if n < 3 {
        return None;
    }
    // Rank |d| with average ranks for ties.
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&i, &j| diffs[i].abs().total_cmp(&diffs[j].abs()));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && diffs[idx[j + 1]].abs() == diffs[idx[i]].abs() {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for k in i..=j {
            ranks[idx[k]] = avg_rank;
        }
        i = j + 1;
    }
    let w_plus: f64 = diffs
        .iter()
        .zip(&ranks)
        .filter(|(d, _)| **d > 0.0)
        .map(|(_, r)| r)
        .sum();
    let total = n as f64 * (n + 1) as f64 / 2.0;
    let w_minus = total - w_plus;
    let w = w_plus.min(w_minus);

    let has_ties = {
        let mut sorted: Vec<f64> = diffs.iter().map(|d| d.abs()).collect();
        sorted.sort_by(|x, y| x.total_cmp(y));
        sorted.windows(2).any(|p| p[0] == p[1])
    };

    let p_value = if n <= 25 && !has_ties {
        exact_p_value(w, n)
    } else {
        normal_approx_p_value(w, n, &ranks, &diffs)
    };
    Some(WilcoxonResult {
        statistic: w,
        p_value: p_value.clamp(0.0, 1.0),
        n_used: n,
    })
}

/// Exact two-sided p-value by enumerating the null distribution of W with
/// dynamic programming over rank subsets. O(n² (n+1)/2) time and memory —
/// trivial for n ≤ 25.
fn exact_p_value(w: f64, n: usize) -> f64 {
    let max_sum = n * (n + 1) / 2;
    // counts[s] = number of sign assignments with W+ == s.
    let mut counts = vec![0.0f64; max_sum + 1];
    counts[0] = 1.0;
    for rank in 1..=n {
        for s in (rank..=max_sum).rev() {
            counts[s] += counts[s - rank];
        }
    }
    let total: f64 = counts.iter().sum(); // = 2^n
    let w_floor = w.floor() as usize;
    // P(W+ <= w) for the lower tail.
    let lower: f64 = counts[..=w_floor.min(max_sum)].iter().sum::<f64>() / total;
    (2.0 * lower).min(1.0)
}

/// Normal approximation with tie correction and continuity correction.
fn normal_approx_p_value(w: f64, n: usize, ranks: &[f64], diffs: &[f64]) -> f64 {
    let nf = n as f64;
    let mean = nf * (nf + 1.0) / 4.0;
    // Tie correction: subtract Σ(t³ − t)/48 from the variance.
    let mut tie_term = 0.0;
    let mut sorted: Vec<f64> = diffs.iter().map(|d| d.abs()).collect();
    sorted.sort_by(|x, y| x.total_cmp(y));
    let mut i = 0;
    while i < sorted.len() {
        let mut j = i;
        while j + 1 < sorted.len() && sorted[j + 1] == sorted[i] {
            j += 1;
        }
        let t = (j - i + 1) as f64;
        tie_term += t * t * t - t;
        i = j + 1;
    }
    let var = nf * (nf + 1.0) * (2.0 * nf + 1.0) / 24.0 - tie_term / 48.0;
    if var <= 0.0 {
        return 1.0;
    }
    let _ = ranks;
    let z = (w - mean + 0.5) / var.sqrt(); // continuity correction toward the mean
    2.0 * normal_cdf(z.min(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_give_none() {
        let a = [1.0, 2.0, 3.0];
        assert!(wilcoxon_signed_rank(&a, &a).is_none());
    }

    #[test]
    fn clearly_shifted_samples_are_significant() {
        let a: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..12).map(|i| i as f64 + 3.0 + 0.1 * i as f64).collect();
        let r = wilcoxon_signed_rank(&a, &b).unwrap();
        assert!(r.p_value < 0.01, "p={}", r.p_value);
        assert_eq!(r.n_used, 12);
        assert_eq!(r.statistic, 0.0); // all differences negative
    }

    #[test]
    fn symmetric_differences_are_not_significant() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let b = [2.0, 1.0, 4.0, 3.0, 6.0, 5.0, 8.0, 7.0];
        let r = wilcoxon_signed_rank(&a, &b).unwrap();
        assert!(r.p_value > 0.5, "p={}", r.p_value);
    }

    #[test]
    fn exact_matches_known_scipy_value() {
        // scipy.stats.wilcoxon([1,2,3,4,5,6], [2,4,6,8,10,12]) → W=0, p=0.03125.
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = [2.0, 4.0, 6.0, 8.0, 10.0, 12.0];
        let r = wilcoxon_signed_rank(&a, &b).unwrap();
        assert_eq!(r.statistic, 0.0);
        assert!((r.p_value - 0.03125).abs() < 1e-9, "p={}", r.p_value);
    }

    #[test]
    fn large_sample_uses_normal_approximation() {
        let a: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..40).map(|i| i as f64 + 1.0 + (i % 3) as f64).collect();
        let r = wilcoxon_signed_rank(&a, &b).unwrap();
        assert!(r.p_value < 1e-5, "p={}", r.p_value);
    }

    #[test]
    fn zero_differences_are_dropped() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        let b = [1.0, 2.0, 3.0, 8.0, 9.0, 10.0, 11.0];
        let r = wilcoxon_signed_rank(&a, &b).unwrap();
        assert_eq!(r.n_used, 4);
    }

    #[test]
    fn p_value_is_probability() {
        let a = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let b = [2.0, 7.0, 1.0, 8.0, 2.0, 8.0, 1.0, 8.0];
        let r = wilcoxon_signed_rank(&a, &b).unwrap();
        assert!((0.0..=1.0).contains(&r.p_value));
    }
}
