//! Civil-calendar decomposition of unix timestamps.
//!
//! §4.2.1(2) extracts "day of the week, hour of the day, and month of the
//! year" as time features. This module converts unix seconds to those fields
//! without any external date crate, using Howard Hinnant's `civil_from_days`
//! algorithm.

/// Calendar fields of one timestamp (UTC).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CalendarFields {
    /// Year, e.g. 2024.
    pub year: i32,
    /// Month of year, 1–12.
    pub month: u8,
    /// Day of month, 1–31.
    pub day: u8,
    /// Hour of day, 0–23.
    pub hour: u8,
    /// Minute of hour, 0–59.
    pub minute: u8,
    /// Day of week, 0 = Monday … 6 = Sunday.
    pub weekday: u8,
    /// Day of year, 1–366.
    pub day_of_year: u16,
}

/// Converts a count of days since 1970-01-01 to (year, month, day).
fn civil_from_days(z: i64) -> (i32, u8, u8) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u8; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u8; // [1, 12]
    let y = if m <= 2 { y + 1 } else { y };
    (y as i32, m, d)
}

fn is_leap(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

const CUM_DAYS: [u16; 12] = [0, 31, 59, 90, 120, 151, 181, 212, 243, 273, 304, 334];

/// Decomposes a unix timestamp (seconds, UTC) into calendar fields.
pub fn decompose(unix_secs: i64) -> CalendarFields {
    let days = unix_secs.div_euclid(86_400);
    let secs_of_day = unix_secs.rem_euclid(86_400);
    let (year, month, day) = civil_from_days(days);
    // 1970-01-01 was a Thursday; weekday 0 = Monday.
    let weekday = ((days % 7 + 7 + 3) % 7) as u8;
    let mut doy = CUM_DAYS[(month - 1) as usize] + day as u16;
    if month > 2 && is_leap(year) {
        doy += 1;
    }
    CalendarFields {
        year,
        month,
        day,
        hour: (secs_of_day / 3600) as u8,
        minute: (secs_of_day % 3600 / 60) as u8,
        weekday,
        day_of_year: doy,
    }
}

/// The cyclic time features of §4.2.1(2): sin/cos encodings of hour-of-day,
/// day-of-week, and month-of-year. Cyclic encoding avoids the midnight/11pm
/// discontinuity a raw ordinal would create.
pub fn time_features(unix_secs: i64) -> [f64; 6] {
    use std::f64::consts::TAU;
    let c = decompose(unix_secs);
    let hour_angle = TAU * c.hour as f64 / 24.0;
    let wday_angle = TAU * c.weekday as f64 / 7.0;
    let month_angle = TAU * (c.month - 1) as f64 / 12.0;
    [
        hour_angle.sin(),
        hour_angle.cos(),
        wday_angle.sin(),
        wday_angle.cos(),
        month_angle.sin(),
        month_angle.cos(),
    ]
}

/// Names of the [`time_features`] columns, in order.
pub const TIME_FEATURE_NAMES: [&str; 6] = [
    "hour_sin",
    "hour_cos",
    "weekday_sin",
    "weekday_cos",
    "month_sin",
    "month_cos",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_thursday_jan_1_1970() {
        let c = decompose(0);
        assert_eq!((c.year, c.month, c.day), (1970, 1, 1));
        assert_eq!(c.weekday, 3); // Thursday with Monday = 0
        assert_eq!(c.hour, 0);
        assert_eq!(c.day_of_year, 1);
    }

    #[test]
    fn known_date_2024_02_29() {
        // 2024-02-29 12:30:00 UTC = 1709209800.
        let c = decompose(1_709_209_800);
        assert_eq!((c.year, c.month, c.day), (2024, 2, 29));
        assert_eq!(c.hour, 12);
        assert_eq!(c.minute, 30);
        assert_eq!(c.weekday, 3); // Thursday
        assert_eq!(c.day_of_year, 60);
    }

    #[test]
    fn leap_year_day_of_year() {
        // 2024-03-01 = day 61 in a leap year.
        let c = decompose(1_709_251_200);
        assert_eq!((c.month, c.day), (3, 1));
        assert_eq!(c.day_of_year, 61);
    }

    #[test]
    fn negative_timestamps_work() {
        // 1969-12-31 23:00:00 UTC.
        let c = decompose(-3600);
        assert_eq!((c.year, c.month, c.day), (1969, 12, 31));
        assert_eq!(c.hour, 23);
        assert_eq!(c.weekday, 2); // Wednesday
    }

    #[test]
    fn weekday_cycles_over_consecutive_days() {
        for d in 0..14i64 {
            let c = decompose(d * 86_400);
            assert_eq!(c.weekday as i64, (d + 3) % 7);
        }
    }

    #[test]
    fn time_features_are_unit_circle_points() {
        let f = time_features(1_700_000_000);
        for pair in f.chunks(2) {
            let norm = pair[0] * pair[0] + pair[1] * pair[1];
            assert!((norm - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn midnight_and_11pm_are_close_in_feature_space() {
        let midnight = time_features(0); // hour 0
        let eleven_pm = time_features(23 * 3600); // hour 23, same day
        let dist = (midnight[0] - eleven_pm[0]).hypot(midnight[1] - eleven_pm[1]);
        // One hour apart on the 24h circle: chord length 2 sin(π/24) ≈ 0.26.
        assert!(dist < 0.3);
    }
}
