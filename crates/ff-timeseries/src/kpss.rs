//! KPSS stationarity test (Kwiatkowski–Phillips–Schmidt–Shin).
//!
//! Complements the ADF test: ADF's null is a unit root, KPSS's null is
//! stationarity. Using both gives the standard four-quadrant diagnosis
//! (stationary / unit root / trend-stationary / inconclusive) that guides
//! differencing decisions.

use crate::{Result, TsError};

/// Deterministic component under the KPSS null.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KpssRegression {
    /// Level-stationary null (`c`).
    Constant,
    /// Trend-stationary null (`ct`).
    ConstantTrend,
}

/// Result of the KPSS test.
#[derive(Debug, Clone)]
pub struct KpssResult {
    /// The KPSS statistic (larger ⇒ stronger evidence *against*
    /// stationarity).
    pub statistic: f64,
    /// Critical values at 1%, 5%, 10%.
    pub critical: [f64; 3],
    /// True when the stationarity null is *not* rejected at 5%.
    pub stationary: bool,
    /// Newey–West bandwidth used for the long-run variance.
    pub lags: usize,
}

fn critical_values(reg: KpssRegression) -> [f64; 3] {
    match reg {
        KpssRegression::Constant => [0.739, 0.463, 0.347],
        KpssRegression::ConstantTrend => [0.216, 0.146, 0.119],
    }
}

/// KPSS test with the Newey–West automatic bandwidth
/// `⌊4 (n/100)^{1/4}⌋` and Bartlett-kernel long-run variance.
pub fn kpss_test(y: &[f64], reg: KpssRegression) -> Result<KpssResult> {
    let n = y.len();
    if n < 12 {
        return Err(TsError::TooShort { needed: 12, got: n });
    }
    // Residuals from the deterministic component.
    let resid: Vec<f64> = match reg {
        KpssRegression::Constant => {
            let mean = ff_linalg::vector::mean(y);
            y.iter().map(|&v| v - mean).collect()
        }
        KpssRegression::ConstantTrend => {
            // OLS on [1, t].
            let x = ff_linalg::Matrix::from_fn(n, 2, |i, j| if j == 0 { 1.0 } else { i as f64 });
            let beta =
                ff_linalg::solve::ols(&x, y).map_err(|e| TsError::Numerical(e.to_string()))?;
            y.iter()
                .enumerate()
                .map(|(t, &v)| v - beta[0] - beta[1] * t as f64)
                .collect()
        }
    };
    // Partial sums.
    let mut s = 0.0;
    let mut sum_s2 = 0.0;
    for &e in &resid {
        s += e;
        sum_s2 += s * s;
    }
    // Long-run variance with Bartlett weights.
    let lags = (4.0 * (n as f64 / 100.0).powf(0.25)).floor() as usize;
    let mut lrv: f64 = resid.iter().map(|e| e * e).sum::<f64>() / n as f64;
    for l in 1..=lags.min(n - 1) {
        let w = 1.0 - l as f64 / (lags + 1) as f64;
        let gamma: f64 = (l..n).map(|t| resid[t] * resid[t - l]).sum::<f64>() / n as f64;
        lrv += 2.0 * w * gamma;
    }
    if lrv <= 0.0 {
        return Err(TsError::Numerical("non-positive long-run variance".into()));
    }
    let statistic = sum_s2 / (n as f64 * n as f64 * lrv);
    let critical = critical_values(reg);
    Ok(KpssResult {
        statistic,
        critical,
        stationary: statistic < critical[1],
        lags,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg_noise(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 30) as f64) - 1.0
            })
            .collect()
    }

    #[test]
    fn white_noise_passes_kpss() {
        let y = lcg_noise(500, 3);
        let r = kpss_test(&y, KpssRegression::Constant).unwrap();
        assert!(r.stationary, "stat {} crit {:?}", r.statistic, r.critical);
    }

    #[test]
    fn random_walk_fails_kpss() {
        let noise = lcg_noise(500, 5);
        let mut y = vec![0.0];
        for e in noise {
            y.push(y.last().unwrap() + e);
        }
        let r = kpss_test(&y, KpssRegression::Constant).unwrap();
        assert!(!r.stationary, "stat {}", r.statistic);
        assert!(r.statistic > r.critical[0], "should reject even at 1%");
    }

    #[test]
    fn deterministic_trend_is_trend_stationary() {
        let noise = lcg_noise(400, 7);
        let y: Vec<f64> = noise
            .iter()
            .enumerate()
            .map(|(t, e)| 0.05 * t as f64 + e)
            .collect();
        // Level-KPSS rejects (there is a trend)…
        let level = kpss_test(&y, KpssRegression::Constant).unwrap();
        assert!(!level.stationary);
        // …but trend-KPSS does not (stationary around the trend).
        let trend = kpss_test(&y, KpssRegression::ConstantTrend).unwrap();
        assert!(trend.stationary, "stat {}", trend.statistic);
    }

    #[test]
    fn agrees_with_adf_on_clear_cases() {
        use crate::stationarity;
        let y = lcg_noise(400, 11);
        let adf = stationarity::is_stationary(&y);
        let kpss = kpss_test(&y, KpssRegression::Constant).unwrap().stationary;
        assert!(adf && kpss, "both tests should call white noise stationary");
    }

    #[test]
    fn too_short_errors() {
        assert!(matches!(
            kpss_test(&[1.0; 5], KpssRegression::Constant),
            Err(TsError::TooShort { .. })
        ));
    }
}
