//! Seasonality detection via the FFT periodogram.
//!
//! Table 1 needs "Detected seasonality components" and "Periods of
//! seasonality components"; §4.2.1(4) extracts the top-N seasonal components
//! using a *weighted periodogram across all clients*.

use ff_linalg::fft;

/// One detected seasonal component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Seasonality {
    /// Period in samples (1/frequency).
    pub period: f64,
    /// Periodogram power at the peak.
    pub power: f64,
}

/// Detects seasonality components as local maxima of the periodogram whose
/// power exceeds `threshold_factor` × the median power. Returns at most
/// `max_components`, strongest first.
pub fn detect_seasonality(
    x: &[f64],
    max_components: usize,
    threshold_factor: f64,
) -> Vec<Seasonality> {
    let (freqs, power) = fft::periodogram(x);
    peaks_from_spectrum(&freqs, &power, max_components, threshold_factor, x.len())
}

/// Shared peak-picking over a (frequency, power) spectrum.
fn peaks_from_spectrum(
    freqs: &[f64],
    power: &[f64],
    max_components: usize,
    threshold_factor: f64,
    n_samples: usize,
) -> Vec<Seasonality> {
    if power.len() < 3 {
        return Vec::new();
    }
    let mut sorted = power.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let median = sorted[sorted.len() / 2];
    let threshold = threshold_factor * median.max(1e-300);
    let mut candidates: Vec<Seasonality> = Vec::new();
    for i in 1..power.len() - 1 {
        if power[i] > power[i - 1] && power[i] >= power[i + 1] && power[i] > threshold {
            let period = 1.0 / freqs[i];
            // Periods longer than half the sample are indistinguishable from trend.
            if period <= n_samples as f64 / 2.0 && period >= 2.0 {
                candidates.push(Seasonality {
                    period,
                    power: power[i],
                });
            }
        }
    }
    candidates.sort_by(|a, b| b.power.total_cmp(&a.power));
    dedup_harmonics(&mut candidates);
    candidates.truncate(max_components);
    candidates
}

/// Removes components whose period is within 5% of an already-kept stronger
/// component (spectral leakage produces clusters of near-identical peaks).
fn dedup_harmonics(cands: &mut Vec<Seasonality>) {
    let mut kept: Vec<Seasonality> = Vec::new();
    for c in cands.iter() {
        if kept
            .iter()
            .all(|k| (k.period - c.period).abs() / k.period > 0.05)
        {
            kept.push(*c);
        }
    }
    *cands = kept;
}

/// Number of points on the shared log-period spectral grid used by the
/// federated weighted-periodogram protocol.
pub const SPECTRAL_GRID_LEN: usize = 256;

/// The shared log-spaced period grid from 2 samples up to `max_period`.
pub fn log_period_grid(max_period: f64) -> Vec<f64> {
    let max_period = max_period.max(4.0);
    let log_lo = 2.0f64.ln();
    let log_hi = max_period.ln();
    (0..SPECTRAL_GRID_LEN)
        .map(|i| (log_lo + (log_hi - log_lo) * i as f64 / (SPECTRAL_GRID_LEN - 1) as f64).exp())
        .collect()
}

/// One client's periodogram resampled onto the shared period grid and
/// normalized to unit total power. This is the anonymized spectral summary
/// a client shares with the server (no raw samples).
pub fn spectrum_on_grid(values: &[f64], grid_periods: &[f64]) -> Vec<f64> {
    let (freqs, power) = fft::periodogram(values);
    if freqs.is_empty() {
        return vec![0.0; grid_periods.len()];
    }
    let total: f64 = power.iter().sum::<f64>().max(1e-300);
    grid_periods
        .iter()
        .map(|&p| interp_spectrum(&freqs, &power, 1.0 / p) / total)
        .collect()
}

/// Server-side peak picking over a (weight-)aggregated grid spectrum.
/// `longest` is the longest client length (bounds credible periods).
pub fn peaks_on_grid(
    grid_periods: &[f64],
    agg_power: &[f64],
    max_components: usize,
    threshold_factor: f64,
    longest: usize,
) -> Vec<Seasonality> {
    // The grid is ordered by increasing period = decreasing frequency; peak
    // picking expects increasing frequency, so reverse both.
    let mut fs: Vec<f64> = grid_periods.iter().map(|p| 1.0 / p).collect();
    let mut ps = agg_power.to_vec();
    fs.reverse();
    ps.reverse();
    peaks_from_spectrum(&fs, &ps, max_components, threshold_factor, longest)
}

/// The §4.2.1(4) *weighted periodogram*: per-client periodograms are
/// interpolated onto a common frequency grid and averaged with the given
/// weights (typically `|D_j| / |D|`), then peaks are picked from the
/// aggregate spectrum. This lets all clients agree on a shared set of
/// seasonal components without sharing raw data.
pub fn weighted_seasonality(
    clients: &[&[f64]],
    weights: &[f64],
    max_components: usize,
    threshold_factor: f64,
) -> Vec<Seasonality> {
    assert_eq!(clients.len(), weights.len());
    if clients.is_empty() {
        return Vec::new();
    }
    let longest = clients.iter().map(|c| c.len()).max().unwrap_or(0);
    if longest < 8 {
        return Vec::new();
    }
    let periods = log_period_grid(longest as f64 / 2.0);
    let mut agg_power = vec![0.0; periods.len()];
    let wsum: f64 = weights.iter().sum::<f64>().max(1e-300);
    // Per-client FFTs run on the ff-par pool; the weighted accumulation
    // stays sequential in client order, so the aggregate spectrum is
    // bit-identical at every thread count.
    let specs = ff_par::par_map_indexed(clients, |_, client| spectrum_on_grid(client, &periods));
    for (spec, &w) in specs.iter().zip(weights) {
        for (a, s) in agg_power.iter_mut().zip(spec) {
            *a += w / wsum * s;
        }
    }
    peaks_on_grid(
        &periods,
        &agg_power,
        max_components,
        threshold_factor,
        longest,
    )
}

/// Linear interpolation of a spectrum at frequency `f` (0 outside range).
fn interp_spectrum(freqs: &[f64], power: &[f64], f: f64) -> f64 {
    if freqs.is_empty() || f < freqs[0] || f > *freqs.last().unwrap() {
        return 0.0;
    }
    match freqs.binary_search_by(|x| x.total_cmp(&f)) {
        Ok(i) => power[i],
        Err(i) => {
            let (f0, f1) = (freqs[i - 1], freqs[i]);
            let w = (f - f0) / (f1 - f0);
            power[i - 1] * (1.0 - w) + power[i] * w
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn sine(period: f64, n: usize, amp: f64) -> Vec<f64> {
        (0..n)
            .map(|t| amp * (2.0 * PI * t as f64 / period).sin())
            .collect()
    }

    #[test]
    fn single_seasonality_detected() {
        let x = sine(16.0, 512, 1.0);
        let s = detect_seasonality(&x, 3, 5.0);
        assert!(!s.is_empty());
        assert!((s[0].period - 16.0).abs() < 1.0, "period={}", s[0].period);
    }

    #[test]
    fn two_components_ranked_by_power() {
        let a = sine(8.0, 1024, 2.0);
        let b = sine(64.0, 1024, 1.0);
        let x: Vec<f64> = a.iter().zip(&b).map(|(p, q)| p + q).collect();
        let s = detect_seasonality(&x, 4, 5.0);
        assert!(s.len() >= 2, "components: {s:?}");
        assert!((s[0].period - 8.0).abs() < 0.5);
        assert!((s[1].period - 64.0).abs() < 4.0);
        assert!(s[0].power > s[1].power);
    }

    #[test]
    fn noise_yields_few_or_no_components() {
        let mut state = 9u64;
        let x: Vec<f64> = (0..512)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 33) as f64 / (1u64 << 30) as f64) - 1.0
            })
            .collect();
        let s = detect_seasonality(&x, 5, 20.0);
        assert!(
            s.len() <= 2,
            "white noise should have few strong peaks: {s:?}"
        );
    }

    #[test]
    fn short_input_is_empty() {
        assert!(detect_seasonality(&[1.0, 2.0, 3.0], 3, 5.0).is_empty());
    }

    #[test]
    fn weighted_periodogram_finds_shared_period() {
        // Three clients observe the same period-12 cycle with phase shifts.
        let clients: Vec<Vec<f64>> = (0..3)
            .map(|c| {
                (0..512)
                    .map(|t| (2.0 * PI * (t as f64 + 30.0 * c as f64) / 12.0).sin())
                    .collect()
            })
            .collect();
        let refs: Vec<&[f64]> = clients.iter().map(|c| c.as_slice()).collect();
        let s = weighted_seasonality(&refs, &[1.0, 1.0, 1.0], 3, 5.0);
        assert!(!s.is_empty());
        assert!((s[0].period - 12.0).abs() < 1.0, "period={}", s[0].period);
    }

    #[test]
    fn weighted_periodogram_weights_matter() {
        // Heavy client has period 10, light client period 50; the top
        // component should come from the heavy client.
        let heavy = sine(10.0, 512, 1.0);
        let light = sine(50.0, 512, 1.0);
        let s = weighted_seasonality(&[&heavy, &light], &[0.95, 0.05], 1, 2.0);
        assert!(!s.is_empty());
        assert!((s[0].period - 10.0).abs() < 1.0, "period={}", s[0].period);
    }

    #[test]
    fn weighted_seasonality_is_thread_count_invariant() {
        let clients: Vec<Vec<f64>> = (0..5)
            .map(|c| {
                (0..256)
                    .map(|t| (2.0 * PI * t as f64 / (10.0 + c as f64)).sin())
                    .collect()
            })
            .collect();
        let refs: Vec<&[f64]> = clients.iter().map(|c| c.as_slice()).collect();
        let w = [1.0, 2.0, 3.0, 4.0, 5.0];
        let seq = ff_par::with_threads(1, || weighted_seasonality(&refs, &w, 3, 2.0));
        for &threads in &[2usize, 8] {
            let par = ff_par::with_threads(threads, || weighted_seasonality(&refs, &w, 3, 2.0));
            assert_eq!(par.len(), seq.len(), "threads={threads}");
            for (a, b) in par.iter().zip(&seq) {
                assert_eq!(a.period.to_bits(), b.period.to_bits());
                assert_eq!(a.power.to_bits(), b.power.to_bits());
            }
        }
    }

    #[test]
    fn harmonic_dedup_keeps_distinct_periods() {
        let mut cands = vec![
            Seasonality {
                period: 12.0,
                power: 10.0,
            },
            Seasonality {
                period: 12.3,
                power: 8.0,
            },
            Seasonality {
                period: 24.0,
                power: 5.0,
            },
        ];
        dedup_harmonics(&mut cands);
        assert_eq!(cands.len(), 2);
        assert_eq!(cands[1].period, 24.0);
    }
}
