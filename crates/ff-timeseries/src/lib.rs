//! Univariate time-series substrate for FedForecaster.
//!
//! The paper's pipeline consumes a rich set of time-series statistics
//! (Table 1 meta-features) and transformations (§4.2 feature engineering).
//! This crate provides all of them from scratch:
//!
//! - [`series::TimeSeries`]: the core container (timestamps + values, with
//!   NaN marking missing observations) including time-ordered train/valid
//!   splitting and federated client splitting.
//! - [`interpolate`]: linear interpolation of missing-value gaps (§4.2).
//! - [`stats`]: moments (skewness, kurtosis), histograms, entropy, and
//!   KL divergence between client distributions (Table 1).
//! - [`acf`]: autocorrelation and partial autocorrelation (Durbin–Levinson)
//!   with significant-lag detection (Table 1, lag features).
//! - [`stationarity`]: the Augmented Dickey–Fuller test and differencing
//!   (Table 1 stationarity meta-features, §4.2.1 trend logic).
//! - [`periodogram`]: FFT periodogram, seasonality-component detection, and
//!   the cross-client *weighted periodogram* of §4.2.1(4).
//! - [`fractal`]: Higuchi fractal dimension (Table 1).
//! - [`trend`]: simplified Prophet — piecewise-linear changepoint trend and
//!   logistic growth trend (§4.2.1(1)).
//! - [`calendar`]: civil-calendar decomposition of unix timestamps for the
//!   time features of §4.2.1(2).
//! - [`synthesis`]: configurable synthetic series generation (used by the
//!   knowledge base of §4.1.1 and the dataset simulators).
//! - [`wilcoxon`]: the Wilcoxon signed-rank test used in §5.2.

pub mod acf;
pub mod calendar;
pub mod decompose;
pub mod fractal;
pub mod interpolate;
pub mod kpss;
pub mod periodogram;
pub mod series;
pub mod stationarity;
pub mod stats;
pub mod synthesis;
pub mod trend;
pub mod wilcoxon;
pub mod windowing;

pub use series::TimeSeries;

/// Errors produced by time-series operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TsError {
    /// The operation needs more observations than the series has.
    TooShort {
        /// Minimum length required.
        needed: usize,
        /// Actual length.
        got: usize,
    },
    /// Timestamps are not strictly increasing.
    UnsortedTimestamps,
    /// Timestamps and values have different lengths.
    LengthMismatch,
    /// A numeric routine failed to converge or produced non-finite values.
    Numerical(String),
}

impl std::fmt::Display for TsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TsError::TooShort { needed, got } => {
                write!(f, "series too short: need {needed}, got {got}")
            }
            TsError::UnsortedTimestamps => write!(f, "timestamps must be strictly increasing"),
            TsError::LengthMismatch => write!(f, "timestamps and values must have equal length"),
            TsError::Numerical(msg) => write!(f, "numerical failure: {msg}"),
        }
    }
}

impl std::error::Error for TsError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TsError>;
