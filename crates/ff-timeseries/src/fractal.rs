//! Higuchi fractal dimension (Table 1: "Fractal dimension analysis of
//! target").
//!
//! The Higuchi method estimates the fractal dimension of a curve from the
//! scaling of its average length `L(k)` with the time interval `k`:
//! `L(k) ∝ k^{-D}`, so `D` is the slope of `log L(k)` vs `log(1/k)`.

use ff_linalg::{solve, Matrix};

/// Higuchi fractal dimension with time intervals `k = 1..=k_max`.
///
/// Returns a value typically in `[1, 2]`: ~1.0 for smooth curves, ~1.5 for a
/// random walk, approaching 2.0 for white noise. Returns 1.0 for degenerate
/// inputs (too short or zero variance).
pub fn higuchi_fd(x: &[f64], k_max: usize) -> f64 {
    let n = x.len();
    if n < 10 || k_max < 2 {
        return 1.0;
    }
    let k_max = k_max.min(n / 4).max(2);
    let mut log_k = Vec::with_capacity(k_max);
    let mut log_l = Vec::with_capacity(k_max);
    for k in 1..=k_max {
        let mut lk = 0.0;
        let mut valid = 0usize;
        for m in 0..k {
            // Curve length along the subsampled series x[m], x[m+k], ...
            let count = (n - 1 - m) / k;
            if count < 1 {
                continue;
            }
            let mut length = 0.0;
            for i in 1..=count {
                length += (x[m + i * k] - x[m + (i - 1) * k]).abs();
            }
            // Higuchi normalization factor.
            let norm = (n - 1) as f64 / (count as f64 * k as f64);
            lk += length * norm / k as f64;
            valid += 1;
        }
        if valid == 0 || lk <= 0.0 {
            continue;
        }
        lk /= valid as f64;
        log_k.push((1.0 / k as f64).ln());
        log_l.push(lk.ln());
    }
    if log_k.len() < 2 {
        return 1.0;
    }
    // Slope of log L vs log 1/k.
    let m = Matrix::from_fn(log_k.len(), 2, |i, j| if j == 0 { 1.0 } else { log_k[i] });
    match solve::ols(&m, &log_l) {
        Ok(beta) => beta[1].clamp(0.5, 2.5),
        Err(_) => 1.0,
    }
}

/// Default `k_max` rule used by the meta-feature extractor.
pub fn default_k_max(n: usize) -> usize {
    ((n as f64).log2().floor() as usize).clamp(2, 16)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 30) as f64) - 1.0
            })
            .collect()
    }

    #[test]
    fn straight_line_has_dimension_one() {
        let x: Vec<f64> = (0..500).map(|i| i as f64 * 0.1).collect();
        let d = higuchi_fd(&x, 10);
        assert!((d - 1.0).abs() < 0.05, "line FD={d}");
    }

    #[test]
    fn white_noise_has_dimension_near_two() {
        let x = lcg(4000, 5);
        let d = higuchi_fd(&x, 10);
        assert!(d > 1.8, "white noise FD={d}");
    }

    #[test]
    fn random_walk_has_dimension_near_one_and_a_half() {
        let noise = lcg(4000, 17);
        let mut x = vec![0.0];
        for e in noise {
            x.push(x.last().unwrap() + e);
        }
        let d = higuchi_fd(&x, 10);
        assert!((1.3..1.7).contains(&d), "random walk FD={d}");
    }

    #[test]
    fn smooth_sine_is_close_to_one() {
        let x: Vec<f64> = (0..1000)
            .map(|t| (2.0 * std::f64::consts::PI * t as f64 / 200.0).sin())
            .collect();
        let d = higuchi_fd(&x, 8);
        assert!(d < 1.3, "smooth sine FD={d}");
    }

    #[test]
    fn degenerate_inputs_return_one() {
        assert_eq!(higuchi_fd(&[1.0, 2.0], 8), 1.0);
        assert_eq!(higuchi_fd(&vec![5.0; 100], 8), 1.0);
    }

    #[test]
    fn default_k_max_is_bounded() {
        assert_eq!(default_k_max(4), 2);
        assert!(default_k_max(1 << 30) <= 16);
    }
}
