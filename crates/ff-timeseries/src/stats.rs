//! Moment statistics, histograms, entropy, and KL divergence.
//!
//! These feed the Table 1 meta-features: skewness, kurtosis, the entropy
//! aggregation of target stationarity across clients, and the KL divergence
//! among clients' value distributions.

use ff_linalg::vector;

/// Sample skewness (Fisher–Pearson, adjusted): `g1 · sqrt(n(n-1))/(n-2)`.
/// Returns 0 for degenerate inputs (fewer than 3 points or zero variance).
pub fn skewness(x: &[f64]) -> f64 {
    let n = x.len();
    if n < 3 {
        return 0.0;
    }
    let m = vector::mean(x);
    let (mut m2, mut m3) = (0.0, 0.0);
    for &v in x {
        let d = v - m;
        m2 += d * d;
        m3 += d * d * d;
    }
    m2 /= n as f64;
    m3 /= n as f64;
    if m2 <= 1e-300 {
        return 0.0;
    }
    let g1 = m3 / m2.powf(1.5);
    let nf = n as f64;
    g1 * (nf * (nf - 1.0)).sqrt() / (nf - 2.0)
}

/// Excess kurtosis (`m4/m2² − 3`), population form. Returns 0 for degenerate
/// inputs.
pub fn kurtosis(x: &[f64]) -> f64 {
    let n = x.len();
    if n < 4 {
        return 0.0;
    }
    let m = vector::mean(x);
    let (mut m2, mut m4) = (0.0, 0.0);
    for &v in x {
        let d = v - m;
        let d2 = d * d;
        m2 += d2;
        m4 += d2 * d2;
    }
    m2 /= n as f64;
    m4 /= n as f64;
    if m2 <= 1e-300 {
        return 0.0;
    }
    m4 / (m2 * m2) - 3.0
}

/// A fixed-bin histogram over a shared `[lo, hi]` range, used to compare
/// client distributions on a common support.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Bin probabilities (sum to 1 for non-empty input).
    pub probs: Vec<f64>,
    /// Inclusive lower bound of the support.
    pub lo: f64,
    /// Inclusive upper bound of the support.
    pub hi: f64,
}

impl Histogram {
    /// Builds a histogram of `x` with `bins` equal-width bins over `[lo, hi]`.
    /// Values outside the range are clamped into the edge bins; NaNs are
    /// skipped.
    pub fn new(x: &[f64], bins: usize, lo: f64, hi: f64) -> Histogram {
        assert!(bins > 0, "need at least one bin");
        let mut counts = vec![0.0; bins];
        let width = (hi - lo).max(1e-300);
        let mut total = 0.0;
        for &v in x {
            if v.is_nan() {
                continue;
            }
            let idx = (((v - lo) / width) * bins as f64).floor() as isize;
            let idx = idx.clamp(0, bins as isize - 1) as usize;
            counts[idx] += 1.0;
            total += 1.0;
        }
        if total > 0.0 {
            for c in counts.iter_mut() {
                *c /= total;
            }
        }
        Histogram {
            probs: counts,
            lo,
            hi,
        }
    }
}

/// Shannon entropy (nats) of a discrete distribution; zero-probability bins
/// contribute nothing.
pub fn entropy(probs: &[f64]) -> f64 {
    probs
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| -p * p.ln())
        .sum()
}

/// Shannon entropy of a Bernoulli/indicator sample (e.g. the "is this
/// client's target stationary" flags aggregated across clients, Table 1).
pub fn binary_entropy(flags: &[bool]) -> f64 {
    if flags.is_empty() {
        return 0.0;
    }
    let p = flags.iter().filter(|&&f| f).count() as f64 / flags.len() as f64;
    entropy(&[p, 1.0 - p])
}

/// KL divergence `D(p ‖ q)` in nats, with additive smoothing `eps` so the
/// divergence stays finite when `q` has empty bins.
pub fn kl_divergence(p: &[f64], q: &[f64], eps: f64) -> f64 {
    debug_assert_eq!(p.len(), q.len());
    let norm = |d: &[f64]| -> Vec<f64> {
        let s: f64 = d.iter().map(|v| v + eps).sum();
        d.iter().map(|v| (v + eps) / s).collect()
    };
    let p = norm(p);
    let q = norm(q);
    p.iter()
        .zip(&q)
        .map(|(&pi, &qi)| if pi > 0.0 { pi * (pi / qi).ln() } else { 0.0 })
        .sum()
}

/// Pairwise KL divergences among client samples over a shared histogram
/// support — the "KL Div. among clients' distribution" meta-feature.
///
/// Returns the `D(p_i ‖ p_j)` values for all ordered pairs `i ≠ j`.
pub fn pairwise_client_kl(clients: &[Vec<f64>], bins: usize) -> Vec<f64> {
    let all: Vec<f64> = clients
        .iter()
        .flatten()
        .copied()
        .filter(|v| !v.is_nan())
        .collect();
    if all.is_empty() || clients.len() < 2 {
        return Vec::new();
    }
    let lo = all.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = all.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let hists: Vec<Histogram> = clients
        .iter()
        .map(|c| Histogram::new(c, bins, lo, hi))
        .collect();
    let mut out = Vec::new();
    for (i, hi_) in hists.iter().enumerate() {
        for (j, hj) in hists.iter().enumerate() {
            if i != j {
                out.push(kl_divergence(&hi_.probs, &hj.probs, 1e-9));
            }
        }
    }
    out
}

/// Simple summary of a sample used by the meta-feature aggregators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Sample standard deviation.
    pub std: f64,
    /// Sum.
    pub sum: f64,
}

/// Computes [`Summary`] statistics, skipping NaNs. All-NaN input yields
/// a zeroed summary.
pub fn summary(x: &[f64]) -> Summary {
    let clean: Vec<f64> = x.iter().copied().filter(|v| !v.is_nan()).collect();
    if clean.is_empty() {
        return Summary {
            mean: 0.0,
            min: 0.0,
            max: 0.0,
            std: 0.0,
            sum: 0.0,
        };
    }
    Summary {
        mean: vector::mean(&clean),
        min: clean.iter().cloned().fold(f64::INFINITY, f64::min),
        max: clean.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        std: vector::stddev(&clean),
        sum: clean.iter().sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skewness_symmetric_is_zero() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert!(skewness(&x).abs() < 1e-12);
    }

    #[test]
    fn skewness_right_tail_is_positive() {
        let x = [1.0, 1.0, 1.0, 1.0, 10.0];
        assert!(skewness(&x) > 1.0);
    }

    #[test]
    fn kurtosis_uniformlike_is_negative_normallike_near_zero() {
        // Two-point distribution has kurtosis -2 (minimum possible).
        let x = [0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0];
        assert!((kurtosis(&x) + 2.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_moments_are_zero() {
        assert_eq!(skewness(&[1.0, 1.0, 1.0, 1.0]), 0.0);
        assert_eq!(kurtosis(&[2.0, 2.0, 2.0, 2.0]), 0.0);
        assert_eq!(skewness(&[1.0]), 0.0);
    }

    #[test]
    fn histogram_probabilities_sum_to_one() {
        let h = Histogram::new(&[0.0, 0.5, 1.0, 0.25, f64::NAN], 4, 0.0, 1.0);
        let s: f64 = h.probs.iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
        assert_eq!(h.probs.len(), 4);
    }

    #[test]
    fn histogram_clamps_outliers() {
        let h = Histogram::new(&[-100.0, 100.0], 2, 0.0, 1.0);
        assert!((h.probs[0] - 0.5).abs() < 1e-12);
        assert!((h.probs[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn entropy_uniform_is_log_n() {
        let p = [0.25; 4];
        assert!((entropy(&p) - 4.0f64.ln()).abs() < 1e-12);
        assert_eq!(entropy(&[1.0, 0.0]), 0.0);
    }

    #[test]
    fn binary_entropy_extremes() {
        assert_eq!(binary_entropy(&[true, true]), 0.0);
        assert!((binary_entropy(&[true, false]) - 2.0f64.ln()).abs() < 1e-12);
        assert_eq!(binary_entropy(&[]), 0.0);
    }

    #[test]
    fn kl_zero_for_identical_positive_for_different() {
        let p = [0.5, 0.5];
        let q = [0.9, 0.1];
        assert!(kl_divergence(&p, &p, 1e-9).abs() < 1e-9);
        assert!(kl_divergence(&p, &q, 1e-9) > 0.1);
    }

    #[test]
    fn pairwise_kl_count_and_identical_clients() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let kls = pairwise_client_kl(&[a.clone(), a.clone(), a], 8);
        assert_eq!(kls.len(), 6); // 3 clients → 6 ordered pairs
        assert!(kls.iter().all(|&k| k.abs() < 1e-6));
    }

    #[test]
    fn summary_known_values() {
        let s = summary(&[1.0, 2.0, 3.0, f64::NAN]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.sum, 6.0);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.std - 1.0).abs() < 1e-12);
    }

    #[test]
    fn summary_all_nan_is_zeroed() {
        let s = summary(&[f64::NAN, f64::NAN]);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.sum, 0.0);
    }
}
