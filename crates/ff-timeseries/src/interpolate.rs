//! Linear interpolation of missing-value gaps (§4.2 of the paper:
//! "Initially, linear interpolation is applied to handle any missing value
//! gaps in the time-series data").

use crate::TimeSeries;

/// Fills `NaN` gaps in `values` by linear interpolation between the nearest
/// observed neighbours, weighted by the actual timestamps. Leading/trailing
/// gaps are filled by extending the nearest observed value.
///
/// A series with no observed values at all is left untouched.
pub fn interpolate_linear(series: &mut TimeSeries) {
    let ts: Vec<i64> = series.timestamps().to_vec();
    let values = series.values_mut();
    let n = values.len();
    let first_obs = match values.iter().position(|v| !v.is_nan()) {
        Some(i) => i,
        None => return,
    };
    let last_obs = values.iter().rposition(|v| !v.is_nan()).unwrap();

    // Extend edges.
    let head = values[first_obs];
    for v in values.iter_mut().take(first_obs) {
        *v = head;
    }
    let tail = values[last_obs];
    for v in values.iter_mut().take(n).skip(last_obs + 1) {
        *v = tail;
    }

    // Interior gaps.
    let mut i = first_obs;
    while i < last_obs {
        if !values[i + 1].is_nan() {
            i += 1;
            continue;
        }
        // `i` is observed, find the next observed index `j`.
        let j = (i + 1..=last_obs)
            .find(|&k| !values[k].is_nan())
            .expect("last_obs is observed");
        let (t0, t1) = (ts[i] as f64, ts[j] as f64);
        let (v0, v1) = (values[i], values[j]);
        let span = t1 - t0;
        for (k, vk) in values.iter_mut().enumerate().take(j).skip(i + 1) {
            let w = if span > 0.0 {
                (ts[k] as f64 - t0) / span
            } else {
                0.5
            };
            *vk = v0 + w * (v1 - v0);
        }
        i = j;
    }
}

/// Returns an interpolated copy, leaving the input untouched.
pub fn interpolated(series: &TimeSeries) -> TimeSeries {
    let mut out = series.clone();
    interpolate_linear(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(values: Vec<f64>) -> TimeSeries {
        TimeSeries::with_regular_index(0, 10, values)
    }

    #[test]
    fn interior_gap_is_linear() {
        let mut s = ts(vec![0.0, f64::NAN, f64::NAN, 3.0]);
        interpolate_linear(&mut s);
        assert_eq!(s.values(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn edges_extend_nearest() {
        let mut s = ts(vec![f64::NAN, 2.0, f64::NAN]);
        interpolate_linear(&mut s);
        assert_eq!(s.values(), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn respects_irregular_timestamps() {
        // Gap point sits 1/4 of the way between its neighbours in time.
        let mut s = TimeSeries::new(vec![0, 10, 40], vec![0.0, f64::NAN, 4.0]).unwrap();
        interpolate_linear(&mut s);
        assert!((s.values()[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn all_nan_left_untouched() {
        let mut s = ts(vec![f64::NAN, f64::NAN]);
        interpolate_linear(&mut s);
        assert!(s.values().iter().all(|v| v.is_nan()));
    }

    #[test]
    fn no_gap_is_noop() {
        let mut s = ts(vec![1.0, 2.0, 3.0]);
        let before = s.clone();
        interpolate_linear(&mut s);
        assert_eq!(s, before);
    }

    #[test]
    fn multiple_gaps() {
        let mut s = ts(vec![0.0, f64::NAN, 2.0, f64::NAN, f64::NAN, 5.0]);
        interpolate_linear(&mut s);
        assert_eq!(s.values(), &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
    }
}
