//! Lag-window design matrices for supervised forecasting.
//!
//! One-step-ahead forecasting is cast as tabular regression: each row holds
//! the chosen lagged values of the target and the target is the next
//! observation. Both the knowledge-base labeller and the FedForecaster
//! feature engineering build on this.

use ff_linalg::Matrix;

/// Builds a `(X, y)` pair from a series using the given lag offsets
/// (e.g. `[1, 2, 7]` uses `y[t-1], y[t-2], y[t-7]` to predict `y[t]`).
///
/// Rows start at `max(lags)` so every lag is available. Returns `None` when
/// the series is too short to produce a single row. `NaN` rows (target or
/// any lag) are skipped.
pub fn lag_matrix(values: &[f64], lags: &[usize]) -> Option<(Matrix, Vec<f64>)> {
    if lags.is_empty() || values.is_empty() {
        return None;
    }
    let max_lag = *lags.iter().max().unwrap();
    if max_lag == 0 || values.len() <= max_lag {
        return None;
    }
    let mut rows = Vec::new();
    let mut y = Vec::new();
    for t in max_lag..values.len() {
        if values[t].is_nan() {
            continue;
        }
        let feat: Vec<f64> = lags.iter().map(|&l| values[t - l]).collect();
        if feat.iter().any(|v| v.is_nan()) {
            continue;
        }
        rows.push(feat);
        y.push(values[t]);
    }
    if rows.is_empty() {
        return None;
    }
    let p = lags.len();
    let x = Matrix::from_fn(rows.len(), p, |i, j| rows[i][j]);
    Some((x, y))
}

/// The default lag set when nothing better is known: `1..=max_lag`.
pub fn default_lags(max_lag: usize) -> Vec<usize> {
    (1..=max_lag.max(1)).collect()
}

/// Builds aligned train/validation lag matrices for one-step-ahead
/// evaluation with teacher forcing: validation rows may draw their lags
/// from the tail of the training split (true history), never from model
/// predictions.
///
/// Returns `None` when either side produces no rows.
#[allow(clippy::type_complexity)]
pub fn train_valid_lag_split(
    train: &[f64],
    valid: &[f64],
    lags: &[usize],
) -> Option<(Matrix, Vec<f64>, Matrix, Vec<f64>)> {
    let (xtr, ytr) = lag_matrix(train, lags)?;
    let max_lag = *lags.iter().max()?;
    if train.len() < max_lag {
        return None;
    }
    // Validation rows: context = last max_lag train values ++ valid.
    let mut ctx = train[train.len() - max_lag..].to_vec();
    ctx.extend_from_slice(valid);
    let (xva_full, yva_full) = lag_matrix(&ctx, lags)?;
    // Rows of xva_full start at index max_lag of ctx == first valid point.
    if yva_full.is_empty() {
        return None;
    }
    Some((xtr, ytr, xva_full, yva_full))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_alignment() {
        let v = [10.0, 20.0, 30.0, 40.0, 50.0];
        let (x, y) = lag_matrix(&v, &[1, 2]).unwrap();
        assert_eq!(x.rows(), 3);
        assert_eq!(y, vec![30.0, 40.0, 50.0]);
        // First row: lags of y=30 are y[t-1]=20, y[t-2]=10.
        assert_eq!(x.row(0), &[20.0, 10.0]);
        assert_eq!(x.row(2), &[40.0, 30.0]);
    }

    #[test]
    fn sparse_lags() {
        let v: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let (x, y) = lag_matrix(&v, &[3]).unwrap();
        assert_eq!(x.rows(), 7);
        assert_eq!(y[0], 3.0);
        assert_eq!(x.row(0), &[0.0]);
    }

    #[test]
    fn too_short_returns_none() {
        assert!(lag_matrix(&[1.0, 2.0], &[5]).is_none());
        assert!(lag_matrix(&[], &[1]).is_none());
        assert!(lag_matrix(&[1.0, 2.0, 3.0], &[]).is_none());
        assert!(lag_matrix(&[1.0, 2.0, 3.0], &[0]).is_none());
    }

    #[test]
    fn nan_rows_are_skipped() {
        let v = [1.0, f64::NAN, 3.0, 4.0, 5.0];
        let (x, y) = lag_matrix(&v, &[1, 2]).unwrap();
        // t=2 needs v[1] (NaN) → skipped; t=3 needs v[2],v[1] (NaN) → skipped;
        // t=4 uses v[3], v[2] → kept.
        assert_eq!(x.rows(), 1);
        assert_eq!(y, vec![5.0]);
        assert_eq!(x.row(0), &[4.0, 3.0]);
    }

    #[test]
    fn train_valid_split_uses_true_history() {
        let train: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let valid: Vec<f64> = (10..14).map(|i| i as f64).collect();
        let (xtr, ytr, xva, yva) = train_valid_lag_split(&train, &valid, &[1, 2]).unwrap();
        assert_eq!(ytr.len(), 8);
        assert_eq!(yva, vec![10.0, 11.0, 12.0, 13.0]);
        // First validation row's lags come from the train tail.
        assert_eq!(xva.row(0), &[9.0, 8.0]);
        assert_eq!(xva.row(1), &[10.0, 9.0]);
        assert_eq!(xtr.row(0), &[1.0, 0.0]);
    }

    #[test]
    fn train_valid_split_too_short_is_none() {
        assert!(train_valid_lag_split(&[1.0], &[2.0], &[3]).is_none());
        assert!(train_valid_lag_split(&[1.0, 2.0, 3.0, 4.0], &[], &[1]).is_none());
    }

    #[test]
    fn default_lags_dense() {
        assert_eq!(default_lags(3), vec![1, 2, 3]);
        assert_eq!(default_lags(0), vec![1]);
    }
}
