//! The core [`TimeSeries`] container and split operations.

use crate::{Result, TsError};

/// A univariate time series: strictly increasing unix-second timestamps and
/// one value per timestamp. Missing observations are encoded as `NaN`.
///
/// # Examples
///
/// ```
/// use ff_timeseries::TimeSeries;
///
/// let daily = TimeSeries::with_regular_index(0, 86_400, vec![1.0, 2.0, 3.0, 4.0]);
/// let (train, valid) = daily.train_valid_split(0.25);
/// assert_eq!(train.len(), 3);
/// assert_eq!(valid.values(), &[4.0]);
///
/// // Federated splitting: contiguous time chunks, sizes within one.
/// let clients = daily.split_clients(2);
/// assert_eq!(clients[0].values(), &[1.0, 2.0]);
/// assert_eq!(clients[1].values(), &[3.0, 4.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    timestamps: Vec<i64>,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Builds a series from parallel timestamp/value vectors.
    pub fn new(timestamps: Vec<i64>, values: Vec<f64>) -> Result<Self> {
        if timestamps.len() != values.len() {
            return Err(TsError::LengthMismatch);
        }
        if timestamps.windows(2).any(|w| w[0] >= w[1]) {
            return Err(TsError::UnsortedTimestamps);
        }
        Ok(TimeSeries { timestamps, values })
    }

    /// Builds a series with evenly spaced timestamps starting at `start`
    /// with step `step_secs` (e.g. 86 400 for daily data).
    pub fn with_regular_index(start: i64, step_secs: i64, values: Vec<f64>) -> Self {
        let timestamps = (0..values.len() as i64)
            .map(|i| start + i * step_secs)
            .collect();
        TimeSeries { timestamps, values }
    }

    /// Number of observations (including missing ones).
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the series has no observations.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The timestamp vector.
    #[inline]
    pub fn timestamps(&self) -> &[i64] {
        &self.timestamps
    }

    /// The value vector (missing values are `NaN`).
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the values (used by interpolation).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Values with missing observations dropped.
    pub fn observed(&self) -> Vec<f64> {
        self.values
            .iter()
            .copied()
            .filter(|v| !v.is_nan())
            .collect()
    }

    /// Number of missing (`NaN`) observations.
    pub fn missing_count(&self) -> usize {
        self.values.iter().filter(|v| v.is_nan()).count()
    }

    /// Fraction of observations that are missing, in `[0, 1]`.
    pub fn missing_fraction(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.missing_count() as f64 / self.values.len() as f64
        }
    }

    /// Median timestamp step in seconds — the sampling rate of Table 1.
    /// Returns 0 for series with fewer than two points.
    pub fn sampling_step_secs(&self) -> i64 {
        if self.timestamps.len() < 2 {
            return 0;
        }
        let mut steps: Vec<i64> = self.timestamps.windows(2).map(|w| w[1] - w[0]).collect();
        steps.sort_unstable();
        steps[steps.len() / 2]
    }

    /// Returns the sub-series of positions `[start, end)`.
    ///
    /// # Panics
    /// Panics if `start > end` or `end > len`.
    pub fn slice(&self, start: usize, end: usize) -> TimeSeries {
        TimeSeries {
            timestamps: self.timestamps[start..end].to_vec(),
            values: self.values[start..end].to_vec(),
        }
    }

    /// Time-ordered split: the first `1 - valid_fraction` of observations
    /// become the training split and the remainder the validation split.
    ///
    /// `valid_fraction` is clamped so both splits contain at least one point
    /// (for series of length ≥ 2).
    pub fn train_valid_split(&self, valid_fraction: f64) -> (TimeSeries, TimeSeries) {
        let n = self.len();
        if n < 2 {
            return (self.clone(), TimeSeries::with_regular_index(0, 1, vec![]));
        }
        let frac = valid_fraction.clamp(0.0, 1.0);
        let cut = ((n as f64) * (1.0 - frac)).round() as usize;
        let cut = cut.clamp(1, n - 1);
        (self.slice(0, cut), self.slice(cut, n))
    }

    /// Splits the series into `n_clients` contiguous time-ordered chunks —
    /// the federated "time-series split" of §4.1.1 / §5.1. Earlier chunks get
    /// the remainder observations so sizes differ by at most one.
    pub fn split_clients(&self, n_clients: usize) -> Vec<TimeSeries> {
        assert!(n_clients > 0, "need at least one client");
        let n = self.len();
        let base = n / n_clients;
        let rem = n % n_clients;
        let mut out = Vec::with_capacity(n_clients);
        let mut start = 0;
        for c in 0..n_clients {
            let sz = base + usize::from(c < rem);
            out.push(self.slice(start, start + sz));
            start += sz;
        }
        out
    }

    /// First-order difference of the observed values (`NaN`s propagate).
    pub fn diff(&self) -> Vec<f64> {
        self.values.windows(2).map(|w| w[1] - w[0]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(values: Vec<f64>) -> TimeSeries {
        TimeSeries::with_regular_index(0, 3600, values)
    }

    #[test]
    fn new_validates_inputs() {
        assert_eq!(
            TimeSeries::new(vec![0, 1], vec![1.0]).unwrap_err(),
            TsError::LengthMismatch
        );
        assert_eq!(
            TimeSeries::new(vec![1, 1], vec![1.0, 2.0]).unwrap_err(),
            TsError::UnsortedTimestamps
        );
        assert_eq!(
            TimeSeries::new(vec![2, 1], vec![1.0, 2.0]).unwrap_err(),
            TsError::UnsortedTimestamps
        );
    }

    #[test]
    fn missing_accounting() {
        let s = ts(vec![1.0, f64::NAN, 3.0, f64::NAN]);
        assert_eq!(s.missing_count(), 2);
        assert!((s.missing_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(s.observed(), vec![1.0, 3.0]);
    }

    #[test]
    fn sampling_step_is_median() {
        let s = TimeSeries::new(vec![0, 10, 20, 35, 45], vec![0.0; 5]).unwrap();
        assert_eq!(s.sampling_step_secs(), 10);
        assert_eq!(ts(vec![]).sampling_step_secs(), 0);
    }

    #[test]
    fn train_valid_split_is_time_ordered() {
        let s = ts((0..10).map(|i| i as f64).collect());
        let (tr, va) = s.train_valid_split(0.3);
        assert_eq!(tr.len(), 7);
        assert_eq!(va.len(), 3);
        assert_eq!(tr.values()[6], 6.0);
        assert_eq!(va.values()[0], 7.0);
        assert!(tr.timestamps().last().unwrap() < va.timestamps().first().unwrap());
    }

    #[test]
    fn split_never_produces_empty_side() {
        let s = ts(vec![1.0, 2.0]);
        let (tr, va) = s.train_valid_split(0.99);
        assert_eq!(tr.len(), 1);
        assert_eq!(va.len(), 1);
        let (tr, va) = s.train_valid_split(0.0);
        assert_eq!(tr.len(), 1);
        assert_eq!(va.len(), 1);
    }

    #[test]
    fn split_clients_contiguous_and_complete() {
        let s = ts((0..11).map(|i| i as f64).collect());
        let parts = s.split_clients(3);
        assert_eq!(parts.len(), 3);
        let sizes: Vec<usize> = parts.iter().map(|p| p.len()).collect();
        assert_eq!(sizes, vec![4, 4, 3]);
        let rejoined: Vec<f64> = parts.iter().flat_map(|p| p.values().to_vec()).collect();
        assert_eq!(rejoined, s.values());
    }

    #[test]
    fn diff_basic() {
        let s = ts(vec![1.0, 4.0, 9.0]);
        assert_eq!(s.diff(), vec![3.0, 5.0]);
    }
}
