//! Augmented Dickey–Fuller stationarity test and differencing.
//!
//! Table 1 uses stationarity meta-features at the raw series, the first
//! difference, and the second difference; §4.2.1(1) uses ADF to decide which
//! trend model to fit.

use crate::{Result, TsError};
use ff_linalg::{solve, Matrix};

/// Deterministic-term specification of the ADF regression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdfRegression {
    /// Constant only (`c` in statsmodels).
    Constant,
    /// Constant and linear time trend (`ct`).
    ConstantTrend,
}

/// Result of the ADF test.
#[derive(Debug, Clone)]
pub struct AdfResult {
    /// The Dickey–Fuller t-statistic of the `γ y_{t-1}` coefficient.
    pub statistic: f64,
    /// Number of lagged difference terms included.
    pub lags: usize,
    /// Approximate critical values at 1%, 5%, and 10%.
    pub critical: [f64; 3],
    /// True when the unit-root null is rejected at 5% (series is stationary).
    pub stationary: bool,
}

/// MacKinnon-style asymptotic critical values (large-n approximations, as
/// tabulated by statsmodels for n → ∞).
fn critical_values(reg: AdfRegression) -> [f64; 3] {
    match reg {
        AdfRegression::Constant => [-3.43, -2.86, -2.57],
        AdfRegression::ConstantTrend => [-3.96, -3.41, -3.13],
    }
}

/// Schwert's rule for the maximum lag order: `12 · (n/100)^{1/4}`.
pub fn schwert_max_lag(n: usize) -> usize {
    (12.0 * (n as f64 / 100.0).powf(0.25)).floor() as usize
}

/// Augmented Dickey–Fuller test with a fixed lag order.
///
/// Regresses `Δy_t` on `y_{t-1}`, `lags` lagged differences, and the chosen
/// deterministic terms; the t-statistic of the `y_{t-1}` coefficient is the
/// test statistic. More negative ⇒ stronger evidence of stationarity.
pub fn adf_test_with_lags(y: &[f64], lags: usize, reg: AdfRegression) -> Result<AdfResult> {
    let n = y.len();
    let det_terms = match reg {
        AdfRegression::Constant => 1,
        AdfRegression::ConstantTrend => 2,
    };
    let rows = n.saturating_sub(lags + 1);
    let cols = 1 + lags + det_terms;
    if rows < cols + 4 {
        return Err(TsError::TooShort {
            needed: lags + cols + 5,
            got: n,
        });
    }
    let dy: Vec<f64> = y.windows(2).map(|w| w[1] - w[0]).collect();
    // Row t (t = lags..dy.len()) models dy[t] with regressors:
    //   y[t] (the level lagged once relative to dy[t] = y[t+1]-y[t]),
    //   dy[t-1..t-lags], constant, optional trend.
    let mut x = Matrix::zeros(rows, cols);
    let mut target = Vec::with_capacity(rows);
    for (r, t) in (lags..dy.len()).enumerate() {
        target.push(dy[t]);
        x.set(r, 0, y[t]);
        for j in 1..=lags {
            x.set(r, j, dy[t - j]);
        }
        x.set(r, lags + 1, 1.0);
        if det_terms == 2 {
            x.set(r, lags + 2, (t + 1) as f64);
        }
    }
    let fit = solve::ols_with_stats(&x, &target).map_err(|e| TsError::Numerical(e.to_string()))?;
    let statistic = fit.t_stat(0);
    let critical = critical_values(reg);
    Ok(AdfResult {
        statistic,
        lags,
        critical,
        stationary: statistic < critical[1],
    })
}

/// ADF test with automatic lag selection: tries Schwert's maximum and
/// shrinks until the regression is feasible, picking the lag order with the
/// smallest AIC.
///
/// # Examples
///
/// ```
/// use ff_timeseries::stationarity::{adf_test, AdfRegression};
///
/// // An oscillating (strongly mean-reverting) series is stationary.
/// let y: Vec<f64> = (0..200).map(|t| if t % 2 == 0 { 1.0 } else { -1.0 } * (1.0 + (t as f64 * 0.37).sin())).collect();
/// let result = adf_test(&y, AdfRegression::Constant).unwrap();
/// assert!(result.stationary);
/// ```
pub fn adf_test(y: &[f64], reg: AdfRegression) -> Result<AdfResult> {
    let n = y.len();
    if n < 12 {
        return Err(TsError::TooShort { needed: 12, got: n });
    }
    let max_lag = schwert_max_lag(n).min(n / 4);
    let mut best: Option<(f64, AdfResult)> = None;
    for lags in 0..=max_lag {
        let res = match adf_test_with_lags(y, lags, reg) {
            Ok(r) => r,
            Err(_) => break,
        };
        // AIC needs the RSS: recompute cheaply from a second fit would be
        // wasteful, so fold it into the loop via a lightweight refit.
        let aic = adf_aic(y, lags, reg)?;
        match &best {
            Some((best_aic, _)) if aic >= *best_aic => {}
            _ => best = Some((aic, res)),
        }
    }
    best.map(|(_, r)| r)
        .ok_or_else(|| TsError::Numerical("ADF failed for all lag orders".into()))
}

fn adf_aic(y: &[f64], lags: usize, reg: AdfRegression) -> Result<f64> {
    let det_terms = match reg {
        AdfRegression::Constant => 1,
        AdfRegression::ConstantTrend => 2,
    };
    let n = y.len();
    let rows = n.saturating_sub(lags + 1);
    let cols = 1 + lags + det_terms;
    if rows < cols + 4 {
        return Err(TsError::TooShort {
            needed: lags + cols + 5,
            got: n,
        });
    }
    let dy: Vec<f64> = y.windows(2).map(|w| w[1] - w[0]).collect();
    let mut x = Matrix::zeros(rows, cols);
    let mut target = Vec::with_capacity(rows);
    for (r, t) in (lags..dy.len()).enumerate() {
        target.push(dy[t]);
        x.set(r, 0, y[t]);
        for j in 1..=lags {
            x.set(r, j, dy[t - j]);
        }
        x.set(r, lags + 1, 1.0);
        if det_terms == 2 {
            x.set(r, lags + 2, (t + 1) as f64);
        }
    }
    let fit = solve::ols_with_stats(&x, &target).map_err(|e| TsError::Numerical(e.to_string()))?;
    let sigma2 = (fit.rss / rows as f64).max(1e-300);
    Ok(rows as f64 * sigma2.ln() + 2.0 * cols as f64)
}

/// Convenience: is the series stationary at the 5% level? Series too short
/// to test default to `false` (non-stationary is the safe assumption for
/// trend handling).
pub fn is_stationary(y: &[f64]) -> bool {
    adf_test(y, AdfRegression::Constant)
        .map(|r| r.stationary)
        .unwrap_or(false)
}

/// n-th order difference of a series.
pub fn difference(y: &[f64], order: usize) -> Vec<f64> {
    let mut out = y.to_vec();
    for _ in 0..order {
        if out.len() < 2 {
            return Vec::new();
        }
        out = out.windows(2).map(|w| w[1] - w[0]).collect();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg_noise(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 30) as f64) - 1.0
            })
            .collect()
    }

    #[test]
    fn white_noise_is_stationary() {
        let y = lcg_noise(500, 42);
        let r = adf_test(&y, AdfRegression::Constant).unwrap();
        assert!(
            r.statistic < r.critical[0],
            "white noise should strongly reject unit root, stat={}",
            r.statistic
        );
        assert!(r.stationary);
    }

    #[test]
    fn random_walk_is_not_stationary() {
        let noise = lcg_noise(500, 7);
        let mut y = vec![0.0];
        for e in noise {
            y.push(y.last().unwrap() + e);
        }
        let r = adf_test(&y, AdfRegression::Constant).unwrap();
        assert!(
            r.statistic > r.critical[0],
            "random walk should not reject at 1%, stat={}",
            r.statistic
        );
        assert!(!r.stationary || r.statistic > r.critical[1] - 0.5);
    }

    #[test]
    fn differenced_random_walk_is_stationary() {
        let noise = lcg_noise(400, 11);
        let mut y = vec![0.0];
        for e in noise {
            y.push(y.last().unwrap() + e);
        }
        let d = difference(&y, 1);
        assert!(is_stationary(&d));
    }

    #[test]
    fn ar1_is_stationary() {
        let noise = lcg_noise(600, 3);
        let mut y = vec![0.0];
        for e in noise {
            y.push(0.5 * y.last().unwrap() + e);
        }
        assert!(is_stationary(&y));
    }

    #[test]
    fn trending_series_needs_trend_regression() {
        // Strong deterministic trend + noise: the trend specification should
        // produce a much more negative statistic than implied by a unit root.
        let noise = lcg_noise(400, 99);
        let y: Vec<f64> = noise
            .iter()
            .enumerate()
            .map(|(t, e)| 0.05 * t as f64 + e)
            .collect();
        let r = adf_test(&y, AdfRegression::ConstantTrend).unwrap();
        assert!(
            r.stationary,
            "trend-stationary series, stat={}",
            r.statistic
        );
    }

    #[test]
    fn too_short_errors() {
        assert!(matches!(
            adf_test(&[1.0, 2.0, 3.0], AdfRegression::Constant),
            Err(TsError::TooShort { .. })
        ));
    }

    #[test]
    fn difference_orders() {
        let y = [1.0, 4.0, 9.0, 16.0];
        assert_eq!(difference(&y, 1), vec![3.0, 5.0, 7.0]);
        assert_eq!(difference(&y, 2), vec![2.0, 2.0]);
        assert_eq!(difference(&y, 4), Vec::<f64>::new());
    }

    #[test]
    fn schwert_rule() {
        assert_eq!(schwert_max_lag(100), 12);
        assert_eq!(schwert_max_lag(1600), 24);
    }
}
