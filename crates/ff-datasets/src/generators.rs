//! Domain-shaped stochastic generators for the evaluation datasets.

use ff_timeseries::synthesis::gaussian;
use ff_timeseries::TimeSeries;
use rand::rngs::StdRng;
use rand::SeedableRng;

const DAY: i64 = 86_400;
const START: i64 = 1_262_304_000; // 2010-01-01

/// FX-rate-like series (BOE-XUDLERD): a slow geometric random walk around
/// 1.0 with tiny daily moves and occasional intervention spikes — the
/// paper reports MSEs of order 1e-3 and a HuberRegressor win, so the
/// outliers matter.
pub fn fx_rate(n: usize, seed: u64) -> TimeSeries {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut level: f64 = 1.1;
    let values = (0..n)
        .map(|_| {
            level *= 1.0 + 0.002 * gaussian(&mut rng);
            // Gentle mean reversion keeps the rate in a realistic band.
            level += 0.0005 * (1.1 - level);
            // Rare central-bank interventions: sharp one-day displacements.
            if rng_next(&mut rng) < 0.008 {
                level += 0.02 * gaussian(&mut rng);
            }
            level
        })
        .collect();
    TimeSeries::with_regular_index(START, DAY, values)
}

/// Daily sunspot counts: ~11-year solar cycle, non-negative, noisy, with
/// amplitude modulation across cycles.
pub fn sunspots(n: usize, seed: u64) -> TimeSeries {
    let mut rng = StdRng::seed_from_u64(seed);
    let cycle = 11.0 * 365.25;
    let values = (0..n)
        .map(|t| {
            let phase = std::f64::consts::TAU * t as f64 / cycle;
            let cycle_idx = (t as f64 / cycle).floor();
            let amp = 80.0 + 30.0 * ((cycle_idx * 2.39).sin());
            let base = amp * (0.5 - 0.5 * (phase).cos()).powf(1.3);
            (base + 12.0 * gaussian(&mut rng) * (1.0 + base / 60.0)).max(0.0)
        })
        .collect();
    TimeSeries::with_regular_index(START, DAY, values)
}

/// Daily US births: strong weekly seasonality (weekend dip), mild yearly
/// cycle, level ≈ 10 000 — the paper reports MSEs of order several hundred.
pub fn us_births(n: usize, seed: u64) -> TimeSeries {
    let mut rng = StdRng::seed_from_u64(seed);
    let values = (0..n)
        .map(|t| {
            let dow = t % 7;
            let weekend_dip = if dow == 5 || dow == 6 { -900.0 } else { 100.0 };
            let yearly = 150.0 * (std::f64::consts::TAU * t as f64 / 365.25).sin();
            10_000.0 + weekend_dip + yearly + 60.0 * gaussian(&mut rng)
        })
        .collect();
    TimeSeries::with_regular_index(START, DAY, values)
}

/// Central-bank policy-rate-like series: long flat regimes with occasional
/// step changes plus tiny noise (Brazil base financial rate).
pub fn policy_rate(n: usize, seed: u64, step_scale: f64) -> TimeSeries {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut level: f64 = 10.0;
    let mut until = 0usize;
    let values = (0..n)
        .map(|t| {
            if t >= until {
                // A new regime every 30–250 days.
                until = t + 30 + (rng_next(&mut rng) * 220.0) as usize;
                level += step_scale * (rng_next(&mut rng) - 0.5) * 2.0;
                level = level.clamp(1.0, 25.0);
            }
            level + 0.01 * gaussian(&mut rng)
        })
        .collect();
    TimeSeries::with_regular_index(START, DAY, values)
}

/// Savings-deposit-rate-like: smooth mean-reverting series.
pub fn deposit_rate(n: usize, seed: u64) -> TimeSeries {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut level: f64 = 6.0;
    let values = (0..n)
        .map(|_| {
            level += 0.05 * (6.0 - level) + 0.08 * gaussian(&mut rng);
            level
        })
        .collect();
    TimeSeries::with_regular_index(START, DAY, values)
}

/// Commodity-price-like (WTI crude): random walk with volatility
/// clustering and occasional heavy-tailed shocks (supply events), level
/// ≈ 60. The outliers reward robust losses (SVR/Huber) over squared-loss
/// fits — mirroring the paper's LinearSVR win on this dataset.
pub fn commodity_price(n: usize, seed: u64) -> TimeSeries {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut level: f64 = 60.0;
    let mut vol: f64 = 1.0;
    let values = (0..n)
        .map(|_| {
            vol = 0.95 * vol + 0.05 * (0.5 + 1.5 * rng_next(&mut rng));
            level += vol * gaussian(&mut rng) + 0.002 * (60.0 - level);
            // ~1% of days: a geopolitical shock with a heavy tail.
            if rng_next(&mut rng) < 0.01 {
                level += 8.0 * gaussian(&mut rng);
            }
            level = level.max(5.0);
            level
        })
        .collect();
    TimeSeries::with_regular_index(START, DAY, values)
}

/// Single-equity GBM with drift (AAPL-like).
pub fn equity_price(n: usize, seed: u64, start_price: f64, drift: f64, vol: f64) -> TimeSeries {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut level = start_price;
    let values = (0..n)
        .map(|_| {
            level *= 1.0 + drift + vol * gaussian(&mut rng);
            level = level.max(0.5);
            level
        })
        .collect();
    TimeSeries::with_regular_index(START, DAY, values)
}

/// A basket of `n_stocks` sector-correlated equities over a shared period —
/// the ETF federations, where each client holds one stock.
///
/// Prices share a common market factor (correlation) plus idiosyncratic
/// moves; `sector_vol` controls the dispersion (utilities < energy < tech)
/// and `crash_rate` the frequency of asymmetric downward jumps (tech-style
/// drawdowns reward median/quantile losses over squared loss).
pub fn etf_basket(
    n_stocks: usize,
    n: usize,
    seed: u64,
    base_price: f64,
    sector_vol: f64,
    crash_rate: f64,
) -> Vec<TimeSeries> {
    let mut market_rng = StdRng::seed_from_u64(seed);
    let market: Vec<f64> = (0..n).map(|_| gaussian(&mut market_rng)).collect();
    (0..n_stocks)
        .map(|s| {
            let mut rng = StdRng::seed_from_u64(seed + 31 * (s as u64 + 1));
            let mut level = base_price * (0.5 + rng_next(&mut rng));
            let beta = 0.6 + 0.8 * rng_next(&mut rng);
            let values = (0..n)
                .map(|t| {
                    let idio = gaussian(&mut rng);
                    level *= 1.0 + sector_vol * (beta * market[t] + 0.7 * idio) + 0.0002;
                    // Asymmetric drawdowns: sudden drops, slow recoveries.
                    if rng_next(&mut rng) < crash_rate {
                        level *= 1.0 - 0.05 - 0.05 * rng_next(&mut rng);
                    }
                    level = level.max(1.0);
                    level
                })
                .collect();
            TimeSeries::with_regular_index(START, DAY, values)
        })
        .collect()
}

fn rng_next(rng: &mut StdRng) -> f64 {
    use rand::Rng;
    rng.gen::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_timeseries::stationarity;

    #[test]
    fn fx_rate_is_small_and_slow() {
        let s = fx_rate(2000, 1);
        let v = s.values();
        assert!(v.iter().all(|&x| (0.5..2.5).contains(&x)), "range");
        // Daily changes are tiny.
        let mean_abs_diff: f64 =
            s.diff().iter().map(|d| d.abs()).sum::<f64>() / (v.len() - 1) as f64;
        assert!(mean_abs_diff < 0.01, "mean |Δ| = {mean_abs_diff}");
    }

    #[test]
    fn sunspots_nonnegative_with_long_cycle() {
        let s = sunspots(12_000, 2);
        assert!(s.values().iter().all(|&v| v >= 0.0));
        let comps = ff_timeseries::periodogram::detect_seasonality(s.values(), 3, 5.0);
        assert!(!comps.is_empty());
        // ~11-year cycle ≈ 4018 days; allow generous tolerance.
        assert!(
            comps[0].period > 2000.0,
            "dominant period {}",
            comps[0].period
        );
    }

    #[test]
    fn births_have_weekly_seasonality() {
        let s = us_births(1500, 3);
        let comps = ff_timeseries::periodogram::detect_seasonality(s.values(), 4, 5.0);
        assert!(
            comps.iter().any(|c| (c.period - 7.0).abs() < 0.5),
            "components {comps:?}"
        );
        let mean = ff_linalg::vector::mean(s.values());
        assert!((9_000.0..11_000.0).contains(&mean));
    }

    #[test]
    fn policy_rate_is_steppy() {
        let s = policy_rate(2000, 4, 1.0);
        // Most days have nearly zero change, occasionally a jump.
        let diffs = s.diff();
        let small = diffs.iter().filter(|d| d.abs() < 0.05).count();
        assert!(small as f64 / diffs.len() as f64 > 0.9);
        assert!(diffs.iter().any(|d| d.abs() > 0.2), "needs jumps");
    }

    #[test]
    fn commodity_price_is_random_walk_like() {
        let s = commodity_price(3000, 5);
        assert!(!stationarity::is_stationary(s.values()));
        assert!(s.values().iter().all(|&v| v > 0.0));
    }

    #[test]
    fn etf_basket_stocks_are_correlated() {
        let basket = etf_basket(5, 1500, 7, 50.0, 0.015, 0.005);
        assert_eq!(basket.len(), 5);
        // Log-return correlation between two stocks should be clearly
        // positive thanks to the shared market factor.
        let rets = |s: &TimeSeries| -> Vec<f64> {
            s.values().windows(2).map(|w| (w[1] / w[0]).ln()).collect()
        };
        let a = rets(&basket[0]);
        let b = rets(&basket[1]);
        let ma = ff_linalg::vector::mean(&a);
        let mb = ff_linalg::vector::mean(&b);
        let cov: f64 = a.iter().zip(&b).map(|(&x, &y)| (x - ma) * (y - mb)).sum();
        let corr = cov
            / (a.iter().map(|x| (x - ma) * (x - ma)).sum::<f64>().sqrt()
                * b.iter().map(|y| (y - mb) * (y - mb)).sum::<f64>().sqrt());
        assert!(corr > 0.2, "market correlation {corr}");
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        assert_eq!(fx_rate(100, 9), fx_rate(100, 9));
        assert_ne!(fx_rate(100, 9), fx_rate(100, 10));
        assert_eq!(
            etf_basket(3, 100, 1, 50.0, 0.01, 0.0),
            etf_basket(3, 100, 1, 50.0, 0.01, 0.0)
        );
    }
}
