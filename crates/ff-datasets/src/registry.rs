//! The Table 3 benchmark registry: names, lengths, client counts, and
//! federated split construction.

use crate::generators;
use ff_timeseries::TimeSeries;

/// How a dataset becomes a federation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitKind {
    /// One long series split into contiguous time chunks (§5.1).
    TimeSplit,
    /// One series per client (the ETF datasets: one stock per client);
    /// consolidation into a single sequence would be misleading, exactly as
    /// the paper notes for N-Beats Cons.
    PerClientSeries,
}

/// One benchmark dataset of Table 3.
#[derive(Debug, Clone)]
pub struct BenchmarkDataset {
    /// Paper's dataset name.
    pub name: &'static str,
    /// Published total length (Table 3 "Len." — per stock for ETFs).
    pub len: usize,
    /// Published client count (Table 3 "Clients").
    pub clients: usize,
    /// Split construction.
    pub split: SplitKind,
    /// The Table 3 "Best Model" column (used as a sanity reference in
    /// EXPERIMENTS.md, not by any algorithm).
    pub paper_best_model: &'static str,
    kind: GeneratorKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GeneratorKind {
    FxRate,
    Sunspots,
    UsBirths,
    PolicyRate,
    PolicyRateSmooth,
    DepositRate1,
    DepositRate2,
    Commodity,
    Equity,
    EtfEnergy,
    EtfTech,
    EtfUtilities,
}

/// The 12 Table 3 datasets with their published lengths and client counts.
pub fn benchmark_datasets() -> Vec<BenchmarkDataset> {
    use GeneratorKind::*;
    vec![
        BenchmarkDataset {
            name: "BOE-XUDLERD",
            len: 15_653,
            clients: 20,
            split: SplitKind::TimeSplit,
            paper_best_model: "HuberRegressor",
            kind: FxRate,
        },
        BenchmarkDataset {
            name: "SunSpotDaily",
            len: 73_924,
            clients: 20,
            split: SplitKind::TimeSplit,
            paper_best_model: "Lasso",
            kind: Sunspots,
        },
        BenchmarkDataset {
            name: "USBirthsDaily",
            len: 7_305,
            clients: 5,
            split: SplitKind::TimeSplit,
            paper_best_model: "LinearSVR",
            kind: UsBirths,
        },
        BenchmarkDataset {
            name: "nasdaq_Brazil_Base_Financial_Rate",
            len: 10_091,
            clients: 10,
            split: SplitKind::TimeSplit,
            paper_best_model: "LinearSVR",
            kind: PolicyRate,
        },
        BenchmarkDataset {
            name: "nasdaq_Brazil_Pr_Base_Financial_Rate",
            len: 10_091,
            clients: 15,
            split: SplitKind::TimeSplit,
            paper_best_model: "HuberRegressor",
            kind: PolicyRateSmooth,
        },
        BenchmarkDataset {
            name: "nasdaq_Brazil_Saving_Deposits1",
            len: 812,
            clients: 5,
            split: SplitKind::TimeSplit,
            paper_best_model: "Lasso",
            kind: DepositRate1,
        },
        BenchmarkDataset {
            name: "nasdaq_Brazil_Saving_Deposits2",
            len: 1_182,
            clients: 10,
            split: SplitKind::TimeSplit,
            paper_best_model: "XGBRegressor",
            kind: DepositRate2,
        },
        BenchmarkDataset {
            name: "nasdaq_EIA_PET_RWTC",
            len: 9_124,
            clients: 5,
            split: SplitKind::TimeSplit,
            paper_best_model: "LinearSVR",
            kind: Commodity,
        },
        BenchmarkDataset {
            name: "nasdaq_WIKI_AAPL_Price",
            len: 9_124,
            clients: 15,
            split: SplitKind::TimeSplit,
            paper_best_model: "LinearSVR",
            kind: Equity,
        },
        BenchmarkDataset {
            name: "Energy Select Sector ETF",
            len: 2_517,
            clients: 10,
            split: SplitKind::PerClientSeries,
            paper_best_model: "Lasso",
            kind: EtfEnergy,
        },
        BenchmarkDataset {
            name: "The Technology Sector ETF",
            len: 2_517,
            clients: 10,
            split: SplitKind::PerClientSeries,
            paper_best_model: "QuantileRegressor",
            kind: EtfTech,
        },
        BenchmarkDataset {
            name: "Utilities Select Sector ETF",
            len: 2_517,
            clients: 10,
            split: SplitKind::PerClientSeries,
            paper_best_model: "HuberRegressor",
            kind: EtfUtilities,
        },
    ]
}

impl BenchmarkDataset {
    /// Generates the federated client splits. `scale ∈ (0, 1]` shrinks the
    /// published lengths proportionally (useful for fast CI runs); the
    /// relative structure (clients, regimes) is preserved. A minimum of 60
    /// points per client is enforced.
    pub fn generate_federation(&self, seed: u64, scale: f64) -> Vec<TimeSeries> {
        let scale = scale.clamp(1e-3, 1.0);
        let n = ((self.len as f64 * scale) as usize).max(self.clients * 60);
        match self.split {
            SplitKind::TimeSplit => self.generate_series(n, seed).split_clients(self.clients),
            SplitKind::PerClientSeries => {
                let per = ((self.len as f64 * scale) as usize).max(60);
                self.generate_basket(per, seed)
            }
        }
    }

    /// The consolidated single series for the "N-Beats Cons." column, when
    /// meaningful (`None` for ETF baskets, mirroring the paper's dashes).
    pub fn generate_consolidated(&self, seed: u64, scale: f64) -> Option<TimeSeries> {
        match self.split {
            SplitKind::TimeSplit => {
                let scale = scale.clamp(1e-3, 1.0);
                let n = ((self.len as f64 * scale) as usize).max(self.clients * 60);
                Some(self.generate_series(n, seed))
            }
            SplitKind::PerClientSeries => None,
        }
    }

    fn generate_series(&self, n: usize, seed: u64) -> TimeSeries {
        use GeneratorKind::*;
        let seed = seed
            .wrapping_mul(1_000_003)
            .wrapping_add(self.name.len() as u64);
        match self.kind {
            FxRate => generators::fx_rate(n, seed),
            Sunspots => generators::sunspots(n, seed),
            UsBirths => generators::us_births(n, seed),
            PolicyRate => generators::policy_rate(n, seed, 1.5),
            PolicyRateSmooth => generators::policy_rate(n, seed, 0.4),
            DepositRate1 => generators::deposit_rate(n, seed),
            DepositRate2 => {
                // The second deposit series has visible nonlinearity —
                // square-ish transform of a mean-reverting walk.
                let base = generators::deposit_rate(n, seed);
                let values: Vec<f64> = base.values().iter().map(|v| 0.1 * v * v).collect();
                TimeSeries::with_regular_index(base.timestamps()[0], 86_400, values)
            }
            Commodity => generators::commodity_price(n, seed),
            Equity => generators::equity_price(n, seed, 30.0, 0.0008, 0.02),
            EtfEnergy | EtfTech | EtfUtilities => unreachable!("basket datasets"),
        }
    }

    fn generate_basket(&self, per: usize, seed: u64) -> Vec<TimeSeries> {
        use GeneratorKind::*;
        let seed = seed
            .wrapping_mul(1_000_003)
            .wrapping_add(self.name.len() as u64);
        match self.kind {
            EtfEnergy => generators::etf_basket(self.clients, per, seed, 40.0, 0.020, 0.004),
            EtfTech => generators::etf_basket(self.clients, per, seed, 80.0, 0.025, 0.015),
            EtfUtilities => generators::etf_basket(self.clients, per, seed, 50.0, 0.008, 0.001),
            _ => unreachable!("time-split datasets"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_table3_row_count_and_metadata() {
        let ds = benchmark_datasets();
        assert_eq!(ds.len(), 12);
        let sun = ds.iter().find(|d| d.name == "SunSpotDaily").unwrap();
        assert_eq!(sun.len, 73_924);
        assert_eq!(sun.clients, 20);
        let etf_count = ds
            .iter()
            .filter(|d| d.split == SplitKind::PerClientSeries)
            .count();
        assert_eq!(etf_count, 3);
    }

    #[test]
    fn federation_has_declared_client_count() {
        for d in benchmark_datasets() {
            let fed = d.generate_federation(1, 0.05);
            assert_eq!(fed.len(), d.clients, "{}", d.name);
            for c in &fed {
                assert!(c.len() >= 60, "{} client too small: {}", d.name, c.len());
            }
        }
    }

    #[test]
    fn full_scale_matches_published_lengths() {
        let ds = benchmark_datasets();
        let births = ds.iter().find(|d| d.name == "USBirthsDaily").unwrap();
        let fed = births.generate_federation(1, 1.0);
        let total: usize = fed.iter().map(|c| c.len()).sum();
        assert_eq!(total, 7_305);
    }

    #[test]
    fn consolidated_exists_only_for_time_splits() {
        for d in benchmark_datasets() {
            let cons = d.generate_consolidated(1, 0.05);
            match d.split {
                SplitKind::TimeSplit => assert!(cons.is_some(), "{}", d.name),
                SplitKind::PerClientSeries => assert!(cons.is_none(), "{}", d.name),
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let d = &benchmark_datasets()[0];
        let a = d.generate_federation(5, 0.05);
        let b = d.generate_federation(5, 0.05);
        assert_eq!(a, b);
        let c = d.generate_federation(6, 0.05);
        assert_ne!(a, c);
    }

    #[test]
    fn etf_clients_share_time_index_but_not_values() {
        let d = benchmark_datasets()
            .into_iter()
            .find(|d| d.name == "The Technology Sector ETF")
            .unwrap();
        let fed = d.generate_federation(2, 0.1);
        assert_eq!(fed[0].timestamps(), fed[1].timestamps());
        assert_ne!(fed[0].values(), fed[1].values());
    }
}
