//! Simulators for the 12 evaluation datasets of Table 3 and their
//! federated splitting.
//!
//! The paper evaluates on Kaggle/Nasdaq data we cannot redistribute;
//! per DESIGN.md §4 each dataset is replaced by a stochastic generator
//! calibrated to its published length, client count, and qualitative
//! character (random-walk FX, 11-year sunspot cycle, weekly/yearly birth
//! seasonality, mean-reverting rates, GBM equity prices with a shared
//! market factor for the ETF federations).

pub mod generators;
pub mod registry;

pub use registry::{benchmark_datasets, BenchmarkDataset, SplitKind};
