//! Property-based tests for the Bayesian-optimization substrate.

use ff_bayesopt::acquisition::{expected_improvement, Acquisition};
use ff_bayesopt::gp::GaussianProcess;
use ff_bayesopt::kernel::Kernel;
use ff_bayesopt::space::{ParamSpec, SearchSpace};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn mixed_space() -> SearchSpace {
    SearchSpace::new()
        .with("a", ParamSpec::Continuous { lo: -2.0, hi: 5.0 })
        .with(
            "b",
            ParamSpec::LogContinuous {
                lo: 1e-4,
                hi: 100.0,
            },
        )
        .with("c", ParamSpec::Integer { lo: 0, hi: 9 })
        .with(
            "d",
            ParamSpec::Categorical {
                options: vec!["x".into(), "y".into(), "z".into()],
            },
        )
}

proptest! {
    #[test]
    fn encode_is_unit_cube_and_decode_roundtrips(seed in 0u64..500) {
        let space = mixed_space();
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = space.sample(&mut rng);
        let z = space.encode(&cfg);
        prop_assert_eq!(z.len(), space.encoded_dim());
        prop_assert!(z.iter().all(|v| (0.0..=1.0).contains(v)));
        let back = space.decode(&z);
        prop_assert!((back["a"].as_f64() - cfg["a"].as_f64()).abs() < 1e-9);
        prop_assert!(
            (back["b"].as_f64().ln() - cfg["b"].as_f64().ln()).abs() < 1e-9
        );
        prop_assert_eq!(back["c"].as_i64(), cfg["c"].as_i64());
        prop_assert_eq!(back["d"].as_str(), cfg["d"].as_str());
    }

    #[test]
    fn gp_posterior_variance_is_nonnegative_everywhere(
        ys in prop::collection::vec(-10.0f64..10.0, 6),
        q in 0.0f64..1.0,
    ) {
        let xs: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64 / 5.0]).collect();
        let gp = GaussianProcess::fit(
            Kernel::Matern52 { length_scale: 0.3, variance: 1.0 },
            1e-6,
            &xs,
            &ys,
        )
        .unwrap();
        let (m, v) = gp.predict(&[q]);
        prop_assert!(v >= 0.0, "negative variance {v}");
        prop_assert!(m.is_finite());
    }

    #[test]
    fn gp_interpolates_within_observed_range(
        ys in prop::collection::vec(-5.0f64..5.0, 5),
    ) {
        let xs: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64 / 4.0]).collect();
        let gp = GaussianProcess::fit(
            Kernel::Rbf { length_scale: 0.4, variance: 1.0 },
            1e-8,
            &xs,
            &ys,
        )
        .unwrap();
        for (x, &y) in xs.iter().zip(&ys) {
            let (m, _) = gp.predict(x);
            prop_assert!((m - y).abs() < 0.05 * (1.0 + y.abs()), "m {m} vs y {y}");
        }
    }

    #[test]
    fn ei_nonnegative_and_monotone_in_best(
        mean in -5.0f64..5.0,
        var in 0.0f64..4.0,
        best in -5.0f64..5.0,
    ) {
        let ei = expected_improvement(mean, var, best, 0.0);
        prop_assert!(ei >= 0.0);
        // A looser incumbent (higher best) can only increase EI.
        let ei_loose = expected_improvement(mean, var, best + 1.0, 0.0);
        prop_assert!(ei_loose >= ei - 1e-12);
    }

    #[test]
    fn lcb_score_is_monotone_in_mean(
        mean in -5.0f64..5.0,
        var in 0.0f64..4.0,
    ) {
        let acq = Acquisition::LowerConfidenceBound { kappa: 1.0 };
        let s1 = acq.score(mean, var, 0.0);
        let s2 = acq.score(mean + 0.5, var, 0.0);
        prop_assert!(s1 >= s2);
    }
}
