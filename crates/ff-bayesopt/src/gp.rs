//! Gaussian-process regression posterior.

use crate::kernel::Kernel;
use crate::{BoError, Result};
use ff_linalg::{cholesky::CholeskyFactor, Matrix};

/// A fitted GP posterior over observed `(x, y)` pairs.
#[derive(Debug, Clone)]
pub struct GaussianProcess {
    kernel: Kernel,
    noise: f64,
    xs: Vec<Vec<f64>>,
    /// α = K⁻¹ (y − μ)
    alpha: Vec<f64>,
    factor: CholeskyFactor,
    y_mean: f64,
    y_std: f64,
}

impl GaussianProcess {
    /// Fits the posterior. `noise` is the observation noise variance added
    /// to the kernel diagonal (on the standardized-target scale).
    pub fn fit(kernel: Kernel, noise: f64, xs: &[Vec<f64>], ys: &[f64]) -> Result<GaussianProcess> {
        if xs.is_empty() || xs.len() != ys.len() {
            return Err(BoError::Numerical(
                "empty or mismatched training set".into(),
            ));
        }
        let n = xs.len();
        // Standardize targets so kernel variance ~1 is well-matched.
        let y_mean = ff_linalg::vector::mean(ys);
        let y_std = ff_linalg::vector::stddev(ys).max(1e-9);
        let ys_n: Vec<f64> = ys.iter().map(|&v| (v - y_mean) / y_std).collect();

        // Kernel entries are pairwise-independent, so the parallel fill is
        // bit-identical to the sequential one at any thread count.
        let mut k = Matrix::from_fn_par(n, n, |i, j| kernel.eval(&xs[i], &xs[j]));
        k.add_diagonal(noise.max(1e-10));
        let factor = CholeskyFactor::new_with_jitter(&k, 1e-8, 10)
            .map_err(|e| BoError::Numerical(e.to_string()))?;
        let alpha = factor
            .solve(&ys_n)
            .map_err(|e| BoError::Numerical(e.to_string()))?;
        Ok(GaussianProcess {
            kernel,
            noise,
            xs: xs.to_vec(),
            alpha,
            factor,
            y_mean,
            y_std,
        })
    }

    /// Fits a Matérn-5/2 GP, selecting the length scale from a small grid by
    /// maximum log marginal likelihood — the standard type-II ML model
    /// selection, replacing hand-tuned heuristics.
    pub fn fit_auto(noise: f64, xs: &[Vec<f64>], ys: &[f64]) -> Result<GaussianProcess> {
        const GRID: [f64; 5] = [0.1, 0.2, 0.4, 0.7, 1.2];
        let mut best: Option<(f64, GaussianProcess)> = None;
        for &length_scale in &GRID {
            let kernel = Kernel::Matern52 {
                length_scale,
                variance: 1.0,
            };
            let gp = match Self::fit(kernel, noise, xs, ys) {
                Ok(gp) => gp,
                Err(_) => continue,
            };
            let lml = gp.log_marginal_likelihood();
            match &best {
                Some((b, _)) if lml <= *b => {}
                _ => best = Some((lml, gp)),
            }
        }
        best.map(|(_, gp)| gp)
            .ok_or_else(|| BoError::Numerical("no length scale factorized".into()))
    }

    /// Log marginal likelihood of the (standardized) training targets:
    /// `−½ yᵀα − Σᵢ log Lᵢᵢ − n/2 log 2π`.
    pub fn log_marginal_likelihood(&self) -> f64 {
        let n = self.xs.len() as f64;
        let ys_n: Vec<f64> = self.alpha.iter().map(|_| 0.0).collect::<Vec<f64>>();
        let _ = ys_n;
        // yᵀ α where y is recoverable as K α; compute via α and the factor:
        // yᵀα = (K α)ᵀ α = αᵀ K α = ‖Lᵀ α‖²? Cheaper: store it — recompute
        // from the identity y = L Lᵀ α.
        let lt_alpha = {
            // Lᵀ α
            let l = self.factor.l();
            let dim = l.rows();
            let mut out = vec![0.0; dim];
            for (i, o) in out.iter_mut().enumerate() {
                for j in i..dim {
                    *o += l.get(j, i) * self.alpha[j];
                }
            }
            out
        };
        let quad: f64 = lt_alpha.iter().map(|v| v * v).sum();
        -0.5 * quad - 0.5 * self.factor.log_det() - 0.5 * n * (2.0 * std::f64::consts::PI).ln()
    }

    /// Posterior mean and variance at `x` (in original target units).
    pub fn predict(&self, x: &[f64]) -> (f64, f64) {
        let kstar: Vec<f64> = self.xs.iter().map(|xi| self.kernel.eval(xi, x)).collect();
        let mean_n = ff_linalg::vector::dot(&kstar, &self.alpha);
        // var = k(x,x) − k*ᵀ K⁻¹ k*.
        let v = self
            .factor
            .solve_lower(&kstar)
            .unwrap_or_else(|_| vec![0.0; kstar.len()]);
        let var_n = (self.kernel.diag() + self.noise - ff_linalg::vector::dot(&v, &v)).max(0.0);
        (
            mean_n * self.y_std + self.y_mean,
            var_n * self.y_std * self.y_std,
        )
    }

    /// Number of training points.
    pub fn n_observations(&self) -> usize {
        self.xs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel() -> Kernel {
        Kernel::Matern52 {
            length_scale: 0.2,
            variance: 1.0,
        }
    }

    #[test]
    fn posterior_interpolates_observations() {
        let xs: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64 / 5.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x[0] * 6.0).sin() * 3.0 + 10.0).collect();
        let gp = GaussianProcess::fit(kernel(), 1e-8, &xs, &ys).unwrap();
        for (x, &y) in xs.iter().zip(&ys) {
            let (m, v) = gp.predict(x);
            assert!((m - y).abs() < 1e-3, "mean {m} vs obs {y}");
            assert!(v < 1e-4, "variance at observation {v}");
        }
    }

    #[test]
    fn variance_grows_away_from_data() {
        let xs = vec![vec![0.0], vec![0.1]];
        let ys = vec![1.0, 2.0];
        let gp = GaussianProcess::fit(kernel(), 1e-6, &xs, &ys).unwrap();
        let (_, v_near) = gp.predict(&[0.05]);
        let (_, v_far) = gp.predict(&[0.9]);
        assert!(v_far > v_near * 5.0, "near {v_near} far {v_far}");
    }

    #[test]
    fn posterior_mean_reverts_to_prior_far_away() {
        let xs = vec![vec![0.0]];
        let ys = vec![100.0];
        let gp = GaussianProcess::fit(kernel(), 1e-6, &xs, &ys).unwrap();
        let (m_far, _) = gp.predict(&[50.0]);
        // Far from data, mean returns toward the (standardized) prior mean,
        // i.e. the observed y mean = 100 here. With one point mean IS 100;
        // use two points to test reversion to their average.
        let xs = vec![vec![0.0], vec![0.05]];
        let ys = vec![90.0, 110.0];
        let gp = GaussianProcess::fit(kernel(), 1e-6, &xs, &ys).unwrap();
        let (m_far2, _) = gp.predict(&[50.0]);
        assert!((m_far2 - 100.0).abs() < 1.0, "far mean {m_far2}");
        let _ = m_far;
    }

    #[test]
    fn noise_smooths_interpolation() {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 / 9.0]).collect();
        let ys: Vec<f64> = (0..10)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let exact = GaussianProcess::fit(kernel(), 1e-8, &xs, &ys).unwrap();
        let noisy = GaussianProcess::fit(kernel(), 1.0, &xs, &ys).unwrap();
        let (m_exact, _) = exact.predict(&xs[0]);
        let (m_noisy, _) = noisy.predict(&xs[0]);
        assert!((m_exact - 1.0).abs() < 0.05);
        assert!(
            m_noisy.abs() < (m_exact - 0.0).abs(),
            "noise should shrink toward mean"
        );
    }

    #[test]
    fn auto_fit_prefers_matching_length_scale() {
        // Smooth function: the marginal likelihood should prefer a longer
        // length scale over a tiny one.
        let xs: Vec<Vec<f64>> = (0..12).map(|i| vec![i as f64 / 11.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x[0] * 3.0).sin()).collect();
        let auto = GaussianProcess::fit_auto(1e-6, &xs, &ys).unwrap();
        let tiny = GaussianProcess::fit(
            Kernel::Matern52 {
                length_scale: 0.01,
                variance: 1.0,
            },
            1e-6,
            &xs,
            &ys,
        )
        .unwrap();
        assert!(auto.log_marginal_likelihood() > tiny.log_marginal_likelihood());
        // Interpolation quality at a midpoint should be decent.
        let (m, _) = auto.predict(&[0.5 / 11.0 + 0.04]);
        assert!(m.is_finite());
    }

    #[test]
    fn log_marginal_likelihood_is_finite_and_ordered() {
        let xs: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64 / 7.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x[0]).collect();
        let good = GaussianProcess::fit(
            Kernel::Matern52 {
                length_scale: 0.5,
                variance: 1.0,
            },
            1e-6,
            &xs,
            &ys,
        )
        .unwrap();
        assert!(good.log_marginal_likelihood().is_finite());
    }

    #[test]
    fn empty_training_set_rejected() {
        assert!(GaussianProcess::fit(kernel(), 1e-6, &[], &[]).is_err());
    }

    #[test]
    fn duplicate_inputs_survive_via_jitter() {
        let xs = vec![vec![0.5], vec![0.5], vec![0.5]];
        let ys = vec![1.0, 1.1, 0.9];
        let gp = GaussianProcess::fit(kernel(), 1e-6, &xs, &ys).unwrap();
        let (m, _) = gp.predict(&[0.5]);
        assert!((m - 1.0).abs() < 0.1);
    }
}
