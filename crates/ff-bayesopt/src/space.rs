//! Mixed hyperparameter search spaces.
//!
//! Table 2's spaces mix log-scaled continuous parameters (`alpha`), linear
//! ranges (`subsample`), integer ranges (`n_estimators`), and categoricals
//! (`selection`). Every parameter is encoded into `[0, 1]` (categoricals
//! one-hot) so the GP kernel sees a homogeneous unit cube.

use rand::Rng;
use std::collections::BTreeMap;

/// Specification of one hyperparameter.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamSpec {
    /// Continuous on a linear scale.
    Continuous {
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound (inclusive).
        hi: f64,
    },
    /// Continuous on a log10 scale (`lo`, `hi` in raw units, both > 0).
    LogContinuous {
        /// Lower bound (inclusive, > 0).
        lo: f64,
        /// Upper bound (inclusive).
        hi: f64,
    },
    /// Integer range (inclusive).
    Integer {
        /// Lower bound.
        lo: i64,
        /// Upper bound.
        hi: i64,
    },
    /// Categorical choice.
    Categorical {
        /// The option names.
        options: Vec<String>,
    },
}

/// A concrete sampled value.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamValue {
    /// A float value (continuous/log parameters).
    Float(f64),
    /// An integer value.
    Int(i64),
    /// A categorical choice by name.
    Cat(String),
}

impl ParamValue {
    /// Float accessor (ints coerce).
    pub fn as_f64(&self) -> f64 {
        match self {
            ParamValue::Float(v) => *v,
            ParamValue::Int(v) => *v as f64,
            ParamValue::Cat(_) => f64::NAN,
        }
    }

    /// Integer accessor (floats round).
    pub fn as_i64(&self) -> i64 {
        match self {
            ParamValue::Float(v) => v.round() as i64,
            ParamValue::Int(v) => *v,
            ParamValue::Cat(_) => 0,
        }
    }

    /// Categorical accessor.
    pub fn as_str(&self) -> &str {
        match self {
            ParamValue::Cat(s) => s,
            _ => "",
        }
    }
}

/// A named configuration: parameter name → value.
pub type Configuration = BTreeMap<String, ParamValue>;

/// Activation guard for a conditional dimension: the guarded parameter is
/// *active* only when the categorical parameter `key` takes one of
/// `options`. Inactive dimensions still exist in every configuration (the
/// CASH convention — sampling and decoding are unconditional, so fallback
/// machinery keeps working), but [`SearchSpace::encode`] masks them to a
/// constant so the surrogate model never attributes loss variation to
/// branches that were not selected.
#[derive(Debug, Clone, PartialEq)]
pub struct Condition {
    key: String,
    options: Vec<String>,
}

impl Condition {
    /// Active when `key` equals any of `options`.
    pub fn any_of(key: impl Into<String>, options: impl IntoIterator<Item = String>) -> Condition {
        Condition {
            key: key.into(),
            options: options.into_iter().collect(),
        }
    }

    /// Active when `key` equals `option`.
    pub fn equals(key: impl Into<String>, option: impl Into<String>) -> Condition {
        Condition {
            key: key.into(),
            options: vec![option.into()],
        }
    }

    /// The controlling parameter name.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// The activating options.
    pub fn options(&self) -> &[String] {
        &self.options
    }

    /// Evaluates the guard against a configuration.
    pub fn holds(&self, config: &Configuration) -> bool {
        config
            .get(&self.key)
            .map(|v| self.options.iter().any(|o| o == v.as_str()))
            .unwrap_or(false)
    }
}

/// An ordered collection of named parameters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SearchSpace {
    params: Vec<(String, ParamSpec)>,
    conds: BTreeMap<String, Condition>,
}

impl SearchSpace {
    /// Creates an empty space.
    pub fn new() -> SearchSpace {
        SearchSpace::default()
    }

    /// Adds a parameter (builder style).
    pub fn with(mut self, name: &str, spec: ParamSpec) -> SearchSpace {
        self.params.push((name.to_string(), spec));
        self
    }

    /// Adds a parameter that is active only under `cond` (structure-
    /// conditional spaces: pipeline-node and per-algorithm dimensions
    /// guarded by the structure/algorithm categoricals).
    pub fn with_conditional(mut self, name: &str, spec: ParamSpec, cond: Condition) -> SearchSpace {
        self.conds.insert(name.to_string(), cond);
        self.params.push((name.to_string(), spec));
        self
    }

    /// The activation guard of a parameter, if it has one.
    pub fn condition(&self, name: &str) -> Option<&Condition> {
        self.conds.get(name)
    }

    /// True when the parameter participates in `config`'s selected
    /// structure (unconditional parameters are always active).
    pub fn is_active(&self, name: &str, config: &Configuration) -> bool {
        self.conds
            .get(name)
            .map(|c| c.holds(config))
            .unwrap_or(true)
    }

    /// Parameter count (before one-hot expansion).
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when no parameters are defined.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// The parameters in declaration order.
    pub fn params(&self) -> &[(String, ParamSpec)] {
        &self.params
    }

    /// Dimension of the encoded `[0,1]^d` representation (categoricals
    /// expand to one dimension per option).
    pub fn encoded_dim(&self) -> usize {
        self.params
            .iter()
            .map(|(_, s)| match s {
                ParamSpec::Categorical { options } => options.len(),
                _ => 1,
            })
            .sum()
    }

    /// Samples a uniform random configuration.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Configuration {
        self.params
            .iter()
            .map(|(name, spec)| {
                let value = match spec {
                    ParamSpec::Continuous { lo, hi } => ParamValue::Float(rng.gen_range(*lo..=*hi)),
                    ParamSpec::LogContinuous { lo, hi } => {
                        let l = lo.log10();
                        let h = hi.log10();
                        ParamValue::Float(10f64.powf(rng.gen_range(l..=h)))
                    }
                    ParamSpec::Integer { lo, hi } => ParamValue::Int(rng.gen_range(*lo..=*hi)),
                    ParamSpec::Categorical { options } => {
                        ParamValue::Cat(options[rng.gen_range(0..options.len())].clone())
                    }
                };
                (name.clone(), value)
            })
            .collect()
    }

    /// Encodes a configuration into `[0, 1]^d`. Dimensions whose
    /// [`Condition`] does not hold are masked to a constant `0.0`
    /// (all-zero one-hot for categoricals), so two configurations that
    /// differ only in an unselected branch encode identically and the
    /// surrogate's kernel sees no phantom distance between them.
    pub fn encode(&self, config: &Configuration) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.encoded_dim());
        for (name, spec) in &self.params {
            if !self.is_active(name, config) {
                let width = match spec {
                    ParamSpec::Categorical { options } => options.len(),
                    _ => 1,
                };
                out.extend(std::iter::repeat_n(0.0, width));
                continue;
            }
            let v = config.get(name);
            match spec {
                ParamSpec::Continuous { lo, hi } => {
                    let x = v.map(|p| p.as_f64()).unwrap_or(*lo);
                    out.push(((x - lo) / (hi - lo).max(1e-300)).clamp(0.0, 1.0));
                }
                ParamSpec::LogContinuous { lo, hi } => {
                    let x = v.map(|p| p.as_f64()).unwrap_or(*lo).max(1e-300);
                    let l = lo.log10();
                    let h = hi.log10();
                    out.push(((x.log10() - l) / (h - l).max(1e-300)).clamp(0.0, 1.0));
                }
                ParamSpec::Integer { lo, hi } => {
                    let x = v.map(|p| p.as_i64()).unwrap_or(*lo) as f64;
                    out.push(((x - *lo as f64) / (*hi - *lo).max(1) as f64).clamp(0.0, 1.0));
                }
                ParamSpec::Categorical { options } => {
                    let choice = v.map(|p| p.as_str()).unwrap_or("");
                    for opt in options {
                        out.push(if opt == choice { 1.0 } else { 0.0 });
                    }
                }
            }
        }
        out
    }

    /// Decodes a point in `[0, 1]^d` back into a configuration (inverse of
    /// [`SearchSpace::encode`] up to integer rounding / categorical argmax).
    pub fn decode(&self, z: &[f64]) -> Configuration {
        let mut out = Configuration::new();
        let mut i = 0;
        for (name, spec) in &self.params {
            match spec {
                ParamSpec::Continuous { lo, hi } => {
                    out.insert(
                        name.clone(),
                        ParamValue::Float(lo + z[i].clamp(0.0, 1.0) * (hi - lo)),
                    );
                    i += 1;
                }
                ParamSpec::LogContinuous { lo, hi } => {
                    let l = lo.log10();
                    let h = hi.log10();
                    out.insert(
                        name.clone(),
                        ParamValue::Float(10f64.powf(l + z[i].clamp(0.0, 1.0) * (h - l))),
                    );
                    i += 1;
                }
                ParamSpec::Integer { lo, hi } => {
                    let v = *lo as f64 + z[i].clamp(0.0, 1.0) * (*hi - *lo) as f64;
                    out.insert(name.clone(), ParamValue::Int(v.round() as i64));
                    i += 1;
                }
                ParamSpec::Categorical { options } => {
                    let slice = &z[i..i + options.len()];
                    let best = ff_linalg::vector::argmax(slice).unwrap_or(0);
                    out.insert(name.clone(), ParamValue::Cat(options[best].clone()));
                    i += options.len();
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> SearchSpace {
        SearchSpace::new()
            .with("alpha", ParamSpec::LogContinuous { lo: 1e-4, hi: 10.0 })
            .with("depth", ParamSpec::Integer { lo: 2, hi: 10 })
            .with(
                "selection",
                ParamSpec::Categorical {
                    options: vec!["cyclic".into(), "random".into()],
                },
            )
            .with("subsample", ParamSpec::Continuous { lo: 0.1, hi: 1.0 })
    }

    #[test]
    fn encoded_dim_counts_one_hot() {
        assert_eq!(space().encoded_dim(), 5);
    }

    #[test]
    fn samples_respect_bounds() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..200 {
            let c = s.sample(&mut rng);
            let alpha = c["alpha"].as_f64();
            assert!((1e-4..=10.0).contains(&alpha));
            let depth = c["depth"].as_i64();
            assert!((2..=10).contains(&depth));
            assert!(["cyclic", "random"].contains(&c["selection"].as_str()));
            let sub = c["subsample"].as_f64();
            assert!((0.1..=1.0).contains(&sub));
        }
    }

    #[test]
    fn log_sampling_covers_decades() {
        let s = SearchSpace::new().with("a", ParamSpec::LogContinuous { lo: 1e-4, hi: 1.0 });
        let mut rng = StdRng::seed_from_u64(1);
        let mut small = 0;
        for _ in 0..500 {
            if s.sample(&mut rng)["a"].as_f64() < 1e-2 {
                small += 1;
            }
        }
        // Log-uniform ⇒ half the samples below the geometric midpoint 1e-2.
        assert!((150..350).contains(&small), "small count {small}");
    }

    #[test]
    fn encode_decode_roundtrip() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let c = s.sample(&mut rng);
            let z = s.encode(&c);
            assert_eq!(z.len(), s.encoded_dim());
            assert!(z.iter().all(|v| (0.0..=1.0).contains(v)));
            let back = s.decode(&z);
            assert!((back["alpha"].as_f64().log10() - c["alpha"].as_f64().log10()).abs() < 1e-9);
            assert_eq!(back["depth"].as_i64(), c["depth"].as_i64());
            assert_eq!(back["selection"].as_str(), c["selection"].as_str());
            assert!((back["subsample"].as_f64() - c["subsample"].as_f64()).abs() < 1e-9);
        }
    }

    #[test]
    fn missing_params_encode_to_lower_bound() {
        let s = space();
        let z = s.encode(&Configuration::new());
        assert_eq!(z[0], 0.0);
        assert_eq!(z[1], 0.0);
    }

    fn conditional_space() -> SearchSpace {
        SearchSpace::new()
            .with(
                "pipeline",
                ParamSpec::Categorical {
                    options: vec!["plain".into(), "trended".into()],
                },
            )
            .with_conditional(
                "degree",
                ParamSpec::Integer { lo: 1, hi: 3 },
                Condition::equals("pipeline", "trended"),
            )
            .with("width", ParamSpec::Continuous { lo: 0.0, hi: 1.0 })
    }

    #[test]
    fn inactive_dimensions_encode_to_constant_zero() {
        let s = conditional_space();
        let mut a = Configuration::new();
        a.insert("pipeline".into(), ParamValue::Cat("plain".into()));
        a.insert("degree".into(), ParamValue::Int(1));
        a.insert("width".into(), ParamValue::Float(0.5));
        let mut b = a.clone();
        b.insert("degree".into(), ParamValue::Int(3));
        // Same selected structure, different unselected-branch value: the
        // encodings must be identical — no phantom kernel distance.
        assert_eq!(s.encode(&a), s.encode(&b));
        assert!(!s.is_active("degree", &a));
        // Selecting the branch re-activates the dimension.
        a.insert("pipeline".into(), ParamValue::Cat("trended".into()));
        assert!(s.is_active("degree", &a));
        assert_ne!(s.encode(&a), s.encode(&b));
    }

    #[test]
    fn conditional_sampling_and_decoding_stay_unconditional() {
        // CASH convention: every dimension is sampled and decoded so warm-
        // start and fallback machinery see complete configurations.
        let s = conditional_space();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let c = s.sample(&mut rng);
            assert!(c.contains_key("degree"));
            let back = s.decode(&s.encode(&c));
            assert!(back.contains_key("degree"));
        }
    }

    #[test]
    fn condition_free_spaces_are_unchanged() {
        let s = space();
        assert!(s.is_active("alpha", &Configuration::new()));
        assert!(s.condition("alpha").is_none());
    }
}
