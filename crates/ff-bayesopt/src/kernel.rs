//! Covariance kernels for the GP surrogate.

/// A stationary covariance kernel over `[0, 1]^d` inputs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Kernel {
    /// Squared-exponential `σ² exp(−r²/(2ℓ²))`.
    Rbf {
        /// Length scale ℓ.
        length_scale: f64,
        /// Signal variance σ².
        variance: f64,
    },
    /// Matérn ν = 5/2: `σ² (1 + √5 r/ℓ + 5r²/(3ℓ²)) exp(−√5 r/ℓ)` — the
    /// standard BO default (twice differentiable but less smooth than RBF).
    Matern52 {
        /// Length scale ℓ.
        length_scale: f64,
        /// Signal variance σ².
        variance: f64,
    },
}

impl Kernel {
    /// Evaluates `k(a, b)`.
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let r2: f64 = a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum();
        match *self {
            Kernel::Rbf {
                length_scale,
                variance,
            } => variance * (-r2 / (2.0 * length_scale * length_scale)).exp(),
            Kernel::Matern52 {
                length_scale,
                variance,
            } => {
                let r = r2.sqrt();
                let s = 5f64.sqrt() * r / length_scale;
                variance * (1.0 + s + s * s / 3.0) * (-s).exp()
            }
        }
    }

    /// Signal variance `k(x, x)`.
    pub fn diag(&self) -> f64 {
        match *self {
            Kernel::Rbf { variance, .. } | Kernel::Matern52 { variance, .. } => variance,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_is_one_at_zero_distance() {
        for k in [
            Kernel::Rbf {
                length_scale: 0.3,
                variance: 1.0,
            },
            Kernel::Matern52 {
                length_scale: 0.3,
                variance: 1.0,
            },
        ] {
            let x = [0.2, 0.7];
            assert!((k.eval(&x, &x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn kernel_decays_with_distance() {
        for k in [
            Kernel::Rbf {
                length_scale: 0.3,
                variance: 2.0,
            },
            Kernel::Matern52 {
                length_scale: 0.3,
                variance: 2.0,
            },
        ] {
            let a = [0.0];
            let near = k.eval(&a, &[0.1]);
            let far = k.eval(&a, &[0.9]);
            assert!(near > far);
            assert!(far > 0.0);
            assert!(near < 2.0 + 1e-12);
        }
    }

    #[test]
    fn kernel_is_symmetric() {
        let k = Kernel::Matern52 {
            length_scale: 0.5,
            variance: 1.3,
        };
        let a = [0.1, 0.9, 0.4];
        let b = [0.7, 0.2, 0.5];
        assert!((k.eval(&a, &b) - k.eval(&b, &a)).abs() < 1e-15);
    }

    #[test]
    fn matern_is_rougher_than_rbf_nearby() {
        // At small distances the Matérn kernel drops off faster than RBF
        // with the same length scale (linear vs quadratic decay).
        let rbf = Kernel::Rbf {
            length_scale: 0.5,
            variance: 1.0,
        };
        let mat = Kernel::Matern52 {
            length_scale: 0.5,
            variance: 1.0,
        };
        let a = [0.0];
        let b = [0.05];
        assert!(mat.eval(&a, &b) < rbf.eval(&a, &b));
    }
}
