//! The ask/tell Bayesian-optimization loop.
//!
//! Algorithm 1 (lines 14–22): the server initializes the optimizer with the
//! meta-model's recommended configurations (warm start), then iteratively
//! asks for the next configuration, evaluates it on the federation, and
//! tells the observed *global* loss back.

use crate::acquisition::Acquisition;
use crate::gp::GaussianProcess;
use crate::space::{Configuration, SearchSpace};
use crate::{BoError, Result};
use ff_trace::Tracer;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Gaussian-process Bayesian optimizer over a [`SearchSpace`]
/// (minimization).
///
/// # Examples
///
/// ```
/// use ff_bayesopt::optimizer::BayesOpt;
/// use ff_bayesopt::space::{ParamSpec, SearchSpace};
///
/// let space = SearchSpace::new().with("x", ParamSpec::Continuous { lo: 0.0, hi: 1.0 });
/// let mut bo = BayesOpt::new(space, 7).unwrap();
/// for _ in 0..15 {
///     let cfg = bo.ask().unwrap();
///     let x = cfg["x"].as_f64();
///     bo.tell(&cfg, (x - 0.3) * (x - 0.3)).unwrap(); // minimize (x-0.3)²
/// }
/// let (_, best_loss) = bo.best().unwrap();
/// assert!(best_loss < 0.05);
/// ```
pub struct BayesOpt {
    space: SearchSpace,
    /// Warm-start configurations evaluated before any model-guided step.
    warm_start: Vec<Configuration>,
    /// Number of purely random configurations if no warm start is given.
    pub n_initial: usize,
    /// Candidate pool size for the acquisition argmax.
    pub n_candidates: usize,
    /// Acquisition function (paper default: EI with xi = 0.01).
    pub acquisition: Acquisition,
    /// GP observation-noise variance.
    pub noise: f64,
    observations: Vec<(Vec<f64>, Configuration, f64)>,
    pending: Option<Configuration>,
    rng: StdRng,
    tracer: Tracer,
}

impl std::fmt::Debug for BayesOpt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BayesOpt")
            .field("observations", &self.observations.len())
            .field("warm_start_remaining", &self.warm_start.len())
            .finish()
    }
}

impl BayesOpt {
    /// Creates an optimizer over the given space.
    pub fn new(space: SearchSpace, seed: u64) -> Result<BayesOpt> {
        if space.is_empty() {
            return Err(BoError::EmptySpace);
        }
        Ok(BayesOpt {
            space,
            warm_start: Vec::new(),
            n_initial: 5,
            n_candidates: 500,
            acquisition: Acquisition::ExpectedImprovement { xi: 0.01 },
            noise: 1e-4,
            observations: Vec::new(),
            pending: None,
            rng: StdRng::seed_from_u64(seed),
            tracer: Tracer::disabled(),
        })
    }

    /// Attaches a tracer: model-guided steps get `gp.fit` / `gp.acquire`
    /// spans and every `tell` bumps the `bo.tells` counter and updates
    /// the `bo.incumbent_loss` gauge.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Queues warm-start configurations (evaluated first, in order) — the
    /// meta-model recommendations of Algorithm 1.
    pub fn warm_start(&mut self, configs: Vec<Configuration>) {
        // Stored reversed so pop() yields them in the given order.
        self.warm_start = configs;
        self.warm_start.reverse();
    }

    /// The search space.
    pub fn space(&self) -> &SearchSpace {
        &self.space
    }

    /// Number of completed observations.
    pub fn n_observations(&self) -> usize {
        self.observations.len()
    }

    /// Asks for the next configuration to evaluate.
    pub fn ask(&mut self) -> Result<Configuration> {
        if let Some(pending) = &self.pending {
            // Re-asking without telling returns the same configuration.
            return Ok(pending.clone());
        }
        let next = if let Some(cfg) = self.warm_start.pop() {
            cfg
        } else if self.observations.len() < self.n_initial {
            self.space.sample(&mut self.rng)
        } else {
            self.model_guided()?
        };
        self.pending = Some(next.clone());
        Ok(next)
    }

    fn model_guided(&mut self) -> Result<Configuration> {
        let xs: Vec<Vec<f64>> = self
            .observations
            .iter()
            .map(|(x, _, _)| x.clone())
            .collect();
        let ys: Vec<f64> = self.observations.iter().map(|(_, _, y)| *y).collect();
        // Length scale by type-II maximum likelihood over a small grid.
        let fit_span = self.tracer.span("gp.fit");
        let fitted = GaussianProcess::fit_auto(self.noise, &xs, &ys);
        drop(fit_span);
        let gp = match fitted {
            Ok(gp) => gp,
            // Numerical trouble: fall back to random search for this step.
            Err(_) => return Ok(self.space.sample(&mut self.rng)),
        };
        let _acquire_span = self.tracer.span("gp.acquire");
        let best = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        // Draw every candidate and its tie-break jitter sequentially first:
        // the RNG stream is consumed in exactly the order the historical
        // one-by-one loop used (sample, jitter, sample, jitter, …), so the
        // chosen configuration does not depend on the thread count.
        let cands: Vec<(Configuration, f64)> = (0..self.n_candidates)
            .map(|_| {
                let cand = self.space.sample(&mut self.rng);
                // Tiny jitter breaks exact ties deterministically via the RNG.
                let jitter = self.rng.gen::<f64>() * 1e-12;
                (cand, jitter)
            })
            .collect();
        // Scoring is pure — batch it on the ff-par pool, then take the
        // earliest maximum, matching the sequential keep-first semantics.
        let space = &self.space;
        let acquisition = &self.acquisition;
        let scores = ff_par::par_map_indexed(&cands, |_, (cand, jitter)| {
            let z = space.encode(cand);
            let (mean, var) = gp.predict(&z);
            acquisition.score(mean, var, best) + jitter
        });
        let mut best_candidate: Option<(f64, usize)> = None;
        for (i, &score) in scores.iter().enumerate() {
            match best_candidate {
                Some((b, _)) if score <= b => {}
                _ => best_candidate = Some((score, i)),
            }
        }
        match best_candidate {
            Some((_, i)) => Ok(cands.into_iter().nth(i).map(|(c, _)| c).unwrap()),
            None => Ok(self.space.sample(&mut self.rng)),
        }
    }

    /// Reports the observed loss for the configuration most recently asked.
    pub fn tell(&mut self, config: &Configuration, loss: f64) -> Result<()> {
        match &self.pending {
            Some(p) if p == config => {}
            _ => {
                return Err(BoError::Protocol(
                    "tell() must follow ask() with the same configuration".into(),
                ))
            }
        }
        self.pending = None;
        let loss = if loss.is_finite() {
            loss
        } else {
            f64::MAX / 1e6
        };
        let z = self.space.encode(config);
        self.observations.push((z, config.clone(), loss));
        if self.tracer.is_enabled() {
            self.tracer.counter_add("bo.tells", 1);
            if let Some((_, incumbent)) = self.best() {
                self.tracer.gauge_set("bo.incumbent_loss", incumbent);
            }
        }
        Ok(())
    }

    /// The best (lowest-loss) observation so far.
    pub fn best(&self) -> Option<(&Configuration, f64)> {
        self.observations
            .iter()
            .min_by(|a, b| a.2.total_cmp(&b.2))
            .map(|(_, c, y)| (c, *y))
    }

    /// All observations as `(config, loss)` pairs, in evaluation order.
    pub fn history(&self) -> Vec<(&Configuration, f64)> {
        self.observations.iter().map(|(_, c, y)| (c, *y)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{ParamSpec, ParamValue};

    fn space_1d() -> SearchSpace {
        SearchSpace::new().with("x", ParamSpec::Continuous { lo: 0.0, hi: 1.0 })
    }

    /// Quadratic bowl with minimum at x = 0.3.
    fn objective(c: &Configuration) -> f64 {
        let x = c["x"].as_f64();
        (x - 0.3) * (x - 0.3)
    }

    #[test]
    fn optimizer_approaches_known_minimum() {
        let mut bo = BayesOpt::new(space_1d(), 7).unwrap();
        for _ in 0..30 {
            let cfg = bo.ask().unwrap();
            let loss = objective(&cfg);
            bo.tell(&cfg, loss).unwrap();
        }
        let (best_cfg, best_loss) = bo.best().unwrap();
        assert!(best_loss < 0.01, "best loss {best_loss}");
        assert!((best_cfg["x"].as_f64() - 0.3).abs() < 0.15);
    }

    #[test]
    fn bo_beats_pure_random_on_average() {
        // Same budget, same seeds: model-guided search should find a better
        // or equal optimum in most runs.
        let mut bo_wins = 0;
        for seed in 0..10u64 {
            let mut bo = BayesOpt::new(space_1d(), seed).unwrap();
            for _ in 0..20 {
                let cfg = bo.ask().unwrap();
                let loss = objective(&cfg);
                bo.tell(&cfg, loss).unwrap();
            }
            let bo_best = bo.best().unwrap().1;

            let mut rng = StdRng::seed_from_u64(seed + 1000);
            let space = space_1d();
            let rs_best = (0..20)
                .map(|_| objective(&space.sample(&mut rng)))
                .fold(f64::INFINITY, f64::min);
            if bo_best <= rs_best + 1e-9 {
                bo_wins += 1;
            }
        }
        assert!(bo_wins >= 6, "BO won only {bo_wins}/10 runs");
    }

    #[test]
    fn warm_start_is_evaluated_first_in_order() {
        let mut bo = BayesOpt::new(space_1d(), 0).unwrap();
        let mut c1 = Configuration::new();
        c1.insert("x".into(), ParamValue::Float(0.11));
        let mut c2 = Configuration::new();
        c2.insert("x".into(), ParamValue::Float(0.22));
        bo.warm_start(vec![c1.clone(), c2.clone()]);
        let a1 = bo.ask().unwrap();
        assert_eq!(a1, c1);
        bo.tell(&a1, 1.0).unwrap();
        let a2 = bo.ask().unwrap();
        assert_eq!(a2, c2);
        bo.tell(&a2, 0.5).unwrap();
        assert_eq!(bo.best().unwrap().1, 0.5);
    }

    #[test]
    fn re_ask_without_tell_returns_same_config() {
        let mut bo = BayesOpt::new(space_1d(), 3).unwrap();
        let a = bo.ask().unwrap();
        let b = bo.ask().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn tell_without_ask_is_protocol_error() {
        let mut bo = BayesOpt::new(space_1d(), 3).unwrap();
        let cfg = space_1d().sample(&mut StdRng::seed_from_u64(0));
        assert!(matches!(bo.tell(&cfg, 1.0), Err(BoError::Protocol(_))));
    }

    #[test]
    fn non_finite_losses_are_quarantined() {
        let mut bo = BayesOpt::new(space_1d(), 3).unwrap();
        let a = bo.ask().unwrap();
        bo.tell(&a, f64::NAN).unwrap();
        let b = bo.ask().unwrap();
        bo.tell(&b, 0.5).unwrap();
        assert_eq!(bo.best().unwrap().1, 0.5);
    }

    #[test]
    fn empty_space_rejected() {
        assert!(matches!(
            BayesOpt::new(SearchSpace::new(), 0),
            Err(BoError::EmptySpace)
        ));
    }

    #[test]
    fn lcb_acquisition_also_optimizes() {
        let mut bo = BayesOpt::new(space_1d(), 11).unwrap();
        bo.acquisition = Acquisition::LowerConfidenceBound { kappa: 1.5 };
        for _ in 0..25 {
            let cfg = bo.ask().unwrap();
            let loss = objective(&cfg);
            bo.tell(&cfg, loss).unwrap();
        }
        assert!(
            bo.best().unwrap().1 < 0.02,
            "LCB best {}",
            bo.best().unwrap().1
        );
    }

    #[test]
    fn tracer_sees_gp_spans_and_incumbent_gauge() {
        let tracer = Tracer::enabled();
        let mut bo = BayesOpt::new(space_1d(), 7).unwrap();
        bo.set_tracer(tracer.clone());
        for _ in 0..10 {
            let cfg = bo.ask().unwrap();
            let loss = objective(&cfg);
            bo.tell(&cfg, loss).unwrap();
        }
        let snap = tracer.snapshot();
        // n_initial = 5, so later asks are model-guided and timed.
        assert!(!snap.spans_named("gp.fit").is_empty());
        assert!(!snap.spans_named("gp.acquire").is_empty());
        assert_eq!(snap.gauge("bo.incumbent_loss"), Some(bo.best().unwrap().1));
        // The gauge trajectory never increases (incumbent = running min).
        let traj: Vec<f64> = snap
            .events
            .iter()
            .filter(|e| e.name == "bo.incumbent_loss")
            .map(|e| e.value)
            .collect();
        assert_eq!(traj.len(), 10);
        assert!(traj.windows(2).all(|w| w[1] <= w[0] + 1e-15));
    }

    #[test]
    fn ask_sequence_is_identical_across_thread_counts() {
        // The whole ask/tell trajectory — including model-guided steps with
        // parallel acquisition scoring — must not depend on FF_THREADS.
        let run = |threads: usize| {
            ff_par::with_threads(threads, || {
                let mut bo = BayesOpt::new(space_1d(), 42).unwrap();
                let mut asked = Vec::new();
                for _ in 0..12 {
                    let cfg = bo.ask().unwrap();
                    let loss = objective(&cfg);
                    asked.push((cfg.clone(), loss.to_bits()));
                    bo.tell(&cfg, loss).unwrap();
                }
                asked
            })
        };
        let seq = run(1);
        assert_eq!(run(2), seq);
        assert_eq!(run(8), seq);
    }

    #[test]
    fn history_preserves_order() {
        let mut bo = BayesOpt::new(space_1d(), 5).unwrap();
        for i in 0..5 {
            let cfg = bo.ask().unwrap();
            bo.tell(&cfg, i as f64).unwrap();
        }
        let h = bo.history();
        assert_eq!(h.len(), 5);
        assert_eq!(h[0].1, 0.0);
        assert_eq!(h[4].1, 4.0);
    }
}
