//! Acquisition functions (minimization convention): Expected Improvement
//! (the paper's choice, §5.1) and Lower Confidence Bound (for the
//! acquisition ablation).

use ff_linalg::special::{normal_cdf, normal_pdf};

/// Which acquisition function guides the search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Acquisition {
    /// Expected Improvement with exploration margin `xi` (paper default).
    ExpectedImprovement {
        /// Improvement margin.
        xi: f64,
    },
    /// Lower Confidence Bound `μ − κσ` (scored as `−LCB` so that higher is
    /// better, matching EI's convention).
    LowerConfidenceBound {
        /// Exploration weight κ.
        kappa: f64,
    },
}

impl Acquisition {
    /// Scores a candidate with posterior `(mean, variance)` against the
    /// current best observed value. Higher is better.
    pub fn score(&self, mean: f64, variance: f64, best: f64) -> f64 {
        match *self {
            Acquisition::ExpectedImprovement { xi } => {
                expected_improvement(mean, variance, best, xi)
            }
            Acquisition::LowerConfidenceBound { kappa } => {
                -(mean - kappa * variance.max(0.0).sqrt())
            }
        }
    }
}

/// Expected improvement of a candidate with posterior `(mean, variance)`
/// over the current best (lowest) observed value, for minimization:
///
/// `EI = (best − μ) Φ(z) + σ φ(z)`, `z = (best − μ)/σ`.
///
/// `xi` is the exploration margin (improvement must exceed `xi` to count).
pub fn expected_improvement(mean: f64, variance: f64, best: f64, xi: f64) -> f64 {
    let sigma = variance.max(0.0).sqrt();
    let improvement = best - mean - xi;
    if sigma < 1e-12 {
        return improvement.max(0.0);
    }
    let z = improvement / sigma;
    (improvement * normal_cdf(z) + sigma * normal_pdf(z)).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ei_is_nonnegative() {
        for &(m, v, b) in &[(0.0, 1.0, -5.0), (10.0, 0.5, 0.0), (-3.0, 2.0, -3.0)] {
            assert!(expected_improvement(m, v, b, 0.0) >= 0.0);
        }
    }

    #[test]
    fn lower_mean_gives_higher_ei() {
        let best = 1.0;
        let good = expected_improvement(0.0, 0.1, best, 0.0);
        let bad = expected_improvement(2.0, 0.1, best, 0.0);
        assert!(good > bad);
    }

    #[test]
    fn higher_variance_gives_higher_ei_at_equal_mean() {
        let best = 0.0;
        let explore = expected_improvement(1.0, 4.0, best, 0.0);
        let exploit = expected_improvement(1.0, 0.01, best, 0.0);
        assert!(explore > exploit);
    }

    #[test]
    fn zero_variance_is_plain_improvement() {
        assert!((expected_improvement(0.3, 0.0, 1.0, 0.0) - 0.7).abs() < 1e-12);
        assert_eq!(expected_improvement(2.0, 0.0, 1.0, 0.0), 0.0);
    }

    #[test]
    fn xi_margin_discourages_marginal_gains() {
        let with_margin = expected_improvement(0.9, 0.01, 1.0, 0.5);
        let without = expected_improvement(0.9, 0.01, 1.0, 0.0);
        assert!(with_margin < without);
    }

    #[test]
    fn lcb_prefers_low_mean_and_high_variance() {
        let lcb = Acquisition::LowerConfidenceBound { kappa: 2.0 };
        let low_mean = lcb.score(0.0, 0.1, 1.0);
        let high_mean = lcb.score(2.0, 0.1, 1.0);
        assert!(low_mean > high_mean);
        let explore = lcb.score(1.0, 4.0, 1.0);
        let exploit = lcb.score(1.0, 0.01, 1.0);
        assert!(explore > exploit);
    }

    #[test]
    fn acquisition_enum_dispatches_to_ei() {
        let ei = Acquisition::ExpectedImprovement { xi: 0.0 };
        assert!((ei.score(0.3, 0.0, 1.0) - 0.7).abs() < 1e-12);
    }
}
