//! Gaussian-process Bayesian optimization with Expected Improvement.
//!
//! §4.3 of the paper: "The Bayesian optimization algorithm was set to use
//! the expected improvement as an acquisition function with the Gaussian
//! processes surrogate model." This crate provides exactly that stack:
//!
//! - [`space`]: mixed search spaces — continuous (linear or log scale),
//!   integer, and categorical parameters, encoded into `[0, 1]^d` for the
//!   kernel.
//! - [`kernel`]: RBF and Matérn-5/2 covariance functions.
//! - [`gp`]: GP regression posterior via jittered Cholesky.
//! - [`acquisition`]: Expected Improvement (minimization convention).
//! - [`optimizer`]: the ask/tell loop with warm-start support — the
//!   meta-model's recommended configurations seed the optimizer before any
//!   random exploration, exactly as in Algorithm 1 (line 14).

pub mod acquisition;
pub mod gp;
pub mod kernel;
pub mod optimizer;
pub mod space;

/// Errors produced by the optimizer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoError {
    /// The search space has no parameters.
    EmptySpace,
    /// GP fitting failed numerically.
    Numerical(String),
    /// A tell() did not match a previous ask().
    Protocol(String),
}

impl std::fmt::Display for BoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BoError::EmptySpace => write!(f, "search space is empty"),
            BoError::Numerical(m) => write!(f, "numerical failure: {m}"),
            BoError::Protocol(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl std::error::Error for BoError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, BoError>;
