//! Property-based tests for meta-feature extraction and aggregation.

use ff_metalearn::aggregate::GlobalMetaFeatures;
use ff_metalearn::features::ClientMetaFeatures;
use ff_timeseries::synthesis::{generate, SeasonSpec, SynthesisSpec, TrendSpec};
use proptest::prelude::*;

fn client(seed: u64, n: usize, period: f64, missing: f64) -> ClientMetaFeatures {
    let s = generate(
        &SynthesisSpec {
            n,
            seasons: if period > 0.0 {
                vec![SeasonSpec {
                    period,
                    amplitude: 3.0,
                }]
            } else {
                vec![]
            },
            trend: TrendSpec::Linear(0.01),
            snr: Some(10.0),
            missing_fraction: missing,
            ..Default::default()
        },
        seed,
    );
    ClientMetaFeatures::extract(&s)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn meta_features_wire_roundtrip(
        seed in 0u64..500,
        n in 120usize..600,
        missing in 0.0f64..0.2,
    ) {
        let mf = client(seed, n, 12.0, missing);
        let v = mf.to_vec();
        prop_assert!(v.iter().all(|x| x.is_finite()));
        let back = ClientMetaFeatures::from_vec(&v).unwrap();
        prop_assert_eq!(mf, back);
    }

    #[test]
    fn aggregation_summaries_are_ordered(
        seeds in prop::collection::vec(0u64..300, 2..6),
    ) {
        let metas: Vec<ClientMetaFeatures> = seeds
            .iter()
            .map(|&s| client(s, 300, 10.0, 0.0))
            .collect();
        let g = GlobalMetaFeatures::aggregate(&metas);
        prop_assert_eq!(g.values().len(), GlobalMetaFeatures::dim());
        for base in ["n_instances", "skewness", "kurtosis", "adf_stat"] {
            let avg = g.get(&format!("{base}_avg")).unwrap();
            let min = g.get(&format!("{base}_min")).unwrap();
            let max = g.get(&format!("{base}_max")).unwrap();
            let std = g.get(&format!("{base}_std")).unwrap();
            prop_assert!(min <= avg + 1e-9 && avg <= max + 1e-9, "{base}");
            prop_assert!(std >= 0.0);
        }
        prop_assert_eq!(g.get("n_clients"), Some(seeds.len() as f64));
    }

    #[test]
    fn aggregation_is_permutation_invariant(
        seeds in prop::collection::vec(0u64..100, 3..5),
    ) {
        let metas: Vec<ClientMetaFeatures> = seeds
            .iter()
            .map(|&s| client(s, 250, 8.0, 0.0))
            .collect();
        let g1 = GlobalMetaFeatures::aggregate(&metas);
        let mut reversed = metas.clone();
        reversed.reverse();
        let g2 = GlobalMetaFeatures::aggregate(&reversed);
        // Every aggregation method in Table 1 (sum/avg/min/max/std, entropy,
        // pairwise KL summaries) is symmetric in the clients.
        for (a, b) in g1.values().iter().zip(g2.values()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn benchmark_federations_are_deterministic_and_complete(
        idx in 0usize..12,
        seed in 0u64..20,
    ) {
        let ds = &ff_datasets::benchmark_datasets()[idx];
        let a = ds.generate_federation(seed, 0.05);
        let b = ds.generate_federation(seed, 0.05);
        prop_assert_eq!(a.len(), ds.clients);
        prop_assert_eq!(&a, &b);
        for c in &a {
            prop_assert!(c.len() >= 60);
            prop_assert!(c.observed().iter().all(|v| v.is_finite()));
        }
    }
}
