//! Server-side meta-feature aggregation (Table 1's "Aggregation Method"
//! column).
//!
//! The server receives one [`ClientMetaFeatures`] per client and produces
//! the fixed-length global vector the meta-model consumes: per-feature
//! summaries (sum/avg/min/max/stddev as the table specifies), the entropy
//! of the stationarity flags across clients, and the KL divergence among
//! client value distributions.

use crate::features::ClientMetaFeatures;
use ff_timeseries::stats::{self, Summary};

/// The aggregated, fixed-length global meta-feature vector with names.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalMetaFeatures {
    values: Vec<f64>,
}

fn push_summary(
    names: &mut Vec<String>,
    values: &mut Vec<f64>,
    name: &str,
    s: &Summary,
    with_sum: bool,
) {
    if with_sum {
        names.push(format!("{name}_sum"));
        values.push(s.sum);
    }
    names.push(format!("{name}_avg"));
    values.push(s.mean);
    names.push(format!("{name}_min"));
    values.push(s.min);
    names.push(format!("{name}_max"));
    values.push(s.max);
    names.push(format!("{name}_std"));
    values.push(s.std);
}

impl GlobalMetaFeatures {
    /// Aggregates client meta-features per Table 1.
    ///
    /// # Panics
    /// Panics on an empty client list.
    pub fn aggregate(clients: &[ClientMetaFeatures]) -> GlobalMetaFeatures {
        assert!(!clients.is_empty(), "need at least one client");
        let mut names = Vec::new();
        let mut values = Vec::new();

        // No. of Clients — NA aggregation.
        names.push("n_clients".into());
        values.push(clients.len() as f64);
        // Sampling Rate — NA (shared across clients; take the first).
        names.push("sampling_step_secs".into());
        values.push(clients[0].sampling_step_secs);

        let collect =
            |f: fn(&ClientMetaFeatures) -> f64| -> Vec<f64> { clients.iter().map(f).collect() };

        // No. of Instances — Sum, Avg, Min, Max, Stddev.
        let s = stats::summary(&collect(|c| c.n_instances));
        push_summary(&mut names, &mut values, "n_instances", &s, true);
        // Target Missing Values % — Avg, Min, Max, Stddev.
        let s = stats::summary(&collect(|c| c.missing_fraction));
        push_summary(&mut names, &mut values, "missing_fraction", &s, false);
        // Stationary Features (ADF statistic of the raw target).
        let s = stats::summary(&collect(|c| c.adf_statistic));
        push_summary(&mut names, &mut values, "adf_stat", &s, false);
        // Target Stationarity — Entropy across clients.
        let flags: Vec<bool> = clients.iter().map(|c| c.stationary).collect();
        names.push("stationarity_entropy".into());
        values.push(stats::binary_entropy(&flags));
        names.push("stationary_fraction".into());
        values.push(flags.iter().filter(|&&f| f).count() as f64 / flags.len() as f64);
        // Stationary Features after 1st / 2nd order diff.
        let s = stats::summary(&collect(|c| c.adf_statistic_diff1));
        push_summary(&mut names, &mut values, "adf_stat_diff1", &s, false);
        let s = stats::summary(&collect(|c| c.adf_statistic_diff2));
        push_summary(&mut names, &mut values, "adf_stat_diff2", &s, false);
        // Significant Lags using pACF.
        let s = stats::summary(&collect(|c| c.n_significant_lags));
        push_summary(&mut names, &mut values, "n_sig_lags", &s, false);
        let s = stats::summary(&collect(|c| c.max_significant_lag));
        push_summary(&mut names, &mut values, "max_sig_lag", &s, false);
        // Insignificant lags between 1st and last significant ones.
        let s = stats::summary(&collect(|c| c.insignificant_gap));
        push_summary(&mut names, &mut values, "insig_gap", &s, false);
        // Detected seasonality components.
        let s = stats::summary(&collect(|c| c.n_seasonal_components));
        push_summary(&mut names, &mut values, "n_seasonal", &s, false);
        // Skewness / Kurtosis.
        let s = stats::summary(&collect(|c| c.skewness));
        push_summary(&mut names, &mut values, "skewness", &s, false);
        let s = stats::summary(&collect(|c| c.kurtosis));
        push_summary(&mut names, &mut values, "kurtosis", &s, false);
        // Fractal dimension — Avg only.
        names.push("fractal_dim_avg".into());
        values.push(stats::summary(&collect(|c| c.fractal_dimension)).mean);
        // Periods of seasonality components — Min, Max.
        names.push("season_period_min".into());
        let min_periods: Vec<f64> = clients
            .iter()
            .map(|c| c.min_period)
            .filter(|&p| p > 0.0)
            .collect();
        values.push(if min_periods.is_empty() {
            0.0
        } else {
            min_periods.iter().cloned().fold(f64::INFINITY, f64::min)
        });
        names.push("season_period_max".into());
        values.push(
            clients
                .iter()
                .map(|c| c.dominant_period)
                .fold(0.0f64, f64::max),
        );
        // KL divergence among clients' distributions — Avg, Min, Max, Stddev.
        let kls = cross_client_kl(clients);
        let s = stats::summary(&kls);
        push_summary(&mut names, &mut values, "client_kl", &s, false);

        debug_assert_eq!(names.len(), values.len());
        debug_assert_eq!(names, Self::feature_names());
        GlobalMetaFeatures { values }
    }

    /// The aggregated vector.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Reconstructs from a raw vector (server→client broadcast).
    pub fn from_values(values: Vec<f64>) -> GlobalMetaFeatures {
        GlobalMetaFeatures { values }
    }

    /// Names of the vector entries, in order. Length equals
    /// [`GlobalMetaFeatures::dim`].
    pub fn feature_names() -> Vec<String> {
        // Build once from a synthetic singleton aggregation is circular;
        // enumerate explicitly instead.
        let mut names: Vec<String> = vec!["n_clients".into(), "sampling_step_secs".into()];
        let summary5 = |n: &str| -> Vec<String> {
            vec![
                format!("{n}_sum"),
                format!("{n}_avg"),
                format!("{n}_min"),
                format!("{n}_max"),
                format!("{n}_std"),
            ]
        };
        let summary4 = |n: &str| -> Vec<String> {
            vec![
                format!("{n}_avg"),
                format!("{n}_min"),
                format!("{n}_max"),
                format!("{n}_std"),
            ]
        };
        names.extend(summary5("n_instances"));
        names.extend(summary4("missing_fraction"));
        names.extend(summary4("adf_stat"));
        names.push("stationarity_entropy".into());
        names.push("stationary_fraction".into());
        names.extend(summary4("adf_stat_diff1"));
        names.extend(summary4("adf_stat_diff2"));
        names.extend(summary4("n_sig_lags"));
        names.extend(summary4("max_sig_lag"));
        names.extend(summary4("insig_gap"));
        names.extend(summary4("n_seasonal"));
        names.extend(summary4("skewness"));
        names.extend(summary4("kurtosis"));
        names.push("fractal_dim_avg".into());
        names.push("season_period_min".into());
        names.push("season_period_max".into());
        names.extend(summary4("client_kl"));
        names
    }

    /// Dimension of the global vector.
    pub fn dim() -> usize {
        Self::feature_names().len()
    }

    /// Named accessor (linear scan; fine at this dimensionality).
    pub fn get(&self, name: &str) -> Option<f64> {
        Self::feature_names()
            .iter()
            .position(|n| n == name)
            .map(|i| self.values[i])
    }
}

/// Pairwise KL divergences between client histograms, re-binned onto the
/// union support so the comparison is meaningful.
fn cross_client_kl(clients: &[ClientMetaFeatures]) -> Vec<f64> {
    if clients.len() < 2 {
        return vec![0.0];
    }
    // Histograms were built on per-client ranges; approximate re-binning by
    // comparing the probability vectors directly when ranges are close, or
    // smoothing otherwise. (The per-client range is part of the feature
    // struct, so a full re-bin would need raw data — which the server does
    // not have. Comparing bin shapes is the privacy-preserving stand-in.)
    let mut out = Vec::new();
    for (i, a) in clients.iter().enumerate() {
        for (j, b) in clients.iter().enumerate() {
            if i != j {
                out.push(stats::kl_divergence(&a.histogram, &b.histogram, 1e-9));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_timeseries::synthesis::{generate, SeasonSpec, SynthesisSpec};
    use ff_timeseries::TimeSeries;

    fn client(seed: u64) -> ClientMetaFeatures {
        let s = generate(
            &SynthesisSpec {
                n: 500,
                seasons: vec![SeasonSpec {
                    period: 12.0,
                    amplitude: 2.0,
                }],
                ..Default::default()
            },
            seed,
        );
        ClientMetaFeatures::extract(&s)
    }

    #[test]
    fn names_match_aggregation_output() {
        let clients = [client(1), client(2), client(3)];
        let g = GlobalMetaFeatures::aggregate(&clients);
        assert_eq!(g.values().len(), GlobalMetaFeatures::dim());
        assert_eq!(g.get("n_clients"), Some(3.0));
    }

    #[test]
    fn summaries_are_consistent() {
        let clients = [client(1), client(2)];
        let g = GlobalMetaFeatures::aggregate(&clients);
        let avg = g.get("n_instances_avg").unwrap();
        let mn = g.get("n_instances_min").unwrap();
        let mx = g.get("n_instances_max").unwrap();
        assert!(mn <= avg && avg <= mx);
        assert_eq!(g.get("n_instances_sum"), Some(1000.0));
    }

    #[test]
    fn identical_clients_have_zero_kl_and_entropy() {
        let c = client(5);
        let clients = vec![c.clone(), c.clone(), c];
        let g = GlobalMetaFeatures::aggregate(&clients);
        assert!(g.get("client_kl_avg").unwrap() < 1e-9);
        assert!(g.get("stationarity_entropy").unwrap() < 1e-12);
    }

    #[test]
    fn heterogeneous_clients_have_positive_kl() {
        let a = ClientMetaFeatures::extract(&generate(
            &SynthesisSpec {
                n: 500,
                level: 0.0,
                ..Default::default()
            },
            7,
        ));
        // Skewed client: exponential-ish values via squaring.
        let raw = generate(
            &SynthesisSpec {
                n: 500,
                level: 0.0,
                ..Default::default()
            },
            8,
        );
        let squared: Vec<f64> = raw.values().iter().map(|v| v * v).collect();
        let b = ClientMetaFeatures::extract(&TimeSeries::with_regular_index(0, 86_400, squared));
        let g = GlobalMetaFeatures::aggregate(&[a, b]);
        assert!(g.get("client_kl_avg").unwrap() > 0.01);
    }

    #[test]
    fn mixed_stationarity_has_max_entropy() {
        let mut a = client(1);
        let mut b = client(2);
        a.stationary = true;
        b.stationary = false;
        let g = GlobalMetaFeatures::aggregate(&[a, b]);
        assert!((g.get("stationarity_entropy").unwrap() - 2f64.ln()).abs() < 1e-12);
        assert_eq!(g.get("stationary_fraction"), Some(0.5));
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn empty_client_list_panics() {
        GlobalMetaFeatures::aggregate(&[]);
    }

    #[test]
    fn roundtrip_from_values() {
        let clients = [client(1), client(2)];
        let g = GlobalMetaFeatures::aggregate(&clients);
        let g2 = GlobalMetaFeatures::from_values(g.values().to_vec());
        assert_eq!(g, g2);
    }
}
