//! Per-client meta-feature extraction (Table 1).
//!
//! Each client computes these statistics over its private split and sends
//! *only this struct* to the server — the "fingerprint" of its data. The
//! numbers are anonymized summaries; no raw sample sequence is included.

use ff_timeseries::{acf, fractal, interpolate, periodogram, stationarity, stats, TimeSeries};

/// Statistical meta-features of one client's time-series split.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientMetaFeatures {
    /// Number of instances in the split.
    pub n_instances: f64,
    /// Sampling step in seconds (median timestamp delta).
    pub sampling_step_secs: f64,
    /// Fraction of missing target values.
    pub missing_fraction: f64,
    /// ADF stationarity of the raw target (1 = stationary at 5%).
    pub stationary: bool,
    /// ADF statistic of the raw target (the continuous "stationary
    /// features" signal).
    pub adf_statistic: f64,
    /// ADF statistic after first-order differencing.
    pub adf_statistic_diff1: f64,
    /// ADF statistic after second-order differencing.
    pub adf_statistic_diff2: f64,
    /// Number of significant pACF lags.
    pub n_significant_lags: f64,
    /// Largest significant lag (0 when none).
    pub max_significant_lag: f64,
    /// Insignificant lags between the first and last significant ones.
    pub insignificant_gap: f64,
    /// Number of detected seasonality components.
    pub n_seasonal_components: f64,
    /// Period of the strongest seasonal component (0 when none).
    pub dominant_period: f64,
    /// Period of the weakest reported seasonal component.
    pub min_period: f64,
    /// Skewness of the target.
    pub skewness: f64,
    /// Excess kurtosis of the target.
    pub kurtosis: f64,
    /// Higuchi fractal dimension of the target.
    pub fractal_dimension: f64,
    /// Value histogram (fixed 16 bins over the client's own range) used by
    /// the server to compute cross-client KL divergences. A histogram is a
    /// coarse density summary, not the series itself.
    pub histogram: Vec<f64>,
    /// Histogram support bounds `(lo, hi)`.
    pub histogram_range: (f64, f64),
}

/// Number of histogram bins shared across clients.
pub const HISTOGRAM_BINS: usize = 16;

/// Maximum seasonal components reported per client.
pub const MAX_SEASONAL_COMPONENTS: usize = 5;

impl ClientMetaFeatures {
    /// Extracts all Table 1 per-client statistics from a (possibly gappy)
    /// series. Interpolation is applied to a copy for the statistics that
    /// need complete data; the missing fraction is measured on the
    /// original.
    pub fn extract(series: &TimeSeries) -> ClientMetaFeatures {
        let missing_fraction = series.missing_fraction();
        let filled = interpolate::interpolated(series);
        let v = filled.values();
        let max_lag = acf::default_max_lag(v.len());

        let adf = |vals: &[f64]| -> (bool, f64) {
            match stationarity::adf_test(vals, stationarity::AdfRegression::Constant) {
                Ok(r) => (r.stationary, r.statistic),
                Err(_) => (false, 0.0),
            }
        };
        let (stationary, adf_statistic) = adf(v);
        let d1 = stationarity::difference(v, 1);
        let (_, adf_statistic_diff1) = adf(&d1);
        let d2 = stationarity::difference(v, 2);
        let (_, adf_statistic_diff2) = adf(&d2);

        let sig_lags = acf::significant_pacf_lags(v, max_lag);
        let insignificant_gap = acf::insignificant_gap_count(&sig_lags) as f64;

        let seasons = periodogram::detect_seasonality(v, MAX_SEASONAL_COMPONENTS, 5.0);
        let dominant_period = seasons.first().map(|s| s.period).unwrap_or(0.0);
        let min_period = seasons.last().map(|s| s.period).unwrap_or(0.0);

        let observed = series.observed();
        let (lo, hi) = observed
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &x| {
                (lo.min(x), hi.max(x))
            });
        let (lo, hi) = if lo.is_finite() && hi > lo {
            (lo, hi)
        } else {
            (0.0, 1.0)
        };
        let histogram = stats::Histogram::new(&observed, HISTOGRAM_BINS, lo, hi).probs;

        ClientMetaFeatures {
            n_instances: series.len() as f64,
            sampling_step_secs: series.sampling_step_secs() as f64,
            missing_fraction,
            stationary,
            adf_statistic,
            adf_statistic_diff1,
            adf_statistic_diff2,
            n_significant_lags: sig_lags.len() as f64,
            max_significant_lag: sig_lags.last().copied().unwrap_or(0) as f64,
            insignificant_gap,
            n_seasonal_components: seasons.len() as f64,
            dominant_period,
            min_period,
            skewness: stats::skewness(&observed),
            kurtosis: stats::kurtosis(&observed),
            fractal_dimension: fractal::higuchi_fd(v, fractal::default_k_max(v.len())),
            histogram,
            histogram_range: (lo, hi),
        }
    }

    /// Flattens to the wire representation (floats only). Order must match
    /// [`ClientMetaFeatures::from_vec`].
    pub fn to_vec(&self) -> Vec<f64> {
        let mut out = vec![
            self.n_instances,
            self.sampling_step_secs,
            self.missing_fraction,
            f64::from(u8::from(self.stationary)),
            self.adf_statistic,
            self.adf_statistic_diff1,
            self.adf_statistic_diff2,
            self.n_significant_lags,
            self.max_significant_lag,
            self.insignificant_gap,
            self.n_seasonal_components,
            self.dominant_period,
            self.min_period,
            self.skewness,
            self.kurtosis,
            self.fractal_dimension,
            self.histogram_range.0,
            self.histogram_range.1,
        ];
        out.extend_from_slice(&self.histogram);
        out
    }

    /// Parses the wire representation.
    pub fn from_vec(v: &[f64]) -> Option<ClientMetaFeatures> {
        if v.len() != 18 + HISTOGRAM_BINS {
            return None;
        }
        Some(ClientMetaFeatures {
            n_instances: v[0],
            sampling_step_secs: v[1],
            missing_fraction: v[2],
            stationary: v[3] > 0.5,
            adf_statistic: v[4],
            adf_statistic_diff1: v[5],
            adf_statistic_diff2: v[6],
            n_significant_lags: v[7],
            max_significant_lag: v[8],
            insignificant_gap: v[9],
            n_seasonal_components: v[10],
            dominant_period: v[11],
            min_period: v[12],
            skewness: v[13],
            kurtosis: v[14],
            fractal_dimension: v[15],
            histogram_range: (v[16], v[17]),
            histogram: v[18..].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_timeseries::synthesis::{generate, Composition, SeasonSpec, SynthesisSpec, TrendSpec};

    fn seasonal_series() -> TimeSeries {
        generate(
            &SynthesisSpec {
                n: 600,
                seasons: vec![SeasonSpec {
                    period: 24.0,
                    amplitude: 4.0,
                }],
                snr: Some(30.0),
                ..Default::default()
            },
            1,
        )
    }

    #[test]
    fn extracts_seasonality_and_lags() {
        let mf = ClientMetaFeatures::extract(&seasonal_series());
        assert_eq!(mf.n_instances, 600.0);
        assert!(mf.n_seasonal_components >= 1.0);
        assert!(
            (mf.dominant_period - 24.0).abs() < 2.0,
            "period {}",
            mf.dominant_period
        );
        assert!(mf.n_significant_lags >= 1.0);
        assert!(mf.fractal_dimension >= 0.5 && mf.fractal_dimension <= 2.5);
    }

    #[test]
    fn random_walk_is_flagged_nonstationary() {
        let s = generate(
            &SynthesisSpec {
                n: 500,
                trend: TrendSpec::RandomWalk(1.0),
                snr: None,
                ..Default::default()
            },
            2,
        );
        let mf = ClientMetaFeatures::extract(&s);
        assert!(!mf.stationary);
        // Differencing should push the ADF statistic strongly negative.
        assert!(mf.adf_statistic_diff1 < mf.adf_statistic);
    }

    #[test]
    fn missing_fraction_measured_on_raw_series() {
        let s = generate(
            &SynthesisSpec {
                n: 800,
                missing_fraction: 0.15,
                ..Default::default()
            },
            3,
        );
        let mf = ClientMetaFeatures::extract(&s);
        assert!((mf.missing_fraction - 0.15).abs() < 0.05);
    }

    #[test]
    fn wire_roundtrip() {
        let mf = ClientMetaFeatures::extract(&seasonal_series());
        let v = mf.to_vec();
        let back = ClientMetaFeatures::from_vec(&v).unwrap();
        assert_eq!(mf, back);
        assert!(ClientMetaFeatures::from_vec(&v[..5]).is_none());
    }

    #[test]
    fn histogram_is_probability_vector() {
        let mf = ClientMetaFeatures::extract(&seasonal_series());
        let s: f64 = mf.histogram.iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
        assert_eq!(mf.histogram.len(), HISTOGRAM_BINS);
    }

    #[test]
    fn multiplicative_series_has_positive_skew() {
        let s = generate(
            &SynthesisSpec {
                n: 600,
                trend: TrendSpec::Linear(0.3),
                composition: Composition::Multiplicative,
                level: 10.0,
                seasons: vec![SeasonSpec {
                    period: 12.0,
                    amplitude: 1.0,
                }],
                snr: Some(20.0),
                ..Default::default()
            },
            4,
        );
        let mf = ClientMetaFeatures::extract(&s);
        assert!(mf.skewness.is_finite());
    }
}
