//! Meta-learning for federated time-series forecasting (§4.1 of the paper).
//!
//! - [`features`]: the per-client meta-features of Table 1, extracted from
//!   a private data split (never leaving the client as raw data).
//! - [`aggregate`]: the server-side aggregation methods of Table 1
//!   (sum/avg/min/max/stddev, entropy across clients, pairwise KL
//!   divergence among client distributions) producing the fixed-length
//!   global meta-feature vector.
//! - [`synth`]: the knowledge-base dataset generator — 512 synthetic
//!   variations (seasonality, sampling frequency, SNR, missing %,
//!   additive/multiplicative) plus 30 real-world-like series (§4.1.1; see
//!   DESIGN.md for the substitution rationale).
//! - [`kb`]: knowledge-base construction — split each dataset into
//!   {5,10,15,20} clients, aggregate meta-features, grid search Table 2
//!   algorithms, record the winner.
//! - [`metamodel`]: trains a classifier on the KB to recommend the top-K
//!   algorithms for unseen federations, and reproduces the Table 4 zoo
//!   comparison (MRR@3, macro-F1).

pub mod aggregate;
pub mod features;
pub mod kb;
pub mod metamodel;
pub mod synth;
