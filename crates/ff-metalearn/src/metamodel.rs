//! The meta-model: recommends forecasting algorithms from aggregated
//! meta-features, and reproduces the Table 4 classifier comparison.

use crate::kb::KnowledgeBase;
use ff_linalg::Matrix;
use ff_models::boosting::clf::{
    catboost_classifier, gradient_boosting_classifier, lightgbm_classifier, xgb_classifier,
};
use ff_models::classifiers::logistic::LogisticRegression;
use ff_models::classifiers::mlp::MlpClassifier;
use ff_models::forest::RandomForestClassifier;
use ff_models::metrics::{f1_macro, mrr_at_k, rank_classes};
use ff_models::zoo::AlgorithmKind;
use ff_models::{Classifier, ModelError, Result};

/// The classifier families compared in Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetaClassifierKind {
    /// XGBClassifier.
    Xgb,
    /// Multinomial logistic regression.
    Logistic,
    /// Classic gradient boosting.
    GradientBoosting,
    /// Random forest (the paper's winner).
    RandomForest,
    /// CatBoost-style oblivious-tree boosting.
    CatBoost,
    /// LightGBM-style histogram boosting.
    LightGbm,
    /// Extra-Trees.
    ExtraTrees,
    /// MLP.
    Mlp,
}

impl MetaClassifierKind {
    /// All families, in Table 4 row order.
    pub const ALL: [MetaClassifierKind; 8] = [
        MetaClassifierKind::Xgb,
        MetaClassifierKind::Logistic,
        MetaClassifierKind::GradientBoosting,
        MetaClassifierKind::RandomForest,
        MetaClassifierKind::CatBoost,
        MetaClassifierKind::LightGbm,
        MetaClassifierKind::ExtraTrees,
        MetaClassifierKind::Mlp,
    ];

    /// Table 4 display name.
    pub fn name(&self) -> &'static str {
        match self {
            MetaClassifierKind::Xgb => "XGBClassifier",
            MetaClassifierKind::Logistic => "Logistic Regression",
            MetaClassifierKind::GradientBoosting => "Gradient Boosting",
            MetaClassifierKind::RandomForest => "Random Forest",
            MetaClassifierKind::CatBoost => "CatBoost",
            MetaClassifierKind::LightGbm => "LightGBM",
            MetaClassifierKind::ExtraTrees => "Extra Trees",
            MetaClassifierKind::Mlp => "MLPClassifier",
        }
    }

    /// Instantiates the classifier with KB-scale defaults.
    pub fn build(&self, seed: u64) -> Box<dyn Classifier + Send> {
        match self {
            MetaClassifierKind::Xgb => Box::new(xgb_classifier(30, 3, 0.3)),
            MetaClassifierKind::Logistic => Box::new(LogisticRegression::new(1.0)),
            MetaClassifierKind::GradientBoosting => {
                Box::new(gradient_boosting_classifier(30, 3, 0.3))
            }
            MetaClassifierKind::RandomForest => Box::new(RandomForestClassifier::new(60, 10, seed)),
            MetaClassifierKind::CatBoost => Box::new(catboost_classifier(30, 4, 0.3)),
            MetaClassifierKind::LightGbm => Box::new(lightgbm_classifier(30, 4, 0.3)),
            MetaClassifierKind::ExtraTrees => {
                Box::new(RandomForestClassifier::extra_trees(60, 10, seed))
            }
            MetaClassifierKind::Mlp => Box::new(MlpClassifier::new(vec![64, 32], 300, seed)),
        }
    }

    /// Hyperparameter candidates for the Table 4 protocol ("hyperparameter
    /// tuning was performed using Random Search on the validation set"):
    /// three settings per family, spanning capacity.
    pub fn candidates(&self, seed: u64) -> Vec<Box<dyn Classifier + Send>> {
        match self {
            MetaClassifierKind::Xgb => vec![
                Box::new(xgb_classifier(20, 2, 0.3)),
                Box::new(xgb_classifier(30, 3, 0.3)),
                Box::new(xgb_classifier(60, 4, 0.1)),
            ],
            MetaClassifierKind::Logistic => vec![
                Box::new(LogisticRegression::new(0.1)),
                Box::new(LogisticRegression::new(1.0)),
                Box::new(LogisticRegression::new(10.0)),
            ],
            MetaClassifierKind::GradientBoosting => vec![
                Box::new(gradient_boosting_classifier(20, 2, 0.3)),
                Box::new(gradient_boosting_classifier(30, 3, 0.3)),
                Box::new(gradient_boosting_classifier(60, 4, 0.1)),
            ],
            MetaClassifierKind::RandomForest => vec![
                Box::new(RandomForestClassifier::new(40, 8, seed)),
                Box::new(RandomForestClassifier::new(60, 10, seed)),
                Box::new(RandomForestClassifier::new(120, 14, seed)),
            ],
            MetaClassifierKind::CatBoost => vec![
                Box::new(catboost_classifier(20, 3, 0.3)),
                Box::new(catboost_classifier(30, 4, 0.3)),
                Box::new(catboost_classifier(60, 5, 0.1)),
            ],
            MetaClassifierKind::LightGbm => vec![
                Box::new(lightgbm_classifier(20, 3, 0.3)),
                Box::new(lightgbm_classifier(30, 4, 0.3)),
                Box::new(lightgbm_classifier(60, 5, 0.1)),
            ],
            MetaClassifierKind::ExtraTrees => vec![
                Box::new(RandomForestClassifier::extra_trees(40, 8, seed)),
                Box::new(RandomForestClassifier::extra_trees(60, 10, seed)),
                Box::new(RandomForestClassifier::extra_trees(120, 14, seed)),
            ],
            MetaClassifierKind::Mlp => vec![
                Box::new(MlpClassifier::new(vec![32], 200, seed)),
                Box::new(MlpClassifier::new(vec![64, 32], 300, seed)),
                Box::new(MlpClassifier::new(vec![128, 64], 500, seed)),
            ],
        }
    }
}

/// The trained meta-model: maps a global meta-feature vector to a ranked
/// list of forecasting algorithms.
pub struct MetaModel {
    clf: Box<dyn Classifier + Send>,
    n_classes: usize,
}

impl std::fmt::Debug for MetaModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetaModel")
            .field("n_classes", &self.n_classes)
            .finish()
    }
}

impl MetaModel {
    /// Trains the given classifier family on the knowledge base.
    pub fn train(kb: &KnowledgeBase, kind: MetaClassifierKind, seed: u64) -> Result<MetaModel> {
        if kb.is_empty() {
            return Err(ModelError::InvalidData("empty knowledge base".into()));
        }
        let x = kb_matrix(kb);
        let labels = kb.labels();
        let n_classes = AlgorithmKind::all().len();
        let mut clf = kind.build(seed);
        clf.fit(&x, &labels, n_classes)?;
        Ok(MetaModel { clf, n_classes })
    }

    /// Recommends the top-K algorithms for a global meta-feature vector
    /// (K = 3 in the paper).
    pub fn recommend(&self, features: &[f64], k: usize) -> Result<Vec<AlgorithmKind>> {
        let x = Matrix::from_vec(1, features.len(), features.to_vec());
        let probs = self.clf.predict_proba(&x)?;
        let ranking = rank_classes(probs.row(0));
        Ok(ranking
            .into_iter()
            .take(k.min(self.n_classes))
            .filter_map(AlgorithmKind::from_index)
            .collect())
    }
}

/// One Table 4 evaluation row.
#[derive(Debug, Clone)]
pub struct ZooResult {
    /// Classifier family.
    pub kind: MetaClassifierKind,
    /// Mean Reciprocal Rank at K = 3.
    pub mrr3: f64,
    /// Macro F1 of the top-1 prediction.
    pub f1: f64,
}

/// Reproduces Table 4: trains each classifier family on an 80/20 KB split,
/// tunes each family's hyperparameters on the validation part (the paper's
/// protocol: "hyperparameter tuning was performed using Random Search on
/// the validation set"), and reports the tuned MRR@3 and macro-F1.
pub fn evaluate_zoo(kb: &KnowledgeBase, seed: u64) -> Result<Vec<ZooResult>> {
    let (train_kb, valid_kb) = split_kb(kb, 0.8, seed);
    if train_kb.is_empty() || valid_kb.is_empty() {
        return Err(ModelError::InvalidData("KB too small to split".into()));
    }
    let x_valid = kb_matrix(&valid_kb);
    let y_valid = valid_kb.labels();
    let n_classes = AlgorithmKind::all().len();
    let x_train = kb_matrix(&train_kb);
    let y_train = train_kb.labels();
    let mut out = Vec::new();
    for kind in MetaClassifierKind::ALL {
        let mut best: Option<ZooResult> = None;
        for mut clf in kind.candidates(seed) {
            clf.fit(&x_train, &y_train, n_classes)?;
            let probs = clf.predict_proba(&x_valid)?;
            let rankings: Vec<Vec<usize>> = (0..probs.rows())
                .map(|i| rank_classes(probs.row(i)))
                .collect();
            let top1: Vec<usize> = rankings.iter().map(|r| r[0]).collect();
            let candidate = ZooResult {
                kind,
                mrr3: mrr_at_k(&y_valid, &rankings, 3),
                f1: f1_macro(&y_valid, &top1, n_classes),
            };
            match &best {
                Some(b) if candidate.mrr3 <= b.mrr3 => {}
                _ => best = Some(candidate),
            }
        }
        out.push(best.expect("candidates are non-empty"));
    }
    Ok(out)
}

/// Deterministic shuffled split of the KB into train/validation parts.
pub fn split_kb(
    kb: &KnowledgeBase,
    train_fraction: f64,
    seed: u64,
) -> (KnowledgeBase, KnowledgeBase) {
    let n = kb.len();
    let mut order: Vec<usize> = (0..n).collect();
    // Fisher–Yates with an LCG (deterministic, dependency-free).
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    for i in (1..n).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        order.swap(i, j);
    }
    let cut = ((n as f64) * train_fraction).round() as usize;
    let cut = cut.clamp(1, n.saturating_sub(1).max(1));
    let mut train = KnowledgeBase::default();
    let mut valid = KnowledgeBase::default();
    for (pos, &idx) in order.iter().enumerate() {
        if pos < cut {
            train.records.push(kb.records[idx].clone());
        } else {
            valid.records.push(kb.records[idx].clone());
        }
    }
    (train, valid)
}

fn kb_matrix(kb: &KnowledgeBase) -> Matrix {
    let dim = kb.records[0].features.len();
    Matrix::from_fn(kb.len(), dim, |i, j| {
        let v = kb.records[i].features[j];
        if v.is_finite() {
            v
        } else {
            0.0
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kb::KbRecord;

    /// A synthetic KB where the label is a deterministic function of the
    /// features — any competent classifier should learn it.
    fn synthetic_kb(n: usize) -> KnowledgeBase {
        let mut kb = KnowledgeBase::default();
        let mut state = 99u64;
        for i in 0..n {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = ((state >> 33) as f64 / (1u64 << 30) as f64) - 1.0;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let b = ((state >> 33) as f64 / (1u64 << 30) as f64) - 1.0;
            let label = if a > 0.3 {
                AlgorithmKind::LASSO
            } else if b > 0.0 {
                AlgorithmKind::XGB_REGRESSOR
            } else {
                AlgorithmKind::HUBER_REGRESSOR
            };
            kb.records.push(KbRecord {
                dataset: format!("d{i}"),
                features: vec![a, b, a * b, a - b],
                best_algorithm: label,
                best_mse: 1.0,
                n_clients: 5,
            });
        }
        kb
    }

    #[test]
    fn metamodel_learns_separable_rule() {
        let kb = synthetic_kb(300);
        let mm = MetaModel::train(&kb, MetaClassifierKind::RandomForest, 1).unwrap();
        let rec = mm.recommend(&[0.9, 0.0, 0.0, 0.9], 3).unwrap();
        assert_eq!(rec[0], AlgorithmKind::LASSO);
        assert_eq!(rec.len(), 3);
        let rec = mm.recommend(&[-0.9, 0.8, -0.72, -1.7], 1).unwrap();
        assert_eq!(rec, vec![AlgorithmKind::XGB_REGRESSOR]);
    }

    #[test]
    fn zoo_evaluation_produces_all_rows_with_valid_scores() {
        let kb = synthetic_kb(200);
        let results = evaluate_zoo(&kb, 7).unwrap();
        assert_eq!(results.len(), 8);
        for r in &results {
            assert!((0.0..=1.0).contains(&r.mrr3), "{:?} mrr {}", r.kind, r.mrr3);
            assert!((0.0..=1.0).contains(&r.f1));
        }
        // On an easily separable KB, tree ensembles should do well.
        let rf = results
            .iter()
            .find(|r| r.kind == MetaClassifierKind::RandomForest)
            .unwrap();
        assert!(rf.mrr3 > 0.8, "RF mrr {}", rf.mrr3);
    }

    #[test]
    fn split_kb_partitions() {
        let kb = synthetic_kb(50);
        let (tr, va) = split_kb(&kb, 0.8, 3);
        assert_eq!(tr.len() + va.len(), 50);
        assert_eq!(tr.len(), 40);
        // Different seeds shuffle differently.
        let (tr2, _) = split_kb(&kb, 0.8, 4);
        let names1: Vec<&str> = tr.records.iter().map(|r| r.dataset.as_str()).collect();
        let names2: Vec<&str> = tr2.records.iter().map(|r| r.dataset.as_str()).collect();
        assert_ne!(names1, names2);
    }

    #[test]
    fn empty_kb_rejected() {
        let kb = KnowledgeBase::default();
        assert!(MetaModel::train(&kb, MetaClassifierKind::RandomForest, 0).is_err());
    }

    #[test]
    fn recommendation_k_is_capped() {
        let kb = synthetic_kb(100);
        let mm = MetaModel::train(&kb, MetaClassifierKind::Logistic, 1).unwrap();
        let rec = mm.recommend(&[0.5, 0.5, 0.25, 0.0], 100).unwrap();
        assert_eq!(rec.len(), AlgorithmKind::all().len());
    }
}
