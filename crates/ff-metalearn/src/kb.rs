//! Knowledge-base construction (§4.1.1, Figure 2 offline phase).
//!
//! For each KB dataset: split it into a federation, extract + aggregate
//! meta-features, grid search the Table 2 algorithms on the federated
//! splits (weighted global validation MSE, Equation 1), and record the
//! winning algorithm as the class label.

use crate::aggregate::GlobalMetaFeatures;
use crate::features::ClientMetaFeatures;
use crate::synth::KbDataset;
use ff_models::metrics::mse;
use ff_models::zoo::{build_regressor, grid_for, AlgorithmKind};
use ff_timeseries::windowing::train_valid_lag_split;
use ff_timeseries::{interpolate, synthesis, TimeSeries};

/// One labelled KB record.
#[derive(Debug, Clone)]
pub struct KbRecord {
    /// Source dataset name.
    pub dataset: String,
    /// Aggregated global meta-feature vector.
    pub features: Vec<f64>,
    /// The grid-search winner (the class label).
    pub best_algorithm: AlgorithmKind,
    /// The winner's global weighted MSE.
    pub best_mse: f64,
    /// Number of clients in the simulated federation.
    pub n_clients: usize,
}

/// The knowledge base: labelled meta-feature records.
#[derive(Debug, Clone, Default)]
pub struct KnowledgeBase {
    /// All records.
    pub records: Vec<KbRecord>,
}

/// Minimum instances per client split (§4.1.1: "each client receives at
/// least 500 instances per split"; datasets below the threshold are
/// excluded). Scaled-down builds may pass a smaller value.
pub const PAPER_MIN_INSTANCES_PER_CLIENT: usize = 500;

impl KnowledgeBase {
    /// Builds the KB from generated datasets. Client counts cycle through
    /// `client_counts`, skipping counts whose splits would fall below
    /// `min_per_client` (the paper's exclusion rule).
    pub fn build(
        datasets: &[KbDataset],
        client_counts: &[usize],
        min_per_client: usize,
    ) -> KnowledgeBase {
        // Each dataset is synthesized and labelled independently on the
        // ff-par pool; results are collected in dataset order, so the KB is
        // identical at every thread count.
        let labelled = ff_par::run_indexed(datasets.len(), |i| {
            let ds = &datasets[i];
            let series = synthesis::generate(&ds.spec, ds.seed);
            let n_clients = client_counts[i % client_counts.len()];
            if series.len() / n_clients < min_per_client {
                return None; // excluded per §4.1.1
            }
            let clients = series.split_clients(n_clients);
            label_federation(&clients).map(|(features, best_algorithm, best_mse)| KbRecord {
                dataset: ds.name.clone(),
                features,
                best_algorithm,
                best_mse,
                n_clients,
            })
        });
        KnowledgeBase {
            records: labelled.into_iter().flatten().collect(),
        }
    }

    /// Class labels as registry indices.
    pub fn labels(&self) -> Vec<usize> {
        self.records
            .iter()
            .map(|r| r.best_algorithm.index())
            .collect()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// Extracts + aggregates meta-features over a federation and labels it with
/// the grid-search-winning algorithm. Returns `None` when the splits are
/// too short to model.
pub fn label_federation(clients: &[TimeSeries]) -> Option<(Vec<f64>, AlgorithmKind, f64)> {
    let (features, per_client) = federation_features(clients)?;
    let (best_algorithm, best_mse) = grid_search_best(&per_client)?;
    Some((features, best_algorithm, best_mse))
}

/// Per-client prepared splits: interpolated train/valid values.
pub struct PreparedClient {
    /// Interpolated training values.
    pub train: Vec<f64>,
    /// Interpolated validation values.
    pub valid: Vec<f64>,
}

/// Computes the aggregated global meta-feature vector and the prepared
/// per-client splits used by the grid search.
pub fn federation_features(clients: &[TimeSeries]) -> Option<(Vec<f64>, Vec<PreparedClient>)> {
    if clients.is_empty() {
        return None;
    }
    // Per-client extraction is independent; aggregation stays sequential in
    // client order, so the feature vector is thread-count invariant.
    let (metas, prepared): (Vec<_>, Vec<_>) = ff_par::par_map_indexed(clients, |_, c| {
        let (train, valid) = c.train_valid_split(0.2);
        let meta = ClientMetaFeatures::extract(&train);
        let train = interpolate::interpolated(&train);
        let valid = interpolate::interpolated(&valid);
        (
            meta,
            PreparedClient {
                train: train.values().to_vec(),
                valid: valid.values().to_vec(),
            },
        )
    })
    .into_iter()
    .unzip();
    let global = GlobalMetaFeatures::aggregate(&metas);
    Some((global.values().to_vec(), prepared))
}

/// Grid-searches all Table 2 algorithms over the federation; returns the
/// winner and its weighted global MSE.
///
/// Near-ties (losses within 0.5% of the best) are broken by registry order:
/// on easy datasets several linear models are statistically equivalent, and
/// without deterministic tie-breaking the KB labels become unlearnable
/// noise for the meta-model.
pub fn grid_search_best(clients: &[PreparedClient]) -> Option<(AlgorithmKind, f64)> {
    // Each algorithm's grid is evaluated independently on the ff-par pool;
    // collecting in registry order preserves the tie-break semantics below.
    let kinds = AlgorithmKind::all();
    let per_algorithm: Vec<(AlgorithmKind, f64)> = ff_par::run_indexed(kinds.len(), |i| {
        let kind = kinds[i];
        let mut best_for_kind = f64::INFINITY;
        for hp in grid_for(kind) {
            if let Some(loss) = federated_eval(kind, &hp, clients) {
                best_for_kind = best_for_kind.min(loss);
            }
        }
        best_for_kind.is_finite().then_some((kind, best_for_kind))
    })
    .into_iter()
    .flatten()
    .collect();
    let (_, best_loss) = *per_algorithm.iter().min_by(|a, b| a.1.total_cmp(&b.1))?;
    // First algorithm (registry order) within the tolerance band wins.
    per_algorithm
        .into_iter()
        .find(|(_, l)| *l <= best_loss * 1.005)
        .map(|(k, _)| (k, best_loss.max(0.0)))
}

/// Fits one algorithm+HP on each client's training lags and returns the
/// weighted global validation MSE (Equation 1). Lags 1..=5 are the fixed
/// KB-labelling feature set (the full engine's feature engineering is
/// richer; the KB label only needs a consistent comparison basis).
pub fn federated_eval(
    kind: AlgorithmKind,
    hp: &ff_models::zoo::HyperParams,
    clients: &[PreparedClient],
) -> Option<f64> {
    let lags: Vec<usize> = (1..=5).collect();
    let mut weighted = 0.0;
    let mut total = 0usize;
    for c in clients {
        let (xtr, ytr, xva, yva) = train_valid_lag_split(&c.train, &c.valid, &lags)?;
        let mut model = build_regressor(kind, hp);
        model.fit(&xtr, &ytr).ok()?;
        let pred = model.predict(&xva).ok()?;
        let loss = mse(&yva, &pred);
        if !loss.is_finite() {
            return None;
        }
        weighted += loss * yva.len() as f64;
        total += yva.len();
    }
    if total == 0 {
        None
    } else {
        Some(weighted / total as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{reallike_kb, synthetic_kb};
    use ff_timeseries::synthesis::{generate, SeasonSpec, SynthesisSpec};

    fn federation(seed: u64, n_clients: usize) -> Vec<TimeSeries> {
        let s = generate(
            &SynthesisSpec {
                n: 900,
                seasons: vec![SeasonSpec {
                    period: 12.0,
                    amplitude: 3.0,
                }],
                snr: Some(20.0),
                ..Default::default()
            },
            seed,
        );
        s.split_clients(n_clients)
    }

    #[test]
    fn label_federation_produces_valid_record() {
        let clients = federation(3, 3);
        let (features, algo, loss) = label_federation(&clients).unwrap();
        assert_eq!(features.len(), GlobalMetaFeatures::dim());
        assert!(AlgorithmKind::all().contains(&algo));
        assert!(loss.is_finite() && loss >= 0.0);
    }

    #[test]
    fn winner_beats_every_other_algorithm() {
        let clients = federation(5, 2);
        let (_, prepared) = federation_features(&clients).unwrap();
        let (winner, best_loss) = grid_search_best(&prepared).unwrap();
        for kind in AlgorithmKind::all() {
            for hp in grid_for(kind) {
                if let Some(loss) = federated_eval(kind, &hp, &prepared) {
                    assert!(
                        loss >= best_loss - 1e-12,
                        "{kind:?} loss {loss} beats winner {winner:?} {best_loss}"
                    );
                }
            }
        }
    }

    #[test]
    fn kb_build_small_sample() {
        let mut datasets = synthetic_kb(4);
        datasets.extend(reallike_kb().into_iter().take(2));
        let kb = KnowledgeBase::build(&datasets, &[2, 3], 100);
        assert_eq!(kb.len(), 6);
        for r in &kb.records {
            assert_eq!(r.features.len(), GlobalMetaFeatures::dim());
            assert!(r.best_mse.is_finite());
        }
        assert_eq!(kb.labels().len(), 6);
    }

    #[test]
    fn min_instance_rule_excludes_small_splits() {
        let datasets = synthetic_kb(2); // n = 1500 each
                                        // 20 clients × 500 min = 10 000 > 1500 ⇒ everything excluded.
        let kb = KnowledgeBase::build(&datasets, &[20], PAPER_MIN_INSTANCES_PER_CLIENT);
        assert!(kb.is_empty());
    }

    #[test]
    fn empty_federation_is_none() {
        assert!(label_federation(&[]).is_none());
    }

    #[test]
    fn kb_build_is_thread_count_invariant() {
        let datasets = synthetic_kb(4);
        let build = |threads: usize| {
            ff_par::with_threads(threads, || KnowledgeBase::build(&datasets, &[2, 3], 100))
        };
        let seq = build(1);
        for &threads in &[2usize, 8] {
            let par = build(threads);
            assert_eq!(par.len(), seq.len(), "threads={threads}");
            for (a, b) in par.records.iter().zip(&seq.records) {
                assert_eq!(a.dataset, b.dataset);
                assert_eq!(a.best_algorithm, b.best_algorithm);
                assert_eq!(a.best_mse.to_bits(), b.best_mse.to_bits());
                let af: Vec<u64> = a.features.iter().map(|v| v.to_bits()).collect();
                let bf: Vec<u64> = b.features.iter().map(|v| v.to_bits()).collect();
                assert_eq!(af, bf);
            }
        }
    }
}
