//! The random-search baseline (§5.1).
//!
//! Identical pipeline to the engine — same federation, same feature
//! engineering, same budget accounting — but configurations are sampled
//! uniformly from the **full** Table 2 space: no meta-model warm start and
//! no surrogate guidance. This isolates exactly the contribution of the
//! meta-learning + Bayesian-optimization layers.

use crate::budget::BudgetTracker;
use crate::config::EngineConfig;
use crate::engine::{
    build_runtime, collect_global_meta, derive_lag_count, evaluate_config,
    federated_seasonal_periods, finalize_with, run_feature_engineering, RunResult,
};
use crate::feature_engineering::GlobalFeatureSpec;
use crate::search_space::{pipeline_of, pipeline_space, table2_space};
use crate::{EngineError, Result};
use ff_models::zoo::AlgorithmKind;
use ff_timeseries::TimeSeries;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Random-search baseline over the full Table 2 space.
pub struct RandomSearch {
    cfg: EngineConfig,
}

impl RandomSearch {
    /// Creates the baseline with the same configuration surface as the
    /// engine (warm-start / meta-model options are ignored).
    pub fn new(cfg: EngineConfig) -> RandomSearch {
        RandomSearch { cfg }
    }

    /// Runs the baseline on a federation.
    pub fn run(&self, clients: &[TimeSeries]) -> Result<RunResult> {
        let rt = build_runtime(clients, &self.cfg)?;

        let (global, max_len) = collect_global_meta(&rt)?;
        let spec = if self.cfg.disable_feature_engineering {
            GlobalFeatureSpec::lags_only(derive_lag_count(&global, self.cfg.max_lags))
        } else {
            GlobalFeatureSpec {
                lags: (1..=derive_lag_count(&global, self.cfg.max_lags)).collect(),
                seasonal_periods: federated_seasonal_periods(
                    &rt,
                    max_len,
                    self.cfg.max_seasonal_components,
                )?,
                use_trend: true,
                use_time: true,
            }
        };
        run_feature_engineering(&rt, &spec, self.cfg.importance_threshold)?;

        // Honors the same pipeline switch as the engine so ablations
        // compare like with like (guided vs random over the same space).
        let space = match &self.cfg.pipelines {
            Some(pipes) => pipeline_space(&AlgorithmKind::all(), pipes),
            None => table2_space(&AlgorithmKind::all()),
        };
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let mut best: Option<(ff_bayesopt::space::Configuration, f64)> = None;
        let mut loss_history = Vec::new();
        // The budget covers the tuning loop, matching the engine exactly;
        // at least one configuration is always evaluated.
        let mut tracker = BudgetTracker::start(self.cfg.budget);
        while tracker.iterations() == 0 || !tracker.exhausted() {
            let config = space.sample(&mut rng);
            let loss = evaluate_config(&rt, &config)?;
            loss_history.push(loss);
            match &best {
                Some((_, b)) if loss >= *b => {}
                _ => best = Some((config, loss)),
            }
            tracker.record_iteration();
        }
        let (best_config, best_valid_loss) =
            best.ok_or_else(|| EngineError::InvalidData("no configuration evaluated".into()))?;
        let (global_model, test_mse) = finalize_with(&rt, &best_config, self.cfg.tree_aggregation)?;
        let (bytes_to_clients, bytes_to_server) = rt.log().byte_totals();
        Ok(RunResult {
            best_algorithm: global_model.algorithm(),
            best_pipeline: pipeline_of(&best_config).map(|p| p.name().to_string()),
            best_config,
            best_valid_loss,
            test_mse,
            global_model,
            evaluations: tracker.iterations(),
            loss_history,
            recommended: vec![],
            elapsed: tracker.elapsed(),
            bytes_to_clients,
            bytes_to_server,
            phase_bytes: vec![],
            rounds: vec![],
            failed_trials: 0,
            health: rt.health_report(),
            telemetry: None,
            ensemble_members: vec![],
            feature_lags: vec![],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use ff_timeseries::synthesis::{generate, SeasonSpec, SynthesisSpec};

    fn federation() -> Vec<TimeSeries> {
        let s = generate(
            &SynthesisSpec {
                n: 700,
                seasons: vec![SeasonSpec {
                    period: 10.0,
                    amplitude: 2.0,
                }],
                snr: Some(15.0),
                ..Default::default()
            },
            4,
        );
        s.split_clients(2)
    }

    #[test]
    fn random_search_completes_with_finite_losses() {
        let cfg = EngineConfig {
            budget: Budget::Iterations(5),
            ..Default::default()
        };
        let result = RandomSearch::new(cfg).run(&federation()).unwrap();
        assert_eq!(result.evaluations, 5);
        assert!(result.test_mse.is_finite());
        assert!(result.recommended.is_empty());
        assert_eq!(result.loss_history.len(), 5);
    }

    #[test]
    fn best_valid_loss_is_minimum_of_history() {
        let cfg = EngineConfig {
            budget: Budget::Iterations(6),
            seed: 5,
            ..Default::default()
        };
        let result = RandomSearch::new(cfg).run(&federation()).unwrap();
        let min = result
            .loss_history
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        assert!((result.best_valid_loss - min).abs() < 1e-12);
    }

    #[test]
    fn different_seeds_explore_differently() {
        let mk = |seed| EngineConfig {
            budget: Budget::Iterations(4),
            seed,
            ..Default::default()
        };
        let a = RandomSearch::new(mk(1)).run(&federation()).unwrap();
        let b = RandomSearch::new(mk(2)).run(&federation()).unwrap();
        assert_ne!(a.loss_history, b.loss_history);
    }
}
