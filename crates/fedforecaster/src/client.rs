//! The FedForecaster client: owns one private time-series split and
//! services the server's protocol over `ff-fl`.
//!
//! Every reply contains only statistics, losses, feature importances, or
//! model parameters — never raw samples (asserted by the integration
//! tests via the message log).

use crate::feature_engineering::{
    engineer_with_exog, EngineeredData, ExogenousData, GlobalFeatureSpec,
};
use crate::search_space::{
    algorithm_of, map_to_config, pipeline_of, to_hyperparams, to_pipeline_hyperparams,
};
use ff_bayesopt::space::Configuration;
use ff_fl::client::{EvalOutput, FitOutput, FlClient};
use ff_fl::config::{ConfigMap, ConfigMapExt};
use ff_linalg::Matrix;
use ff_metalearn::features::ClientMetaFeatures;
use ff_models::data::{Standardizer, TargetScaler};
use ff_models::forest::RandomForestRegressor;
use ff_models::metrics::mse;
use ff_models::pipeline::{
    decode_member_blob, encode_external_blob, PipelineId, PipelineModel, RevivedMember,
};
use ff_models::zoo::{build_regressor, AlgorithmKind, FinalizeStrategy};
use ff_models::Regressor;
use ff_timeseries::{interpolate, periodogram, TimeSeries};

/// Protocol operation key.
pub const OP: &str = "op";

/// A client in the FedForecaster federation.
pub struct FedForecasterClient {
    /// Interpolated values (train ++ valid ++ test).
    values: Vec<f64>,
    timestamps: Vec<i64>,
    train_end: usize,
    valid_end: usize,
    /// Meta-features are computed on the raw (pre-interpolation) train part.
    raw_train: TimeSeries,
    exogenous: Option<ExogenousData>,
    engineered: Option<EngineeredData>,
    final_model: Option<(AlgorithmKind, Box<dyn Regressor + Send + Sync>)>,
    /// Local feature/target scalers fitted at final_fit time. Linear model
    /// parameters are exchanged in this *standardized* space: each client
    /// re-centers its own (non-IID) level locally — the same local-
    /// normalization convention the federated N-BEATS baseline uses — so
    /// FedAvg averages comparable weights.
    final_scalers: Option<(Standardizer, TargetScaler)>,
    /// Fitted composed forecaster when the winning configuration selects a
    /// pipeline structure; mutually exclusive with `final_model`.
    final_pipeline: Option<PipelineModel>,
}

impl FedForecasterClient {
    /// Builds a client from its private series with the given validation
    /// and test fractions (time-ordered).
    pub fn new(series: &TimeSeries, valid_fraction: f64, test_fraction: f64) -> Self {
        let n = series.len();
        let test_start = ((n as f64) * (1.0 - test_fraction)).round() as usize;
        let test_start = test_start.clamp(2, n.saturating_sub(1).max(2));
        let train_end = ((n as f64) * (1.0 - test_fraction - valid_fraction)).round() as usize;
        let train_end = train_end.clamp(1, test_start - 1);
        let raw_train = series.slice(0, train_end);
        let filled = interpolate::interpolated(series);
        FedForecasterClient {
            values: filled.values().to_vec(),
            timestamps: filled.timestamps().to_vec(),
            train_end,
            valid_end: test_start,
            raw_train,
            exogenous: None,
            engineered: None,
            final_model: None,
            final_scalers: None,
            final_pipeline: None,
        }
    }

    /// Attaches exogenous covariates (one row per observation, values known
    /// at prediction time). All clients in a federation must use the same
    /// schema; see [`ExogenousData`].
    pub fn with_exogenous(mut self, exog: ExogenousData) -> Self {
        assert_eq!(
            exog.values.rows(),
            self.values.len(),
            "exogenous rows must match the series length"
        );
        self.exogenous = Some(exog);
        self
    }

    /// Total number of observations (the Equation 1 weight |D_j|).
    pub fn total_len(&self) -> usize {
        self.values.len()
    }

    fn err_fit(msg: &str) -> FitOutput {
        FitOutput {
            params: vec![],
            num_examples: 0,
            metrics: ConfigMap::new().with_str("error", msg),
        }
    }

    fn op_meta_features(&self) -> ConfigMap {
        let mf = ClientMetaFeatures::extract(&self.raw_train);
        ConfigMap::new()
            .with_floats("meta_features", mf.to_vec())
            .with_int("n_total", self.total_len() as i64)
            .with_int("n_train", self.train_end as i64)
    }

    fn op_spectrum(&self, config: &ConfigMap) -> ConfigMap {
        let grid = config
            .get("grid_periods")
            .and_then(|v| v.as_float_vec())
            .unwrap_or(&[])
            .to_vec();
        let spec = periodogram::spectrum_on_grid(&self.values[..self.train_end], &grid);
        ConfigMap::new().with_floats("spectrum", spec)
    }

    fn op_feature_engineering(&mut self, config: &ConfigMap) -> FitOutput {
        let Some(spec) = GlobalFeatureSpec::from_config_map(config) else {
            return Self::err_fit("bad feature spec");
        };
        let Some(data) = engineer_with_exog(
            &self.values,
            &self.timestamps,
            self.train_end,
            self.valid_end,
            &spec,
            self.exogenous.as_ref(),
        ) else {
            return Self::err_fit("series too short for feature engineering");
        };
        // §4.2.2: Random-Forest feature importances on the training rows.
        let mut rf = RandomForestRegressor::new(20, 6, 7);
        rf.feature_subsample = 1.0;
        let importances = match rf.fit(&data.x_train, &data.y_train) {
            Ok(()) => rf
                .feature_importances()
                .map(|v| v.to_vec())
                .unwrap_or_default(),
            Err(_) => vec![1.0 / data.x_train.cols() as f64; data.x_train.cols()],
        };
        let n_rows = data.y_train.len() as u64;
        self.engineered = Some(data);
        FitOutput {
            params: vec![],
            num_examples: n_rows,
            metrics: ConfigMap::new().with_floats("importances", importances),
        }
    }

    fn op_apply_selection(&mut self, config: &ConfigMap) -> FitOutput {
        let Some(keep) = config.get("keep").and_then(|v| v.as_float_vec()) else {
            return Self::err_fit("missing selection mask");
        };
        let Some(data) = &self.engineered else {
            return Self::err_fit("feature engineering not run");
        };
        let keep: Vec<usize> = keep
            .iter()
            .map(|&v| v as usize)
            .filter(|&j| j < data.x_train.cols())
            .collect();
        if keep.is_empty() {
            return Self::err_fit("empty selection");
        }
        self.engineered = Some(data.select_columns(&keep));
        FitOutput {
            params: vec![],
            num_examples: keep.len() as u64,
            metrics: ConfigMap::new().with_int("kept", keep.len() as i64),
        }
    }

    fn op_fit_eval(&mut self, config: &ConfigMap) -> FitOutput {
        let cfg = map_to_config(config);
        let Some(algo) = algorithm_of(&cfg) else {
            return Self::err_fit("missing algorithm");
        };
        if let Some(pipe) = pipeline_of(&cfg) {
            return self.pipeline_fit_eval(pipe, algo, &cfg);
        }
        let Some(data) = &self.engineered else {
            return Self::err_fit("feature engineering not run");
        };
        let hp = to_hyperparams(&cfg);
        let mut model = build_regressor(algo, &hp);
        if let Err(e) = model.fit(&data.x_train, &data.y_train) {
            return Self::err_fit(&format!("fit failed: {e}"));
        }
        let loss = match model.predict(&data.x_valid) {
            Ok(pred) if !pred.is_empty() => mse(&data.y_valid, &pred),
            _ => f64::INFINITY,
        };
        FitOutput {
            params: vec![],
            num_examples: self.total_len() as u64,
            metrics: ConfigMap::new().with_float("valid_loss", loss),
        }
    }

    /// Tunes one pipeline candidate: fits the composed forecaster on the
    /// train prefix only and scores one-step-ahead MSE over the validation
    /// range — the same rows the flat path's engineered `y_valid` covers,
    /// so losses are comparable across both kinds of candidate.
    fn pipeline_fit_eval(
        &self,
        pipe: PipelineId,
        algo: AlgorithmKind,
        cfg: &Configuration,
    ) -> FitOutput {
        let hp = to_pipeline_hyperparams(cfg);
        let model = match PipelineModel::fit(pipe, algo, &hp, &self.values, self.train_end) {
            Ok(m) => m,
            Err(e) => return Self::err_fit(&format!("pipeline fit failed: {e}")),
        };
        let loss = match model.predict_range(&self.values, self.train_end, self.valid_end) {
            Ok(pred) => mse(&self.values[self.train_end..self.valid_end], &pred),
            Err(_) => f64::INFINITY,
        };
        FitOutput {
            params: vec![],
            num_examples: self.total_len() as u64,
            metrics: ConfigMap::new().with_float("valid_loss", loss),
        }
    }

    /// Final pipeline fit on train ++ valid (Algorithm 1 line 24). Ships a
    /// blob-v3 member for server-side ensemble union; every registered
    /// algorithm can ship because [`PipelineModel::to_blob`] probes
    /// non-codec models into frozen affine form.
    fn pipeline_final_fit(
        &mut self,
        pipe: PipelineId,
        algo: AlgorithmKind,
        cfg: &Configuration,
    ) -> FitOutput {
        let hp = to_pipeline_hyperparams(cfg);
        let model = match PipelineModel::fit(pipe, algo, &hp, &self.values, self.valid_end) {
            Ok(m) => m,
            Err(e) => return Self::err_fit(&format!("pipeline final fit failed: {e}")),
        };
        let test_loss = match model.predict_range(&self.values, self.valid_end, self.values.len()) {
            Ok(pred) => mse(&self.values[self.valid_end..], &pred),
            Err(_) => f64::INFINITY,
        };
        let blob = match model.to_blob() {
            Ok(b) => b,
            Err(e) => return Self::err_fit(&format!("pipeline serialization failed: {e}")),
        };
        self.final_model = None;
        self.final_scalers = None;
        self.final_pipeline = Some(model);
        FitOutput {
            params: vec![],
            num_examples: self.total_len() as u64,
            metrics: ConfigMap::new()
                .with_float("test_loss_local", test_loss)
                .with_bytes("model_blob", blob),
        }
    }

    fn op_final_fit(&mut self, config: &ConfigMap) -> FitOutput {
        let cfg = map_to_config(config);
        let Some(algo) = algorithm_of(&cfg) else {
            return Self::err_fit("missing algorithm");
        };
        if let Some(pipe) = pipeline_of(&cfg) {
            return self.pipeline_final_fit(pipe, algo, &cfg);
        }
        let Some(data) = &self.engineered else {
            return Self::err_fit("feature engineering not run");
        };
        let hp = to_hyperparams(&cfg);
        // Refit on train + valid (Algorithm 1 line 24).
        let x_full = vstack(&data.x_train, &data.x_valid);
        let mut y_full = data.y_train.clone();
        y_full.extend_from_slice(&data.y_valid);
        // Local standardization (client-private preprocessing): model
        // parameters exchanged with the server live in this space.
        let scaler = Standardizer::fit(&x_full);
        let yscaler = TargetScaler::fit(&y_full);
        let xs_full = scaler.transform(&x_full);
        let ys_full: Vec<f64> = y_full.iter().map(|&v| yscaler.scale(v)).collect();
        let mut model = build_regressor(algo, &hp);
        if let Err(e) = model.fit(&xs_full, &ys_full) {
            return Self::err_fit(&format!("final fit failed: {e}"));
        }
        // The algorithm's declared finalize strategy — not the algorithm
        // itself — decides what the client ships back: ensemble-union
        // winners serialize the fitted model for server-side union
        // aggregation; coefficient-average winners derive raw-space
        // (coef, intercept) by probing so the server can FedAvg
        // comparable weights.
        let (params, blob) = match algo.spec().finalize() {
            FinalizeStrategy::CoefficientAverage => {
                (probe_linear_params(model.as_ref(), x_full.cols()), None)
            }
            FinalizeStrategy::EnsembleUnion => {
                let blob = model
                    .to_blob()
                    .map(|model_bytes| encode_external_blob(algo, &scaler, &yscaler, &model_bytes));
                (vec![], blob)
            }
        };
        let test_loss = self.local_test_loss(model.as_ref(), &scaler, &yscaler, data);
        let mut metrics = ConfigMap::new().with_float("test_loss_local", test_loss);
        if let Some(b) = blob {
            metrics = metrics.with_bytes("model_blob", b);
        }
        self.final_model = Some((algo, model));
        self.final_scalers = Some((scaler, yscaler));
        self.final_pipeline = None;
        FitOutput {
            params,
            num_examples: self.total_len() as u64,
            metrics,
        }
    }

    fn err_eval(msg: &str) -> EvalOutput {
        EvalOutput {
            loss: f64::INFINITY,
            num_examples: 0,
            metrics: ConfigMap::new().with_str("error", msg),
        }
    }

    /// Evaluates the weighted union of serialized client models on the
    /// requested split: `ŷ = Σ wⱼ · memberⱼ`. Members mix freely —
    /// single-node (blob v2) members predict from the engineered feature
    /// rows, pipeline (blob v3) members recompute their transforms causally
    /// from the raw series over the matching index range; both produce one
    /// prediction per target row because the engineered `y_valid` / `y_test`
    /// are exactly `values[train_end..valid_end]` / `values[valid_end..]`.
    fn op_test_global_ensemble(&self, config: &ConfigMap) -> EvalOutput {
        let Some(data) = &self.engineered else {
            return Self::err_eval("not engineered");
        };
        let Some(weights) = config.get("weights").and_then(|v| v.as_float_vec()) else {
            return Self::err_eval("missing weights");
        };
        let split = config.str_or("split", "test");
        let (x_eval, y_eval) = Self::eval_split(data, split);
        if y_eval.is_empty() {
            return Self::err_eval("empty eval split");
        }
        let mut agg = vec![0.0; y_eval.len()];
        for (j, &w) in weights.iter().enumerate() {
            let Some(blob) = config.get(&format!("blob_{j}")).and_then(|v| v.as_bytes()) else {
                return Self::err_eval(&format!("missing blob_{j}"));
            };
            let member = match decode_member_blob(blob) {
                Ok(m) => m,
                Err(e) => return Self::err_eval(&e),
            };
            let pred = match &member {
                RevivedMember::SingleNode { .. } => member.predict_features(x_eval),
                RevivedMember::Pipeline(_) => {
                    let (start, end) = self.eval_range(split);
                    member.predict_series(&self.values, start, end)
                }
            };
            match pred {
                Ok(p) if p.len() == y_eval.len() => {
                    for (a, v) in agg.iter_mut().zip(p) {
                        *a += w * v;
                    }
                }
                Ok(_) => return Self::err_eval("member length mismatch"),
                Err(e) => return Self::err_eval(&e),
            }
        }
        EvalOutput {
            loss: mse(y_eval, &agg),
            num_examples: y_eval.len() as u64,
            metrics: ConfigMap::new(),
        }
    }

    fn local_test_loss(
        &self,
        model: &dyn Regressor,
        scaler: &Standardizer,
        yscaler: &TargetScaler,
        data: &EngineeredData,
    ) -> f64 {
        if data.y_test.is_empty() {
            return f64::INFINITY;
        }
        let xs_test = scaler.transform(&data.x_test);
        match model.predict(&xs_test) {
            Ok(pred) => {
                let raw: Vec<f64> = pred.iter().map(|&v| yscaler.unscale(v)).collect();
                mse(&data.y_test, &raw)
            }
            Err(_) => f64::INFINITY,
        }
    }

    /// Picks the evaluation split for the deployment ops: "valid" (used by
    /// the Auto aggregation mode for leakage-free model selection) or
    /// "test" (the default, for final reporting).
    fn eval_split<'d>(data: &'d EngineeredData, split: &str) -> (&'d Matrix, &'d [f64]) {
        if split == "valid" {
            (&data.x_valid, &data.y_valid)
        } else {
            (&data.x_test, &data.y_test)
        }
    }

    /// Raw-series index range of the requested split, elementwise aligned
    /// with [`Self::eval_split`]'s targets.
    fn eval_range(&self, split: &str) -> (usize, usize) {
        if split == "valid" {
            (self.train_end, self.valid_end)
        } else {
            (self.valid_end, self.values.len())
        }
    }

    fn op_test_global_linear(&self, params: &[f64]) -> EvalOutput {
        let (Some(data), Some((scaler, yscaler))) = (&self.engineered, &self.final_scalers) else {
            return Self::err_eval("not finalized");
        };
        let p = data.x_test.cols();
        if params.len() != p + 1 || data.y_test.is_empty() {
            return Self::err_eval("bad global params");
        }
        let (coef, intercept) = (&params[..p], params[p]);
        let xs_test = scaler.transform(&data.x_test);
        let pred: Vec<f64> = (0..xs_test.rows())
            .map(|i| yscaler.unscale(ff_linalg::vector::dot(xs_test.row(i), coef) + intercept))
            .collect();
        EvalOutput {
            loss: mse(&data.y_test, &pred),
            num_examples: data.y_test.len() as u64,
            metrics: ConfigMap::new(),
        }
    }

    fn op_test_local(&self, config: &ConfigMap) -> EvalOutput {
        if let Some(model) = &self.final_pipeline {
            let (start, end) = self.eval_range(config.str_or("split", "test"));
            if start >= end {
                return Self::err_eval("empty eval split");
            }
            let loss = match model.predict_range(&self.values, start, end) {
                Ok(pred) => mse(&self.values[start..end], &pred),
                Err(_) => f64::INFINITY,
            };
            return EvalOutput {
                loss,
                num_examples: (end - start) as u64,
                metrics: ConfigMap::new(),
            };
        }
        let (Some(data), Some((_, model)), Some((scaler, yscaler))) =
            (&self.engineered, &self.final_model, &self.final_scalers)
        else {
            return Self::err_eval("no final model");
        };
        let (x_eval, y_eval) = Self::eval_split(data, config.str_or("split", "test"));
        if y_eval.is_empty() {
            return Self::err_eval("empty eval split");
        }
        let xs = scaler.transform(x_eval);
        let loss = match model.predict(&xs) {
            Ok(pred) => {
                let raw: Vec<f64> = pred.iter().map(|&v| yscaler.unscale(v)).collect();
                mse(y_eval, &raw)
            }
            Err(_) => f64::INFINITY,
        };
        EvalOutput {
            loss,
            num_examples: y_eval.len() as u64,
            metrics: ConfigMap::new(),
        }
    }
}

/// Derives raw-space linear parameters `[coef.., intercept]` by probing the
/// fitted model with unit vectors — exact for any affine predictor
/// regardless of internal standardization.
fn probe_linear_params(model: &dyn Regressor, p: usize) -> Vec<f64> {
    let mut probe = Matrix::zeros(p + 1, p);
    for j in 0..p {
        probe.set(j + 1, j, 1.0);
    }
    match model.predict(&probe) {
        Ok(pred) => {
            let intercept = pred[0];
            let mut out: Vec<f64> = (0..p).map(|j| pred[j + 1] - intercept).collect();
            out.push(intercept);
            out
        }
        Err(_) => vec![],
    }
}

fn vstack(a: &Matrix, b: &Matrix) -> Matrix {
    if b.rows() == 0 {
        return a.clone();
    }
    Matrix::from_fn(a.rows() + b.rows(), a.cols(), |i, j| {
        if i < a.rows() {
            a.get(i, j)
        } else {
            b.get(i - a.rows(), j)
        }
    })
}

impl FlClient for FedForecasterClient {
    fn get_properties(&mut self, config: &ConfigMap) -> ConfigMap {
        match config.str_or(OP, "") {
            "meta_features" => self.op_meta_features(),
            "spectrum" => self.op_spectrum(config),
            other => ConfigMap::new().with_str("error", &format!("unknown op {other}")),
        }
    }

    fn fit(&mut self, _params: &[f64], config: &ConfigMap) -> FitOutput {
        match config.str_or(OP, "") {
            "feature_engineering" => self.op_feature_engineering(config),
            "apply_selection" => self.op_apply_selection(config),
            "fit_eval" => self.op_fit_eval(config),
            "final_fit" => self.op_final_fit(config),
            other => Self::err_fit(&format!("unknown op {other}")),
        }
    }

    fn evaluate(&mut self, params: &[f64], config: &ConfigMap) -> EvalOutput {
        match config.str_or(OP, "") {
            "test_global_linear" => self.op_test_global_linear(params),
            "test_global_ensemble" => self.op_test_global_ensemble(config),
            "test_local" => self.op_test_local(config),
            other => EvalOutput {
                loss: f64::INFINITY,
                num_examples: 0,
                metrics: ConfigMap::new().with_str("error", &format!("unknown op {other}")),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search_space::config_to_map;
    use ff_bayesopt::space::{Configuration, ParamValue};

    fn series(n: usize) -> TimeSeries {
        let values: Vec<f64> = (0..n)
            .map(|t| 5.0 + 0.02 * t as f64 + (std::f64::consts::TAU * t as f64 / 7.0).sin())
            .collect();
        TimeSeries::with_regular_index(0, 86_400, values)
    }

    fn engineered_client() -> FedForecasterClient {
        let mut c = FedForecasterClient::new(&series(200), 0.15, 0.15);
        let spec = GlobalFeatureSpec {
            lags: vec![1, 2, 3],
            seasonal_periods: vec![7.0],
            use_trend: true,
            use_time: true,
        };
        let out = c.fit(
            &[],
            &spec.to_config_map().with_str(OP, "feature_engineering"),
        );
        assert!(!out.metrics.contains_key("error"), "{:?}", out.metrics);
        c
    }

    fn lasso_config() -> ConfigMap {
        let mut cfg = Configuration::new();
        cfg.insert("algorithm".into(), ParamValue::Cat("Lasso".into()));
        cfg.insert("lasso_alpha".into(), ParamValue::Float(1e-3));
        config_to_map(&cfg).with_str(OP, "fit_eval")
    }

    #[test]
    fn meta_features_property_roundtrips() {
        let mut c = FedForecasterClient::new(&series(300), 0.15, 0.15);
        let props = c.get_properties(&ConfigMap::new().with_str(OP, "meta_features"));
        let mf = props["meta_features"].as_float_vec().unwrap();
        assert!(ClientMetaFeatures::from_vec(mf).is_some());
        assert_eq!(props.int_or("n_total", 0), 300);
    }

    #[test]
    fn spectrum_property_matches_grid_length() {
        let mut c = FedForecasterClient::new(&series(300), 0.15, 0.15);
        let grid = periodogram::log_period_grid(100.0);
        let props = c.get_properties(
            &ConfigMap::new()
                .with_str(OP, "spectrum")
                .with_floats("grid_periods", grid.clone()),
        );
        assert_eq!(props["spectrum"].as_float_vec().unwrap().len(), grid.len());
    }

    #[test]
    fn fit_eval_returns_finite_loss() {
        let mut c = engineered_client();
        let out = c.fit(&[], &lasso_config());
        let loss = out.metrics.float_or("valid_loss", f64::NAN);
        assert!(loss.is_finite() && loss >= 0.0, "loss {loss}");
        assert_eq!(out.num_examples, 200);
    }

    #[test]
    fn fit_eval_before_engineering_is_an_error() {
        let mut c = FedForecasterClient::new(&series(200), 0.15, 0.15);
        let out = c.fit(&[], &lasso_config());
        assert!(out.metrics.contains_key("error"));
    }

    #[test]
    fn selection_reduces_columns() {
        let mut c = engineered_client();
        let out = c.fit(
            &[],
            &ConfigMap::new()
                .with_str(OP, "apply_selection")
                .with_floats("keep", vec![0.0, 1.0, 2.0]),
        );
        assert_eq!(out.metrics.int_or("kept", 0), 3);
        // fit_eval still works on the reduced matrix.
        let out = c.fit(&[], &lasso_config());
        assert!(out.metrics.float_or("valid_loss", f64::NAN).is_finite());
    }

    #[test]
    fn final_fit_linear_returns_probed_params_and_global_eval_matches_local() {
        let mut c = engineered_client();
        let out = c.fit(&[], &lasso_config().with_str(OP, "final_fit"));
        let data_cols = c.engineered.as_ref().unwrap().x_train.cols();
        assert_eq!(out.params.len(), data_cols + 1);
        // Evaluating the client's own params globally must equal its local
        // test loss (same model, same data).
        let local = c.evaluate(&[], &ConfigMap::new().with_str(OP, "test_local"));
        let global = c.evaluate(
            &out.params,
            &ConfigMap::new().with_str(OP, "test_global_linear"),
        );
        assert!((local.loss - global.loss).abs() < 1e-6 * (1.0 + local.loss));
    }

    #[test]
    fn final_fit_xgb_returns_no_params_but_evaluates_locally() {
        let mut c = engineered_client();
        let mut cfg = Configuration::new();
        cfg.insert("algorithm".into(), ParamValue::Cat("XGBRegressor".into()));
        let out = c.fit(&[], &config_to_map(&cfg).with_str(OP, "final_fit"));
        assert!(out.params.is_empty());
        let local = c.evaluate(&[], &ConfigMap::new().with_str(OP, "test_local"));
        assert!(local.loss.is_finite());
        assert!(local.num_examples > 0);
    }

    #[test]
    fn final_fit_xgb_ships_a_model_blob_and_singleton_ensemble_matches_local() {
        let mut c = engineered_client();
        let mut cfg = Configuration::new();
        cfg.insert("algorithm".into(), ParamValue::Cat("XGBRegressor".into()));
        let out = c.fit(&[], &config_to_map(&cfg).with_str(OP, "final_fit"));
        let blob = out.metrics["model_blob"].as_bytes().unwrap().to_vec();
        assert!(!blob.is_empty());
        // A one-member ensemble of the client's own model must reproduce its
        // local test loss exactly.
        let local = c.evaluate(&[], &ConfigMap::new().with_str(OP, "test_local"));
        let ens = c.evaluate(
            &[],
            &ConfigMap::new()
                .with_str(OP, "test_global_ensemble")
                .with_floats("weights", vec![1.0])
                .with_bytes("blob_0", blob),
        );
        assert!(
            (local.loss - ens.loss).abs() < 1e-9 * (1.0 + local.loss),
            "local {} vs singleton ensemble {}",
            local.loss,
            ens.loss
        );
    }

    #[test]
    fn ensemble_with_corrupt_blob_reports_error() {
        let mut c = engineered_client();
        let ens = c.evaluate(
            &[],
            &ConfigMap::new()
                .with_str(OP, "test_global_ensemble")
                .with_floats("weights", vec![1.0])
                .with_bytes("blob_0", vec![9, 9, 9]),
        );
        assert!(ens.loss.is_infinite());
        assert!(ens.metrics.contains_key("error"));
    }

    #[test]
    fn unknown_ops_are_reported() {
        let mut c = FedForecasterClient::new(&series(100), 0.15, 0.15);
        let props = c.get_properties(&ConfigMap::new().with_str(OP, "nope"));
        assert!(props.contains_key("error"));
        let out = c.fit(&[], &ConfigMap::new().with_str(OP, "nope"));
        assert!(out.metrics.contains_key("error"));
        let ev = c.evaluate(&[], &ConfigMap::new().with_str(OP, "nope"));
        assert!(ev.loss.is_infinite());
    }

    fn pipeline_config(structure: &str, algo: &str) -> ConfigMap {
        let mut cfg = Configuration::new();
        cfg.insert(
            crate::search_space::PIPELINE_KEY.into(),
            ParamValue::Cat(structure.into()),
        );
        cfg.insert("algorithm".into(), ParamValue::Cat(algo.into()));
        config_to_map(&cfg)
    }

    #[test]
    fn pipeline_fit_eval_returns_finite_loss_without_engineering() {
        let mut c = FedForecasterClient::new(&series(200), 0.15, 0.15);
        let out = c.fit(
            &[],
            &pipeline_config("trend_lagged", "Lasso").with_str(OP, "fit_eval"),
        );
        let loss = out.metrics.float_or("valid_loss", f64::NAN);
        assert!(loss.is_finite() && loss >= 0.0, "{:?}", out.metrics);
        assert_eq!(out.num_examples, 200);
    }

    #[test]
    fn pipeline_final_fit_ships_v3_blob_and_singleton_ensemble_matches_local() {
        let mut c = engineered_client();
        let out = c.fit(
            &[],
            &pipeline_config("trend_lagged", "XGBRegressor").with_str(OP, "final_fit"),
        );
        let blob = out.metrics["model_blob"].as_bytes().unwrap().to_vec();
        assert_eq!(blob[0], 3, "pipeline members ship blob v3");
        let local = c.evaluate(&[], &ConfigMap::new().with_str(OP, "test_local"));
        assert!(local.loss.is_finite());
        let ens = c.evaluate(
            &[],
            &ConfigMap::new()
                .with_str(OP, "test_global_ensemble")
                .with_floats("weights", vec![1.0])
                .with_bytes("blob_0", blob),
        );
        assert!(
            (local.loss - ens.loss).abs() < 1e-9 * (1.0 + local.loss),
            "local {} vs singleton ensemble {}",
            local.loss,
            ens.loss
        );
    }

    #[test]
    fn ensembles_mix_v2_and_v3_members() {
        // One client finalizes a flat XGB (blob v2), another a pipeline
        // (blob v3); a third evaluates the mixed union — both kinds score
        // the same target rows, so the weighted sum is well defined.
        let mut flat = engineered_client();
        let mut cfg = Configuration::new();
        cfg.insert("algorithm".into(), ParamValue::Cat("XGBRegressor".into()));
        let v2 = flat
            .fit(&[], &config_to_map(&cfg).with_str(OP, "final_fit"))
            .metrics["model_blob"]
            .as_bytes()
            .unwrap()
            .to_vec();
        let mut piped = engineered_client();
        let v3 = piped
            .fit(
                &[],
                &pipeline_config("ema_trend_lagged", "Lasso").with_str(OP, "final_fit"),
            )
            .metrics["model_blob"]
            .as_bytes()
            .unwrap()
            .to_vec();
        assert_eq!((v2[0], v3[0]), (2, 3));
        let mut judge = engineered_client();
        let ens = judge.evaluate(
            &[],
            &ConfigMap::new()
                .with_str(OP, "test_global_ensemble")
                .with_floats("weights", vec![0.5, 0.5])
                .with_bytes("blob_0", v2)
                .with_bytes("blob_1", v3),
        );
        assert!(ens.loss.is_finite(), "{:?}", ens.metrics);
        assert!(ens.num_examples > 0);
    }

    #[test]
    fn pipeline_final_fit_replaces_flat_final_model() {
        let mut c = engineered_client();
        c.fit(&[], &lasso_config().with_str(OP, "final_fit"));
        assert!(c.final_model.is_some());
        c.fit(
            &[],
            &pipeline_config("lagged", "Lasso").with_str(OP, "final_fit"),
        );
        assert!(c.final_model.is_none() && c.final_pipeline.is_some());
        let local = c.evaluate(
            &[],
            &ConfigMap::new()
                .with_str(OP, "test_local")
                .with_str("split", "valid"),
        );
        assert!(local.loss.is_finite());
    }

    #[test]
    fn probe_recovers_known_affine_function() {
        struct Affine;
        impl Regressor for Affine {
            fn fit(&mut self, _: &Matrix, _: &[f64]) -> ff_models::Result<()> {
                Ok(())
            }
            fn predict(&self, x: &Matrix) -> ff_models::Result<Vec<f64>> {
                Ok((0..x.rows())
                    .map(|i| 2.0 * x.get(i, 0) - 3.0 * x.get(i, 1) + 7.0)
                    .collect())
            }
        }
        let p = probe_linear_params(&Affine, 2);
        assert!((p[0] - 2.0).abs() < 1e-12);
        assert!((p[1] + 3.0).abs() < 1e-12);
        assert!((p[2] - 7.0).abs() < 1e-12);
    }
}
