//! The N-BEATS baselines of §5: federated N-BEATS trained with FedAvg
//! across the clients, and "N-Beats Cons." trained centrally on the
//! consolidated series.

use crate::budget::{Budget, BudgetTracker};
use crate::{EngineError, Result};
use ff_fl::client::{EvalOutput, FitOutput, FlClient};
use ff_fl::config::{ConfigMap, ConfigMapExt};
use ff_fl::message::Instruction;
use ff_fl::runtime::FederatedRuntime;
use ff_fl::secure::{mask_contribution, unmask_average};
use ff_fl::strategy::{aggregate_loss, fedavg, unwrap_eval_replies, unwrap_fit_replies};
use ff_models::metrics::mse;
use ff_neural::nbeats::{NBeats, NBeatsConfig};
use ff_neural::Parameterized;
use ff_timeseries::{interpolate, TimeSeries};
use std::time::Duration;

/// Result of an N-BEATS baseline run.
#[derive(Debug, Clone)]
pub struct NBeatsResult {
    /// Aggregated one-step test MSE.
    pub test_mse: f64,
    /// FedAvg rounds completed (1 for the consolidated variant).
    pub rounds: usize,
    /// Wall-clock spent training.
    pub elapsed: Duration,
}

/// A federated N-BEATS client: trains the shared architecture locally and
/// ships flat weights for FedAvg.
struct NBeatsClient {
    net: NBeats,
    train: Vec<f64>,
    valid: Vec<f64>,
    test: Vec<f64>,
    local_steps: usize,
}

impl NBeatsClient {
    fn new(series: &TimeSeries, cfg: NBeatsConfig, local_steps: usize) -> NBeatsClient {
        let filled = interpolate::interpolated(series);
        let v = filled.values();
        let n = v.len();
        let test_start = ((n as f64) * 0.85).round() as usize;
        let train_end = ((n as f64) * 0.70).round() as usize;
        NBeatsClient {
            net: NBeats::new(cfg),
            train: v[..train_end].to_vec(),
            valid: v[train_end..test_start].to_vec(),
            test: v[test_start..].to_vec(),
            local_steps,
        }
    }

    fn eval_split(&self, split: &str) -> (f64, usize) {
        let (history, eval): (Vec<f64>, &[f64]) = match split {
            "valid" => (self.train.clone(), &self.valid),
            _ => {
                let mut h = self.train.clone();
                h.extend_from_slice(&self.valid);
                (h, &self.test)
            }
        };
        if eval.is_empty() {
            return (f64::INFINITY, 0);
        }
        let preds = self.net.predict_one_step(&history, eval);
        (mse(eval, &preds), eval.len())
    }
}

impl FlClient for NBeatsClient {
    fn get_properties(&mut self, _config: &ConfigMap) -> ConfigMap {
        ConfigMap::new().with_int("n_train", self.train.len() as i64)
    }

    fn fit(&mut self, params: &[f64], config: &ConfigMap) -> FitOutput {
        if !params.is_empty() {
            self.net.set_params_flat(params);
        }
        let steps = config.int_or("local_steps", self.local_steps as i64) as usize;
        // Local training on train + valid (the baselines tune against the
        // same optimization data the engine sees).
        let mut data = self.train.clone();
        data.extend_from_slice(&self.valid);
        let done = self.net.fit_series(&data, steps, || false);
        let num_examples = data.len() as u64;
        let raw = self.net.params_flat();
        // Secure aggregation: mask the weighted update so the server only
        // ever sees the sum (ff_fl::secure). The round seed and federation
        // layout arrive in the config (models a completed key agreement).
        let upload = match (
            config.int_or("secure_round", -1),
            config.int_or("client_id", -1),
            config.int_or("n_clients", -1),
        ) {
            (round, id, n) if round >= 0 && id >= 0 && n > 0 => mask_contribution(
                &raw,
                num_examples as f64,
                id as usize,
                n as usize,
                round as u64,
            ),
            _ => raw,
        };
        FitOutput {
            params: upload,
            num_examples,
            metrics: ConfigMap::new().with_int("steps_done", done as i64),
        }
    }

    fn evaluate(&mut self, params: &[f64], config: &ConfigMap) -> EvalOutput {
        if !params.is_empty() {
            self.net.set_params_flat(params);
        }
        let (loss, n) = self.eval_split(config.str_or("split", "test"));
        EvalOutput {
            loss,
            num_examples: n as u64,
            metrics: ConfigMap::new(),
        }
    }
}

/// Runs federated N-BEATS with FedAvg until the budget is exhausted.
///
/// `local_steps` mini-batch steps per client per round; the architecture is
/// [`NBeatsConfig::small`] by default (pass `paper_config = true` for the
/// §5.1 architecture — 512 seasonal / 64 trend neurons, batch 256,
/// lr 5e-4 — which is markedly slower).
pub fn run_federated_nbeats(
    clients: &[TimeSeries],
    budget: Budget,
    local_steps: usize,
    paper_config: bool,
    seed: u64,
) -> Result<NBeatsResult> {
    run_federated_nbeats_opts(clients, budget, local_steps, paper_config, seed, false)
}

/// [`run_federated_nbeats`] with secure aggregation: when `secure` is set,
/// every round's weight uploads are pairwise-masked
/// ([`ff_fl::secure`]) so the server only sees their sum. The resulting
/// global model is numerically identical to plain FedAvg (the masks cancel
/// exactly up to floating-point round-off); only the privacy surface
/// changes.
pub fn run_federated_nbeats_opts(
    clients: &[TimeSeries],
    budget: Budget,
    local_steps: usize,
    paper_config: bool,
    seed: u64,
    secure: bool,
) -> Result<NBeatsResult> {
    if clients.is_empty() {
        return Err(EngineError::InvalidData("no clients".into()));
    }
    let n_clients = clients.len();
    let cfg = nbeats_config(paper_config, seed);
    let boxed: Vec<Box<dyn FlClient>> = clients
        .iter()
        .map(|s| Box::new(NBeatsClient::new(s, cfg.clone(), local_steps)) as Box<dyn FlClient>)
        .collect();
    let rt = FederatedRuntime::new(boxed);

    let mut tracker = BudgetTracker::start(budget);
    // Server-side initialization: broadcast one canonical weight vector so
    // round-one FedAvg averages aligned parameters.
    let mut server_net = NBeats::new(cfg);
    let mut global = server_net.params_flat();
    let mut rounds = 0usize;
    while !tracker.exhausted() {
        if secure {
            // Each client must learn its own id; fall back to per-client
            // calls so the config can differ.
            let mut uploads = Vec::with_capacity(n_clients);
            let mut total_weight = 0.0;
            for id in 0..n_clients {
                let reply = rt.call(
                    id,
                    &Instruction::Fit {
                        params: global.clone(),
                        config: ConfigMap::new()
                            .with_int("local_steps", local_steps as i64)
                            .with_int("secure_round", rounds as i64)
                            .with_int("client_id", id as i64)
                            .with_int("n_clients", n_clients as i64),
                    },
                )?;
                match reply {
                    ff_fl::message::Reply::FitRes {
                        params,
                        num_examples,
                        ..
                    } => {
                        total_weight += num_examples as f64;
                        uploads.push(params);
                    }
                    other => {
                        return Err(EngineError::Federation(ff_fl::FlError::Client(format!(
                            "unexpected reply {other:?}"
                        ))))
                    }
                }
            }
            global = unmask_average(&uploads, total_weight).ok_or_else(|| {
                EngineError::Federation(ff_fl::FlError::Client("unmasking failed".into()))
            })?;
        } else {
            let replies = rt.broadcast_all(&Instruction::Fit {
                params: global.clone(),
                config: ConfigMap::new().with_int("local_steps", local_steps as i64),
            })?;
            let fit_results = unwrap_fit_replies(replies).map_err(EngineError::Federation)?;
            global = fedavg(&fit_results).map_err(EngineError::Federation)?;
        }
        rounds += 1;
        tracker.record_iteration();
    }
    let eval = rt.broadcast_all(&Instruction::Evaluate {
        params: global,
        config: ConfigMap::new().with_str("split", "test"),
    })?;
    let losses = unwrap_eval_replies(eval).map_err(EngineError::Federation)?;
    let test_mse = aggregate_loss(&losses).map_err(EngineError::Federation)?;
    Ok(NBeatsResult {
        test_mse,
        rounds,
        elapsed: tracker.elapsed(),
    })
}

/// Trains N-BEATS centrally on a consolidated series ("N-Beats Cons."):
/// fit on the first 85%, report one-step MSE on the last 15%.
pub fn run_consolidated_nbeats(
    series: &TimeSeries,
    budget: Budget,
    paper_config: bool,
    seed: u64,
) -> Result<NBeatsResult> {
    let filled = interpolate::interpolated(series);
    let v = filled.values();
    if v.len() < 60 {
        return Err(EngineError::InvalidData("series too short".into()));
    }
    let test_start = ((v.len() as f64) * 0.85).round() as usize;
    let mut net = NBeats::new(nbeats_config(paper_config, seed));
    let tracker = BudgetTracker::start(budget);
    let max_steps = match budget {
        Budget::Iterations(n) => n * 50, // rounds × typical local steps
        Budget::Time(_) => usize::MAX,
    };
    {
        let t = &tracker;
        net.fit_series(&v[..test_start], max_steps, move || t.exhausted());
    }
    let preds = net.predict_one_step(&v[..test_start], &v[test_start..]);
    Ok(NBeatsResult {
        test_mse: mse(&v[test_start..], &preds),
        rounds: 1,
        elapsed: tracker.elapsed(),
    })
}

fn nbeats_config(paper_config: bool, seed: u64) -> NBeatsConfig {
    if paper_config {
        NBeatsConfig {
            lookback: 24,
            seed,
            ..Default::default()
        }
    } else {
        NBeatsConfig {
            batch_size: 64,
            learning_rate: 2e-3,
            ..NBeatsConfig::small(12, seed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_timeseries::synthesis::{generate, SeasonSpec, SynthesisSpec};

    fn federation() -> Vec<TimeSeries> {
        let s = generate(
            &SynthesisSpec {
                n: 600,
                seasons: vec![SeasonSpec {
                    period: 12.0,
                    amplitude: 2.0,
                }],
                snr: Some(30.0),
                ..Default::default()
            },
            11,
        );
        s.split_clients(3)
    }

    #[test]
    fn federated_nbeats_runs_and_reports_finite_mse() {
        let r = run_federated_nbeats(&federation(), Budget::Iterations(3), 20, false, 0).unwrap();
        assert_eq!(r.rounds, 3);
        assert!(r.test_mse.is_finite());
    }

    #[test]
    fn more_rounds_do_not_catastrophically_diverge() {
        let short = run_federated_nbeats(&federation(), Budget::Iterations(1), 10, false, 0)
            .unwrap()
            .test_mse;
        let long = run_federated_nbeats(&federation(), Budget::Iterations(6), 10, false, 0)
            .unwrap()
            .test_mse;
        assert!(long.is_finite() && short.is_finite());
        assert!(long < short * 10.0, "training diverged: {short} → {long}");
    }

    #[test]
    fn secure_aggregation_matches_plain_fedavg() {
        let clients = federation();
        let plain = run_federated_nbeats_opts(&clients, Budget::Iterations(2), 15, false, 3, false)
            .unwrap();
        let secure =
            run_federated_nbeats_opts(&clients, Budget::Iterations(2), 15, false, 3, true).unwrap();
        // Masks cancel exactly up to floating-point round-off, so the final
        // test losses agree tightly.
        assert!(
            (plain.test_mse - secure.test_mse).abs() < 1e-6 * (1.0 + plain.test_mse),
            "plain {} vs secure {}",
            plain.test_mse,
            secure.test_mse
        );
    }

    #[test]
    fn consolidated_nbeats_runs() {
        let s = generate(
            &SynthesisSpec {
                n: 700,
                seasons: vec![SeasonSpec {
                    period: 12.0,
                    amplitude: 2.0,
                }],
                snr: Some(30.0),
                ..Default::default()
            },
            12,
        );
        let r = run_consolidated_nbeats(&s, Budget::Iterations(4), false, 0).unwrap();
        assert!(r.test_mse.is_finite());
    }

    #[test]
    fn consolidated_rejects_short_series() {
        let s = TimeSeries::with_regular_index(0, 60, vec![1.0; 20]);
        assert!(run_consolidated_nbeats(&s, Budget::Iterations(1), false, 0).is_err());
    }

    #[test]
    fn empty_federation_rejected() {
        assert!(run_federated_nbeats(&[], Budget::Iterations(1), 5, false, 0).is_err());
    }
}
