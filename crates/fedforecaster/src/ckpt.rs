//! Durable run checkpointing: the engine-side record codec and sink over
//! the [`ff_ckpt`] write-ahead log (see DESIGN.md §16).
//!
//! Every commit point of a run appends one [`Record`]: the run header,
//! each setup-phase completion, each finished trial (bundled with a
//! [`RuntimeSnapshot`] of the server-side counters so resume can
//! fast-forward them), the finalized member blobs, and the run footer.
//! [`crate::engine::FedForecaster::resume_on`] replays the log: setup
//! phases re-execute live (client-side feature state is a pure function
//! of the data and the recorded phase fingerprints verify the match),
//! recorded trials replay as `ask`/`tell` pairs without any federated
//! round, the runtime counters restore from the last snapshot, and the
//! run continues to a bit-identical [`crate::engine::RunResult`].
//!
//! Everything here is `Option`-gated by
//! [`crate::config::EngineConfig::checkpoint`]: a `None` config never
//! constructs a sink, so the disabled path costs zero bytes and zero
//! allocations.

use crate::config::CkptConfig;
use crate::report::RoundReport;
use crate::{EngineError, Result};
use ff_ckpt::{read_wal, CkptError, CrashPoint, Wal, FRAME_HEADER};
use ff_fl::health::{ClientHealthState, ClientState, HealthState};
use ff_fl::log::{ClientComms, LogTotals};
use ff_models::ser::{Reader, SerError, Writer};
use ff_trace::Tracer;

/// Engine record-format version inside the WAL payloads (the WAL frames
/// themselves are versioned separately by [`ff_ckpt::MAGIC`]).
pub const FORMAT: u32 = 1;

const MAX_VEC: usize = 1 << 20;
const MAX_STR: usize = 1 << 14;
const MAX_BLOB: usize = 1 << 26;

fn bad(e: SerError) -> CkptError {
    CkptError::Corrupt(format!("undecodable checkpoint record: {e}"))
}

// ---------------------------------------------------------------------------
// Fingerprints
// ---------------------------------------------------------------------------

/// FNV-1a over a byte string: tiny, stable across platforms and Rust
/// versions (unlike `DefaultHasher`), and collision-resistant enough for
/// mismatch *detection* — these fingerprints gate nothing secret.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// Fingerprint of the run-defining configuration fields. Deliberately
/// excludes execution-environment knobs that may differ between the
/// crashed run and the resume — thread policy (`par`), observability
/// (`trace`), and the checkpoint config itself — since the engine is
/// bit-identical across all of them.
pub fn config_fingerprint(cfg: &crate::config::EngineConfig) -> u64 {
    let canon = format!(
        "{}|{:?}|{}|{}|{}|{}|{}|{}|{}|{}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{}",
        cfg.seed,
        cfg.budget,
        cfg.top_k,
        cfg.valid_fraction,
        cfg.test_fraction,
        cfg.max_lags,
        cfg.max_seasonal_components,
        cfg.importance_threshold,
        cfg.disable_feature_engineering,
        cfg.disable_warm_start,
        cfg.tree_aggregation,
        cfg.round_policy,
        cfg.portfolio,
        cfg.pipelines,
        cfg.aggregation,
        cfg.guard,
        cfg.secure_aggregation,
    );
    fnv1a64(canon.as_bytes())
}

/// Fingerprint of one BO configuration (a `BTreeMap`, so the `Debug`
/// rendering is deterministically ordered).
pub fn trial_config_fingerprint(config: &ff_bayesopt::space::Configuration) -> u64 {
    fnv1a64(format!("{config:?}").as_bytes())
}

/// Fingerprint of every deterministic field of a finished run — the
/// bit-identity witness of the crash-recovery tests. Wall-clock
/// (`elapsed`) and telemetry are excluded; everything else, down to the
/// per-round reports and health counters, participates.
pub fn run_fingerprint(r: &crate::engine::RunResult) -> u64 {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = write!(
        s,
        "{:?}|{:?}|{:?}|{:016x}|{:016x}|{:?}|{}|",
        r.best_algorithm,
        r.best_pipeline,
        r.best_config,
        r.best_valid_loss.to_bits(),
        r.test_mse.to_bits(),
        r.global_model,
        r.evaluations,
    );
    for l in &r.loss_history {
        let _ = write!(s, "{:016x},", l.to_bits());
    }
    let _ = write!(
        s,
        "|{:?}|{}|{}|{:?}|{}|{:?}|{:?}",
        r.recommended,
        r.bytes_to_clients,
        r.bytes_to_server,
        r.phase_bytes,
        r.failed_trials,
        r.rounds,
        r.health,
    );
    fnv1a64(s.as_bytes())
}

/// Fingerprint of a slice of round reports via the binary codec — used
/// to verify that a re-executed setup phase reproduced the recorded run.
pub fn reports_fingerprint(reports: &[RoundReport]) -> u64 {
    let mut w = Writer::new();
    for r in reports {
        enc_report(&mut w, r);
    }
    fnv1a64(&w.finish())
}

// ---------------------------------------------------------------------------
// Runtime snapshot
// ---------------------------------------------------------------------------

/// The server-side state a resumed run cannot recompute by replay alone:
/// health-registry streaks and probe schedules, exact message-log totals,
/// the update guard's median history, the failed-trial count, and the
/// budget already consumed. Captured after every trial commit; restored
/// once, at the resume point.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeSnapshot {
    /// Trials abandoned for unmet quorum so far.
    pub failed_trials: u32,
    /// Wall-clock consumed by the tuning loop so far, in microseconds.
    pub consumed_us: u64,
    /// Tuning iterations recorded so far (successful + failed).
    pub iterations: u32,
    /// Full health-registry state.
    pub health: HealthState,
    /// Exact message-log totals.
    pub log: LogTotals,
    /// Update-guard norm-median history (oldest first).
    pub guard_norms: Vec<f64>,
    /// Update-guard loss-median history (oldest first).
    pub guard_losses: Vec<f64>,
}

impl RuntimeSnapshot {
    /// Captures the current server-side state of a live run.
    pub fn capture(
        rt: &ff_fl::runtime::FederatedRuntime,
        guard: &ff_fl::robust::UpdateGuard,
        failed_trials: usize,
        tracker: &crate::budget::BudgetTracker,
    ) -> RuntimeSnapshot {
        let (consumed, iterations) = tracker.consumed();
        let (guard_norms, guard_losses) = guard.history();
        RuntimeSnapshot {
            failed_trials: failed_trials as u32,
            consumed_us: consumed.as_micros() as u64,
            iterations: iterations as u32,
            health: rt.export_health(),
            log: rt.log().export_totals(),
            guard_norms,
            guard_losses,
        }
    }
}

// ---------------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------------

/// One durable commit point. The WAL stores each record as an opaque
/// CRC-framed payload; this enum is the payload codec.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// Run header: identifies the run a log belongs to. A resume whose
    /// seed, config fingerprint, or client count differs is refused.
    RunStart {
        /// Engine RNG seed.
        seed: u64,
        /// [`config_fingerprint`] of the engine config.
        config_fp: u64,
        /// Number of federated clients.
        n_clients: u32,
    },
    /// A setup phase completed; `fp` fingerprints the round reports
    /// accumulated so far so resume can verify its re-execution.
    PhaseDone {
        /// 1 = meta-features + spec agreement, 2 = feature engineering.
        phase: u8,
        /// [`reports_fingerprint`] over all reports at phase end.
        fp: u64,
    },
    /// One tuning trial committed: the asked config's fingerprint, the
    /// observed loss (`None` for a quorum-failed trial), the round
    /// reports the trial appended, and the post-trial runtime snapshot.
    /// This is the atomic unit of resume — there is no torn state
    /// between a trial's BO tell and its counters.
    TrialDone {
        /// 1-based trial index (failed trials count).
        index: u32,
        /// [`trial_config_fingerprint`] of the asked configuration.
        config_fp: u64,
        /// Aggregated validation loss, or `None` if the quorum failed.
        loss: Option<f64>,
        /// Round reports appended by this trial.
        reports: Vec<RoundReport>,
        /// Post-trial server state. Compaction strips every snapshot but
        /// the newest; resume uses the last one present.
        snapshot: Option<RuntimeSnapshot>,
    },
    /// Durable artifact: the serialized member models collected by
    /// ensemble finalization, with their example-count weights. Resume
    /// re-executes finalization live (clients must refit their final
    /// models anyway), so this record is for post-hoc inspection and
    /// deployment tooling, not replay.
    FinalMembers {
        /// Winning algorithm name.
        algorithm: String,
        /// `(blob, weight)` per contributing client.
        members: Vec<(Vec<u8>, f64)>,
    },
    /// Run footer: the [`run_fingerprint`] of the returned result.
    RunDone {
        /// Fingerprint of the final [`crate::engine::RunResult`].
        result_fp: u64,
    },
}

fn phase_tag(phase: &str) -> u8 {
    match phase {
        "meta_features" => 0,
        "feature_engineering" => 1,
        "optimization" => 2,
        "finalization" => 3,
        _ => u8::MAX,
    }
}

fn phase_name(tag: u8) -> ff_ckpt::Result<&'static str> {
    Ok(match tag {
        0 => "meta_features",
        1 => "feature_engineering",
        2 => "optimization",
        3 => "finalization",
        t => return Err(CkptError::Corrupt(format!("unknown phase tag {t}"))),
    })
}

fn enc_id_msgs(w: &mut Writer, v: &[(usize, String)]) {
    w.u32(v.len() as u32);
    for (id, msg) in v {
        w.u32(*id as u32);
        w.str(msg);
    }
}

fn dec_id_msgs(r: &mut Reader<'_>) -> ff_ckpt::Result<Vec<(usize, String)>> {
    let n = r.u32().map_err(bad)? as usize;
    if n > MAX_VEC {
        return Err(bad(SerError::BadLength(n as u64)));
    }
    let mut v = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let id = r.u32().map_err(bad)? as usize;
        let msg = r.str(MAX_STR).map_err(bad)?.to_string();
        v.push((id, msg));
    }
    Ok(v)
}

fn enc_report(w: &mut Writer, r: &RoundReport) {
    w.u8(phase_tag(r.phase));
    w.u64(r.round);
    w.u32(r.participants as u32);
    w.u32(r.responses as u32);
    w.u32(r.usable as u32);
    enc_id_msgs(w, &r.dropouts);
    enc_id_msgs(w, &r.app_errors);
    w.u32(r.non_finite.len() as u32);
    for &id in &r.non_finite {
        w.u32(id as u32);
    }
    enc_id_msgs(w, &r.rejected);
    w.u8(r.quorum_met as u8);
}

fn dec_report(r: &mut Reader<'_>) -> ff_ckpt::Result<RoundReport> {
    let phase = phase_name(r.u8().map_err(bad)?)?;
    let round = r.u64().map_err(bad)?;
    let participants = r.u32().map_err(bad)? as usize;
    let responses = r.u32().map_err(bad)? as usize;
    let usable = r.u32().map_err(bad)? as usize;
    let dropouts = dec_id_msgs(r)?;
    let app_errors = dec_id_msgs(r)?;
    let n = r.u32().map_err(bad)? as usize;
    if n > MAX_VEC {
        return Err(bad(SerError::BadLength(n as u64)));
    }
    let mut non_finite = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        non_finite.push(r.u32().map_err(bad)? as usize);
    }
    let rejected = dec_id_msgs(r)?;
    let quorum_met = r.u8().map_err(bad)? != 0;
    Ok(RoundReport {
        phase,
        round,
        participants,
        responses,
        usable,
        dropouts,
        app_errors,
        non_finite,
        rejected,
        quorum_met,
    })
}

fn enc_snapshot(w: &mut Writer, s: &RuntimeSnapshot) {
    w.u32(s.failed_trials);
    w.u64(s.consumed_us);
    w.u32(s.iterations);
    w.u64(s.health.round);
    w.u32(s.health.clients.len() as u32);
    for c in &s.health.clients {
        w.u8(match c.state {
            ClientState::Healthy => 0,
            ClientState::Suspect => 1,
            ClientState::Quarantined => 2,
        });
        w.u32(c.consecutive_failures);
        w.u64(c.successes);
        w.u64(c.failures);
        w.u64(c.byzantine);
        w.u32(c.consecutive_rejections);
        w.u32(c.probe_level);
        w.u64(c.next_probe_round);
    }
    w.u64(s.log.recorded as u64);
    w.u64(s.log.to_client_bytes as u64);
    w.u64(s.log.to_server_bytes as u64);
    w.u32(s.log.per_client.len() as u32);
    for (id, c) in &s.log.per_client {
        w.u64(*id as u64);
        w.u64(c.bytes_to_client as u64);
        w.u64(c.bytes_to_server as u64);
        w.u64(c.messages as u64);
    }
    w.f64s(&s.guard_norms);
    w.f64s(&s.guard_losses);
}

fn dec_snapshot(r: &mut Reader<'_>) -> ff_ckpt::Result<RuntimeSnapshot> {
    let failed_trials = r.u32().map_err(bad)?;
    let consumed_us = r.u64().map_err(bad)?;
    let iterations = r.u32().map_err(bad)?;
    let round = r.u64().map_err(bad)?;
    let n = r.u32().map_err(bad)? as usize;
    if n > MAX_VEC {
        return Err(bad(SerError::BadLength(n as u64)));
    }
    let mut clients = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let state = match r.u8().map_err(bad)? {
            0 => ClientState::Healthy,
            1 => ClientState::Suspect,
            2 => ClientState::Quarantined,
            t => return Err(bad(SerError::BadTag(t))),
        };
        clients.push(ClientHealthState {
            state,
            consecutive_failures: r.u32().map_err(bad)?,
            successes: r.u64().map_err(bad)?,
            failures: r.u64().map_err(bad)?,
            byzantine: r.u64().map_err(bad)?,
            consecutive_rejections: r.u32().map_err(bad)?,
            probe_level: r.u32().map_err(bad)?,
            next_probe_round: r.u64().map_err(bad)?,
        });
    }
    let recorded = r.u64().map_err(bad)? as usize;
    let to_client_bytes = r.u64().map_err(bad)? as usize;
    let to_server_bytes = r.u64().map_err(bad)? as usize;
    let m = r.u32().map_err(bad)? as usize;
    if m > MAX_VEC {
        return Err(bad(SerError::BadLength(m as u64)));
    }
    let mut per_client = Vec::with_capacity(m.min(1024));
    for _ in 0..m {
        let id = r.u64().map_err(bad)? as usize;
        per_client.push((
            id,
            ClientComms {
                bytes_to_client: r.u64().map_err(bad)? as usize,
                bytes_to_server: r.u64().map_err(bad)? as usize,
                messages: r.u64().map_err(bad)? as usize,
            },
        ));
    }
    let guard_norms = r.f64s(MAX_VEC).map_err(bad)?;
    let guard_losses = r.f64s(MAX_VEC).map_err(bad)?;
    Ok(RuntimeSnapshot {
        failed_trials,
        consumed_us,
        iterations,
        health: HealthState { round, clients },
        log: LogTotals {
            recorded,
            to_client_bytes,
            to_server_bytes,
            per_client,
        },
        guard_norms,
        guard_losses,
    })
}

impl Record {
    /// Encodes the record into a WAL payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u32(FORMAT);
        match self {
            Record::RunStart {
                seed,
                config_fp,
                n_clients,
            } => {
                w.u8(0);
                w.u64(*seed);
                w.u64(*config_fp);
                w.u32(*n_clients);
            }
            Record::PhaseDone { phase, fp } => {
                w.u8(1);
                w.u8(*phase);
                w.u64(*fp);
            }
            Record::TrialDone {
                index,
                config_fp,
                loss,
                reports,
                snapshot,
            } => {
                w.u8(2);
                w.u32(*index);
                w.u64(*config_fp);
                match loss {
                    Some(l) => {
                        w.u8(1);
                        w.f64(*l);
                    }
                    None => w.u8(0),
                }
                w.u32(reports.len() as u32);
                for rep in reports {
                    enc_report(&mut w, rep);
                }
                match snapshot {
                    Some(s) => {
                        w.u8(1);
                        enc_snapshot(&mut w, s);
                    }
                    None => w.u8(0),
                }
            }
            Record::FinalMembers { algorithm, members } => {
                w.u8(3);
                w.str(algorithm);
                w.u32(members.len() as u32);
                for (blob, weight) in members {
                    w.bytes(blob);
                    w.f64(*weight);
                }
            }
            Record::RunDone { result_fp } => {
                w.u8(4);
                w.u64(*result_fp);
            }
        }
        w.finish()
    }

    /// Decodes a WAL payload. Any structural defect — wrong format
    /// version, unknown tag, truncation, implausible length — is a
    /// [`CkptError::Corrupt`], never a panic or unbounded allocation.
    pub fn decode(payload: &[u8]) -> ff_ckpt::Result<Record> {
        let mut r = Reader::new(payload);
        let format = r.u32().map_err(bad)?;
        if format != FORMAT {
            return Err(CkptError::Corrupt(format!(
                "checkpoint record format {format}, expected {FORMAT}"
            )));
        }
        let rec = match r.u8().map_err(bad)? {
            0 => Record::RunStart {
                seed: r.u64().map_err(bad)?,
                config_fp: r.u64().map_err(bad)?,
                n_clients: r.u32().map_err(bad)?,
            },
            1 => Record::PhaseDone {
                phase: r.u8().map_err(bad)?,
                fp: r.u64().map_err(bad)?,
            },
            2 => {
                let index = r.u32().map_err(bad)?;
                let config_fp = r.u64().map_err(bad)?;
                let loss = match r.u8().map_err(bad)? {
                    0 => None,
                    _ => Some(r.f64().map_err(bad)?),
                };
                let n = r.u32().map_err(bad)? as usize;
                if n > MAX_VEC {
                    return Err(bad(SerError::BadLength(n as u64)));
                }
                let mut reports = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    reports.push(dec_report(&mut r)?);
                }
                let snapshot = match r.u8().map_err(bad)? {
                    0 => None,
                    _ => Some(dec_snapshot(&mut r)?),
                };
                Record::TrialDone {
                    index,
                    config_fp,
                    loss,
                    reports,
                    snapshot,
                }
            }
            3 => {
                let algorithm = r.str(MAX_STR).map_err(bad)?.to_string();
                let n = r.u32().map_err(bad)? as usize;
                if n > MAX_VEC {
                    return Err(bad(SerError::BadLength(n as u64)));
                }
                let mut members = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let blob = r.bytes(MAX_BLOB).map_err(bad)?.to_vec();
                    let weight = r.f64().map_err(bad)?;
                    members.push((blob, weight));
                }
                Record::FinalMembers { algorithm, members }
            }
            4 => Record::RunDone {
                result_fp: r.u64().map_err(bad)?,
            },
            t => return Err(CkptError::Corrupt(format!("unknown record tag {t}"))),
        };
        Ok(rec)
    }
}

// ---------------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------------

/// One recorded trial, ready to replay against a fresh optimizer.
#[derive(Debug, Clone)]
pub struct ReplayTrial {
    /// Fingerprint the regenerated `ask` must match.
    pub config_fp: u64,
    /// The loss to `tell` (skipped for quorum-failed trials).
    pub loss: Option<f64>,
    /// Round reports to splice back into the run's report history.
    pub reports: Vec<RoundReport>,
}

/// What a valid checkpoint log contributes to a resumed run.
#[derive(Debug, Clone)]
pub struct Replay {
    /// Recorded `(phase_tag, fingerprint)` pairs, in commit order. The
    /// resumed run re-executes each phase live and verifies its
    /// fingerprint against the recorded one.
    pub phases: Vec<(u8, u64)>,
    /// Trials up to (and including) the resume point.
    pub trials: Vec<ReplayTrial>,
    /// Server-state snapshot at the resume point (`None` when the crash
    /// predates the first committed trial).
    pub snapshot: Option<RuntimeSnapshot>,
}

// ---------------------------------------------------------------------------
// Sink
// ---------------------------------------------------------------------------

/// The engine's handle on the checkpoint log: encodes records, appends
/// them durably, tracks `ckpt.records` / `ckpt.bytes` counters, and
/// compacts the log (dropping superseded snapshots) past the configured
/// size threshold.
pub struct CkptSink {
    wal: Option<Wal>,
    cfg: CkptConfig,
    tracer: Tracer,
    compactions_seen: u32,
}

impl CkptSink {
    /// Creates a fresh log (truncating any previous one) and writes the
    /// run header.
    pub fn create(
        cfg: &CkptConfig,
        seed: u64,
        config_fp: u64,
        n_clients: u32,
        tracer: Tracer,
    ) -> Result<CkptSink> {
        let mut wal = Wal::create(&cfg.path).map_err(EngineError::Checkpoint)?;
        wal.set_fsync(cfg.fsync);
        wal.arm_crash(cfg.crash);
        let mut sink = CkptSink {
            wal: Some(wal),
            cfg: cfg.clone(),
            tracer,
            compactions_seen: 0,
        };
        sink.append(&Record::RunStart {
            seed,
            config_fp,
            n_clients,
        })?;
        Ok(sink)
    }

    /// Opens an existing log for resume. Returns the sink positioned
    /// after the resume point plus the [`Replay`] to apply. A missing or
    /// empty log degrades to a fresh run (`Replay` = `None`); a log whose
    /// header does not match this run's seed / config / client count is
    /// refused.
    ///
    /// Records past the resume point — trials whose snapshot an earlier
    /// compaction stripped, final members, the run footer — are dropped
    /// by an atomic rewrite so the log stays canonical: that work
    /// re-executes live and recommits.
    pub fn resume(
        cfg: &CkptConfig,
        seed: u64,
        config_fp: u64,
        n_clients: u32,
        tracer: Tracer,
    ) -> Result<(CkptSink, Option<Replay>)> {
        if !cfg.path.exists() {
            return Ok((Self::create(cfg, seed, config_fp, n_clients, tracer)?, None));
        }
        let read = read_wal(&cfg.path).map_err(EngineError::Checkpoint)?;
        if read.records.is_empty() {
            return Ok((Self::create(cfg, seed, config_fp, n_clients, tracer)?, None));
        }
        let decoded: Vec<Record> = read
            .records
            .iter()
            .map(|p| Record::decode(p))
            .collect::<ff_ckpt::Result<_>>()
            .map_err(EngineError::Checkpoint)?;
        match decoded[0] {
            Record::RunStart {
                seed: s,
                config_fp: fp,
                n_clients: n,
            } => {
                if s != seed || fp != config_fp || n != n_clients {
                    return Err(EngineError::Checkpoint(CkptError::Corrupt(format!(
                        "checkpoint belongs to a different run: log has \
                         (seed {s}, config {fp:#018x}, {n} clients), this run is \
                         (seed {seed}, config {config_fp:#018x}, {n_clients} clients)"
                    ))));
                }
            }
            _ => {
                return Err(EngineError::Checkpoint(CkptError::Corrupt(
                    "checkpoint log does not start with a run header".into(),
                )))
            }
        }
        // Resume point: the last trial that still carries a snapshot.
        // Phases always precede trials, so the kept prefix is the header,
        // every phase record, and the trials up to that point.
        let mut last_snap: Option<usize> = None;
        let mut prefix_end = 1; // past RunStart
        for (i, rec) in decoded.iter().enumerate() {
            match rec {
                Record::PhaseDone { .. } => prefix_end = i + 1,
                Record::TrialDone {
                    snapshot: Some(_), ..
                } => last_snap = Some(i),
                _ => {}
            }
        }
        let keep = last_snap.map(|i| i + 1).unwrap_or(prefix_end);
        if keep < decoded.len() {
            let kept_raw: Vec<Vec<u8>> = read.records[..keep].to_vec();
            ff_ckpt::rewrite(&cfg.path, &kept_raw).map_err(EngineError::Checkpoint)?;
        }
        let read = read_wal(&cfg.path).map_err(EngineError::Checkpoint)?;
        let mut wal = Wal::open_append(&cfg.path, read.valid_len, read.records.len() as u64)
            .map_err(EngineError::Checkpoint)?;
        wal.set_fsync(cfg.fsync);
        wal.arm_crash(cfg.crash);
        let mut replay = Replay {
            phases: Vec::new(),
            trials: Vec::new(),
            snapshot: None,
        };
        for rec in decoded.into_iter().take(keep) {
            match rec {
                Record::RunStart { .. } => {}
                Record::PhaseDone { phase, fp } => replay.phases.push((phase, fp)),
                Record::TrialDone {
                    config_fp,
                    loss,
                    reports,
                    snapshot,
                    ..
                } => {
                    if let Some(s) = snapshot {
                        replay.snapshot = Some(s);
                    }
                    replay.trials.push(ReplayTrial {
                        config_fp,
                        loss,
                        reports,
                    });
                }
                Record::FinalMembers { .. } | Record::RunDone { .. } => {}
            }
        }
        let sink = CkptSink {
            wal: Some(wal),
            cfg: cfg.clone(),
            tracer,
            compactions_seen: 0,
        };
        Ok((sink, Some(replay)))
    }

    /// Appends one record durably, then compacts if the log passed the
    /// configured size threshold.
    pub fn append(&mut self, rec: &Record) -> Result<()> {
        let payload = rec.encode();
        let wal = self.wal.as_mut().ok_or_else(|| {
            EngineError::Checkpoint(CkptError::Io(
                "checkpoint log lost to an earlier crash".into(),
            ))
        })?;
        wal.append(&payload).map_err(EngineError::Checkpoint)?;
        if self.tracer.is_enabled() {
            self.tracer.counter_add("ckpt.records", 1);
            self.tracer
                .counter_add("ckpt.bytes", payload.len() as u64 + FRAME_HEADER);
        }
        if let Some(limit) = self.cfg.compact_after_bytes {
            if wal.bytes() > limit {
                self.compact()?;
            }
        }
        Ok(())
    }

    /// Compaction: strip every runtime snapshot except the newest (older
    /// ones are superseded — resume only ever reads the last) and
    /// atomically rewrite the log.
    fn compact(&mut self) -> Result<()> {
        let wal = self.wal.take().ok_or_else(|| {
            EngineError::Checkpoint(CkptError::Io(
                "checkpoint log lost to an earlier crash".into(),
            ))
        })?;
        let read = read_wal(wal.path()).map_err(EngineError::Checkpoint)?;
        let decoded: Vec<Record> = read
            .records
            .iter()
            .map(|p| Record::decode(p))
            .collect::<ff_ckpt::Result<_>>()
            .map_err(EngineError::Checkpoint)?;
        let last_snap = decoded.iter().rposition(|r| {
            matches!(
                r,
                Record::TrialDone {
                    snapshot: Some(_),
                    ..
                }
            )
        });
        let kept: Vec<Vec<u8>> = decoded
            .into_iter()
            .enumerate()
            .map(|(i, rec)| match rec {
                Record::TrialDone {
                    index,
                    config_fp,
                    loss,
                    reports,
                    snapshot,
                } => Record::TrialDone {
                    index,
                    config_fp,
                    loss,
                    reports,
                    snapshot: if Some(i) == last_snap { snapshot } else { None },
                }
                .encode(),
                other => other.encode(),
            })
            .collect();
        self.compactions_seen += 1;
        let crash_now =
            matches!(self.cfg.crash, Some(CrashPoint::PreRename(n)) if n == self.compactions_seen);
        let new_wal = wal
            .rewrite(&kept, crash_now)
            .map_err(EngineError::Checkpoint)?;
        self.wal = Some(new_wal);
        Ok(())
    }

    /// The armed crash point (engine-level [`CrashPoint::AfterTrial`]
    /// injection reads this).
    pub fn crash_point(&self) -> Option<CrashPoint> {
        self.cfg.crash
    }

    /// Records durably appended to the underlying log this process.
    pub fn records(&self) -> u64 {
        self.wal.as_ref().map(|w| w.records()).unwrap_or(0)
    }

    /// Current byte length of the log.
    pub fn bytes(&self) -> u64 {
        self.wal.as_ref().map(|w| w.bytes()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report(phase: &'static str) -> RoundReport {
        RoundReport {
            phase,
            round: 7,
            participants: 4,
            responses: 3,
            usable: 2,
            dropouts: vec![(3, "timeout after 250ms".into())],
            app_errors: vec![(1, "singular matrix".into())],
            non_finite: vec![2],
            rejected: vec![(0, "norm outlier 12.5x median".into())],
            quorum_met: true,
        }
    }

    fn sample_snapshot() -> RuntimeSnapshot {
        RuntimeSnapshot {
            failed_trials: 2,
            consumed_us: 1_234_567,
            iterations: 9,
            health: HealthState {
                round: 41,
                clients: vec![ClientHealthState {
                    state: ClientState::Quarantined,
                    consecutive_failures: 3,
                    successes: 17,
                    failures: 5,
                    byzantine: 1,
                    consecutive_rejections: 0,
                    probe_level: 2,
                    next_probe_round: 49,
                }],
            },
            log: LogTotals {
                recorded: 120,
                to_client_bytes: 9000,
                to_server_bytes: 4000,
                per_client: vec![(
                    0,
                    ClientComms {
                        bytes_to_client: 9000,
                        bytes_to_server: 4000,
                        messages: 120,
                    },
                )],
            },
            guard_norms: vec![1.5, 2.5],
            guard_losses: vec![0.25],
        }
    }

    #[test]
    fn every_record_kind_round_trips() {
        let records = vec![
            Record::RunStart {
                seed: 42,
                config_fp: 0xDEAD_BEEF,
                n_clients: 3,
            },
            Record::PhaseDone { phase: 1, fp: 99 },
            Record::TrialDone {
                index: 5,
                config_fp: 0xABCD,
                loss: Some(0.125),
                reports: vec![sample_report("optimization")],
                snapshot: Some(sample_snapshot()),
            },
            Record::TrialDone {
                index: 6,
                config_fp: 0xEF01,
                loss: None,
                reports: vec![],
                snapshot: None,
            },
            Record::FinalMembers {
                algorithm: "XGBRegressor".into(),
                members: vec![(vec![1, 2, 3], 100.0), (vec![], 50.0)],
            },
            Record::RunDone { result_fp: 77 },
        ];
        for rec in records {
            let bytes = rec.encode();
            assert_eq!(Record::decode(&bytes).unwrap(), rec, "round-trip failed");
        }
    }

    #[test]
    fn report_codec_preserves_every_field() {
        for phase in [
            "meta_features",
            "feature_engineering",
            "optimization",
            "finalization",
        ] {
            let rep = sample_report(phase);
            let mut w = Writer::new();
            enc_report(&mut w, &rep);
            let bytes = w.finish();
            let mut r = Reader::new(&bytes);
            let back = dec_report(&mut r).unwrap();
            assert_eq!(format!("{back:?}"), format!("{rep:?}"));
            assert!(r.is_exhausted());
        }
    }

    #[test]
    fn truncated_and_garbled_records_error_not_panic() {
        let full = Record::TrialDone {
            index: 1,
            config_fp: 2,
            loss: Some(3.0),
            reports: vec![sample_report("optimization")],
            snapshot: Some(sample_snapshot()),
        }
        .encode();
        for cut in 0..full.len() {
            assert!(
                Record::decode(&full[..cut]).is_err(),
                "prefix {cut} decoded"
            );
        }
        let mut garbled = full.clone();
        garbled[4] = 200; // unknown tag
        assert!(Record::decode(&garbled).is_err());
        let mut wrong_format = full;
        wrong_format[0] = 9;
        assert!(Record::decode(&wrong_format).is_err());
    }

    #[test]
    fn fnv_is_stable_and_discriminating() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
        let cfg = crate::config::EngineConfig::default();
        let fp = config_fingerprint(&cfg);
        assert_eq!(fp, config_fingerprint(&cfg.clone()), "fingerprint unstable");
        let other = crate::config::EngineConfig {
            seed: 43,
            ..Default::default()
        };
        assert_ne!(fp, config_fingerprint(&other));
        // Execution-environment knobs do not participate.
        let traced = crate::config::EngineConfig {
            trace: crate::config::TraceConfig::enabled(),
            par: ff_par::ParConfig::with_threads(2),
            checkpoint: Some(CkptConfig::at("/tmp/x.wal")),
            ..Default::default()
        };
        assert_eq!(fp, config_fingerprint(&traced));
    }
}
