// Index-based loops across parallel arrays are the clearest form for the
// numeric kernels in this crate; the iterator rewrites clippy suggests
// obscure the math.
#![allow(clippy::needless_range_loop)]

//! FedForecaster: automated federated learning for univariate time-series
//! forecasting — the paper's core contribution (Algorithm 1).
//!
//! The engine automates the full forecasting pipeline over a federation of
//! clients holding private splits:
//!
//! 1. **Meta-learning** (§4.1): clients compute Table 1 meta-features; the
//!    server aggregates them and a pre-trained meta-model recommends the
//!    top-K forecasting algorithms.
//! 2. **Feature engineering** (§4.2): clients build trend, time, lag, and
//!    seasonality features using globally agreed parameters (lag count from
//!    the aggregated meta-features; seasonal periods from the federated
//!    weighted periodogram), then a Random-Forest importance vote selects
//!    the features covering 95% of cumulative importance.
//! 3. **Hyperparameter tuning** (§4.3): GP Bayesian optimization with
//!    Expected Improvement, warm-started with the recommendations, asks
//!    configurations; clients fit/evaluate locally; the server aggregates
//!    the weighted global loss (Equation 1) and tells it back.
//! 4. **Inference** (§4.4): the best configuration is refit on each client;
//!    linear-family coefficients are FedAvg-aggregated into one global
//!    model; tree ensembles are serialized and deployed as the weighted
//!    union of client models (see DESIGN.md §5 on this aggregation choice).
//!
//! Baselines: [`random_search`] (same pipeline, uniform sampling over the
//! full space) and [`nbeats_baseline`] (federated N-BEATS with FedAvg, plus
//! the consolidated variant).
//!
//! # Quickstart
//!
//! ```no_run
//! use fedforecaster::prelude::*;
//!
//! // Train a tiny meta-model and run the engine on a simulated federation.
//! let kb = ff_metalearn::kb::KnowledgeBase::build(
//!     &ff_metalearn::synth::synthetic_kb(16), &[3], 100);
//! let meta = ff_metalearn::metamodel::MetaModel::train(
//!     &kb, ff_metalearn::metamodel::MetaClassifierKind::RandomForest, 0).unwrap();
//! let clients = ff_datasets::benchmark_datasets()[2].generate_federation(1, 0.1);
//! let cfg = EngineConfig { budget: Budget::Iterations(10), ..Default::default() };
//! let result = FedForecaster::new(cfg, &meta).run(&clients).unwrap();
//! println!("best = {} test MSE = {}", result.best_algorithm.name(), result.test_mse);
//! ```

pub mod adaptive;
pub mod aggregate;
pub mod budget;
pub mod ckpt;
pub mod client;
pub mod config;
pub mod engine;
pub mod feature_engineering;
pub mod nbeats_baseline;
pub mod random_search;
pub mod report;
pub mod search_space;

pub use budget::Budget;
pub use config::{CkptConfig, EngineConfig, TraceConfig};
pub use engine::{FedForecaster, RunResult};
pub use report::RunTelemetry;

/// Convenient re-exports for examples and benches.
pub mod prelude {
    pub use crate::budget::Budget;
    pub use crate::config::{CkptConfig, EngineConfig, TraceConfig};
    pub use crate::engine::{FedForecaster, RunResult};
    pub use crate::nbeats_baseline::{run_consolidated_nbeats, run_federated_nbeats};
    pub use crate::random_search::RandomSearch;
    pub use crate::report::{render_rounds, RoundReport, RunTelemetry};
    pub use ff_fl::robust::{AggregationStrategy, GuardPolicy};
    pub use ff_fl::runtime::RoundPolicy;
    pub use ff_models::zoo::AlgorithmKind;
}

/// Engine errors.
#[derive(Debug)]
pub enum EngineError {
    /// Federation construction or communication failed.
    Federation(ff_fl::FlError),
    /// A model-level failure.
    Model(ff_models::ModelError),
    /// Bayesian optimization failed.
    Optimizer(ff_bayesopt::BoError),
    /// The data is unusable (too short, all-NaN, …).
    InvalidData(String),
    /// Checkpoint I/O, corruption, or an injected crash point fired.
    Checkpoint(ff_ckpt::CkptError),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Federation(e) => write!(f, "federation error: {e}"),
            EngineError::Model(e) => write!(f, "model error: {e}"),
            EngineError::Optimizer(e) => write!(f, "optimizer error: {e}"),
            EngineError::InvalidData(m) => write!(f, "invalid data: {m}"),
            EngineError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<ff_fl::FlError> for EngineError {
    fn from(e: ff_fl::FlError) -> Self {
        EngineError::Federation(e)
    }
}

impl From<ff_models::ModelError> for EngineError {
    fn from(e: ff_models::ModelError) -> Self {
        EngineError::Model(e)
    }
}

impl From<ff_bayesopt::BoError> for EngineError {
    fn from(e: ff_bayesopt::BoError) -> Self {
        EngineError::Optimizer(e)
    }
}

impl From<ff_ckpt::CkptError> for EngineError {
    fn from(e: ff_ckpt::CkptError) -> Self {
        EngineError::Checkpoint(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, EngineError>;
