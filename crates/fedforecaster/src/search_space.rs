//! The Table 2 search space and its encodings.
//!
//! The joint space has a categorical `algorithm` dimension restricted to
//! the meta-model's recommendations plus every algorithm's hyperparameters
//! (a flattened conditional space — dimensions of unselected algorithms are
//! inert, the standard CASH-space trick). Conversions are provided to the
//! [`HyperParams`] bundle used to instantiate models and to [`ConfigMap`]s
//! for transmission to clients.

use ff_bayesopt::space::{Configuration, ParamSpec, ParamValue, SearchSpace};
use ff_fl::config::{ConfigMap, ConfigMapExt};
use ff_models::linear::cd::Selection;
use ff_models::zoo::{AlgorithmKind, HyperParams};

/// Builds the joint Table 2 search space over the given algorithms.
///
/// Ranges follow Table 2 exactly; two values in the printed table are
/// nonsensical as written and are normalized here (documented in
/// DESIGN.md §4): the Lasso/Huber/Quantile `alpha` entries are read as
/// log-uniform over `[1e-5, 10]`, and ElasticNetCV's `l1_ratio ∈ [0.3, 10]`
/// is clamped into `[0.3, 1.0]` at instantiation.
pub fn table2_space(algorithms: &[AlgorithmKind]) -> SearchSpace {
    assert!(!algorithms.is_empty());
    let names: Vec<String> = algorithms.iter().map(|a| a.name().to_string()).collect();
    let mut space = SearchSpace::new().with("algorithm", ParamSpec::Categorical { options: names });
    let has = |k: AlgorithmKind| algorithms.contains(&k);
    if has(AlgorithmKind::Lasso) {
        space = space
            .with(
                "lasso_alpha",
                ParamSpec::LogContinuous { lo: 1e-5, hi: 10.0 },
            )
            .with(
                "lasso_selection",
                ParamSpec::Categorical {
                    options: vec!["cyclic".into(), "random".into()],
                },
            );
    }
    if has(AlgorithmKind::LinearSvr) {
        space = space
            .with("svr_c", ParamSpec::Continuous { lo: 1.0, hi: 10.0 })
            .with("svr_epsilon", ParamSpec::Continuous { lo: 0.01, hi: 0.1 });
    }
    if has(AlgorithmKind::ElasticNetCv) {
        space = space
            .with("enet_l1_ratio", ParamSpec::Continuous { lo: 0.3, hi: 10.0 })
            .with(
                "enet_selection",
                ParamSpec::Categorical {
                    options: vec!["cyclic".into(), "random".into()],
                },
            );
    }
    if has(AlgorithmKind::XgbRegressor) {
        space = space
            .with("xgb_n_estimators", ParamSpec::Integer { lo: 5, hi: 20 })
            .with("xgb_max_depth", ParamSpec::Integer { lo: 2, hi: 10 })
            .with(
                "xgb_learning_rate",
                ParamSpec::Continuous { lo: 0.01, hi: 1.0 },
            )
            .with(
                "xgb_reg_lambda",
                ParamSpec::Continuous { lo: 0.8, hi: 10.0 },
            )
            .with("xgb_subsample", ParamSpec::Continuous { lo: 0.1, hi: 1.0 });
    }
    if has(AlgorithmKind::HuberRegressor) {
        space = space
            .with(
                "huber_epsilon",
                ParamSpec::Categorical {
                    options: vec!["1.0".into(), "1.35".into(), "1.5".into()],
                },
            )
            .with(
                "huber_alpha",
                ParamSpec::LogContinuous { lo: 1e-5, hi: 10.0 },
            );
    }
    if has(AlgorithmKind::QuantileRegressor) {
        space = space
            .with(
                "quantile_alpha",
                ParamSpec::LogContinuous { lo: 1e-5, hi: 10.0 },
            )
            .with("quantile_q", ParamSpec::Continuous { lo: 0.1, hi: 1.0 });
    }
    space
}

/// Extracts the algorithm choice from a sampled configuration.
pub fn algorithm_of(config: &Configuration) -> Option<AlgorithmKind> {
    AlgorithmKind::from_name(config.get("algorithm")?.as_str())
}

/// Converts a sampled configuration to the concrete hyperparameter bundle.
pub fn to_hyperparams(config: &Configuration) -> HyperParams {
    let f = |key: &str, default: f64| -> f64 {
        config
            .get(key)
            .map(|v| v.as_f64())
            .filter(|v| v.is_finite())
            .unwrap_or(default)
    };
    let algorithm = algorithm_of(config);
    let alpha_key = match algorithm {
        Some(AlgorithmKind::Lasso) => "lasso_alpha",
        Some(AlgorithmKind::HuberRegressor) => "huber_alpha",
        Some(AlgorithmKind::QuantileRegressor) => "quantile_alpha",
        _ => "lasso_alpha",
    };
    let selection_key = match algorithm {
        Some(AlgorithmKind::ElasticNetCv) => "enet_selection",
        _ => "lasso_selection",
    };
    let epsilon = match algorithm {
        Some(AlgorithmKind::HuberRegressor) => config
            .get("huber_epsilon")
            .and_then(|v| v.as_str().parse::<f64>().ok())
            .unwrap_or(1.35),
        _ => f("svr_epsilon", 0.05),
    };
    HyperParams {
        alpha: f(alpha_key, 0.01),
        selection: config
            .get(selection_key)
            .map(|v| Selection::from_name(v.as_str()))
            .unwrap_or(Selection::Cyclic),
        c: f("svr_c", 5.0),
        epsilon,
        l1_ratio: f("enet_l1_ratio", 0.5),
        n_estimators: config
            .get("xgb_n_estimators")
            .map(|v| v.as_i64() as usize)
            .unwrap_or(10),
        max_depth: config
            .get("xgb_max_depth")
            .map(|v| v.as_i64() as usize)
            .unwrap_or(4),
        learning_rate: f("xgb_learning_rate", 0.3),
        reg_lambda: f("xgb_reg_lambda", 1.0),
        subsample: f("xgb_subsample", 1.0),
        quantile: f("quantile_q", 0.5),
    }
}

/// Default warm-start configurations for the recommended algorithms: each
/// recommendation seeds one configuration at its grid-search sweet spot.
pub fn warm_start_configs(algorithms: &[AlgorithmKind]) -> Vec<Configuration> {
    algorithms
        .iter()
        .map(|&a| {
            let mut c = Configuration::new();
            c.insert("algorithm".into(), ParamValue::Cat(a.name().to_string()));
            // Leave all hyperparameters at the space defaults (decoded as
            // the HyperParams defaults), which match the KB grid centers.
            c
        })
        .collect()
}

/// Serializes a configuration into a [`ConfigMap`] for the wire.
pub fn config_to_map(config: &Configuration) -> ConfigMap {
    let mut map = ConfigMap::new();
    for (k, v) in config {
        map = match v {
            ParamValue::Float(x) => map.with_float(k, *x),
            ParamValue::Int(x) => map.with_int(k, *x),
            ParamValue::Cat(s) => map.with_str(k, s),
        };
    }
    map
}

/// Parses a wire [`ConfigMap`] back into a configuration.
pub fn map_to_config(map: &ConfigMap) -> Configuration {
    let mut config = Configuration::new();
    for (k, v) in map {
        let pv = if let Some(s) = v.as_str() {
            ParamValue::Cat(s.to_string())
        } else if let Some(i) = v.as_int() {
            ParamValue::Int(i)
        } else if let Some(f) = v.as_float() {
            ParamValue::Float(f)
        } else {
            continue;
        };
        config.insert(k.clone(), pv);
    }
    config
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn full_space_has_all_table2_dimensions() {
        let space = table2_space(&AlgorithmKind::ALL);
        // algorithm + 2 + 2 + 2 + 5 + 2 + 2 = 16 named params.
        assert_eq!(space.len(), 16);
    }

    #[test]
    fn restricted_space_omits_unrecommended_params() {
        let space = table2_space(&[AlgorithmKind::Lasso]);
        assert_eq!(space.len(), 3); // algorithm, lasso_alpha, lasso_selection
    }

    #[test]
    fn sampled_configs_build_models() {
        let space = table2_space(&AlgorithmKind::ALL);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..50 {
            let c = space.sample(&mut rng);
            let algo = algorithm_of(&c).unwrap();
            let hp = to_hyperparams(&c);
            let model = ff_models::zoo::build_regressor(algo, &hp);
            drop(model);
            // Table 2 ranges respected after conversion.
            assert!((5..=20).contains(&hp.n_estimators));
            assert!((0.1..=1.0).contains(&hp.subsample));
        }
    }

    #[test]
    fn huber_epsilon_categorical_parses() {
        let space = table2_space(&[AlgorithmKind::HuberRegressor]);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let c = space.sample(&mut rng);
            let hp = to_hyperparams(&c);
            assert!(
                [1.0, 1.35, 1.5].contains(&hp.epsilon),
                "epsilon {}",
                hp.epsilon
            );
        }
    }

    #[test]
    fn wire_roundtrip_preserves_configuration() {
        let space = table2_space(&AlgorithmKind::ALL);
        let mut rng = StdRng::seed_from_u64(2);
        let c = space.sample(&mut rng);
        let map = config_to_map(&c);
        let back = map_to_config(&map);
        assert_eq!(c, back);
    }

    #[test]
    fn warm_start_covers_recommendations_in_order() {
        let recs = [AlgorithmKind::XgbRegressor, AlgorithmKind::Lasso];
        let ws = warm_start_configs(&recs);
        assert_eq!(ws.len(), 2);
        assert_eq!(algorithm_of(&ws[0]), Some(AlgorithmKind::XgbRegressor));
        assert_eq!(algorithm_of(&ws[1]), Some(AlgorithmKind::Lasso));
    }
}
