//! The Table 2 search space and its encodings — registry-driven.
//!
//! The joint space has a categorical `algorithm` dimension restricted to
//! the meta-model's recommendations plus every algorithm's hyperparameters
//! (a flattened conditional space — dimensions of unselected algorithms are
//! inert, the standard CASH-space trick). All per-algorithm knowledge
//! (keys, ranges, warm starts, decode) comes from the `ff_models::spec`
//! registry, so registering a new algorithm extends this space with no
//! edits here. Conversions are provided to the [`HyperParams`] bundle used
//! to instantiate models and to [`ConfigMap`]s for transmission to clients.
//!
//! Ranges follow Table 2 exactly, with one normalization documented in
//! DESIGN.md §4: the printed ElasticNetCV `l1_ratio ∈ [0.3, 10]` is a typo
//! (the mixing ratio is only defined on `[0, 1]`), so the registry samples
//! `[0.3, 1.0]` directly.

use ff_bayesopt::space::{Condition, Configuration, ParamSpec, ParamValue, SearchSpace};
use ff_fl::config::{ConfigMap, ConfigMapExt};
use ff_models::pipeline::{NodeId, PipelineId};
use ff_models::spec::{ParamKind, SpecValue};
use ff_models::zoo::{AlgorithmKind, HyperParams};

fn to_param_spec(kind: &ParamKind) -> ParamSpec {
    match kind {
        ParamKind::Continuous { lo, hi } => ParamSpec::Continuous { lo: *lo, hi: *hi },
        ParamKind::LogContinuous { lo, hi } => ParamSpec::LogContinuous { lo: *lo, hi: *hi },
        ParamKind::Integer { lo, hi } => ParamSpec::Integer { lo: *lo, hi: *hi },
        ParamKind::Categorical { options } => ParamSpec::Categorical {
            options: options.clone(),
        },
    }
}

fn to_param_value(v: &SpecValue) -> ParamValue {
    match v {
        SpecValue::Float(x) => ParamValue::Float(*x),
        SpecValue::Int(x) => ParamValue::Int(*x),
        SpecValue::Cat(s) => ParamValue::Cat(s.clone()),
    }
}

fn to_spec_value(v: &ParamValue) -> SpecValue {
    match v {
        ParamValue::Float(x) => SpecValue::Float(*x),
        ParamValue::Int(x) => SpecValue::Int(*x),
        ParamValue::Cat(s) => SpecValue::Cat(s.clone()),
    }
}

/// Builds the joint Table 2 search space over the given algorithms by
/// iterating their registered specs.
pub fn table2_space(algorithms: &[AlgorithmKind]) -> SearchSpace {
    assert!(!algorithms.is_empty());
    let names: Vec<String> = algorithms.iter().map(|a| a.name().to_string()).collect();
    let mut space = SearchSpace::new().with("algorithm", ParamSpec::Categorical { options: names });
    for algo in algorithms {
        for pd in algo.spec().params() {
            space = space.with(pd.key(), to_param_spec(pd.kind()));
        }
    }
    space
}

/// Extracts the algorithm choice from a sampled configuration.
pub fn algorithm_of(config: &Configuration) -> Option<AlgorithmKind> {
    AlgorithmKind::from_name(config.get("algorithm")?.as_str())
}

/// Converts a sampled configuration to the concrete hyperparameter bundle.
///
/// Only the selected algorithm's own namespaced keys are consulted; any
/// missing key falls back to that algorithm's warm (grid sweet-spot) value.
/// Dimensions of unselected algorithms never leak into the result — they
/// stay at [`HyperParams::default`].
pub fn to_hyperparams(config: &Configuration) -> HyperParams {
    match algorithm_of(config) {
        Some(algo) => algo.spec().decode(|key| config.get(key).map(to_spec_value)),
        None => HyperParams::default(),
    }
}

/// Encodes a bundle back into a configuration for the given algorithm
/// (inverse of [`to_hyperparams`] over that algorithm's dimensions).
pub fn from_hyperparams(algo: AlgorithmKind, hp: &HyperParams) -> Configuration {
    let mut c = Configuration::new();
    c.insert("algorithm".into(), ParamValue::Cat(algo.name().to_string()));
    for (key, value) in algo.spec().encode(hp) {
        c.insert(key, to_param_value(&value));
    }
    c
}

/// Warm-start configurations for the recommended algorithms: each
/// recommendation seeds one configuration at its registered grid-search
/// sweet spot (the middle entry of the KB labelling grid).
pub fn warm_start_configs(algorithms: &[AlgorithmKind]) -> Vec<Configuration> {
    algorithms
        .iter()
        .map(|&a| {
            let mut c = Configuration::new();
            c.insert("algorithm".into(), ParamValue::Cat(a.name().to_string()));
            for (key, value) in a.spec().warm_values() {
                c.insert(key, to_param_value(&value));
            }
            c
        })
        .collect()
}

/// The categorical dimension naming the selected pipeline structure.
pub const PIPELINE_KEY: &str = "pipeline";

/// Builds the joint structure-conditional pipeline space: a categorical
/// `pipeline` dimension over the given structures, the `algorithm`
/// dimension over the recommendations, one dimension per distinct node
/// param across the structures (guarded by the set of structures that
/// contain the node), and every algorithm's own params (guarded by the
/// algorithm selection). Sampling and decoding stay unconditional — the
/// CASH fallback machinery is unchanged — but the guards mask unselected-
/// branch dimensions out of the surrogate's encoding, so tuning one
/// structure never pays kernel distance for another structure's knobs.
pub fn pipeline_space(algorithms: &[AlgorithmKind], pipelines: &[PipelineId]) -> SearchSpace {
    assert!(!algorithms.is_empty() && !pipelines.is_empty());
    let pnames: Vec<String> = pipelines.iter().map(|p| p.name().to_string()).collect();
    let anames: Vec<String> = algorithms.iter().map(|a| a.name().to_string()).collect();
    let mut space = SearchSpace::new()
        .with(PIPELINE_KEY, ParamSpec::Categorical { options: pnames })
        .with("algorithm", ParamSpec::Categorical { options: anames });
    let mut seen: Vec<NodeId> = Vec::new();
    for p in pipelines {
        for &node in p.spec().nodes() {
            if seen.contains(&node) {
                continue;
            }
            seen.push(node);
            let activating: Vec<String> = pipelines
                .iter()
                .filter(|q| q.spec().nodes().contains(&node))
                .map(|q| q.name().to_string())
                .collect();
            for pd in node.spec().params() {
                space = space.with_conditional(
                    pd.key(),
                    to_param_spec(pd.kind()),
                    Condition::any_of(PIPELINE_KEY, activating.clone()),
                );
            }
        }
    }
    for algo in algorithms {
        for pd in algo.spec().params() {
            space = space.with_conditional(
                pd.key(),
                to_param_spec(pd.kind()),
                Condition::equals("algorithm", algo.name()),
            );
        }
    }
    space
}

/// Extracts the pipeline-structure choice from a sampled configuration
/// (`None` for flat-portfolio configurations).
pub fn pipeline_of(config: &Configuration) -> Option<PipelineId> {
    PipelineId::from_name(config.get(PIPELINE_KEY)?.as_str())
}

/// Converts a joint configuration to the bundle carrying both the selected
/// algorithm's hyperparameters and the selected structure's node params
/// (in `extras`). Each layer consults only its own namespaced keys;
/// unselected-branch dimensions never leak (same contract as
/// [`to_hyperparams`], extended to node namespaces).
pub fn to_pipeline_hyperparams(config: &Configuration) -> HyperParams {
    let mut hp = to_hyperparams(config);
    if let Some(p) = pipeline_of(config) {
        p.spec()
            .decode_into(&mut hp, |key| config.get(key).map(to_spec_value));
    }
    hp
}

/// Warm-start configurations for the joint space: every structure paired
/// with the first recommended algorithm, then every remaining algorithm
/// paired with the first structure — `|P| + |A| − 1` seeds that cover both
/// axes without the full cross product. All node and algorithm params sit
/// at their warm values.
pub fn warm_start_pipeline_configs(
    algorithms: &[AlgorithmKind],
    pipelines: &[PipelineId],
) -> Vec<Configuration> {
    assert!(!algorithms.is_empty() && !pipelines.is_empty());
    let warm = |p: PipelineId, a: AlgorithmKind| {
        let mut c = Configuration::new();
        c.insert(PIPELINE_KEY.into(), ParamValue::Cat(p.name().to_string()));
        c.insert("algorithm".into(), ParamValue::Cat(a.name().to_string()));
        for (key, value) in p.spec().warm_values() {
            c.insert(key, to_param_value(&value));
        }
        for (key, value) in a.spec().warm_values() {
            c.insert(key, to_param_value(&value));
        }
        c
    };
    let mut out: Vec<Configuration> = pipelines.iter().map(|&p| warm(p, algorithms[0])).collect();
    out.extend(algorithms[1..].iter().map(|&a| warm(pipelines[0], a)));
    out
}

/// Serializes a configuration into a [`ConfigMap`] for the wire.
pub fn config_to_map(config: &Configuration) -> ConfigMap {
    let mut map = ConfigMap::new();
    for (k, v) in config {
        map = match v {
            ParamValue::Float(x) => map.with_float(k, *x),
            ParamValue::Int(x) => map.with_int(k, *x),
            ParamValue::Cat(s) => map.with_str(k, s),
        };
    }
    map
}

/// Parses a wire [`ConfigMap`] back into a configuration.
pub fn map_to_config(map: &ConfigMap) -> Configuration {
    let mut config = Configuration::new();
    for (k, v) in map {
        let pv = if let Some(s) = v.as_str() {
            ParamValue::Cat(s.to_string())
        } else if let Some(i) = v.as_int() {
            ParamValue::Int(i)
        } else if let Some(f) = v.as_float() {
            ParamValue::Float(f)
        } else {
            continue;
        };
        config.insert(k.clone(), pv);
    }
    config
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn full_space_has_all_table2_dimensions() {
        let space = table2_space(&AlgorithmKind::builtin());
        // algorithm + 2 + 2 + 2 + 5 + 2 + 2 = 16 named params.
        assert_eq!(space.len(), 16);
    }

    /// Snapshot of the six Table 2 algorithms' space against hard-coded
    /// literals — the registry must keep producing byte-identical
    /// dimensions to the pre-registry code. Two intentional deviations are
    /// baked into the expectations: `enet_l1_ratio` now samples the valid
    /// `[0.3, 1.0]` range (the declared `[0.3, 10]` was a Table 2 typo that
    /// collapsed ~97% of samples onto plain Lasso), and warm starts carry
    /// real grid sweet-spot values (see `warm_start_matches_grid_centers`).
    #[test]
    fn table2_space_snapshot() {
        let space = table2_space(&AlgorithmKind::builtin());
        let cat = |opts: &[&str]| ParamSpec::Categorical {
            options: opts.iter().map(|s| s.to_string()).collect(),
        };
        let expected: Vec<(&str, ParamSpec)> = vec![
            (
                "algorithm",
                cat(&[
                    "Lasso",
                    "LinearSVR",
                    "ElasticNetCV",
                    "XGBRegressor",
                    "HuberRegressor",
                    "QuantileRegressor",
                ]),
            ),
            (
                "lasso_alpha",
                ParamSpec::LogContinuous { lo: 1e-5, hi: 10.0 },
            ),
            ("lasso_selection", cat(&["cyclic", "random"])),
            ("svr_c", ParamSpec::Continuous { lo: 1.0, hi: 10.0 }),
            ("svr_epsilon", ParamSpec::Continuous { lo: 0.01, hi: 0.1 }),
            ("enet_l1_ratio", ParamSpec::Continuous { lo: 0.3, hi: 1.0 }),
            ("enet_selection", cat(&["cyclic", "random"])),
            ("xgb_n_estimators", ParamSpec::Integer { lo: 5, hi: 20 }),
            ("xgb_max_depth", ParamSpec::Integer { lo: 2, hi: 10 }),
            (
                "xgb_learning_rate",
                ParamSpec::Continuous { lo: 0.01, hi: 1.0 },
            ),
            (
                "xgb_reg_lambda",
                ParamSpec::Continuous { lo: 0.8, hi: 10.0 },
            ),
            ("xgb_subsample", ParamSpec::Continuous { lo: 0.1, hi: 1.0 }),
            ("huber_epsilon", cat(&["1.0", "1.35", "1.5"])),
            (
                "huber_alpha",
                ParamSpec::LogContinuous { lo: 1e-5, hi: 10.0 },
            ),
            (
                "quantile_alpha",
                ParamSpec::LogContinuous { lo: 1e-5, hi: 10.0 },
            ),
            ("quantile_q", ParamSpec::Continuous { lo: 0.1, hi: 1.0 }),
        ];
        let actual: Vec<(&str, ParamSpec)> = space
            .params()
            .iter()
            .map(|(n, s)| (n.as_str(), s.clone()))
            .collect();
        assert_eq!(actual, expected);
    }

    /// Warm starts seed the documented grid sweet spots (middle grid entry
    /// per algorithm), not bare algorithm names.
    #[test]
    fn warm_start_matches_grid_centers() {
        let ws = warm_start_configs(&AlgorithmKind::builtin());
        assert_eq!(ws.len(), 6);
        let get = |c: &Configuration, k: &str| c.get(k).cloned().unwrap();
        assert_eq!(get(&ws[0], "lasso_alpha"), ParamValue::Float(1e-2));
        assert_eq!(
            get(&ws[0], "lasso_selection"),
            ParamValue::Cat("cyclic".into())
        );
        assert_eq!(get(&ws[1], "svr_c"), ParamValue::Float(5.0));
        assert_eq!(get(&ws[1], "svr_epsilon"), ParamValue::Float(0.05));
        assert_eq!(get(&ws[2], "enet_l1_ratio"), ParamValue::Float(0.7));
        assert_eq!(get(&ws[3], "xgb_n_estimators"), ParamValue::Int(10));
        assert_eq!(get(&ws[3], "xgb_max_depth"), ParamValue::Int(4));
        assert_eq!(get(&ws[3], "xgb_learning_rate"), ParamValue::Float(0.3));
        assert_eq!(get(&ws[4], "huber_epsilon"), ParamValue::Cat("1.35".into()));
        assert_eq!(get(&ws[4], "huber_alpha"), ParamValue::Float(1e-2));
        assert_eq!(get(&ws[5], "quantile_q"), ParamValue::Float(0.5));
        assert_eq!(get(&ws[5], "quantile_alpha"), ParamValue::Float(1e-1));
        // Every warm config decodes into a bundle that round-trips.
        for c in &ws {
            let algo = algorithm_of(c).unwrap();
            let hp = to_hyperparams(c);
            assert_eq!(from_hyperparams(algo, &hp), *c);
        }
    }

    #[test]
    fn restricted_space_omits_unrecommended_params() {
        let space = table2_space(&[AlgorithmKind::LASSO]);
        assert_eq!(space.len(), 3); // algorithm, lasso_alpha, lasso_selection
    }

    #[test]
    fn sampled_configs_build_models() {
        let space = table2_space(&AlgorithmKind::builtin());
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..50 {
            let c = space.sample(&mut rng);
            let algo = algorithm_of(&c).unwrap();
            let hp = to_hyperparams(&c);
            let model = ff_models::zoo::build_regressor(algo, &hp);
            drop(model);
            // Table 2 ranges respected after conversion.
            assert!((5..=20).contains(&hp.n_estimators));
            assert!((0.1..=1.0).contains(&hp.subsample));
        }
    }

    /// Regression test for the cross-namespace decode leak: dimensions of
    /// unselected algorithms must never reach `HyperParams`. Pre-registry,
    /// an SVR config fell back to `lasso_alpha`/`lasso_selection`.
    #[test]
    fn unselected_dimensions_never_leak() {
        let space = table2_space(&AlgorithmKind::builtin());
        let defaults = HyperParams::default();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..60 {
            let c = space.sample(&mut rng);
            let algo = algorithm_of(&c).unwrap();
            let hp = to_hyperparams(&c);
            let prefix = algo.spec().prefix();
            // Corrupt every foreign dimension to an extreme value and
            // decode again: the result must be unchanged.
            let mut poisoned = c.clone();
            for (key, value) in poisoned.iter_mut() {
                if key != "algorithm" && !key.starts_with(prefix) {
                    *value = match value {
                        ParamValue::Float(_) => ParamValue::Float(9e9),
                        ParamValue::Int(_) => ParamValue::Int(999),
                        ParamValue::Cat(_) => ParamValue::Cat("random".into()),
                    };
                }
            }
            assert_eq!(to_hyperparams(&poisoned), hp, "{algo:?} leaked");
            // And fields owned by no dimension of the selected algorithm
            // stay at their defaults.
            if algo != AlgorithmKind::XGB_REGRESSOR {
                assert_eq!(hp.n_estimators, defaults.n_estimators);
                assert_eq!(hp.learning_rate, defaults.learning_rate);
            }
            if algo != AlgorithmKind::LINEAR_SVR {
                assert_eq!(hp.c, defaults.c);
            }
        }
    }

    #[test]
    fn huber_epsilon_categorical_parses() {
        let space = table2_space(&[AlgorithmKind::HUBER_REGRESSOR]);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let c = space.sample(&mut rng);
            let hp = to_hyperparams(&c);
            assert!(
                [1.0, 1.35, 1.5].contains(&hp.epsilon),
                "epsilon {}",
                hp.epsilon
            );
        }
    }

    #[test]
    fn wire_roundtrip_preserves_configuration() {
        let space = table2_space(&AlgorithmKind::builtin());
        let mut rng = StdRng::seed_from_u64(2);
        let c = space.sample(&mut rng);
        let map = config_to_map(&c);
        let back = map_to_config(&map);
        assert_eq!(c, back);
    }

    #[test]
    fn warm_start_covers_recommendations_in_order() {
        let recs = [AlgorithmKind::XGB_REGRESSOR, AlgorithmKind::LASSO];
        let ws = warm_start_configs(&recs);
        assert_eq!(ws.len(), 2);
        assert_eq!(algorithm_of(&ws[0]), Some(AlgorithmKind::XGB_REGRESSOR));
        assert_eq!(algorithm_of(&ws[1]), Some(AlgorithmKind::LASSO));
    }

    #[test]
    fn pipeline_space_has_structure_and_branch_dimensions() {
        let space = pipeline_space(
            &[AlgorithmKind::LASSO, AlgorithmKind::XGB_REGRESSOR],
            &PipelineId::builtin(),
        );
        // pipeline + algorithm + 7 node params (one each) + 2 + 5 algo
        // params = 16 named dimensions.
        assert_eq!(space.len(), 16);
        // The lag window is active in every builtin structure; trend degree
        // only in the polyfit structures.
        let names: Vec<&str> = space.params().iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"node_lag_window"));
        assert!(names.contains(&"node_poly_degree"));
        let cond = space.condition("node_poly_degree").unwrap();
        assert_eq!(cond.key(), PIPELINE_KEY);
        assert_eq!(cond.options(), ["trend_lagged", "trend_smooth_lagged"]);
        // Algorithm params are guarded by the algorithm selection.
        let cond = space.condition("lasso_alpha").unwrap();
        assert_eq!(cond.key(), "algorithm");
    }

    #[test]
    fn pipeline_warm_starts_cover_both_axes() {
        let algos = [AlgorithmKind::LASSO, AlgorithmKind::XGB_REGRESSOR];
        let pipes = PipelineId::builtin();
        let ws = warm_start_pipeline_configs(&algos, &pipes);
        assert_eq!(ws.len(), pipes.len() + algos.len() - 1);
        for (i, &p) in pipes.iter().enumerate() {
            assert_eq!(pipeline_of(&ws[i]), Some(p));
            assert_eq!(algorithm_of(&ws[i]), Some(AlgorithmKind::LASSO));
        }
        let last = &ws[pipes.len()];
        assert_eq!(pipeline_of(last), Some(PipelineId::LAGGED));
        assert_eq!(algorithm_of(last), Some(AlgorithmKind::XGB_REGRESSOR));
        // Warm node params decode back out of the bundle.
        let hp = to_pipeline_hyperparams(&ws[4]); // trend_lagged
        assert_eq!(hp.extras.get("node_poly_degree"), Some(&2.0));
        assert_eq!(hp.extras.get("node_lag_window"), Some(&8.0));
    }

    /// The pipeline extension of `unselected_dimensions_never_leak`:
    /// poisoning dimensions of unselected structures (and unselected
    /// algorithms) must not change the decoded bundle.
    #[test]
    fn unselected_branch_params_never_leak_into_pipelines() {
        let space = pipeline_space(&AlgorithmKind::builtin(), &PipelineId::builtin());
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..60 {
            let c = space.sample(&mut rng);
            let pipe = pipeline_of(&c).unwrap();
            let algo = algorithm_of(&c).unwrap();
            let hp = to_pipeline_hyperparams(&c);
            let own_nodes: Vec<&str> = pipe.spec().nodes().iter().map(|n| n.name()).collect();
            let mut poisoned = c.clone();
            for (key, value) in poisoned.iter_mut() {
                let keep = key == "algorithm"
                    || key == PIPELINE_KEY
                    || key.starts_with(algo.spec().prefix())
                    || pipe
                        .spec()
                        .nodes()
                        .iter()
                        .any(|n| key.starts_with(n.spec().prefix()));
                if !keep {
                    *value = match value {
                        ParamValue::Float(_) => ParamValue::Float(9e9),
                        ParamValue::Int(_) => ParamValue::Int(999),
                        ParamValue::Cat(_) => ParamValue::Cat("random".into()),
                    };
                }
            }
            assert_eq!(
                to_pipeline_hyperparams(&poisoned),
                hp,
                "{pipe:?}/{algo:?} leaked (own nodes {own_nodes:?})"
            );
            // Node params of structures outside the selection stay absent.
            for node in NodeId::builtin() {
                if !pipe.spec().nodes().contains(&node) {
                    for pd in node.spec().params() {
                        assert!(
                            !hp.extras.contains_key(pd.key()),
                            "{pipe:?} absorbed foreign node key {}",
                            pd.key()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn sampled_pipeline_configs_fit_end_to_end() {
        let space = pipeline_space(
            &[AlgorithmKind::LASSO, AlgorithmKind::XGB_REGRESSOR],
            &PipelineId::builtin(),
        );
        let values: Vec<f64> = (0..160)
            .map(|t| 4.0 + 0.05 * t as f64 + (std::f64::consts::TAU * t as f64 / 9.0).sin())
            .collect();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..12 {
            let c = space.sample(&mut rng);
            let pipe = pipeline_of(&c).unwrap();
            let algo = algorithm_of(&c).unwrap();
            let hp = to_pipeline_hyperparams(&c);
            let m = ff_models::pipeline::PipelineModel::fit(pipe, algo, &hp, &values, 130)
                .unwrap_or_else(|e| panic!("{pipe:?}/{algo:?}: {e}"));
            let pred = m.predict_range(&values, 130, 160).unwrap();
            assert!(pred.iter().all(|v| v.is_finite()), "{pipe:?}/{algo:?}");
        }
    }

    #[test]
    fn pipeline_wire_roundtrip_preserves_configuration() {
        let space = pipeline_space(&AlgorithmKind::builtin(), &PipelineId::builtin());
        let mut rng = StdRng::seed_from_u64(6);
        let c = space.sample(&mut rng);
        assert_eq!(map_to_config(&config_to_map(&c)), c);
    }
}
