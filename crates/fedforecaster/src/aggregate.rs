//! Final model aggregation (§4.4, Algorithm 1 lines 23–27).
//!
//! Linear-family forecasters aggregate by FedAvg over raw-feature-space
//! coefficients (`α_j = |D_j|/|D|`). Tree ensembles have no meaningful
//! parameter average; they deploy per-client with the globally tuned
//! configuration, and the reported global loss is the weighted average of
//! the local losses — see DESIGN.md §5.

use ff_models::zoo::AlgorithmKind;

/// The deployed global model after Algorithm 1 completes.
#[derive(Debug, Clone, PartialEq)]
pub enum GlobalModel {
    /// One shared linear model: FedAvg of raw-space coefficients.
    Linear {
        /// Winning algorithm.
        algorithm: AlgorithmKind,
        /// Aggregated feature coefficients (raw feature space).
        coef: Vec<f64>,
        /// Aggregated intercept.
        intercept: f64,
    },
    /// Per-client deployment of the winning (tree-based) configuration.
    PerClient {
        /// Winning algorithm.
        algorithm: AlgorithmKind,
    },
    /// The weighted union of every client's serialized tree ensemble
    /// (`ŷ(x) = Σ αⱼ fⱼ(x)`), deployed to all clients.
    Ensemble {
        /// Winning algorithm.
        algorithm: AlgorithmKind,
        /// Number of member models in the union.
        members: usize,
    },
}

impl GlobalModel {
    /// The winning algorithm.
    pub fn algorithm(&self) -> AlgorithmKind {
        match self {
            GlobalModel::Linear { algorithm, .. }
            | GlobalModel::PerClient { algorithm }
            | GlobalModel::Ensemble { algorithm, .. } => *algorithm,
        }
    }

    /// Predicts with the shared linear model; `None` for per-client models
    /// (their predictions live on the clients).
    pub fn predict_linear(&self, features: &[f64]) -> Option<f64> {
        match self {
            GlobalModel::Linear {
                coef, intercept, ..
            } => {
                if coef.len() != features.len() {
                    return None;
                }
                Some(ff_linalg::vector::dot(coef, features) + intercept)
            }
            GlobalModel::PerClient { .. } | GlobalModel::Ensemble { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_prediction() {
        let m = GlobalModel::Linear {
            algorithm: AlgorithmKind::LASSO,
            coef: vec![2.0, -1.0],
            intercept: 0.5,
        };
        assert_eq!(m.predict_linear(&[1.0, 1.0]), Some(1.5));
        assert_eq!(m.predict_linear(&[1.0]), None);
        assert_eq!(m.algorithm(), AlgorithmKind::LASSO);
    }

    #[test]
    fn per_client_has_no_shared_predictor() {
        let m = GlobalModel::PerClient {
            algorithm: AlgorithmKind::XGB_REGRESSOR,
        };
        assert_eq!(m.predict_linear(&[1.0]), None);
        let e = GlobalModel::Ensemble {
            algorithm: AlgorithmKind::XGB_REGRESSOR,
            members: 4,
        };
        assert_eq!(e.algorithm(), AlgorithmKind::XGB_REGRESSOR);
        assert_eq!(e.predict_linear(&[1.0]), None);
    }
}
