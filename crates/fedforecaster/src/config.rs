//! Engine configuration.

use crate::budget::Budget;
use crate::{EngineError, Result};
use ff_fl::robust::{AggregationStrategy, GuardPolicy};
use ff_fl::runtime::RoundPolicy;
use ff_trace::{ExpoConfig, FlightRecorder, RecorderConfig, Tracer};

/// Observability switch for a run. Disabled (the default) costs one
/// branch per instrumentation point — no locks, clocks, or allocations —
/// and leaves engine output bit-identical to an uninstrumented build.
/// Enabled, the engine records the full span tree (`run → phase.* →
/// trial/fl.round → gp.*`), counters, gauges, and byte histograms, and
/// attaches a [`crate::report::RunTelemetry`] to the
/// [`crate::engine::RunResult`].
///
/// On top of the base switch, three live-observability features opt in
/// independently (all off by default, all zero-cost when off):
/// - [`TraceConfig::with_profile`] — self-time attribution and
///   critical-path analysis over the span tree, attached to the
///   telemetry and rendered in the human summary;
/// - [`TraceConfig::with_recorder`] — a bounded flight recorder that
///   keeps the last N per-round frames and dumps them as deterministic
///   JSON lines when a distress trigger (quarantine, quorum failure,
///   guard rejection, non-finite loss) fires;
/// - [`TraceConfig::with_expo`] — a std-only TCP listener serving
///   Prometheus text-format snapshots (`/metrics`) and a round-liveness
///   probe (`/healthz`) for the duration of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceConfig {
    enabled: bool,
    profile: bool,
    recorder: Option<RecorderConfig>,
    expo: Option<ExpoConfig>,
}

impl TraceConfig {
    /// Tracing on.
    pub fn enabled() -> TraceConfig {
        TraceConfig {
            enabled: true,
            ..TraceConfig::default()
        }
    }

    /// Tracing off (the default).
    pub fn disabled() -> TraceConfig {
        TraceConfig::default()
    }

    /// Whether tracing is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Enables span profiling (self-time table, critical path, folded
    /// stacks). Implies nothing unless tracing itself is enabled.
    pub fn with_profile(mut self) -> TraceConfig {
        self.profile = true;
        self
    }

    /// Enables the per-round flight recorder with the given bounds.
    pub fn with_recorder(mut self, cfg: RecorderConfig) -> TraceConfig {
        self.recorder = Some(cfg);
        self
    }

    /// Enables the metrics exposition endpoint for the run's duration.
    pub fn with_expo(mut self, cfg: ExpoConfig) -> TraceConfig {
        self.expo = Some(cfg);
        self
    }

    /// Whether the profiler is on (only meaningful when tracing is on).
    pub fn profile_enabled(&self) -> bool {
        self.enabled && self.profile
    }

    /// The flight-recorder bounds, when the recorder is enabled.
    pub fn recorder_config(&self) -> Option<RecorderConfig> {
        if self.enabled {
            self.recorder
        } else {
            None
        }
    }

    /// The exposition-endpoint config, when the endpoint is enabled.
    pub fn expo_config(&self) -> Option<ExpoConfig> {
        if self.enabled {
            self.expo
        } else {
            None
        }
    }

    /// A fresh tracer honoring this config.
    pub fn tracer(&self) -> Tracer {
        if self.enabled {
            Tracer::enabled()
        } else {
            Tracer::disabled()
        }
    }

    /// A fresh flight recorder honoring this config (disabled — and
    /// allocation-free — unless both tracing and the recorder are on).
    pub fn recorder(&self) -> FlightRecorder {
        match self.recorder_config() {
            Some(cfg) => FlightRecorder::enabled(cfg),
            None => FlightRecorder::disabled(),
        }
    }
}

/// Durable checkpointing of a run (see DESIGN.md §16). When set on
/// [`EngineConfig::checkpoint`], the engine appends a CRC-framed record
/// to a write-ahead log at every commit point — run start, phase
/// completion, each completed trial (with a runtime snapshot), final
/// member blobs, run completion — and
/// [`crate::engine::FedForecaster::resume_on`] replays that log to continue a
/// killed run to a bit-identical result. `None` (the default) costs
/// nothing: no file, no bytes, no allocations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CkptConfig {
    /// Path of the write-ahead log file. Created (or truncated) on a
    /// fresh run; read and appended to on resume.
    pub path: std::path::PathBuf,
    /// Compact the log (drop superseded runtime snapshots via atomic
    /// rewrite) once it exceeds this many bytes. `None` never compacts.
    pub compact_after_bytes: Option<u64>,
    /// Fsync after every appended record (the default). Disabling trades
    /// the durability of the last record for throughput — on a crash the
    /// torn tail is discarded and that work re-executes on resume.
    pub fsync: bool,
    /// Crash-injection point for the recovery test harness. `None` in
    /// production. See [`ff_ckpt::CrashPoint::from_env`] for the
    /// `FF_CRASH_AT` environment form.
    pub crash: Option<ff_ckpt::CrashPoint>,
}

impl CkptConfig {
    /// Checkpointing to `path` with production defaults: fsync on, no
    /// compaction, no crash injection.
    pub fn at(path: impl Into<std::path::PathBuf>) -> CkptConfig {
        CkptConfig {
            path: path.into(),
            compact_after_bytes: None,
            fsync: true,
            crash: None,
        }
    }
}

/// How tree-ensemble winners are aggregated in phase IV (§4.4). Linear
/// models always aggregate by FedAvg over standardized coefficients.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TreeAggregation {
    /// Evaluate both deployment modes on the validation split and deploy
    /// whichever is better (the default). Tree unions cannot extrapolate
    /// across client levels, so on trending non-IID federations the union
    /// is systematically biased — this mode detects that from validation
    /// data alone.
    #[default]
    Auto,
    /// Serialize every client's fitted ensemble and deploy the weighted
    /// union: `ŷ(x) = Σ αⱼ fⱼ(x)` — the faithful reading of "the server
    /// aggregates the local models".
    EnsembleUnion,
    /// Keep each client's locally fitted model (personalized deployment
    /// with globally tuned hyperparameters); the global loss is the
    /// weighted average of local losses.
    PerClient,
}

/// Configuration of a [`crate::FedForecaster`] run. Defaults mirror §5.1:
/// K = 3 recommendations, EI acquisition over a GP surrogate, and a
/// modest iteration budget suitable for tests (pass
/// `Budget::Time(Duration::from_secs(300))` for the paper's 5 minutes).
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of algorithms the meta-model recommends (paper: K = 3).
    pub top_k: usize,
    /// Optimization budget.
    pub budget: Budget,
    /// Fraction of each client's data held out for validation.
    pub valid_fraction: f64,
    /// Fraction of each client's data held out for final testing.
    pub test_fraction: f64,
    /// Maximum lag features (cap on the globally agreed lag count).
    pub max_lags: usize,
    /// Maximum seasonal components in the feature set (§4.2.1(4) top-N).
    pub max_seasonal_components: usize,
    /// Cumulative feature-importance threshold for selection (§4.2.2).
    pub importance_threshold: f64,
    /// RNG seed.
    pub seed: u64,
    /// Disable the feature-engineering stage (ablation: raw lags only).
    pub disable_feature_engineering: bool,
    /// Disable the meta-model warm start (ablation: cold BO over all six
    /// algorithms).
    pub disable_warm_start: bool,
    /// Tree-ensemble aggregation mode for phase IV.
    pub tree_aggregation: TreeAggregation,
    /// Fault-tolerance policy applied to every federated round (deadline,
    /// response quorum, retries). The engine proceeds with whichever
    /// healthy subset replies in time; only a round below
    /// `round_policy.min_responses` fails (and in the tuning loop that
    /// fails the trial, not the run).
    pub round_policy: RoundPolicy,
    /// Explicit algorithm portfolio. `Some(kinds)` bypasses the meta-model
    /// recommendation (and `disable_warm_start`) and searches exactly these
    /// algorithms — useful for forcing a single algorithm or exercising a
    /// newly registered one end-to-end. `None` (the default) uses the
    /// meta-model recommendation.
    pub portfolio: Option<Vec<ff_models::zoo::AlgorithmKind>>,
    /// Pipeline structures to search jointly with the algorithm portfolio.
    /// `Some(structures)` switches phase III to the composed search space:
    /// BO selects a pipeline structure, its node hyperparameters, an
    /// algorithm, and the algorithm's hyperparameters in one conditional
    /// space, and phase IV finalizes the winner by ensemble union of
    /// blob-v3 members. `None` (the default) keeps the flat
    /// algorithm-only search.
    pub pipelines: Option<Vec<ff_models::pipeline::PipelineId>>,
    /// Observability: disabled by default (zero-cost); enable to collect
    /// spans, metrics, and a [`crate::report::RunTelemetry`] on the result.
    pub trace: TraceConfig,
    /// Server-side aggregation rule. The default
    /// [`AggregationStrategy::FedAvg`] is bit-identical to the
    /// pre-robustness engine; any robust variant additionally screens
    /// every reply through an [`ff_fl::robust::UpdateGuard`], reports
    /// rejections per round, and escalates repeat offenders to quarantine.
    pub aggregation: AggregationStrategy,
    /// Thresholds of the pre-aggregation screen (used only when
    /// `aggregation` is robust).
    pub guard: GuardPolicy,
    /// Worker-thread policy for the data-parallel kernels (matmul,
    /// Cholesky panels, GP fits, forest trees, meta-feature extraction).
    /// The default [`ff_par::ParConfig::auto`] inherits `FF_THREADS` or the
    /// hardware parallelism; [`ff_par::ParConfig::sequential`] pins the
    /// exact single-threaded execution. Every kernel is bit-identical
    /// across thread counts, so this knob only affects wall-clock time.
    pub par: ff_par::ParConfig,
    /// Pairwise-masked (Bonawitz-style) summation for the final-fit
    /// aggregation of linear winners: the server only ever sees masked
    /// sums, never an individual client's coefficients. Only valid with
    /// `aggregation: FedAvg` — robust aggregators need each client's
    /// plaintext update, so [`EngineConfig::validate`] rejects the
    /// combination (see DESIGN.md §11 for the trade-off).
    pub secure_aggregation: bool,
    /// Durable crash-tolerance: `Some` writes a write-ahead checkpoint
    /// log at every commit point and enables
    /// [`crate::engine::FedForecaster::resume_on`]. `None` (the default) is
    /// exactly the pre-checkpoint engine: zero file I/O, zero
    /// allocations on the checkpoint path.
    pub checkpoint: Option<CkptConfig>,
}

impl EngineConfig {
    /// Validates cross-field invariants before a run: robust-rule knobs
    /// in range, and no robust aggregation over masked sums (the guard
    /// and the robust estimators are definitionally incompatible with a
    /// server that cannot see per-client updates).
    pub fn validate(&self) -> Result<()> {
        self.aggregation
            .validate()
            .map_err(EngineError::Federation)?;
        if self.secure_aggregation && !self.aggregation.compatible_with_masking() {
            return Err(EngineError::InvalidData(format!(
                "secure_aggregation is incompatible with {}: masked sums hide the \
                 per-client updates robust aggregators and the update guard must \
                 inspect; use FedAvg with masking, or a robust rule in plaintext",
                self.aggregation.name()
            )));
        }
        if let Some(pipes) = &self.pipelines {
            if pipes.is_empty() {
                return Err(EngineError::InvalidData(
                    "pipelines: Some([]) selects nothing; use None for the flat search".into(),
                ));
            }
        }
        Ok(())
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            top_k: 3,
            budget: Budget::Iterations(15),
            valid_fraction: 0.15,
            test_fraction: 0.15,
            max_lags: 10,
            max_seasonal_components: 3,
            importance_threshold: 0.95,
            seed: 42,
            disable_feature_engineering: false,
            disable_warm_start: false,
            tree_aggregation: TreeAggregation::default(),
            round_policy: RoundPolicy::default(),
            portfolio: None,
            pipelines: None,
            trace: TraceConfig::default(),
            aggregation: AggregationStrategy::default(),
            guard: GuardPolicy::default(),
            par: ff_par::ParConfig::auto(),
            secure_aggregation: false,
            checkpoint: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_settings() {
        let c = EngineConfig::default();
        assert_eq!(c.top_k, 3);
        assert!((c.importance_threshold - 0.95).abs() < 1e-12);
        assert!(!c.disable_feature_engineering);
        assert_eq!(c.tree_aggregation, TreeAggregation::Auto);
        assert_eq!(c.round_policy, RoundPolicy::default());
        assert!(c.portfolio.is_none());
        assert!(c.pipelines.is_none());
        assert!(!c.trace.is_enabled());
        assert_eq!(c.aggregation, AggregationStrategy::FedAvg);
        assert_eq!(c.par, ff_par::ParConfig::auto());
        assert!(!c.secure_aggregation);
        assert!(c.checkpoint.is_none());
        assert!(c.validate().is_ok());
    }

    #[test]
    fn secure_masking_plus_robust_aggregation_is_rejected() {
        let ok = EngineConfig {
            secure_aggregation: true,
            ..Default::default()
        };
        assert!(ok.validate().is_ok(), "FedAvg + masking is fine");
        let bad = EngineConfig {
            secure_aggregation: true,
            aggregation: AggregationStrategy::CoordinateMedian,
            ..Default::default()
        };
        let err = bad.validate().unwrap_err().to_string();
        assert!(err.contains("incompatible"), "error was: {err}");
        // Bad robust knobs are caught here too, not mid-run.
        let bad_knob = EngineConfig {
            aggregation: AggregationStrategy::TrimmedMean { trim_ratio: 0.7 },
            ..Default::default()
        };
        assert!(bad_knob.validate().is_err());
    }

    #[test]
    fn empty_pipeline_list_is_rejected() {
        let bad = EngineConfig {
            pipelines: Some(vec![]),
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let ok = EngineConfig {
            pipelines: Some(ff_models::pipeline::PipelineId::builtin().to_vec()),
            ..Default::default()
        };
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn trace_config_gates_the_tracer() {
        assert!(!TraceConfig::disabled().tracer().is_enabled());
        assert!(TraceConfig::enabled().tracer().is_enabled());
        assert_eq!(TraceConfig::default(), TraceConfig::disabled());
    }

    #[test]
    fn observability_features_require_the_base_switch() {
        use ff_trace::{ExpoConfig, RecorderConfig};
        // Features stacked on a disabled base are inert.
        let off = TraceConfig::disabled()
            .with_profile()
            .with_recorder(RecorderConfig::default())
            .with_expo(ExpoConfig::default());
        assert!(!off.profile_enabled());
        assert!(off.recorder_config().is_none());
        assert!(off.expo_config().is_none());
        assert!(!off.recorder().is_enabled());
        // On an enabled base they activate independently.
        let on = TraceConfig::enabled().with_recorder(RecorderConfig {
            capacity: 4,
            ..RecorderConfig::default()
        });
        assert!(!on.profile_enabled());
        assert_eq!(on.recorder_config().map(|c| c.capacity), Some(4));
        assert!(on.expo_config().is_none());
        assert!(on.recorder().is_enabled());
        assert!(TraceConfig::enabled().with_profile().profile_enabled());
    }
}
