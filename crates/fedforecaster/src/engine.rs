//! The FedForecaster engine: Algorithm 1 end-to-end over the federated
//! runtime, plus the shared pipeline stages reused by the random-search
//! baseline.

use crate::aggregate::GlobalModel;
use crate::budget::BudgetTracker;
use crate::client::{FedForecasterClient, OP};
use crate::config::EngineConfig;
use crate::feature_engineering::{select_features, GlobalFeatureSpec};
use crate::report::RoundReport;
use crate::search_space::{algorithm_of, config_to_map, table2_space, warm_start_configs};
use crate::{EngineError, Result};
use ff_bayesopt::optimizer::BayesOpt;
use ff_bayesopt::space::Configuration;
use ff_fl::client::FlClient;
use ff_fl::config::{ConfigMap, ConfigMapExt};
use ff_fl::health::HealthReport;
use ff_fl::message::{Instruction, Reply};
use ff_fl::runtime::{FederatedRuntime, RoundOutcome, RoundPolicy};
use ff_fl::strategy::{aggregate_loss, fedavg, unwrap_eval_replies, unwrap_fit_replies};
use ff_fl::FlError;
use ff_metalearn::aggregate::GlobalMetaFeatures;
use ff_metalearn::features::ClientMetaFeatures;
use ff_metalearn::metamodel::MetaModel;
use ff_models::zoo::AlgorithmKind;
use ff_timeseries::{periodogram, TimeSeries};
use std::time::Duration;

/// Communication spent in one pipeline phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseBytes {
    /// Phase name (`meta_features`, `feature_engineering`, `optimization`,
    /// `finalization`).
    pub phase: &'static str,
    /// Bytes sent server → clients during the phase.
    pub to_clients: usize,
    /// Bytes sent clients → server during the phase.
    pub to_server: usize,
}

/// Outcome of one engine (or baseline) run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Winning algorithm.
    pub best_algorithm: AlgorithmKind,
    /// Winning configuration.
    pub best_config: Configuration,
    /// Best aggregated validation loss observed during optimization.
    pub best_valid_loss: f64,
    /// Aggregated test MSE of the deployed global model.
    pub test_mse: f64,
    /// The deployed global model.
    pub global_model: GlobalModel,
    /// Number of configurations evaluated.
    pub evaluations: usize,
    /// Aggregated validation loss after each evaluation (for budget sweeps).
    pub loss_history: Vec<f64>,
    /// The meta-model's recommendations (empty for baselines).
    pub recommended: Vec<AlgorithmKind>,
    /// Wall-clock spent in the optimization loop.
    pub elapsed: Duration,
    /// Bytes sent server→clients over the run.
    pub bytes_to_clients: usize,
    /// Bytes sent clients→server over the run.
    pub bytes_to_server: usize,
    /// Per-phase communication breakdown (empty for baselines that do not
    /// track phases).
    pub phase_bytes: Vec<PhaseBytes>,
    /// Per-round fault-tolerance log: participants, responders, dropouts
    /// (empty for baselines that run strict rounds).
    pub rounds: Vec<RoundReport>,
    /// Tuning-loop trials abandoned because the round quorum was unmet.
    /// These consume budget but contribute no loss observation.
    pub failed_trials: usize,
    /// Final per-client health snapshot from the runtime.
    pub health: HealthReport,
}

/// The FedForecaster engine. Borrows the (expensive-to-train) meta-model
/// so many runs — sweeps, repeated seeds — share one offline phase.
pub struct FedForecaster<'m> {
    cfg: EngineConfig,
    meta: &'m MetaModel,
}

impl<'m> FedForecaster<'m> {
    /// Creates an engine with a pre-trained meta-model (Figure 2 offline
    /// phase output).
    pub fn new(cfg: EngineConfig, meta: &'m MetaModel) -> FedForecaster<'m> {
        FedForecaster { cfg, meta }
    }

    /// Runs Algorithm 1 on a federation of private series.
    pub fn run(&self, clients: &[TimeSeries]) -> Result<RunResult> {
        let runtime = build_runtime(clients, &self.cfg)?;
        self.run_on(&runtime)
    }

    /// Runs Algorithm 1 on an existing runtime (lets tests inspect logs).
    pub fn run_on(&self, rt: &FederatedRuntime) -> Result<RunResult> {
        let mut phase_bytes = Vec::new();
        let mut phase_mark = rt.log().byte_totals();
        let mut end_phase = |name: &'static str, rt: &FederatedRuntime| {
            let now = rt.log().byte_totals();
            let entry = PhaseBytes {
                phase: name,
                to_clients: now.0 - phase_mark.0,
                to_server: now.1 - phase_mark.1,
            };
            phase_mark = now;
            entry
        };
        let policy = &self.cfg.round_policy;
        let mut rounds: Vec<RoundReport> = Vec::new();
        // Phase I–II: meta-features → aggregation → recommendation.
        let (global, max_len) = collect_global_meta_tolerant(rt, policy, &mut rounds)?;
        let recommended: Vec<AlgorithmKind> = if self.cfg.disable_warm_start {
            AlgorithmKind::ALL.to_vec()
        } else {
            self.meta
                .recommend(global.values(), self.cfg.top_k)
                .map_err(EngineError::Model)?
        };
        // Phase III prep: feature engineering with globally agreed params.
        let spec = if self.cfg.disable_feature_engineering {
            GlobalFeatureSpec::lags_only(derive_lag_count(&global, self.cfg.max_lags))
        } else {
            let periods = federated_seasonal_periods_tolerant(
                rt,
                max_len,
                self.cfg.max_seasonal_components,
                policy,
                &mut rounds,
            )?;
            GlobalFeatureSpec {
                lags: (1..=derive_lag_count(&global, self.cfg.max_lags)).collect(),
                seasonal_periods: periods,
                use_trend: true,
                use_time: true,
            }
        };
        phase_bytes.push(end_phase("meta_features", rt));
        run_feature_engineering_tolerant(
            rt,
            &spec,
            self.cfg.importance_threshold,
            policy,
            &mut rounds,
        )?;
        phase_bytes.push(end_phase("feature_engineering", rt));

        // Phase III: Bayesian optimization with warm start. The budget T
        // covers the tuning loop (§5.1: "time budget ... for the
        // hyperparameter tuning"); at least one configuration is always
        // evaluated so a result exists even under a degenerate budget.
        // A trial whose round misses its quorum is abandoned — it consumes
        // budget but tells the optimizer nothing — and the run continues.
        let space = table2_space(&recommended);
        let mut bo = BayesOpt::new(space, self.cfg.seed).map_err(EngineError::Optimizer)?;
        bo.warm_start(warm_start_configs(&recommended));
        let mut loss_history = Vec::new();
        let mut failed_trials = 0usize;
        let mut tracker = BudgetTracker::start(self.cfg.budget);
        while tracker.iterations() == 0 || !tracker.exhausted() {
            let config = bo.ask().map_err(EngineError::Optimizer)?;
            match evaluate_config_tolerant(rt, &config, policy, &mut rounds) {
                Ok(loss) => {
                    bo.tell(&config, loss).map_err(EngineError::Optimizer)?;
                    loss_history.push(loss);
                }
                Err(EngineError::Federation(FlError::Quorum { .. })) => failed_trials += 1,
                Err(e) => return Err(e),
            }
            tracker.record_iteration();
        }
        let (best_config, best_valid_loss) = bo
            .best()
            .map(|(c, l)| (c.clone(), l))
            .ok_or_else(|| EngineError::InvalidData("no configuration evaluated".into()))?;
        phase_bytes.push(end_phase("optimization", rt));

        // Phase IV: final fit, aggregation, test evaluation.
        let (global_model, test_mse) = finalize_with_tolerant(
            rt,
            &best_config,
            self.cfg.tree_aggregation,
            policy,
            &mut rounds,
        )?;
        phase_bytes.push(end_phase("finalization", rt));
        let (bytes_to_clients, bytes_to_server) = rt.log().byte_totals();
        Ok(RunResult {
            best_algorithm: global_model.algorithm(),
            best_config,
            best_valid_loss,
            test_mse,
            global_model,
            evaluations: tracker.iterations(),
            loss_history,
            recommended,
            elapsed: tracker.elapsed(),
            bytes_to_clients,
            bytes_to_server,
            phase_bytes,
            rounds,
            failed_trials,
            health: rt.health_report(),
        })
    }
}

/// Spawns a runtime from pre-built clients (e.g. clients carrying
/// exogenous covariates via
/// [`FedForecasterClient::with_exogenous`]); pair with
/// [`FedForecaster::run_on`].
pub fn build_runtime_from(clients: Vec<FedForecasterClient>) -> FederatedRuntime {
    let boxed: Vec<Box<dyn FlClient>> = clients
        .into_iter()
        .map(|c| Box::new(c) as Box<dyn FlClient>)
        .collect();
    FederatedRuntime::new(boxed)
}

/// Spawns the federated runtime with one [`FedForecasterClient`] per series.
pub fn build_runtime(clients: &[TimeSeries], cfg: &EngineConfig) -> Result<FederatedRuntime> {
    if clients.is_empty() {
        return Err(EngineError::InvalidData("no clients".into()));
    }
    if let Some(short) = clients.iter().find(|c| c.len() < 30) {
        return Err(EngineError::InvalidData(format!(
            "client split too short: {} points",
            short.len()
        )));
    }
    let boxed: Vec<Box<dyn FlClient>> = clients
        .iter()
        .map(|s| {
            Box::new(FedForecasterClient::new(
                s,
                cfg.valid_fraction,
                cfg.test_fraction,
            )) as Box<dyn FlClient>
        })
        .collect();
    Ok(FederatedRuntime::new(boxed))
}

/// Phase I: collect per-client meta-features and aggregate them.
/// Returns the global vector and the longest client length.
pub fn collect_global_meta(rt: &FederatedRuntime) -> Result<(GlobalMetaFeatures, usize)> {
    let props = rt.collect_properties(&ConfigMap::new().with_str(OP, "meta_features"))?;
    let mut metas = Vec::with_capacity(props.len());
    let mut max_len = 0usize;
    for p in &props {
        let raw = p
            .get("meta_features")
            .and_then(|v| v.as_float_vec())
            .ok_or_else(|| EngineError::InvalidData("client sent no meta-features".into()))?;
        let mf = ClientMetaFeatures::from_vec(raw)
            .ok_or_else(|| EngineError::InvalidData("malformed meta-features".into()))?;
        max_len = max_len.max(p.int_or("n_total", 0) as usize);
        metas.push(mf);
    }
    Ok((GlobalMetaFeatures::aggregate(&metas), max_len))
}

/// §4.2.1(4): the federated weighted periodogram. Clients return spectral
/// summaries on a shared log-period grid; the server weights them by client
/// size and picks the top-N peaks.
pub fn federated_seasonal_periods(
    rt: &FederatedRuntime,
    max_len: usize,
    max_components: usize,
) -> Result<Vec<f64>> {
    if max_len < 16 {
        return Ok(vec![]);
    }
    let grid = periodogram::log_period_grid(max_len as f64 / 2.0);
    let props = rt.collect_properties(
        &ConfigMap::new()
            .with_str(OP, "spectrum")
            .with_floats("grid_periods", grid.clone()),
    )?;
    // Weights: client sizes from a second look at n_total would cost a
    // round; reuse uniform weighting over returned spectra and rely on the
    // per-spectrum normalization (each client's spectrum sums to 1).
    let mut agg = vec![0.0; grid.len()];
    let mut n = 0usize;
    for p in &props {
        if let Some(spec) = p.get("spectrum").and_then(|v| v.as_float_vec()) {
            if spec.len() == grid.len() {
                for (a, &s) in agg.iter_mut().zip(spec) {
                    *a += s;
                }
                n += 1;
            }
        }
    }
    if n == 0 {
        return Ok(vec![]);
    }
    let peaks = periodogram::peaks_on_grid(&grid, &agg, max_components, 5.0, max_len);
    Ok(peaks.into_iter().map(|s| s.period).collect())
}

/// Derives the globally agreed lag count (§4.2.1(3)): the maximum count of
/// significant pACF lags across clients, clamped to `[3, max_lags]`.
pub fn derive_lag_count(global: &GlobalMetaFeatures, max_lags: usize) -> usize {
    let raw = global.get("n_sig_lags_max").unwrap_or(3.0);
    (raw.round() as usize).clamp(3, max_lags.max(3))
}

/// Phase III prep: broadcast the feature spec, collect importances, select
/// features (§4.2.2), and broadcast the selection. Returns the kept column
/// indices.
pub fn run_feature_engineering(
    rt: &FederatedRuntime,
    spec: &GlobalFeatureSpec,
    threshold: f64,
) -> Result<Vec<usize>> {
    let replies = rt.broadcast_all(&Instruction::Fit {
        params: vec![],
        config: spec.to_config_map().with_str(OP, "feature_engineering"),
    })?;
    let mut importances = Vec::new();
    let mut weights = Vec::new();
    for (_, r) in &replies {
        match r {
            ff_fl::message::Reply::FitRes {
                num_examples,
                metrics,
                ..
            } => {
                if let Some(err) = metrics.get("error").and_then(|v| v.as_str()) {
                    return Err(EngineError::InvalidData(err.to_string()));
                }
                let imp = metrics
                    .get("importances")
                    .and_then(|v| v.as_float_vec())
                    .ok_or_else(|| EngineError::InvalidData("client sent no importances".into()))?;
                importances.push(imp.to_vec());
                weights.push(*num_examples as f64);
            }
            other => {
                return Err(EngineError::InvalidData(format!(
                    "unexpected reply {other:?}"
                )))
            }
        }
    }
    let keep = select_features(&importances, &weights, threshold);
    let keep_f: Vec<f64> = keep.iter().map(|&j| j as f64).collect();
    rt.broadcast_all(&Instruction::Fit {
        params: vec![],
        config: ConfigMap::new()
            .with_str(OP, "apply_selection")
            .with_floats("keep", keep_f),
    })?;
    Ok(keep)
}

/// Evaluates one configuration across the federation: clients fit locally
/// and report validation losses; the server aggregates via Equation 1.
pub fn evaluate_config(rt: &FederatedRuntime, config: &Configuration) -> Result<f64> {
    let replies = rt.broadcast_all(&Instruction::Fit {
        params: vec![],
        config: config_to_map(config).with_str(OP, "fit_eval"),
    })?;
    let mut losses = Vec::new();
    for (_, r) in &replies {
        match r {
            ff_fl::message::Reply::FitRes {
                num_examples,
                metrics,
                ..
            } => {
                let loss = metrics.float_or("valid_loss", f64::INFINITY);
                losses.push((if loss.is_finite() { loss } else { 1e30 }, *num_examples));
            }
            other => {
                return Err(EngineError::InvalidData(format!(
                    "unexpected reply {other:?}"
                )))
            }
        }
    }
    aggregate_loss(&losses).map_err(EngineError::Federation)
}

/// Phase IV: final fit on train+valid, model aggregation, and test
/// evaluation with the default [`crate::config::TreeAggregation::EnsembleUnion`] mode.
/// Returns the deployed global model and the aggregated test MSE.
pub fn finalize(rt: &FederatedRuntime, best_config: &Configuration) -> Result<(GlobalModel, f64)> {
    finalize_with(
        rt,
        best_config,
        crate::config::TreeAggregation::EnsembleUnion,
    )
}

/// [`finalize`] with an explicit tree-aggregation mode (§4.4; see
/// DESIGN.md §5 for the trade-off).
pub fn finalize_with(
    rt: &FederatedRuntime,
    best_config: &Configuration,
    tree_aggregation: crate::config::TreeAggregation,
) -> Result<(GlobalModel, f64)> {
    let algorithm = algorithm_of(best_config)
        .ok_or_else(|| EngineError::InvalidData("config has no algorithm".into()))?;
    let replies = rt.broadcast_all(&Instruction::Fit {
        params: vec![],
        config: config_to_map(best_config).with_str(OP, "final_fit"),
    })?;

    if algorithm.is_linear() {
        let fit_results = unwrap_fit_replies(replies).map_err(EngineError::Federation)?;
        let global_params = fedavg(&fit_results).map_err(EngineError::Federation)?;
        let eval = rt.broadcast_all(&Instruction::Evaluate {
            params: global_params.clone(),
            config: ConfigMap::new().with_str(OP, "test_global_linear"),
        })?;
        let losses = unwrap_eval_replies(eval).map_err(EngineError::Federation)?;
        let test_mse = aggregate_loss(&losses).map_err(EngineError::Federation)?;
        let p = global_params.len() - 1;
        return Ok((
            GlobalModel::Linear {
                algorithm,
                coef: global_params[..p].to_vec(),
                intercept: global_params[p],
            },
            test_mse,
        ));
    }

    // Tree winner: gather serialized members for the union modes.
    use crate::config::TreeAggregation;
    let mut blobs: Vec<Vec<u8>> = Vec::new();
    let mut weights: Vec<f64> = Vec::new();
    for (_, r) in &replies {
        if let ff_fl::message::Reply::FitRes {
            num_examples,
            metrics,
            ..
        } = r
        {
            if let Some(b) = metrics.get("model_blob").and_then(|v| v.as_bytes()) {
                blobs.push(b.to_vec());
                weights.push(*num_examples as f64);
            }
        }
    }
    let union_available = blobs.len() == rt.n_clients() && !blobs.is_empty();
    let members = blobs.len();
    let ensemble_config = |split: &str| -> ConfigMap {
        let wsum: f64 = weights.iter().sum();
        let mut config = ConfigMap::new()
            .with_str(OP, "test_global_ensemble")
            .with_str("split", split)
            .with_floats("weights", weights.iter().map(|w| w / wsum).collect());
        for (j, b) in blobs.iter().enumerate() {
            config = config.with_bytes(&format!("blob_{j}"), b.clone());
        }
        config
    };
    let eval_mode = |op_config: ConfigMap| -> Result<f64> {
        let eval = rt.broadcast_all(&Instruction::Evaluate {
            params: vec![],
            config: op_config,
        })?;
        let losses = unwrap_eval_replies(eval).map_err(EngineError::Federation)?;
        aggregate_loss(&losses).map_err(EngineError::Federation)
    };
    let local_config = |split: &str| {
        ConfigMap::new()
            .with_str(OP, "test_local")
            .with_str("split", split)
    };

    let use_union = match tree_aggregation {
        TreeAggregation::EnsembleUnion => union_available,
        TreeAggregation::PerClient => false,
        TreeAggregation::Auto => {
            // Leakage-free model selection: compare both deployments on the
            // validation split and pick the better.
            union_available && {
                let union_valid = eval_mode(ensemble_config("valid"))?;
                let local_valid = eval_mode(local_config("valid"))?;
                union_valid <= local_valid
            }
        }
    };
    if use_union {
        let test_mse = eval_mode(ensemble_config("test"))?;
        Ok((GlobalModel::Ensemble { algorithm, members }, test_mse))
    } else {
        let test_mse = eval_mode(local_config("test"))?;
        Ok((GlobalModel::PerClient { algorithm }, test_mse))
    }
}

// ---------------------------------------------------------------------------
// Fault-tolerant pipeline stages.
//
// The `*_tolerant` variants below drive the same protocol as their strict
// counterparts above, but through `FederatedRuntime::run_round`: every
// collect is bounded by the policy deadline, clients that time out, panic,
// or reply garbage become recorded dropouts, and each stage proceeds with
// whichever healthy subset remains (FedAvg and Equation 1 renormalize over
// survivors automatically). The strict variants are kept for the baselines
// and for federations known to be well-behaved.
// ---------------------------------------------------------------------------

/// Runs one policy-bounded round and appends its [`RoundReport`]. Returns
/// the outcome plus the report's index so the caller can amend the
/// app-level fields (`usable`, `app_errors`, `non_finite`).
fn tolerant_round(
    rt: &FederatedRuntime,
    phase: &'static str,
    ins: &Instruction,
    policy: &RoundPolicy,
    rounds: &mut Vec<RoundReport>,
) -> Result<(RoundOutcome, usize)> {
    match rt.run_round(ins, policy) {
        Ok(outcome) => {
            rounds.push(RoundReport {
                phase,
                round: outcome.round,
                participants: outcome.participants.len(),
                responses: outcome.replies.len(),
                usable: outcome.replies.len(),
                dropouts: outcome
                    .dropouts
                    .iter()
                    .map(|(id, e)| (*id, e.to_string()))
                    .collect(),
                app_errors: vec![],
                non_finite: vec![],
                quorum_met: true,
            });
            let idx = rounds.len() - 1;
            Ok((outcome, idx))
        }
        Err(e) => {
            if let FlError::Quorum { healthy, .. } = &e {
                rounds.push(RoundReport {
                    phase,
                    round: rt.health_report().rounds,
                    participants: 0,
                    responses: *healthy,
                    usable: *healthy,
                    dropouts: vec![],
                    app_errors: vec![],
                    non_finite: vec![],
                    quorum_met: false,
                });
            }
            Err(EngineError::Federation(e))
        }
    }
}

/// Marks the round at `idx` quorum-unmet and returns the matching error.
fn quorum_unmet(
    rounds: &mut [RoundReport],
    idx: usize,
    healthy: usize,
    required: usize,
) -> EngineError {
    rounds[idx].quorum_met = false;
    EngineError::Federation(FlError::Quorum { healthy, required })
}

/// Fault-tolerant [`collect_global_meta`]: aggregates the meta-features of
/// whichever clients replied usably; malformed or error replies are
/// recorded per client instead of failing the run.
pub fn collect_global_meta_tolerant(
    rt: &FederatedRuntime,
    policy: &RoundPolicy,
    rounds: &mut Vec<RoundReport>,
) -> Result<(GlobalMetaFeatures, usize)> {
    let ins = Instruction::GetProperties(ConfigMap::new().with_str(OP, "meta_features"));
    let (outcome, idx) = tolerant_round(rt, "meta_features", &ins, policy, rounds)?;
    let mut metas = Vec::new();
    let mut max_len = 0usize;
    for (id, r) in &outcome.replies {
        let props = match r {
            Reply::Properties(cfg) => cfg,
            Reply::Error(e) => {
                rounds[idx].app_errors.push((*id, e.clone()));
                continue;
            }
            other => {
                rounds[idx]
                    .app_errors
                    .push((*id, format!("unexpected reply {other:?}")));
                continue;
            }
        };
        let parsed = props
            .get("meta_features")
            .and_then(|v| v.as_float_vec())
            .and_then(ClientMetaFeatures::from_vec);
        match parsed {
            Some(mf) => {
                max_len = max_len.max(props.int_or("n_total", 0) as usize);
                metas.push(mf);
            }
            None => rounds[idx]
                .app_errors
                .push((*id, "missing or malformed meta-features".into())),
        }
    }
    rounds[idx].usable = metas.len();
    let required = policy.min_responses.max(1);
    if metas.len() < required {
        return Err(quorum_unmet(rounds, idx, metas.len(), required));
    }
    Ok((GlobalMetaFeatures::aggregate(&metas), max_len))
}

/// Fault-tolerant [`federated_seasonal_periods`]: spectra from responsive
/// clients are aggregated; if nobody returns a usable spectrum the engine
/// degrades gracefully to no seasonality features rather than failing.
pub fn federated_seasonal_periods_tolerant(
    rt: &FederatedRuntime,
    max_len: usize,
    max_components: usize,
    policy: &RoundPolicy,
    rounds: &mut Vec<RoundReport>,
) -> Result<Vec<f64>> {
    if max_len < 16 {
        return Ok(vec![]);
    }
    let grid = periodogram::log_period_grid(max_len as f64 / 2.0);
    let ins = Instruction::GetProperties(
        ConfigMap::new()
            .with_str(OP, "spectrum")
            .with_floats("grid_periods", grid.clone()),
    );
    let (outcome, idx) = tolerant_round(rt, "meta_features", &ins, policy, rounds)?;
    let mut agg = vec![0.0; grid.len()];
    let mut n = 0usize;
    for (id, r) in &outcome.replies {
        let usable = match r {
            Reply::Properties(p) => p
                .get("spectrum")
                .and_then(|v| v.as_float_vec())
                .filter(|spec| spec.len() == grid.len()),
            _ => None,
        };
        match usable {
            Some(spec) => {
                for (a, &s) in agg.iter_mut().zip(spec) {
                    *a += s;
                }
                n += 1;
            }
            None => rounds[idx]
                .app_errors
                .push((*id, "missing or mis-sized spectrum".into())),
        }
    }
    rounds[idx].usable = n;
    if n == 0 {
        return Ok(vec![]);
    }
    let peaks = periodogram::peaks_on_grid(&grid, &agg, max_components, 5.0, max_len);
    Ok(peaks.into_iter().map(|s| s.period).collect())
}

/// Fault-tolerant [`run_feature_engineering`]: importances are collected
/// from the responsive subset and the selection is broadcast the same way.
/// Clients that miss the selection round keep their full feature set and
/// surface as application errors in later rounds.
pub fn run_feature_engineering_tolerant(
    rt: &FederatedRuntime,
    spec: &GlobalFeatureSpec,
    threshold: f64,
    policy: &RoundPolicy,
    rounds: &mut Vec<RoundReport>,
) -> Result<Vec<usize>> {
    let ins = Instruction::Fit {
        params: vec![],
        config: spec.to_config_map().with_str(OP, "feature_engineering"),
    };
    let (outcome, idx) = tolerant_round(rt, "feature_engineering", &ins, policy, rounds)?;
    let mut importances = Vec::new();
    let mut weights = Vec::new();
    for (id, r) in &outcome.replies {
        match r {
            Reply::FitRes {
                num_examples,
                metrics,
                ..
            } => {
                if let Some(err) = metrics.get("error").and_then(|v| v.as_str()) {
                    rounds[idx].app_errors.push((*id, err.to_string()));
                    continue;
                }
                match metrics.get("importances").and_then(|v| v.as_float_vec()) {
                    Some(imp) => {
                        importances.push(imp.to_vec());
                        weights.push(*num_examples as f64);
                    }
                    None => rounds[idx]
                        .app_errors
                        .push((*id, "client sent no importances".into())),
                }
            }
            Reply::Error(e) => rounds[idx].app_errors.push((*id, e.clone())),
            other => rounds[idx]
                .app_errors
                .push((*id, format!("unexpected reply {other:?}"))),
        }
    }
    rounds[idx].usable = importances.len();
    let required = policy.min_responses.max(1);
    if importances.len() < required {
        return Err(quorum_unmet(rounds, idx, importances.len(), required));
    }
    let keep = select_features(&importances, &weights, threshold);
    let keep_f: Vec<f64> = keep.iter().map(|&j| j as f64).collect();
    let apply = Instruction::Fit {
        params: vec![],
        config: ConfigMap::new()
            .with_str(OP, "apply_selection")
            .with_floats("keep", keep_f),
    };
    tolerant_round(rt, "feature_engineering", &apply, policy, rounds)?;
    Ok(keep)
}

/// Fault-tolerant [`evaluate_config`]: the global loss is aggregated over
/// the responsive clients with finite validation losses; non-finite losses
/// and application errors are per-round dropouts. Fails with
/// [`FlError::Quorum`] — which the engine treats as a failed *trial*, not a
/// failed run — when fewer than `min_responses` usable losses remain.
pub fn evaluate_config_tolerant(
    rt: &FederatedRuntime,
    config: &Configuration,
    policy: &RoundPolicy,
    rounds: &mut Vec<RoundReport>,
) -> Result<f64> {
    let ins = Instruction::Fit {
        params: vec![],
        config: config_to_map(config).with_str(OP, "fit_eval"),
    };
    let (outcome, idx) = tolerant_round(rt, "optimization", &ins, policy, rounds)?;
    let mut losses = Vec::new();
    for (id, r) in &outcome.replies {
        match r {
            Reply::FitRes {
                num_examples,
                metrics,
                ..
            } => {
                if let Some(err) = metrics.get("error").and_then(|v| v.as_str()) {
                    rounds[idx].app_errors.push((*id, err.to_string()));
                    continue;
                }
                let loss = metrics.float_or("valid_loss", f64::NAN);
                if loss.is_finite() {
                    losses.push((loss, *num_examples));
                } else {
                    rounds[idx].non_finite.push(*id);
                }
            }
            Reply::Error(e) => rounds[idx].app_errors.push((*id, e.clone())),
            other => rounds[idx]
                .app_errors
                .push((*id, format!("unexpected reply {other:?}"))),
        }
    }
    rounds[idx].usable = losses.len();
    let required = policy.min_responses.max(1);
    if losses.len() < required {
        return Err(quorum_unmet(rounds, idx, losses.len(), required));
    }
    aggregate_loss(&losses).map_err(EngineError::Federation)
}

/// One tolerant Evaluate round aggregated by Equation 1 over the finite
/// survivor losses.
fn tolerant_eval_round(
    rt: &FederatedRuntime,
    params: Vec<f64>,
    op_config: ConfigMap,
    policy: &RoundPolicy,
    rounds: &mut Vec<RoundReport>,
) -> Result<f64> {
    let ins = Instruction::Evaluate {
        params,
        config: op_config,
    };
    let (outcome, idx) = tolerant_round(rt, "finalization", &ins, policy, rounds)?;
    let mut losses = Vec::new();
    for (id, r) in &outcome.replies {
        match r {
            Reply::EvaluateRes {
                loss, num_examples, ..
            } if loss.is_finite() => losses.push((*loss, *num_examples)),
            Reply::EvaluateRes { .. } => rounds[idx].non_finite.push(*id),
            Reply::Error(e) => rounds[idx].app_errors.push((*id, e.clone())),
            other => rounds[idx]
                .app_errors
                .push((*id, format!("unexpected reply {other:?}"))),
        }
    }
    rounds[idx].usable = losses.len();
    let required = policy.min_responses.max(1);
    if losses.len() < required {
        return Err(quorum_unmet(rounds, idx, losses.len(), required));
    }
    aggregate_loss(&losses).map_err(EngineError::Federation)
}

/// Fault-tolerant [`finalize_with`]: the final fit, aggregation, and test
/// rounds all run under the policy. FedAvg (linear winners) and ensemble
/// weights (tree winners) renormalize over whichever clients delivered a
/// final model; the union deployment is "available" when every *survivor*
/// of the final-fit round contributed a blob.
pub fn finalize_with_tolerant(
    rt: &FederatedRuntime,
    best_config: &Configuration,
    tree_aggregation: crate::config::TreeAggregation,
    policy: &RoundPolicy,
    rounds: &mut Vec<RoundReport>,
) -> Result<(GlobalModel, f64)> {
    let algorithm = algorithm_of(best_config)
        .ok_or_else(|| EngineError::InvalidData("config has no algorithm".into()))?;
    let ins = Instruction::Fit {
        params: vec![],
        config: config_to_map(best_config).with_str(OP, "final_fit"),
    };
    let (outcome, idx) = tolerant_round(rt, "finalization", &ins, policy, rounds)?;
    let mut usable: Vec<(usize, Reply)> = Vec::new();
    for (id, r) in outcome.replies {
        match &r {
            Reply::FitRes { metrics, .. } => {
                if let Some(err) = metrics.get("error").and_then(|v| v.as_str()) {
                    rounds[idx].app_errors.push((id, err.to_string()));
                } else {
                    usable.push((id, r));
                }
            }
            Reply::Error(e) => rounds[idx].app_errors.push((id, e.clone())),
            other => rounds[idx]
                .app_errors
                .push((id, format!("unexpected reply {other:?}"))),
        }
    }
    rounds[idx].usable = usable.len();
    let required = policy.min_responses.max(1);
    if usable.len() < required {
        return Err(quorum_unmet(rounds, idx, usable.len(), required));
    }

    if algorithm.is_linear() {
        let fit_results = unwrap_fit_replies(usable).map_err(EngineError::Federation)?;
        let global_params = fedavg(&fit_results).map_err(EngineError::Federation)?;
        let test_mse = tolerant_eval_round(
            rt,
            global_params.clone(),
            ConfigMap::new().with_str(OP, "test_global_linear"),
            policy,
            rounds,
        )?;
        let p = global_params.len() - 1;
        return Ok((
            GlobalModel::Linear {
                algorithm,
                coef: global_params[..p].to_vec(),
                intercept: global_params[p],
            },
            test_mse,
        ));
    }

    // Tree winner: gather serialized members for the union modes.
    use crate::config::TreeAggregation;
    let mut blobs: Vec<Vec<u8>> = Vec::new();
    let mut weights: Vec<f64> = Vec::new();
    for (_, r) in &usable {
        if let Reply::FitRes {
            num_examples,
            metrics,
            ..
        } = r
        {
            if let Some(b) = metrics.get("model_blob").and_then(|v| v.as_bytes()) {
                blobs.push(b.to_vec());
                weights.push(*num_examples as f64);
            }
        }
    }
    let union_available = blobs.len() == usable.len() && !blobs.is_empty();
    let members = blobs.len();
    let ensemble_config = |split: &str| -> ConfigMap {
        let wsum: f64 = weights.iter().sum();
        let mut config = ConfigMap::new()
            .with_str(OP, "test_global_ensemble")
            .with_str("split", split)
            .with_floats("weights", weights.iter().map(|w| w / wsum).collect());
        for (j, b) in blobs.iter().enumerate() {
            config = config.with_bytes(&format!("blob_{j}"), b.clone());
        }
        config
    };
    let local_config = |split: &str| {
        ConfigMap::new()
            .with_str(OP, "test_local")
            .with_str("split", split)
    };

    let use_union = match tree_aggregation {
        TreeAggregation::EnsembleUnion => union_available,
        TreeAggregation::PerClient => false,
        TreeAggregation::Auto => {
            // Leakage-free model selection: compare both deployments on the
            // validation split and pick the better.
            union_available && {
                let union_valid =
                    tolerant_eval_round(rt, vec![], ensemble_config("valid"), policy, rounds)?;
                let local_valid =
                    tolerant_eval_round(rt, vec![], local_config("valid"), policy, rounds)?;
                union_valid <= local_valid
            }
        }
    };
    if use_union {
        let test_mse = tolerant_eval_round(rt, vec![], ensemble_config("test"), policy, rounds)?;
        Ok((GlobalModel::Ensemble { algorithm, members }, test_mse))
    } else {
        let test_mse = tolerant_eval_round(rt, vec![], local_config("test"), policy, rounds)?;
        Ok((GlobalModel::PerClient { algorithm }, test_mse))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use ff_metalearn::kb::KnowledgeBase;
    use ff_metalearn::metamodel::MetaClassifierKind;
    use ff_metalearn::synth::synthetic_kb;
    use ff_timeseries::synthesis::{generate, SeasonSpec, SynthesisSpec, TrendSpec};

    fn tiny_metamodel() -> MetaModel {
        let kb = KnowledgeBase::build(&synthetic_kb(8), &[2], 50);
        MetaModel::train(&kb, MetaClassifierKind::RandomForest, 0).unwrap()
    }

    fn federation() -> Vec<TimeSeries> {
        let s = generate(
            &SynthesisSpec {
                n: 800,
                trend: TrendSpec::Linear(0.01),
                seasons: vec![SeasonSpec {
                    period: 12.0,
                    amplitude: 2.0,
                }],
                snr: Some(20.0),
                ..Default::default()
            },
            9,
        );
        s.split_clients(3)
    }

    #[test]
    fn full_pipeline_produces_finite_result() {
        let cfg = EngineConfig {
            budget: Budget::Iterations(6),
            ..Default::default()
        };
        let meta = tiny_metamodel();
        let engine = FedForecaster::new(cfg, &meta);
        let result = engine.run(&federation()).unwrap();
        assert!(result.best_valid_loss.is_finite());
        assert!(result.test_mse.is_finite());
        assert_eq!(result.evaluations, 6);
        assert_eq!(result.loss_history.len(), 6);
        assert!(!result.recommended.is_empty());
        assert!(result.bytes_to_server > 0);
    }

    #[test]
    fn engine_beats_mean_predictor() {
        let cfg = EngineConfig {
            budget: Budget::Iterations(8),
            ..Default::default()
        };
        let meta = tiny_metamodel();
        let engine = FedForecaster::new(cfg, &meta);
        let clients = federation();
        let result = engine.run(&clients).unwrap();
        // Mean-forecast baseline on the same test region.
        let mut baseline = 0.0;
        let mut total = 0usize;
        for c in &clients {
            let n = c.len();
            let test_start = (n as f64 * 0.85).round() as usize;
            let train: Vec<f64> = c.values()[..test_start].to_vec();
            let mean = ff_linalg::vector::mean(&train);
            for &v in &c.values()[test_start..] {
                baseline += (v - mean) * (v - mean);
                total += 1;
            }
        }
        baseline /= total as f64;
        assert!(
            result.test_mse < baseline,
            "engine {} vs mean baseline {}",
            result.test_mse,
            baseline
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = EngineConfig {
            budget: Budget::Iterations(4),
            seed: 123,
            ..Default::default()
        };
        let meta = tiny_metamodel();
        let a = FedForecaster::new(cfg.clone(), &meta)
            .run(&federation())
            .unwrap();
        let b = FedForecaster::new(cfg, &meta).run(&federation()).unwrap();
        assert_eq!(a.best_algorithm, b.best_algorithm);
        assert_eq!(a.loss_history, b.loss_history);
        assert!((a.test_mse - b.test_mse).abs() < 1e-12);
    }

    #[test]
    fn ablations_run() {
        let cfg = EngineConfig {
            budget: Budget::Iterations(3),
            disable_feature_engineering: true,
            disable_warm_start: true,
            ..Default::default()
        };
        let meta = tiny_metamodel();
        let result = FedForecaster::new(cfg, &meta).run(&federation()).unwrap();
        assert!(result.test_mse.is_finite());
        assert_eq!(result.recommended.len(), AlgorithmKind::ALL.len());
    }

    #[test]
    fn empty_federation_rejected() {
        let meta = tiny_metamodel();
        let engine = FedForecaster::new(EngineConfig::default(), &meta);
        assert!(engine.run(&[]).is_err());
    }

    #[test]
    fn short_client_rejected() {
        let tiny = TimeSeries::with_regular_index(0, 60, vec![1.0; 10]);
        let meta = tiny_metamodel();
        let engine = FedForecaster::new(EngineConfig::default(), &meta);
        assert!(engine.run(&[tiny]).is_err());
    }

    #[test]
    fn phase_byte_accounting_sums_to_totals() {
        let cfg = EngineConfig {
            budget: Budget::Iterations(3),
            ..Default::default()
        };
        let meta = tiny_metamodel();
        let result = FedForecaster::new(cfg, &meta).run(&federation()).unwrap();
        assert_eq!(result.phase_bytes.len(), 4);
        let down: usize = result.phase_bytes.iter().map(|p| p.to_clients).sum();
        let up: usize = result.phase_bytes.iter().map(|p| p.to_server).sum();
        assert_eq!(down, result.bytes_to_clients);
        assert_eq!(up, result.bytes_to_server);
        // Every phase actually communicates.
        for p in &result.phase_bytes {
            assert!(p.to_clients > 0, "{} sent nothing down", p.phase);
            assert!(p.to_server > 0, "{} sent nothing up", p.phase);
        }
        // Optimization dominates downstream traffic relative to the
        // meta-feature phase only when budgets are large; just check order
        // of phases is stable.
        assert_eq!(result.phase_bytes[0].phase, "meta_features");
        assert_eq!(result.phase_bytes[3].phase, "finalization");
    }

    #[test]
    fn forced_xgb_finalize_builds_ensemble_union() {
        use crate::feature_engineering::GlobalFeatureSpec;
        use ff_bayesopt::space::{Configuration, ParamValue};
        let clients = federation();
        let cfg = EngineConfig::default();
        let rt = build_runtime(&clients, &cfg).unwrap();
        let spec = GlobalFeatureSpec::lags_only(4);
        run_feature_engineering(&rt, &spec, 0.95).unwrap();
        let mut config = Configuration::new();
        config.insert("algorithm".into(), ParamValue::Cat("XGBRegressor".into()));
        let (model, mse) = finalize(&rt, &config).unwrap();
        assert!(mse.is_finite());
        match model {
            GlobalModel::Ensemble { algorithm, members } => {
                assert_eq!(algorithm, AlgorithmKind::XgbRegressor);
                assert_eq!(members, clients.len());
            }
            other => panic!("expected ensemble union, got {other:?}"),
        }
        // PerClient mode still works on the same runtime.
        let (model, mse2) =
            finalize_with(&rt, &config, crate::config::TreeAggregation::PerClient).unwrap();
        assert!(matches!(model, GlobalModel::PerClient { .. }));
        assert!(mse2.is_finite());
    }

    #[test]
    fn auto_aggregation_avoids_biased_union_on_trending_non_iid_data() {
        use crate::feature_engineering::GlobalFeatureSpec;
        use ff_bayesopt::space::{Configuration, ParamValue};
        use ff_timeseries::synthesis::TrendSpec;
        // A strong trend split by time ⇒ clients live at disjoint levels;
        // the tree union cannot extrapolate and must be rejected by the
        // validation comparison.
        let series = generate(
            &SynthesisSpec {
                n: 800,
                trend: TrendSpec::Linear(0.2),
                snr: Some(50.0),
                ..Default::default()
            },
            77,
        );
        let clients = series.split_clients(4);
        let cfg = EngineConfig::default();
        let rt = build_runtime(&clients, &cfg).unwrap();
        run_feature_engineering(&rt, &GlobalFeatureSpec::lags_only(4), 0.95).unwrap();
        let mut config = Configuration::new();
        config.insert("algorithm".into(), ParamValue::Cat("XGBRegressor".into()));
        let (model, auto_mse) =
            finalize_with(&rt, &config, crate::config::TreeAggregation::Auto).unwrap();
        assert!(
            matches!(model, GlobalModel::PerClient { .. }),
            "auto mode should reject the biased union, got {model:?}"
        );
        // And the auto choice should not be worse than the forced union.
        let (_, union_mse) =
            finalize_with(&rt, &config, crate::config::TreeAggregation::EnsembleUnion).unwrap();
        assert!(
            auto_mse <= union_mse * 1.01,
            "auto {auto_mse} vs forced union {union_mse}"
        );
    }

    #[test]
    fn lag_count_derivation_is_clamped() {
        let clients = federation();
        let cfg = EngineConfig::default();
        let rt = build_runtime(&clients, &cfg).unwrap();
        let (global, max_len) = collect_global_meta(&rt).unwrap();
        let lags = derive_lag_count(&global, 10);
        assert!((3..=10).contains(&lags));
        assert!(max_len > 0);
    }
}
