//! Result reporting: Table 3-style comparison rows, average ranks, and the
//! Wilcoxon significance tests of §5.2.

use ff_models::metrics::average_ranks;
use ff_timeseries::wilcoxon::{wilcoxon_signed_rank, WilcoxonResult};

/// One row of the Table 3 comparison.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Dataset name.
    pub dataset: String,
    /// Total dataset length.
    pub len: usize,
    /// Client count.
    pub clients: usize,
    /// N-Beats Cons. MSE (`None` for ETF baskets — printed as a dash).
    pub nbeats_cons: Option<f64>,
    /// FedForecaster MSE.
    pub fedforecaster: f64,
    /// Random-search MSE.
    pub random_search: f64,
    /// Federated N-Beats MSE.
    pub nbeats: f64,
    /// Winning algorithm name reported by the engine.
    pub best_model: String,
}

/// Aggregate statistics over a set of comparison rows.
#[derive(Debug, Clone)]
pub struct ComparisonSummary {
    /// Average rank per method (FedForecaster, Random Search, N-Beats).
    pub avg_ranks: [f64; 3],
    /// Datasets where FedForecaster had the (strictly) lowest MSE.
    pub fedforecaster_wins: usize,
    /// Wilcoxon FedForecaster vs random search.
    pub wilcoxon_vs_random: Option<WilcoxonResult>,
    /// Wilcoxon FedForecaster vs N-Beats.
    pub wilcoxon_vs_nbeats: Option<WilcoxonResult>,
}

/// Summarizes comparison rows the way §5.2 does: average ranks over the
/// three federated methods, win counts, and the two Wilcoxon tests.
pub fn summarize(rows: &[ComparisonRow]) -> ComparisonSummary {
    let losses: Vec<Vec<f64>> = rows
        .iter()
        .map(|r| vec![r.fedforecaster, r.random_search, r.nbeats])
        .collect();
    let ranks = average_ranks(&losses);
    let ff: Vec<f64> = rows.iter().map(|r| r.fedforecaster).collect();
    let rs: Vec<f64> = rows.iter().map(|r| r.random_search).collect();
    let nb: Vec<f64> = rows.iter().map(|r| r.nbeats).collect();
    let wins = rows
        .iter()
        .filter(|r| r.fedforecaster < r.random_search && r.fedforecaster < r.nbeats)
        .count();
    ComparisonSummary {
        avg_ranks: [ranks[0], ranks[1], ranks[2]],
        fedforecaster_wins: wins,
        wilcoxon_vs_random: wilcoxon_signed_rank(&ff, &rs),
        wilcoxon_vs_nbeats: wilcoxon_signed_rank(&ff, &nb),
    }
}

/// Formats a loss with four significant digits (Table 3 spans 1e-3 to 1e4,
/// so fixed decimals would erase the small FX losses).
pub fn fmt_loss(v: f64) -> String {
    if !v.is_finite() {
        return "inf".into();
    }
    if v == 0.0 {
        return "0".into();
    }
    let mag = v.abs().log10().floor();
    if (-3.0..4.0).contains(&mag) {
        let decimals = (3 - mag as i32).clamp(0, 6) as usize;
        format!("{v:.decimals$}")
    } else {
        format!("{v:.3e}")
    }
}

/// Renders the rows as an aligned text table (the bench binaries print
/// this; EXPERIMENTS.md embeds it).
pub fn render_table(rows: &[ComparisonRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<38} {:>7} {:>13} {:>8} {:>14} {:>14} {:>12}  {}\n",
        "Dataset", "Len.", "N-BeatsCons.", "Clients", "FedForecaster", "RandomSearch", "N-Beats", "Best Model"
    ));
    for r in rows {
        let cons = r.nbeats_cons.map(fmt_loss).unwrap_or_else(|| "-".into());
        out.push_str(&format!(
            "{:<38} {:>7} {:>13} {:>8} {:>14} {:>14} {:>12}  {}\n",
            r.dataset,
            r.len,
            cons,
            r.clients,
            fmt_loss(r.fedforecaster),
            fmt_loss(r.random_search),
            fmt_loss(r.nbeats),
            r.best_model
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<ComparisonRow> {
        (0..8)
            .map(|i| ComparisonRow {
                dataset: format!("d{i}"),
                len: 1000 + i,
                clients: 5,
                nbeats_cons: if i % 2 == 0 { Some(1.0) } else { None },
                fedforecaster: 1.0 + i as f64 * 0.01,
                random_search: 1.5 + i as f64 * 0.01,
                nbeats: 2.0 + i as f64 * 0.01,
                best_model: "Lasso".into(),
            })
            .collect()
    }

    #[test]
    fn summary_ranks_fedforecaster_first_when_it_dominates() {
        let s = summarize(&rows());
        assert!((s.avg_ranks[0] - 1.0).abs() < 1e-12);
        assert!((s.avg_ranks[1] - 2.0).abs() < 1e-12);
        assert!((s.avg_ranks[2] - 3.0).abs() < 1e-12);
        assert_eq!(s.fedforecaster_wins, 8);
        assert!(s.wilcoxon_vs_random.unwrap().p_value < 0.05);
        assert!(s.wilcoxon_vs_nbeats.unwrap().p_value < 0.05);
    }

    #[test]
    fn render_includes_dashes_for_missing_cons() {
        let table = render_table(&rows());
        assert!(table.contains('-'));
        assert!(table.contains("FedForecaster"));
        assert!(table.lines().count() == 9);
    }
}
