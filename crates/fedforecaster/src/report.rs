//! Result reporting: Table 3-style comparison rows, average ranks, the
//! Wilcoxon significance tests of §5.2, and per-round fault-tolerance
//! reports.

use ff_models::metrics::average_ranks;
use ff_timeseries::wilcoxon::{wilcoxon_signed_rank, WilcoxonResult};
use ff_trace::{ClientCommsRow, ForensicDump, Profile, RoundFrame, Telemetry};

/// Telemetry captured during a traced engine run (absent unless
/// [`crate::config::TraceConfig::enabled`] was set): the full span /
/// metric snapshot plus the per-client comms rows assembled from the
/// message log and the health registry. The profile and flight-recorder
/// fields are populated only when their opt-in switches
/// ([`crate::config::TraceConfig::with_profile`] /
/// [`crate::config::TraceConfig::with_recorder`]) were set.
#[derive(Debug, Clone, Default)]
pub struct RunTelemetry {
    /// Spans, events, counters, gauges, and histograms from the run.
    pub trace: Telemetry,
    /// Per-client bytes, message counts, dropouts, and final health state.
    pub clients: Vec<ClientCommsRow>,
    /// Self-time / critical-path profile over the span tree.
    pub profile: Option<Profile>,
    /// Flight-recorder ring contents at the end of the run (most recent
    /// rounds, oldest first).
    pub recorder_frames: Vec<RoundFrame>,
    /// Forensic dumps fired during the run, in trigger order.
    pub recorder_dumps: Vec<ForensicDump>,
}

impl RunTelemetry {
    /// The JSON-lines export of the trace (one JSON object per line).
    pub fn to_json_lines(&self) -> String {
        ff_trace::to_json_lines(&self.trace)
    }

    /// The aligned human summary: per-phase wall-clock, per-client
    /// comms/dropout table, BO trial latency percentiles, counters.
    pub fn render_summary(&self) -> String {
        ff_trace::render_summary(&self.trace, &self.clients)
    }

    /// Folded-stack (flamegraph-compatible) text export of the span tree:
    /// one `root;child;leaf self_us` line per stack with self time.
    pub fn folded_stacks(&self) -> String {
        ff_trace::folded_stacks(&self.trace)
    }
}

/// What happened in one fault-tolerant federated round: who was admitted,
/// who replied, who dropped out and why. The engine appends one of these
/// per round so a run's degradation history is auditable after the fact.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundReport {
    /// Pipeline phase the round belongs to (`meta_features`,
    /// `feature_engineering`, `optimization`, `finalization`).
    pub phase: &'static str,
    /// Round number shared with the runtime's health registry (1-based).
    pub round: u64,
    /// Clients the health registry admitted to the round.
    pub participants: usize,
    /// Transport-level replies collected before the deadline.
    pub responses: usize,
    /// Replies that were actually usable by the phase (decoded, no
    /// application error, finite loss).
    pub usable: usize,
    /// Transport-level dropouts: `(client_id, reason)`.
    pub dropouts: Vec<(usize, String)>,
    /// Clients whose reply carried an application error: `(client_id, msg)`.
    pub app_errors: Vec<(usize, String)>,
    /// Clients excluded for reporting a non-finite loss.
    pub non_finite: Vec<usize>,
    /// Clients whose on-time reply the robust-aggregation guard rejected
    /// as Byzantine: `(client_id, reason)`. Always empty under the
    /// default FedAvg strategy.
    pub rejected: Vec<(usize, String)>,
    /// Whether the round met its quorum (a `false` entry in the tuning
    /// loop marks a failed trial, not a failed run).
    pub quorum_met: bool,
}

/// Renders round reports as an aligned text log, one line per round.
pub fn render_rounds(rounds: &[RoundReport]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>5}  {:<20} {:>5} {:>5} {:>6}  {}\n",
        "round", "phase", "part.", "resp.", "usable", "dropouts"
    ));
    for r in rounds {
        let mut notes: Vec<String> = r
            .dropouts
            .iter()
            .map(|(id, why)| format!("#{id}: {why}"))
            .collect();
        notes.extend(
            r.app_errors
                .iter()
                .map(|(id, e)| format!("#{id}: app error: {e}")),
        );
        notes.extend(
            r.non_finite
                .iter()
                .map(|id| format!("#{id}: non-finite loss")),
        );
        notes.extend(
            r.rejected
                .iter()
                .map(|(id, why)| format!("#{id}: rejected: {why}")),
        );
        if !r.quorum_met {
            notes.push("QUORUM UNMET".into());
        }
        out.push_str(&format!(
            "{:>5}  {:<20} {:>5} {:>5} {:>6}  {}\n",
            r.round,
            r.phase,
            r.participants,
            r.responses,
            r.usable,
            if notes.is_empty() {
                "-".into()
            } else {
                notes.join("; ")
            }
        ));
    }
    out
}

/// One row of the Table 3 comparison.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Dataset name.
    pub dataset: String,
    /// Total dataset length.
    pub len: usize,
    /// Client count.
    pub clients: usize,
    /// N-Beats Cons. MSE (`None` for ETF baskets — printed as a dash).
    pub nbeats_cons: Option<f64>,
    /// FedForecaster MSE.
    pub fedforecaster: f64,
    /// Random-search MSE.
    pub random_search: f64,
    /// Federated N-Beats MSE.
    pub nbeats: f64,
    /// Winning algorithm name reported by the engine.
    pub best_model: String,
}

/// Formats a run's winner for report tables: the bare algorithm name for
/// flat runs, `"<structure>/<algorithm>"` for pipeline-search winners.
pub fn best_model_label(result: &crate::engine::RunResult) -> String {
    match &result.best_pipeline {
        Some(p) => format!("{p}/{}", result.best_algorithm.name()),
        None => result.best_algorithm.name().to_string(),
    }
}

/// Aggregate statistics over a set of comparison rows.
#[derive(Debug, Clone)]
pub struct ComparisonSummary {
    /// Average rank per method (FedForecaster, Random Search, N-Beats).
    pub avg_ranks: [f64; 3],
    /// Datasets where FedForecaster had the (strictly) lowest MSE.
    pub fedforecaster_wins: usize,
    /// Wilcoxon FedForecaster vs random search.
    pub wilcoxon_vs_random: Option<WilcoxonResult>,
    /// Wilcoxon FedForecaster vs N-Beats.
    pub wilcoxon_vs_nbeats: Option<WilcoxonResult>,
}

/// Summarizes comparison rows the way §5.2 does: average ranks over the
/// three federated methods, win counts, and the two Wilcoxon tests.
pub fn summarize(rows: &[ComparisonRow]) -> ComparisonSummary {
    let losses: Vec<Vec<f64>> = rows
        .iter()
        .map(|r| vec![r.fedforecaster, r.random_search, r.nbeats])
        .collect();
    let ranks = average_ranks(&losses);
    let ff: Vec<f64> = rows.iter().map(|r| r.fedforecaster).collect();
    let rs: Vec<f64> = rows.iter().map(|r| r.random_search).collect();
    let nb: Vec<f64> = rows.iter().map(|r| r.nbeats).collect();
    let wins = rows
        .iter()
        .filter(|r| r.fedforecaster < r.random_search && r.fedforecaster < r.nbeats)
        .count();
    ComparisonSummary {
        avg_ranks: [ranks[0], ranks[1], ranks[2]],
        fedforecaster_wins: wins,
        wilcoxon_vs_random: wilcoxon_signed_rank(&ff, &rs),
        wilcoxon_vs_nbeats: wilcoxon_signed_rank(&ff, &nb),
    }
}

/// Formats a loss with four significant digits (Table 3 spans 1e-3 to 1e4,
/// so fixed decimals would erase the small FX losses).
pub fn fmt_loss(v: f64) -> String {
    if !v.is_finite() {
        return "inf".into();
    }
    if v == 0.0 {
        return "0".into();
    }
    let mag = v.abs().log10().floor();
    if (-3.0..4.0).contains(&mag) {
        let decimals = (3 - mag as i32).clamp(0, 6) as usize;
        format!("{v:.decimals$}")
    } else {
        format!("{v:.3e}")
    }
}

/// Renders the rows as an aligned text table (the bench binaries print
/// this; EXPERIMENTS.md embeds it).
pub fn render_table(rows: &[ComparisonRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<38} {:>7} {:>13} {:>8} {:>14} {:>14} {:>12}  {}\n",
        "Dataset",
        "Len.",
        "N-BeatsCons.",
        "Clients",
        "FedForecaster",
        "RandomSearch",
        "N-Beats",
        "Best Model"
    ));
    for r in rows {
        let cons = r.nbeats_cons.map(fmt_loss).unwrap_or_else(|| "-".into());
        out.push_str(&format!(
            "{:<38} {:>7} {:>13} {:>8} {:>14} {:>14} {:>12}  {}\n",
            r.dataset,
            r.len,
            cons,
            r.clients,
            fmt_loss(r.fedforecaster),
            fmt_loss(r.random_search),
            fmt_loss(r.nbeats),
            r.best_model
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<ComparisonRow> {
        (0..8)
            .map(|i| ComparisonRow {
                dataset: format!("d{i}"),
                len: 1000 + i,
                clients: 5,
                nbeats_cons: if i % 2 == 0 { Some(1.0) } else { None },
                fedforecaster: 1.0 + i as f64 * 0.01,
                random_search: 1.5 + i as f64 * 0.01,
                nbeats: 2.0 + i as f64 * 0.01,
                best_model: "Lasso".into(),
            })
            .collect()
    }

    #[test]
    fn summary_ranks_fedforecaster_first_when_it_dominates() {
        let s = summarize(&rows());
        assert!((s.avg_ranks[0] - 1.0).abs() < 1e-12);
        assert!((s.avg_ranks[1] - 2.0).abs() < 1e-12);
        assert!((s.avg_ranks[2] - 3.0).abs() < 1e-12);
        assert_eq!(s.fedforecaster_wins, 8);
        assert!(s.wilcoxon_vs_random.unwrap().p_value < 0.05);
        assert!(s.wilcoxon_vs_nbeats.unwrap().p_value < 0.05);
    }

    #[test]
    fn render_includes_dashes_for_missing_cons() {
        let table = render_table(&rows());
        assert!(table.contains('-'));
        assert!(table.contains("FedForecaster"));
        assert!(table.lines().count() == 9);
    }

    #[test]
    fn round_report_rendering_surfaces_dropouts() {
        let rounds = vec![
            RoundReport {
                phase: "optimization",
                round: 7,
                participants: 8,
                responses: 5,
                usable: 4,
                dropouts: vec![
                    (1, "client 1 panicked".into()),
                    (5, "client 5 timed out".into()),
                ],
                app_errors: vec![(2, "series too short".into())],
                non_finite: vec![6],
                rejected: vec![(7, "norm 1.0e9 vs median 1.2e0".into())],
                quorum_met: true,
            },
            RoundReport {
                phase: "optimization",
                round: 8,
                participants: 2,
                responses: 0,
                usable: 0,
                dropouts: vec![],
                app_errors: vec![],
                non_finite: vec![],
                rejected: vec![],
                quorum_met: false,
            },
        ];
        let log = render_rounds(&rounds);
        assert!(log.contains("client 1 panicked"));
        assert!(log.contains("client 5 timed out"));
        assert!(log.contains("app error: series too short"));
        assert!(log.contains("#6: non-finite loss"));
        assert!(log.contains("#7: rejected: norm 1.0e9"));
        assert!(log.contains("QUORUM UNMET"));
        assert_eq!(log.lines().count(), 3);
    }
}
