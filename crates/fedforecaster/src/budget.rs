//! Optimization budgets (§3: "within a time budget T", Algorithm 1:
//! "Time Budget T OR Number of iterations I").

use std::time::{Duration, Instant};

/// A budget expressed either as wall-clock time or as a number of
/// optimization iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Budget {
    /// Wall-clock limit (the paper's 5-minute setting is
    /// `Budget::Time(Duration::from_secs(300))`).
    Time(Duration),
    /// Fixed number of configuration evaluations.
    Iterations(usize),
}

/// A running budget tracker.
#[derive(Debug, Clone)]
pub struct BudgetTracker {
    budget: Budget,
    started: Instant,
    iterations: usize,
}

impl BudgetTracker {
    /// Starts tracking now.
    pub fn start(budget: Budget) -> BudgetTracker {
        BudgetTracker {
            budget,
            started: Instant::now(),
            iterations: 0,
        }
    }

    /// Records one completed iteration.
    pub fn record_iteration(&mut self) {
        self.iterations += 1;
    }

    /// True when the budget is exhausted.
    pub fn exhausted(&self) -> bool {
        match self.budget {
            Budget::Time(limit) => self.started.elapsed() >= limit,
            Budget::Iterations(n) => self.iterations >= n,
        }
    }

    /// Iterations completed so far.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Elapsed wall-clock time.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iteration_budget_counts() {
        let mut t = BudgetTracker::start(Budget::Iterations(3));
        assert!(!t.exhausted());
        t.record_iteration();
        t.record_iteration();
        assert!(!t.exhausted());
        t.record_iteration();
        assert!(t.exhausted());
        assert_eq!(t.iterations(), 3);
    }

    #[test]
    fn zero_time_budget_is_immediately_exhausted() {
        let t = BudgetTracker::start(Budget::Time(Duration::from_secs(0)));
        assert!(t.exhausted());
    }

    #[test]
    fn generous_time_budget_is_not_exhausted() {
        let t = BudgetTracker::start(Budget::Time(Duration::from_secs(3600)));
        assert!(!t.exhausted());
    }
}
