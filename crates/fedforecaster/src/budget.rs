//! Optimization budgets (§3: "within a time budget T", Algorithm 1:
//! "Time Budget T OR Number of iterations I").

use std::time::{Duration, Instant};

/// A budget expressed either as wall-clock time or as a number of
/// optimization iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Budget {
    /// Wall-clock limit (the paper's 5-minute setting is
    /// `Budget::Time(Duration::from_secs(300))`).
    Time(Duration),
    /// Fixed number of configuration evaluations.
    Iterations(usize),
}

/// A running budget tracker.
///
/// An [`Instant`] cannot be serialized, so a tracker that must survive a
/// coordinator crash persists its [`consumed`](Self::consumed) form
/// instead and is rebuilt with [`resume`](Self::resume): the already-spent
/// wall clock and iteration count carry over, and the restarted run only
/// gets whatever budget remains — not a fresh full one.
#[derive(Debug, Clone)]
pub struct BudgetTracker {
    budget: Budget,
    started: Instant,
    /// Wall clock consumed before `started` (zero unless resumed).
    base: Duration,
    iterations: usize,
}

impl BudgetTracker {
    /// Starts tracking now.
    pub fn start(budget: Budget) -> BudgetTracker {
        BudgetTracker {
            budget,
            started: Instant::now(),
            base: Duration::ZERO,
            iterations: 0,
        }
    }

    /// Resumes tracking after a crash: `consumed` wall clock and
    /// `iterations` already spent by the interrupted run count against
    /// the budget from the first instant.
    pub fn resume(budget: Budget, consumed: Duration, iterations: usize) -> BudgetTracker {
        BudgetTracker {
            budget,
            started: Instant::now(),
            base: consumed,
            iterations,
        }
    }

    /// The persistable spent state: `(wall clock consumed, iterations)`.
    pub fn consumed(&self) -> (Duration, usize) {
        (self.elapsed(), self.iterations)
    }

    /// Records one completed iteration.
    pub fn record_iteration(&mut self) {
        self.iterations += 1;
    }

    /// True when the budget is exhausted.
    pub fn exhausted(&self) -> bool {
        match self.budget {
            Budget::Time(limit) => self.elapsed() >= limit,
            Budget::Iterations(n) => self.iterations >= n,
        }
    }

    /// Iterations completed so far.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Elapsed wall-clock time, including any pre-resume spend.
    pub fn elapsed(&self) -> Duration {
        self.base + self.started.elapsed()
    }

    /// Fraction of the budget still unspent, in `[0, 1]` (feeds the
    /// `engine.budget_remaining` gauge).
    pub fn remaining_fraction(&self) -> f64 {
        match self.budget {
            Budget::Time(limit) => {
                if limit.is_zero() {
                    return 0.0;
                }
                (1.0 - self.elapsed().as_secs_f64() / limit.as_secs_f64()).clamp(0.0, 1.0)
            }
            Budget::Iterations(n) => {
                if n == 0 {
                    return 0.0;
                }
                ((n.saturating_sub(self.iterations)) as f64 / n as f64).clamp(0.0, 1.0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iteration_budget_counts() {
        let mut t = BudgetTracker::start(Budget::Iterations(3));
        assert!(!t.exhausted());
        t.record_iteration();
        t.record_iteration();
        assert!(!t.exhausted());
        t.record_iteration();
        assert!(t.exhausted());
        assert_eq!(t.iterations(), 3);
    }

    #[test]
    fn zero_time_budget_is_immediately_exhausted() {
        let t = BudgetTracker::start(Budget::Time(Duration::from_secs(0)));
        assert!(t.exhausted());
    }

    #[test]
    fn generous_time_budget_is_not_exhausted() {
        let t = BudgetTracker::start(Budget::Time(Duration::from_secs(3600)));
        assert!(!t.exhausted());
    }

    #[test]
    fn remaining_fraction_decreases_to_zero() {
        let mut t = BudgetTracker::start(Budget::Iterations(4));
        assert_eq!(t.remaining_fraction(), 1.0);
        t.record_iteration();
        assert_eq!(t.remaining_fraction(), 0.75);
        for _ in 0..5 {
            t.record_iteration();
        }
        assert_eq!(t.remaining_fraction(), 0.0);
        let timed = BudgetTracker::start(Budget::Time(Duration::from_secs(3600)));
        let f = timed.remaining_fraction();
        assert!(f > 0.99 && f <= 1.0);
        assert_eq!(
            BudgetTracker::start(Budget::Time(Duration::ZERO)).remaining_fraction(),
            0.0
        );
    }

    #[test]
    fn resumed_iteration_budget_counts_prior_spend() {
        let mut t = BudgetTracker::resume(Budget::Iterations(5), Duration::ZERO, 3);
        assert_eq!(t.iterations(), 3);
        assert!(!t.exhausted());
        assert_eq!(t.remaining_fraction(), 0.4);
        t.record_iteration();
        t.record_iteration();
        assert!(t.exhausted());
        let (_, iters) = t.consumed();
        assert_eq!(iters, 5);
    }

    #[test]
    fn resumed_time_budget_counts_prior_spend() {
        // 3 of 4 seconds already burned before the crash: the resumed
        // tracker reports ~25% remaining immediately, not a fresh budget.
        let limit = Duration::from_secs(4);
        let t = BudgetTracker::resume(Budget::Time(limit), Duration::from_secs(3), 7);
        assert!(t.elapsed() >= Duration::from_secs(3));
        let f = t.remaining_fraction();
        assert!(f > 0.2 && f <= 0.25, "remaining fraction {f}");
        assert!(!t.exhausted());
        assert_eq!(t.consumed().1, 7);
        // Prior spend at or past the limit: exhausted from the start.
        let spent = BudgetTracker::resume(Budget::Time(limit), Duration::from_secs(4), 9);
        assert!(spent.exhausted());
        assert_eq!(spent.remaining_fraction(), 0.0);
    }
}
