//! Optimization budgets (§3: "within a time budget T", Algorithm 1:
//! "Time Budget T OR Number of iterations I").

use std::time::{Duration, Instant};

/// A budget expressed either as wall-clock time or as a number of
/// optimization iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Budget {
    /// Wall-clock limit (the paper's 5-minute setting is
    /// `Budget::Time(Duration::from_secs(300))`).
    Time(Duration),
    /// Fixed number of configuration evaluations.
    Iterations(usize),
}

/// A running budget tracker.
#[derive(Debug, Clone)]
pub struct BudgetTracker {
    budget: Budget,
    started: Instant,
    iterations: usize,
}

impl BudgetTracker {
    /// Starts tracking now.
    pub fn start(budget: Budget) -> BudgetTracker {
        BudgetTracker {
            budget,
            started: Instant::now(),
            iterations: 0,
        }
    }

    /// Records one completed iteration.
    pub fn record_iteration(&mut self) {
        self.iterations += 1;
    }

    /// True when the budget is exhausted.
    pub fn exhausted(&self) -> bool {
        match self.budget {
            Budget::Time(limit) => self.started.elapsed() >= limit,
            Budget::Iterations(n) => self.iterations >= n,
        }
    }

    /// Iterations completed so far.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Elapsed wall-clock time.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Fraction of the budget still unspent, in `[0, 1]` (feeds the
    /// `engine.budget_remaining` gauge).
    pub fn remaining_fraction(&self) -> f64 {
        match self.budget {
            Budget::Time(limit) => {
                if limit.is_zero() {
                    return 0.0;
                }
                (1.0 - self.started.elapsed().as_secs_f64() / limit.as_secs_f64()).clamp(0.0, 1.0)
            }
            Budget::Iterations(n) => {
                if n == 0 {
                    return 0.0;
                }
                ((n.saturating_sub(self.iterations)) as f64 / n as f64).clamp(0.0, 1.0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iteration_budget_counts() {
        let mut t = BudgetTracker::start(Budget::Iterations(3));
        assert!(!t.exhausted());
        t.record_iteration();
        t.record_iteration();
        assert!(!t.exhausted());
        t.record_iteration();
        assert!(t.exhausted());
        assert_eq!(t.iterations(), 3);
    }

    #[test]
    fn zero_time_budget_is_immediately_exhausted() {
        let t = BudgetTracker::start(Budget::Time(Duration::from_secs(0)));
        assert!(t.exhausted());
    }

    #[test]
    fn generous_time_budget_is_not_exhausted() {
        let t = BudgetTracker::start(Budget::Time(Duration::from_secs(3600)));
        assert!(!t.exhausted());
    }

    #[test]
    fn remaining_fraction_decreases_to_zero() {
        let mut t = BudgetTracker::start(Budget::Iterations(4));
        assert_eq!(t.remaining_fraction(), 1.0);
        t.record_iteration();
        assert_eq!(t.remaining_fraction(), 0.75);
        for _ in 0..5 {
            t.record_iteration();
        }
        assert_eq!(t.remaining_fraction(), 0.0);
        let timed = BudgetTracker::start(Budget::Time(Duration::from_secs(3600)));
        let f = timed.remaining_fraction();
        assert!(f > 0.99 && f <= 1.0);
        assert_eq!(
            BudgetTracker::start(Budget::Time(Duration::ZERO)).remaining_fraction(),
            0.0
        );
    }
}
