//! Phase IV: final fit on train+valid, federated model aggregation, and
//! test evaluation (§4.4).
//!
//! There is exactly one implementation, [`finalize_with_tolerant`], and it
//! is driven by the winning algorithm's declared
//! [`ff_models::spec::FinalizeStrategy`] — not by matching on the
//! algorithm itself. `CoefficientAverage` winners are
//! FedAvg-ed into one global linear model; `EnsembleUnion` winners ship
//! serialized members that are deployed as a weighted union (or fall back
//! to per-client models, per [`crate::config::TreeAggregation`]). The
//! strict [`finalize_with`] entry point is the same code run under the
//! strict round policy.

use super::rounds::{
    quorum_unmet, record_screen, strict_policy, tolerant_eval_round, tolerant_round, RobustCtx,
};
use crate::aggregate::GlobalModel;
use crate::ckpt::{CkptSink, Record};
use crate::client::OP;
use crate::report::RoundReport;
use crate::search_space::{algorithm_of, config_to_map, pipeline_of};
use crate::{EngineError, Result};
use ff_bayesopt::space::Configuration;
use ff_fl::config::{ConfigMap, ConfigMapExt};
use ff_fl::message::{Instruction, Reply};
use ff_fl::runtime::{FederatedRuntime, RoundPolicy};
use ff_fl::secure::{mask_contribution, unmask_average};
use ff_fl::strategy::{fedavg, fit_updates, unwrap_fit_replies};
use ff_models::spec::FinalizeStrategy;

/// What Phase IV produced: the deployed global model, its aggregated
/// test MSE, and — for `EnsembleUnion` winners — the exact weighted
/// member set that was deployed, so the run can be sealed into a serving
/// artifact ([`crate::engine::RunResult::export_artifact`]) without
/// re-asking the clients for their models.
#[derive(Debug, Clone)]
pub struct FinalizeOutcome {
    /// The deployed global model.
    pub global_model: GlobalModel,
    /// Aggregated test MSE of the deployed model.
    pub test_mse: f64,
    /// `(blob, weight)` pairs collected from the final-fit survivors, in
    /// reply order — the serving-layer member set. Empty for
    /// `CoefficientAverage` winners (the global model is the coefficients
    /// themselves) and for rounds where no survivor shipped a blob.
    pub members: Vec<(Vec<u8>, f64)>,
}

/// Phase IV with the default
/// [`crate::config::TreeAggregation::EnsembleUnion`] mode. Returns the
/// deployed global model and the aggregated test MSE.
pub fn finalize(rt: &FederatedRuntime, best_config: &Configuration) -> Result<(GlobalModel, f64)> {
    finalize_with(
        rt,
        best_config,
        crate::config::TreeAggregation::EnsembleUnion,
    )
}

/// [`finalize`] with an explicit tree-aggregation mode (§4.4; see
/// DESIGN.md §5 for the trade-off). Runs under the strict round policy:
/// every client must deliver a usable final model.
pub fn finalize_with(
    rt: &FederatedRuntime,
    best_config: &Configuration,
    tree_aggregation: crate::config::TreeAggregation,
) -> Result<(GlobalModel, f64)> {
    finalize_with_tolerant(
        rt,
        ff_par::ParConfig::auto(),
        best_config,
        tree_aggregation,
        &strict_policy(rt),
        &mut Vec::new(),
        &mut RobustCtx::permissive(),
        None,
    )
    .map(|o| (o.global_model, o.test_mse))
}

/// Fault-tolerant finalization: the final fit, aggregation, and test
/// rounds all run under the policy. FedAvg (`CoefficientAverage` winners)
/// and ensemble weights (`EnsembleUnion` winners) renormalize over
/// whichever clients delivered a final model; the union deployment is
/// "available" when every *survivor* of the final-fit round contributed a
/// blob.
///
/// With a checkpoint sink, `EnsembleUnion` winners durably record their
/// collected member blobs ([`Record::FinalMembers`]) before deployment —
/// a post-hoc artifact for inspection and serving, not a replay input
/// (resume always re-executes finalization live, since the clients'
/// final-model state cannot be restored from the server).
#[allow(clippy::too_many_arguments)]
pub fn finalize_with_tolerant(
    rt: &FederatedRuntime,
    par: ff_par::ParConfig,
    best_config: &Configuration,
    tree_aggregation: crate::config::TreeAggregation,
    policy: &RoundPolicy,
    rounds: &mut Vec<RoundReport>,
    ctx: &mut RobustCtx,
    ckpt: Option<&mut CkptSink>,
) -> Result<FinalizeOutcome> {
    par.scope(|| {
        finalize_with_tolerant_inner(rt, best_config, tree_aggregation, policy, rounds, ctx, ckpt)
    })
}

#[allow(clippy::too_many_arguments)]
fn finalize_with_tolerant_inner(
    rt: &FederatedRuntime,
    best_config: &Configuration,
    tree_aggregation: crate::config::TreeAggregation,
    policy: &RoundPolicy,
    rounds: &mut Vec<RoundReport>,
    ctx: &mut RobustCtx,
    ckpt: Option<&mut CkptSink>,
) -> Result<FinalizeOutcome> {
    let algorithm = algorithm_of(best_config)
        .ok_or_else(|| EngineError::InvalidData("config has no algorithm".into()))?;
    let ins = Instruction::Fit {
        params: vec![],
        config: config_to_map(best_config).with_str(OP, "final_fit"),
    };
    let (outcome, idx) = tolerant_round(rt, "finalization", &ins, policy, rounds)?;
    let mut usable: Vec<(usize, Reply)> = Vec::new();
    for (id, r) in outcome.replies {
        match &r {
            Reply::FitRes { metrics, .. } => {
                if let Some(err) = metrics.get("error").and_then(|v| v.as_str()) {
                    rounds[idx].app_errors.push((id, err.to_string()));
                } else {
                    usable.push((id, r));
                }
            }
            Reply::Error(e) => rounds[idx].app_errors.push((id, e.clone())),
            other => rounds[idx]
                .app_errors
                .push((id, format!("unexpected reply {other:?}"))),
        }
    }
    rounds[idx].usable = usable.len();
    let required = policy.min_responses.max(1);
    if usable.len() < required {
        return Err(quorum_unmet(rounds, idx, usable.len(), required));
    }

    // Pipeline winners always finalize by ensemble union: each member is a
    // self-contained blob-v3 forecaster (non-codec models ship in probed
    // affine form), and coefficient averaging is ill-defined across
    // per-client trend branches.
    let strategy = if pipeline_of(best_config).is_some() {
        FinalizeStrategy::EnsembleUnion
    } else {
        algorithm.spec().finalize()
    };
    match strategy {
        FinalizeStrategy::CoefficientAverage => {
            let global_params = if ctx.is_robust() {
                // Robust path: screen per-client coefficient vectors, feed
                // the verdicts to the health registry, then apply the
                // configured robust rule over the survivors.
                let updates = fit_updates(usable).map_err(EngineError::Federation)?;
                let screened = ctx.guard.screen_updates(updates);
                let accepted_ids: Vec<usize> =
                    screened.accepted.iter().map(|(id, _, _)| *id).collect();
                record_screen(rt, rounds, idx, &accepted_ids, &screened.rejected);
                rounds[idx].usable = screened.accepted.len();
                if screened.accepted.len() < required {
                    return Err(quorum_unmet(rounds, idx, screened.accepted.len(), required));
                }
                let survivors: Vec<(Vec<f64>, u64)> = screened
                    .accepted
                    .into_iter()
                    .map(|(_, p, n)| (p, n))
                    .collect();
                ctx.strategy
                    .aggregate(&survivors)
                    .map_err(EngineError::Federation)?
            } else if ctx.secure {
                // Masked path (FedAvg only, enforced by config validation):
                // each survivor uploads `weight·params + Σ pairwise masks`;
                // the masks cancel in the sum, so the server recovers the
                // weighted average without seeing any individual update.
                let fit_results = unwrap_fit_replies(usable).map_err(EngineError::Federation)?;
                let n = fit_results.len();
                let round_seed = rounds[idx].round;
                let total_weight: f64 = fit_results.iter().map(|(_, w)| *w as f64).sum();
                let uploads: Vec<Vec<f64>> = fit_results
                    .iter()
                    .enumerate()
                    .map(|(i, (p, w))| mask_contribution(p, *w as f64, i, n, round_seed))
                    .collect();
                unmask_average(&uploads, total_weight).ok_or_else(|| {
                    EngineError::InvalidData(
                        "secure aggregation failed to unmask the final fit \
                         (mismatched dimensions or zero total weight)"
                            .into(),
                    )
                })?
            } else {
                let fit_results = unwrap_fit_replies(usable).map_err(EngineError::Federation)?;
                fedavg(&fit_results).map_err(EngineError::Federation)?
            };
            // Split off what the deployed model keeps *before* the eval
            // round takes ownership of the full vector — the broadcast
            // path never clones the global model.
            let p = global_params.len() - 1;
            let coef = global_params[..p].to_vec();
            let intercept = global_params[p];
            let test_mse = tolerant_eval_round(
                rt,
                global_params,
                ConfigMap::new().with_str(OP, "test_global_linear"),
                policy,
                rounds,
                ctx,
            )?;
            Ok(FinalizeOutcome {
                global_model: GlobalModel::Linear {
                    algorithm,
                    coef,
                    intercept,
                },
                test_mse,
                members: vec![],
            })
        }
        FinalizeStrategy::EnsembleUnion => finalize_union(
            rt,
            algorithm,
            usable,
            tree_aggregation,
            policy,
            rounds,
            ctx,
            ckpt,
        ),
    }
}

/// The `EnsembleUnion` arm: gather serialized members from the final-fit
/// survivors and deploy either the weighted union or the per-client
/// fallback, per the tree-aggregation mode.
#[allow(clippy::too_many_arguments)]
fn finalize_union(
    rt: &FederatedRuntime,
    algorithm: ff_models::zoo::AlgorithmKind,
    usable: Vec<(usize, Reply)>,
    tree_aggregation: crate::config::TreeAggregation,
    policy: &RoundPolicy,
    rounds: &mut Vec<RoundReport>,
    ctx: &mut RobustCtx,
    ckpt: Option<&mut CkptSink>,
) -> Result<FinalizeOutcome> {
    use crate::config::TreeAggregation;
    let mut blobs: Vec<Vec<u8>> = Vec::new();
    let mut weights: Vec<f64> = Vec::new();
    for (_, r) in &usable {
        if let Reply::FitRes {
            num_examples,
            metrics,
            ..
        } = r
        {
            if let Some(b) = metrics.get("model_blob").and_then(|v| v.as_bytes()) {
                blobs.push(b.to_vec());
                weights.push(*num_examples as f64);
            }
        }
    }
    // The member set outlives this function twice over: once durably in
    // the checkpoint WAL, once in the outcome so the run can seal a
    // serving artifact. Clone it here, before deployment moves the blobs
    // into round configs.
    let exported: Vec<(Vec<u8>, f64)> = blobs
        .iter()
        .zip(&weights)
        .map(|(b, &w)| (b.clone(), w))
        .collect();
    if let Some(sink) = ckpt {
        sink.append(&Record::FinalMembers {
            algorithm: algorithm.name().to_string(),
            members: exported.clone(),
        })?;
    }
    let union_available = blobs.len() == usable.len() && !blobs.is_empty();
    let members = blobs.len();
    // Takes the blobs by value: the ConfigMap absorbs them without
    // copying, so the round that ends a blob's life moves it. Only the
    // `Auto` validation probe — which needs the blobs again for the test
    // round — pays for a copy.
    fn ensemble_config(split: &str, blobs: Vec<Vec<u8>>, weights: &[f64]) -> ConfigMap {
        let wsum: f64 = weights.iter().sum();
        let mut config = ConfigMap::new()
            .with_str(OP, "test_global_ensemble")
            .with_str("split", split)
            .with_floats("weights", weights.iter().map(|w| w / wsum).collect());
        for (j, b) in blobs.into_iter().enumerate() {
            config = config.with_bytes(&format!("blob_{j}"), b);
        }
        config
    }
    let local_config = |split: &str| {
        ConfigMap::new()
            .with_str(OP, "test_local")
            .with_str("split", split)
    };

    let use_union = match tree_aggregation {
        TreeAggregation::EnsembleUnion => union_available,
        TreeAggregation::PerClient => false,
        TreeAggregation::Auto => {
            // Leakage-free model selection: compare both deployments on the
            // validation split and pick the better.
            union_available && {
                let union_valid = tolerant_eval_round(
                    rt,
                    vec![],
                    ensemble_config("valid", blobs.clone(), &weights),
                    policy,
                    rounds,
                    ctx,
                )?;
                let local_valid =
                    tolerant_eval_round(rt, vec![], local_config("valid"), policy, rounds, ctx)?;
                union_valid <= local_valid
            }
        }
    };
    if use_union {
        let test_mse = tolerant_eval_round(
            rt,
            vec![],
            ensemble_config("test", blobs, &weights),
            policy,
            rounds,
            ctx,
        )?;
        Ok(FinalizeOutcome {
            global_model: GlobalModel::Ensemble { algorithm, members },
            test_mse,
            members: exported,
        })
    } else {
        let test_mse = tolerant_eval_round(rt, vec![], local_config("test"), policy, rounds, ctx)?;
        Ok(FinalizeOutcome {
            global_model: GlobalModel::PerClient { algorithm },
            test_mse,
            members: exported,
        })
    }
}
