//! Policy-bounded round plumbing shared by every pipeline stage.
//!
//! The `*_tolerant` stage variants drive the protocol through
//! [`FederatedRuntime::run_round`]: every collect is bounded by the policy
//! deadline, clients that time out, panic, or reply garbage become recorded
//! dropouts, and each stage proceeds with whichever healthy subset remains
//! (FedAvg and Equation 1 renormalize over survivors automatically). The
//! strict variants require every client to reply and are kept for the
//! baselines and for federations known to be well-behaved.

use crate::report::RoundReport;
use crate::{EngineError, Result};
use ff_fl::message::Instruction;
use ff_fl::runtime::{FederatedRuntime, RoundOutcome, RoundPolicy};
use ff_fl::FlError;

/// The policy that reproduces strict-round semantics through the tolerant
/// machinery: block until every client replies, and fail the stage unless
/// all of them produced a usable reply.
pub(crate) fn strict_policy(rt: &FederatedRuntime) -> RoundPolicy {
    RoundPolicy {
        deadline: None,
        min_responses: rt.n_clients(),
        ..RoundPolicy::default()
    }
}

/// Runs one policy-bounded round and appends its [`RoundReport`]. Returns
/// the outcome plus the report's index so the caller can amend the
/// app-level fields (`usable`, `app_errors`, `non_finite`).
pub(crate) fn tolerant_round(
    rt: &FederatedRuntime,
    phase: &'static str,
    ins: &Instruction,
    policy: &RoundPolicy,
    rounds: &mut Vec<RoundReport>,
) -> Result<(RoundOutcome, usize)> {
    match rt.run_round(ins, policy) {
        Ok(outcome) => {
            rounds.push(RoundReport {
                phase,
                round: outcome.round,
                participants: outcome.participants.len(),
                responses: outcome.replies.len(),
                usable: outcome.replies.len(),
                dropouts: outcome
                    .dropouts
                    .iter()
                    .map(|(id, e)| (*id, e.to_string()))
                    .collect(),
                app_errors: vec![],
                non_finite: vec![],
                quorum_met: true,
            });
            let idx = rounds.len() - 1;
            Ok((outcome, idx))
        }
        Err(e) => {
            if let FlError::Quorum { healthy, .. } = &e {
                rounds.push(RoundReport {
                    phase,
                    round: rt.health_report().rounds,
                    participants: 0,
                    responses: *healthy,
                    usable: *healthy,
                    dropouts: vec![],
                    app_errors: vec![],
                    non_finite: vec![],
                    quorum_met: false,
                });
            }
            Err(EngineError::Federation(e))
        }
    }
}

/// Marks the round at `idx` quorum-unmet and returns the matching error.
pub(crate) fn quorum_unmet(
    rounds: &mut [RoundReport],
    idx: usize,
    healthy: usize,
    required: usize,
) -> EngineError {
    rounds[idx].quorum_met = false;
    EngineError::Federation(FlError::Quorum { healthy, required })
}
