//! Policy-bounded round plumbing shared by every pipeline stage.
//!
//! The `*_tolerant` stage variants drive the protocol through
//! [`FederatedRuntime::run_round`]: every collect is bounded by the policy
//! deadline, clients that time out, panic, or reply garbage become recorded
//! dropouts, and each stage proceeds with whichever healthy subset remains
//! (FedAvg and Equation 1 renormalize over survivors automatically). The
//! strict variants require every client to reply and are kept for the
//! baselines and for federations known to be well-behaved.

use crate::config::EngineConfig;
use crate::report::RoundReport;
use crate::{EngineError, Result};
use ff_fl::config::ConfigMap;
use ff_fl::message::{Instruction, Reply};
use ff_fl::robust::{AggregationStrategy, RejectReason, UpdateGuard};
use ff_fl::runtime::{FederatedRuntime, RoundOutcome, RoundPolicy};
use ff_fl::strategy::aggregate_loss;
use ff_fl::FlError;

/// Per-run robust-aggregation state threaded through every tolerant stage:
/// which aggregation rule to apply, the stateful pre-aggregation screen
/// (its running medians span rounds), and whether the final linear fit
/// must go through pairwise masking. Under the default FedAvg strategy
/// `is_robust()` is false and every stage takes its legacy path untouched.
pub struct RobustCtx {
    /// The server-side aggregation rule.
    pub strategy: AggregationStrategy,
    /// Stateful screen applied to every reply before robust aggregation.
    pub guard: UpdateGuard,
    /// Mask the final-fit coefficient uploads (FedAvg only; enforced by
    /// [`EngineConfig::validate`]).
    pub secure: bool,
}

impl RobustCtx {
    /// Builds the per-run context from a validated engine config.
    pub fn from_config(cfg: &EngineConfig) -> RobustCtx {
        RobustCtx {
            strategy: cfg.aggregation,
            guard: UpdateGuard::new(cfg.guard),
            secure: cfg.secure_aggregation,
        }
    }

    /// Plain FedAvg, no screening, no masking — the context the strict
    /// baselines use so their behavior stays bit-identical.
    pub fn permissive() -> RobustCtx {
        RobustCtx {
            strategy: AggregationStrategy::FedAvg,
            guard: UpdateGuard::new(Default::default()),
            secure: false,
        }
    }

    /// Whether replies must be screened and robustly aggregated.
    pub fn is_robust(&self) -> bool {
        self.strategy.is_robust()
    }
}

/// Feeds guard verdicts back into the health registry and the round
/// report: every rejection escalates the client's integrity streak (and
/// bumps the `fl.updates_rejected` counter via the runtime); every
/// acceptance clears it.
pub(crate) fn record_screen(
    rt: &FederatedRuntime,
    rounds: &mut [RoundReport],
    idx: usize,
    accepted: &[usize],
    rejected: &[(usize, RejectReason)],
) {
    for id in accepted {
        rt.record_update_accepted(*id);
    }
    for (id, why) in rejected {
        rt.record_update_rejected(*id);
        rounds[idx].rejected.push((*id, why.to_string()));
    }
}

/// The policy that reproduces strict-round semantics through the tolerant
/// machinery: block until every client replies, and fail the stage unless
/// all of them produced a usable reply.
pub(crate) fn strict_policy(rt: &FederatedRuntime) -> RoundPolicy {
    RoundPolicy {
        deadline: None,
        min_responses: rt.n_clients(),
        ..RoundPolicy::default()
    }
}

/// Runs one policy-bounded round and appends its [`RoundReport`]. Returns
/// the outcome plus the report's index so the caller can amend the
/// app-level fields (`usable`, `app_errors`, `non_finite`).
pub(crate) fn tolerant_round(
    rt: &FederatedRuntime,
    phase: &'static str,
    ins: &Instruction,
    policy: &RoundPolicy,
    rounds: &mut Vec<RoundReport>,
) -> Result<(RoundOutcome, usize)> {
    match rt.run_round(ins, policy) {
        Ok(outcome) => {
            rounds.push(RoundReport {
                phase,
                round: outcome.round,
                participants: outcome.participants.len(),
                responses: outcome.replies.len(),
                usable: outcome.replies.len(),
                dropouts: outcome
                    .dropouts
                    .iter()
                    .map(|(id, e)| (*id, e.to_string()))
                    .collect(),
                app_errors: vec![],
                non_finite: vec![],
                rejected: vec![],
                quorum_met: true,
            });
            let idx = rounds.len() - 1;
            Ok((outcome, idx))
        }
        Err(e) => {
            if let FlError::Quorum { healthy, .. } = &e {
                rounds.push(RoundReport {
                    phase,
                    round: rt.health_report().rounds,
                    participants: 0,
                    responses: *healthy,
                    usable: *healthy,
                    dropouts: vec![],
                    app_errors: vec![],
                    non_finite: vec![],
                    rejected: vec![],
                    quorum_met: false,
                });
            }
            Err(EngineError::Federation(e))
        }
    }
}

/// One tolerant Evaluate round aggregated by Equation 1 over the finite
/// survivor losses (or the configured robust loss rule when the context
/// is robust). Takes ownership of `params` — callers that still need the
/// vector extract what they keep *before* handing it over rather than
/// cloning a full model copy per evaluation.
pub(crate) fn tolerant_eval_round(
    rt: &FederatedRuntime,
    params: Vec<f64>,
    op_config: ConfigMap,
    policy: &RoundPolicy,
    rounds: &mut Vec<RoundReport>,
    ctx: &mut RobustCtx,
) -> Result<f64> {
    let ins = Instruction::Evaluate {
        params,
        config: op_config,
    };
    let (outcome, idx) = tolerant_round(rt, "finalization", &ins, policy, rounds)?;
    let mut candidates: Vec<(usize, f64, u64)> = Vec::new();
    for (id, r) in &outcome.replies {
        match r {
            Reply::EvaluateRes {
                loss, num_examples, ..
            } => candidates.push((*id, *loss, *num_examples)),
            Reply::Error(e) => rounds[idx].app_errors.push((*id, e.clone())),
            other => rounds[idx]
                .app_errors
                .push((*id, format!("unexpected reply {other:?}"))),
        }
    }
    let losses: Vec<(f64, u64)> = if ctx.is_robust() {
        let screened = ctx.guard.screen_losses(candidates);
        let accepted_ids: Vec<usize> = screened.accepted.iter().map(|(id, _, _)| *id).collect();
        record_screen(rt, rounds, idx, &accepted_ids, &screened.rejected);
        screened
            .accepted
            .into_iter()
            .map(|(_, loss, n)| (loss, n))
            .collect()
    } else {
        let mut losses = Vec::new();
        for (id, loss, n) in candidates {
            if loss.is_finite() {
                losses.push((loss, n));
            } else {
                rounds[idx].non_finite.push(id);
            }
        }
        losses
    };
    rounds[idx].usable = losses.len();
    let required = policy.min_responses.max(1);
    if losses.len() < required {
        return Err(quorum_unmet(rounds, idx, losses.len(), required));
    }
    if ctx.is_robust() {
        ctx.strategy
            .aggregate_loss(&losses)
            .map_err(EngineError::Federation)
    } else {
        aggregate_loss(&losses).map_err(EngineError::Federation)
    }
}

/// Marks the round at `idx` quorum-unmet and returns the matching error.
pub(crate) fn quorum_unmet(
    rounds: &mut [RoundReport],
    idx: usize,
    healthy: usize,
    required: usize,
) -> EngineError {
    rounds[idx].quorum_met = false;
    EngineError::Federation(FlError::Quorum { healthy, required })
}
