//! The FedForecaster engine: Algorithm 1 end-to-end over the federated
//! runtime, plus the shared pipeline stages reused by the random-search
//! baseline.
//!
//! The pipeline is decomposed into stage modules:
//! - [`recommend`] — meta-feature collection, seasonal-period agreement,
//!   and federated feature engineering (Phases I–III prep);
//! - [`tune`] — per-configuration federated evaluation for the Bayesian
//!   optimization loop (Phase III);
//! - [`mod@finalize`] — the strategy-driven final fit / aggregate / test
//!   stage (Phase IV), shared by the strict and fault-tolerant paths;
//! - `rounds` (private) — the policy-bounded round plumbing the stages
//!   share, including the per-run robust-aggregation context (`RobustCtx`)
//!   that threads the update guard and aggregation strategy through every
//!   tolerant stage.
//!
//! Each stage comes in two flavors: a strict variant that requires every
//! client to reply (used by the baselines and well-behaved tests) and a
//! `*_tolerant` variant bounded by an [`ff_fl::runtime::RoundPolicy`]. The
//! engine itself always drives the tolerant path.

pub mod finalize;
pub mod recommend;
mod rounds;
pub mod tune;

pub use finalize::{finalize, finalize_with, finalize_with_tolerant, FinalizeOutcome};
pub use recommend::{
    collect_global_meta, collect_global_meta_tolerant, derive_lag_count,
    federated_seasonal_periods, federated_seasonal_periods_tolerant, run_feature_engineering,
    run_feature_engineering_tolerant,
};
pub use rounds::RobustCtx;
pub use tune::{evaluate_config, evaluate_config_tolerant};

use crate::aggregate::GlobalModel;
use crate::budget::BudgetTracker;
use crate::ckpt::{
    config_fingerprint, reports_fingerprint, run_fingerprint, trial_config_fingerprint, CkptSink,
    Record, Replay, RuntimeSnapshot,
};
use crate::client::FedForecasterClient;
use crate::config::EngineConfig;
use crate::feature_engineering::GlobalFeatureSpec;
use crate::report::{RoundReport, RunTelemetry};
use crate::search_space::{
    pipeline_of, pipeline_space, table2_space, warm_start_configs, warm_start_pipeline_configs,
};
use crate::{EngineError, Result};
use ff_bayesopt::optimizer::BayesOpt;
use ff_bayesopt::space::Configuration;
use ff_ckpt::{CkptError, CrashPoint};
use ff_fl::client::FlClient;
use ff_fl::health::HealthReport;
use ff_fl::log::Retention;
use ff_fl::runtime::FederatedRuntime;
use ff_fl::FlError;
use ff_metalearn::metamodel::MetaModel;
use ff_models::zoo::AlgorithmKind;
use ff_timeseries::TimeSeries;
use ff_trace::ClientCommsRow;
use std::time::Duration;

/// Communication spent in one pipeline phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseBytes {
    /// Phase name (`meta_features`, `feature_engineering`, `optimization`,
    /// `finalization`).
    pub phase: &'static str,
    /// Bytes sent server → clients during the phase.
    pub to_clients: usize,
    /// Bytes sent clients → server during the phase.
    pub to_server: usize,
}

/// Outcome of one engine (or baseline) run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Winning algorithm.
    pub best_algorithm: AlgorithmKind,
    /// Winning pipeline structure name, when the run searched composed
    /// pipelines ([`EngineConfig::pipelines`]); `None` for flat runs.
    pub best_pipeline: Option<String>,
    /// Winning configuration.
    pub best_config: Configuration,
    /// Best aggregated validation loss observed during optimization.
    pub best_valid_loss: f64,
    /// Aggregated test MSE of the deployed global model.
    pub test_mse: f64,
    /// The deployed global model.
    pub global_model: GlobalModel,
    /// Number of configurations evaluated.
    pub evaluations: usize,
    /// Aggregated validation loss after each evaluation (for budget sweeps).
    pub loss_history: Vec<f64>,
    /// The meta-model's recommendations (empty for baselines).
    pub recommended: Vec<AlgorithmKind>,
    /// Wall-clock spent in the optimization loop.
    pub elapsed: Duration,
    /// Bytes sent server→clients over the run.
    pub bytes_to_clients: usize,
    /// Bytes sent clients→server over the run.
    pub bytes_to_server: usize,
    /// Per-phase communication breakdown (empty for baselines that do not
    /// track phases).
    pub phase_bytes: Vec<PhaseBytes>,
    /// Per-round fault-tolerance log: participants, responders, dropouts
    /// (empty for baselines that run strict rounds).
    pub rounds: Vec<RoundReport>,
    /// Tuning-loop trials abandoned because the round quorum was unmet.
    /// These consume budget but contribute no loss observation.
    pub failed_trials: usize,
    /// Final per-client health snapshot from the runtime.
    pub health: HealthReport,
    /// Telemetry from the run: `Some` only when the config enabled
    /// [`crate::config::TraceConfig`]; `None` costs nothing.
    pub telemetry: Option<RunTelemetry>,
    /// The deployed ensemble's `(blob, weight)` member set, in reply
    /// order — what [`RunResult::export_artifact`] seals for the serving
    /// layer. Empty for `CoefficientAverage` winners and for baselines
    /// that do not collect members.
    pub ensemble_members: Vec<(Vec<u8>, f64)>,
    /// Lag offsets the surviving engineered schema reads — the serving
    /// recipe for flat (blob-v2) members. Empty when the surviving
    /// schema contains non-lag columns (trend/time/seasonal survived
    /// selection) or the run tracked no selection.
    pub feature_lags: Vec<usize>,
}

impl RunResult {
    /// Seals the run into a serving artifact for
    /// [`ff_serve::ModelStore::publish`]: the winning algorithm and
    /// pipeline names, the flat-member lag recipe, and the deployed
    /// weighted member set. Returns `None` when the run has no members to
    /// serve (a `CoefficientAverage` winner, or a baseline that did not
    /// collect blobs).
    pub fn export_artifact(&self) -> Option<ff_serve::Artifact> {
        if self.ensemble_members.is_empty() {
            return None;
        }
        Some(ff_serve::Artifact {
            algorithm: self.best_algorithm.name().to_string(),
            pipeline: self.best_pipeline.clone(),
            lags: self.feature_lags.clone(),
            members: self
                .ensemble_members
                .iter()
                .map(|(b, w)| (*w, b.clone()))
                .collect(),
        })
    }
}

/// The FedForecaster engine. Borrows the (expensive-to-train) meta-model
/// so many runs — sweeps, repeated seeds — share one offline phase.
pub struct FedForecaster<'m> {
    cfg: EngineConfig,
    meta: &'m MetaModel,
}

impl<'m> FedForecaster<'m> {
    /// Creates an engine with a pre-trained meta-model (Figure 2 offline
    /// phase output).
    pub fn new(cfg: EngineConfig, meta: &'m MetaModel) -> FedForecaster<'m> {
        FedForecaster { cfg, meta }
    }

    /// Runs Algorithm 1 on a federation of private series.
    pub fn run(&self, clients: &[TimeSeries]) -> Result<RunResult> {
        let runtime = build_runtime(clients, &self.cfg)?;
        self.run_on(&runtime)
    }

    /// Runs Algorithm 1 on an existing runtime (lets tests inspect logs).
    pub fn run_on(&self, rt: &FederatedRuntime) -> Result<RunResult> {
        self.run_or_resume(rt, false)
    }

    /// Resumes a crashed run from its checkpoint log and continues to the
    /// bit-identical result the uninterrupted run would have produced.
    /// Requires [`EngineConfig::checkpoint`]; the federation, seed, and
    /// config must match the crashed run (the log's header is verified).
    /// A missing or empty log degrades to a fresh run.
    pub fn resume(&self, clients: &[TimeSeries]) -> Result<RunResult> {
        let runtime = build_runtime(clients, &self.cfg)?;
        self.resume_on(&runtime)
    }

    /// [`FedForecaster::resume`] on an existing runtime.
    pub fn resume_on(&self, rt: &FederatedRuntime) -> Result<RunResult> {
        if self.cfg.checkpoint.is_none() {
            return Err(EngineError::InvalidData(
                "resume requires EngineConfig::checkpoint".into(),
            ));
        }
        self.run_or_resume(rt, true)
    }

    fn run_or_resume(&self, rt: &FederatedRuntime, resuming: bool) -> Result<RunResult> {
        self.cfg.validate()?;
        // Worker threads spawned during the run (FL clients) resolve the
        // kernel thread count through the process global; the engine thread
        // itself additionally scopes the config into every pipeline stage.
        self.cfg.par.install_global();
        let par_before = ff_par::stats();
        let workers_before = ff_par::worker_loads();
        let mut robust = rounds::RobustCtx::from_config(&self.cfg);
        let tracer = self.cfg.trace.tracer();
        if tracer.is_enabled() {
            rt.set_tracer(tracer.clone());
        }
        // Flight recorder: the engine commits one frame per fault-tolerant
        // round report; a distress trigger freezes the ring into a dump.
        let recorder = self.cfg.trace.recorder();
        let mut committed_rounds = 0usize;
        // Exposition endpoint: alive exactly for the duration of the run;
        // dropping the handle at the end of this function stops the
        // listener thread.
        let _expo = match self.cfg.trace.expo_config() {
            Some(expo_cfg) => Some(
                ff_trace::ExpoServer::start(tracer.clone(), expo_cfg).map_err(|e| {
                    EngineError::InvalidData(format!("exposition endpoint failed to bind: {e}"))
                })?,
            ),
            None => None,
        };
        // Checkpoint sink: `None` when disabled — that path allocates
        // nothing and writes nothing. On resume, open the existing log and
        // extract the replay; a fresh run truncates any stale log.
        let (mut ckpt, replay): (Option<CkptSink>, Option<Replay>) = match &self.cfg.checkpoint {
            Some(ck) => {
                let config_fp = config_fingerprint(&self.cfg);
                let n_clients = rt.n_clients() as u32;
                if resuming {
                    let (sink, replay) =
                        CkptSink::resume(ck, self.cfg.seed, config_fp, n_clients, tracer.clone())?;
                    (Some(sink), replay)
                } else {
                    let sink =
                        CkptSink::create(ck, self.cfg.seed, config_fp, n_clients, tracer.clone())?;
                    (Some(sink), None)
                }
            }
            None => (None, None),
        };
        if let Some(rep) = &replay {
            if tracer.is_enabled() {
                tracer.counter_add("ckpt.recoveries", 1);
            }
            recorder.commit_with(|| ff_trace::RoundFrame {
                round: 0,
                phase: "recovery",
                cohort: rt.n_clients() as u64,
                admitted: 0,
                accepted: 0,
                probes: 0,
                rejected: Vec::new(),
                dropouts: Vec::new(),
                quarantined: Vec::new(),
                loss: None,
                quorum_met: true,
                non_finite: false,
                counters: vec![
                    ("replayed_trials", rep.trials.len() as u64),
                    ("replayed_phases", rep.phases.len() as u64),
                ],
            });
        }
        let mut replay_phase_cursor = 0usize;
        let run_span = tracer.span("run");
        let mut phase_bytes = Vec::new();
        let mut phase_mark = rt.log().byte_totals();
        let mut end_phase = |name: &'static str, rt: &FederatedRuntime| {
            let now = rt.log().byte_totals();
            let entry = PhaseBytes {
                phase: name,
                to_clients: now.0 - phase_mark.0,
                to_server: now.1 - phase_mark.1,
            };
            phase_mark = now;
            entry
        };
        let policy = &self.cfg.round_policy;
        let mut rounds: Vec<RoundReport> = Vec::new();
        // Phase I–II: meta-features → aggregation → recommendation. An
        // explicit portfolio bypasses the meta-model entirely (ablations,
        // registry extensions the meta-model was not trained on).
        let phase_span = tracer.span("phase.meta_features");
        let par = self.cfg.par;
        let (global, max_len) = collect_global_meta_tolerant(rt, par, policy, &mut rounds)?;
        let recommended: Vec<AlgorithmKind> = if let Some(portfolio) = &self.cfg.portfolio {
            if portfolio.is_empty() {
                return Err(EngineError::InvalidData("empty portfolio override".into()));
            }
            portfolio.clone()
        } else if self.cfg.disable_warm_start {
            AlgorithmKind::all()
        } else {
            self.meta
                .recommend(global.values(), self.cfg.top_k)
                .map_err(EngineError::Model)?
        };
        // Phase III prep: feature engineering with globally agreed params.
        let spec = if self.cfg.disable_feature_engineering {
            GlobalFeatureSpec::lags_only(derive_lag_count(&global, self.cfg.max_lags))
        } else {
            let periods = federated_seasonal_periods_tolerant(
                rt,
                par,
                max_len,
                self.cfg.max_seasonal_components,
                policy,
                &mut rounds,
            )?;
            GlobalFeatureSpec {
                lags: (1..=derive_lag_count(&global, self.cfg.max_lags)).collect(),
                seasonal_periods: periods,
                use_trend: true,
                use_time: true,
            }
        };
        phase_bytes.push(end_phase("meta_features", rt));
        commit_round_frames(&recorder, &rounds, &mut committed_rounds);
        checkpoint_phase(&mut ckpt, &replay, &mut replay_phase_cursor, 0, &rounds)?;
        drop(phase_span);
        let phase_span = tracer.span("phase.feature_engineering");
        let kept = run_feature_engineering_tolerant(
            rt,
            par,
            &spec,
            self.cfg.importance_threshold,
            policy,
            &mut rounds,
        )?;
        // The serving-layer lag recipe: lag columns lead the engineered
        // schema, so when every surviving column is a raw lag the flat
        // (blob-v2) members can be re-fed from series history alone.
        // Any surviving trend/time/seasonal column makes the recipe
        // non-representable; export an empty recipe and let the serving
        // layer refuse flat members with a typed error instead.
        let feature_lags: Vec<usize> = if kept.iter().all(|&j| j < spec.lags.len()) {
            kept.iter().map(|&j| spec.lags[j]).collect()
        } else {
            vec![]
        };
        phase_bytes.push(end_phase("feature_engineering", rt));
        commit_round_frames(&recorder, &rounds, &mut committed_rounds);
        checkpoint_phase(&mut ckpt, &replay, &mut replay_phase_cursor, 1, &rounds)?;
        drop(phase_span);

        // Phase III: Bayesian optimization with warm start. The budget T
        // covers the tuning loop (§5.1: "time budget ... for the
        // hyperparameter tuning"); at least one configuration is always
        // evaluated so a result exists even under a degenerate budget.
        // A trial whose round misses its quorum is abandoned — it consumes
        // budget but tells the optimizer nothing — and the run continues.
        let phase_span = tracer.span("phase.optimization");
        // The search space is flat (algorithms only) or composed (pipeline
        // structure × node params × algorithm × algorithm params, with
        // branch dimensions conditionally masked for the surrogate).
        let (space, warm) = match &self.cfg.pipelines {
            Some(pipes) => (
                pipeline_space(&recommended, pipes),
                warm_start_pipeline_configs(&recommended, pipes),
            ),
            None => (table2_space(&recommended), warm_start_configs(&recommended)),
        };
        let mut bo = BayesOpt::new(space, self.cfg.seed).map_err(EngineError::Optimizer)?;
        bo.set_tracer(tracer.clone());
        bo.warm_start(warm);
        let mut loss_history = Vec::new();
        let mut failed_trials = 0usize;
        let mut trial_index = 0u32;
        // Replay recorded trials without any federated round: `ask`
        // regenerates each configuration deterministically (the optimizer's
        // RNG advances only inside `ask`), the recorded fingerprint verifies
        // the match, and `tell` rebuilds the surrogate's observation set.
        if let Some(rep) = &replay {
            for trial in &rep.trials {
                trial_index += 1;
                let config = bo.ask().map_err(EngineError::Optimizer)?;
                let fp = trial_config_fingerprint(&config);
                if fp != trial.config_fp {
                    return Err(EngineError::Checkpoint(CkptError::Corrupt(format!(
                        "replayed trial {trial_index} regenerated a different configuration \
                         ({fp:#018x} vs recorded {:#018x}); the checkpoint belongs to a \
                         different run or optimizer version",
                        trial.config_fp
                    ))));
                }
                match trial.loss {
                    Some(loss) => {
                        bo.tell(&config, loss).map_err(EngineError::Optimizer)?;
                        loss_history.push(loss);
                    }
                    None => failed_trials += 1,
                }
                rounds.extend(trial.reports.iter().cloned());
                commit_round_frames(&recorder, &rounds, &mut committed_rounds);
            }
            // Server-side counters the replay cannot recompute restore from
            // the resume point's snapshot. The re-executed setup phases
            // produced byte-for-byte identical traffic, so overwriting the
            // log totals with the recorded post-trial totals keeps the
            // phase accounting exact.
            if let Some(snap) = &rep.snapshot {
                rt.restore_health(&snap.health)?;
                rt.log().restore_totals(&snap.log);
                robust
                    .guard
                    .restore_history(&snap.guard_norms, &snap.guard_losses);
                failed_trials = snap.failed_trials as usize;
            }
        }
        let mut tracker = match replay.as_ref().and_then(|r| r.snapshot.as_ref()) {
            Some(snap) => BudgetTracker::resume(
                self.cfg.budget,
                Duration::from_micros(snap.consumed_us),
                snap.iterations as usize,
            ),
            None => BudgetTracker::start(self.cfg.budget),
        };
        if tracer.is_enabled() {
            tracer.gauge_set("engine.budget_remaining", tracker.remaining_fraction());
        }
        while tracker.iterations() == 0 || !tracker.exhausted() {
            let trial_span = tracer.span_labeled("trial", tracker.iterations() as u64 + 1);
            let config = bo.ask().map_err(EngineError::Optimizer)?;
            let round_mark = rounds.len();
            trial_index += 1;
            let trial_loss = match evaluate_config_tolerant(
                rt,
                par,
                &config,
                policy,
                &mut rounds,
                &mut robust,
            ) {
                Ok(loss) => {
                    bo.tell(&config, loss).map_err(EngineError::Optimizer)?;
                    loss_history.push(loss);
                    Some(loss)
                }
                Err(EngineError::Federation(FlError::Quorum { .. })) => {
                    failed_trials += 1;
                    None
                }
                Err(e) => return Err(e),
            };
            commit_round_frames(&recorder, &rounds, &mut committed_rounds);
            tracker.record_iteration();
            // One atomic commit point per trial: config fingerprint, loss,
            // the trial's round reports, and the post-trial runtime
            // snapshot land in a single durable record, so there is never
            // torn state between the BO tell and the server counters.
            if let Some(sink) = ckpt.as_mut() {
                let snapshot = RuntimeSnapshot::capture(rt, &robust.guard, failed_trials, &tracker);
                sink.append(&Record::TrialDone {
                    index: trial_index,
                    config_fp: trial_config_fingerprint(&config),
                    loss: trial_loss,
                    reports: rounds[round_mark..].to_vec(),
                    snapshot: Some(snapshot),
                })?;
                // Engine-level injection: die right after the commit became
                // durable, the worst case for double-execution bugs.
                if let Some(CrashPoint::AfterTrial(n)) = sink.crash_point() {
                    if n == trial_index {
                        return Err(EngineError::Checkpoint(CkptError::Crash(
                            CrashPoint::AfterTrial(n),
                        )));
                    }
                }
            }
            drop(trial_span);
            if tracer.is_enabled() {
                tracer.gauge_set("engine.budget_remaining", tracker.remaining_fraction());
            }
        }
        let (best_config, best_valid_loss) = bo
            .best()
            .map(|(c, l)| (c.clone(), l))
            .ok_or_else(|| EngineError::InvalidData("no configuration evaluated".into()))?;
        phase_bytes.push(end_phase("optimization", rt));
        drop(phase_span);

        // Phase IV: final fit, aggregation, test evaluation.
        let phase_span = tracer.span("phase.finalization");
        let FinalizeOutcome {
            global_model,
            test_mse,
            members: ensemble_members,
        } = finalize_with_tolerant(
            rt,
            par,
            &best_config,
            self.cfg.tree_aggregation,
            policy,
            &mut rounds,
            &mut robust,
            ckpt.as_mut(),
        )?;
        phase_bytes.push(end_phase("finalization", rt));
        commit_round_frames(&recorder, &rounds, &mut committed_rounds);
        drop(phase_span);
        drop(run_span);
        let (bytes_to_clients, bytes_to_server) = rt.log().byte_totals();
        let health = rt.health_report();
        if tracer.is_enabled() {
            let par_now = ff_par::stats();
            tracer.gauge_set("par.workers", par.resolve() as f64);
            tracer.counter_add("par.tasks", par_now.tasks.saturating_sub(par_before.tasks));
            tracer.counter_add(
                "par.steal_idle_ms",
                par_now.idle_us.saturating_sub(par_before.idle_us) / 1000,
            );
            tracer.gauge_set("par.queue_depth", par_now.queue_depth as f64);
            tracer.gauge_set("par.queue_peak", par_now.queue_peak as f64);
            // Per-worker task deltas over the run: the pool-balance line
            // in the summary and the profiler's imbalance view read the
            // merged histogram; per-worker labels keep the breakdown.
            let workers_now = ff_par::worker_loads();
            for (w, &now) in workers_now.iter().enumerate() {
                let before = workers_before.get(w).copied().unwrap_or(0);
                let delta = now.saturating_sub(before);
                if delta > 0 {
                    tracer.record_labeled("par.worker_tasks", w as u64, delta as f64);
                }
            }
        }
        let telemetry = tracer.is_enabled().then(|| {
            build_telemetry(
                &tracer,
                rt,
                &health,
                &recorder,
                self.cfg.trace.profile_enabled(),
            )
        });
        let result = RunResult {
            best_algorithm: global_model.algorithm(),
            best_pipeline: pipeline_of(&best_config).map(|p| p.name().to_string()),
            best_config,
            best_valid_loss,
            test_mse,
            global_model,
            evaluations: tracker.iterations(),
            loss_history,
            recommended,
            elapsed: tracker.elapsed(),
            bytes_to_clients,
            bytes_to_server,
            phase_bytes,
            rounds,
            failed_trials,
            health,
            telemetry,
            ensemble_members,
            feature_lags,
        };
        if let Some(sink) = ckpt.as_mut() {
            sink.append(&Record::RunDone {
                result_fp: run_fingerprint(&result),
            })?;
        }
        Ok(result)
    }
}

/// Commits (or, on resume, verifies) one setup phase. The resumed run
/// re-executes the phase live — client-side feature state cannot be
/// restored from the server — and the fingerprint over the accumulated
/// round reports proves the re-execution reproduced the recorded one.
///
/// With checkpointing disabled this is a branch and a return: no
/// fingerprint is computed, nothing allocates (asserted by the
/// `ckpt_no_alloc` integration test, which is why this is `pub`).
#[doc(hidden)]
pub fn checkpoint_phase(
    ckpt: &mut Option<CkptSink>,
    replay: &Option<Replay>,
    cursor: &mut usize,
    phase: u8,
    rounds: &[RoundReport],
) -> Result<()> {
    if ckpt.is_none() && replay.is_none() {
        return Ok(());
    }
    let fp = reports_fingerprint(rounds);
    if let Some(rep) = replay {
        if let Some(&(rec_phase, rec_fp)) = rep.phases.get(*cursor) {
            *cursor += 1;
            if rec_phase != phase || rec_fp != fp {
                return Err(EngineError::Checkpoint(CkptError::Corrupt(format!(
                    "re-executed setup phase {phase} diverged from the recorded run \
                     ({fp:#018x} vs recorded {rec_fp:#018x} for phase {rec_phase}); \
                     the federation's data changed since the crash"
                ))));
            }
            return Ok(()); // already durable in the log
        }
    }
    if let Some(sink) = ckpt {
        sink.append(&Record::PhaseDone { phase, fp })?;
    }
    Ok(())
}

/// Maps one fault-tolerant round report to a flight-recorder frame. The
/// frame deliberately carries no wall-clock data so forensic dumps are
/// bit-identical across thread counts and reruns.
fn round_frame(r: &RoundReport) -> ff_trace::RoundFrame {
    ff_trace::RoundFrame {
        round: r.round,
        phase: r.phase,
        cohort: r.participants as u64,
        admitted: r.participants as u64,
        accepted: r.usable as u64,
        probes: 0,
        rejected: r
            .rejected
            .iter()
            .map(|(id, why)| (*id as u64, why.clone()))
            .chain(
                r.non_finite
                    .iter()
                    .map(|id| (*id as u64, "non-finite loss".to_string())),
            )
            .collect(),
        dropouts: r
            .dropouts
            .iter()
            .map(|(id, why)| (*id as u64, why.clone()))
            .chain(
                r.app_errors
                    .iter()
                    .map(|(id, e)| (*id as u64, format!("app error: {e}"))),
            )
            .collect(),
        quarantined: Vec::new(),
        loss: None,
        quorum_met: r.quorum_met,
        non_finite: !r.non_finite.is_empty(),
        counters: vec![("responses", r.responses as u64)],
    }
}

/// Commits every round report past the cursor to the flight recorder.
/// A disabled recorder costs one branch — the frame builder never runs.
fn commit_round_frames(
    recorder: &ff_trace::FlightRecorder,
    rounds: &[RoundReport],
    committed: &mut usize,
) {
    if !recorder.is_enabled() {
        *committed = rounds.len();
        return;
    }
    while *committed < rounds.len() {
        let r = &rounds[*committed];
        *committed += 1;
        recorder.commit_with(|| round_frame(r));
    }
}

/// Assembles the per-client comms table from the message log's exact
/// totals and the health registry, then snapshots the tracer (plus the
/// opt-in profile and flight-recorder contents).
fn build_telemetry(
    tracer: &ff_trace::Tracer,
    rt: &FederatedRuntime,
    health: &HealthReport,
    recorder: &ff_trace::FlightRecorder,
    profile: bool,
) -> RunTelemetry {
    let clients = rt
        .log()
        .client_totals()
        .into_iter()
        .map(|(id, comms)| {
            let snap = health.clients.iter().find(|c| c.client_id == id);
            ClientCommsRow {
                client_id: id as u64,
                bytes_to_client: comms.bytes_to_client as u64,
                bytes_to_server: comms.bytes_to_server as u64,
                messages: comms.messages as u64,
                dropouts: snap.map(|c| c.failures).unwrap_or(0),
                state: snap
                    .map(|c| format!("{:?}", c.state).to_lowercase())
                    .unwrap_or_else(|| "unknown".into()),
            }
        })
        .collect();
    let trace = tracer.snapshot();
    let profile = profile.then(|| ff_trace::Profile::build(&trace));
    RunTelemetry {
        trace,
        clients,
        profile,
        recorder_frames: recorder.frames(),
        recorder_dumps: recorder.dumps(),
    }
}

/// Spawns a runtime from pre-built clients (e.g. clients carrying
/// exogenous covariates via
/// [`FedForecasterClient::with_exogenous`]); pair with
/// [`FedForecaster::run_on`].
///
/// Engine runtimes default to [`Retention::Counting`]: a tuning run ships
/// megabytes of model blobs per round, so retaining every payload forever
/// (the old behavior) grows without bound. Byte totals stay exact; tests
/// that must scan all traffic (the privacy leak check) opt back into
/// [`Retention::Full`] via [`ff_fl::log::MessageLog::set_retention`].
pub fn build_runtime_from(clients: Vec<FedForecasterClient>) -> FederatedRuntime {
    let boxed: Vec<Box<dyn FlClient>> = clients
        .into_iter()
        .map(|c| Box::new(c) as Box<dyn FlClient>)
        .collect();
    let rt = FederatedRuntime::new(boxed);
    rt.log().set_retention(Retention::counting_default());
    rt
}

/// Spawns the federated runtime with one [`FedForecasterClient`] per series.
pub fn build_runtime(clients: &[TimeSeries], cfg: &EngineConfig) -> Result<FederatedRuntime> {
    if clients.is_empty() {
        return Err(EngineError::InvalidData("no clients".into()));
    }
    if let Some(short) = clients.iter().find(|c| c.len() < 30) {
        return Err(EngineError::InvalidData(format!(
            "client split too short: {} points",
            short.len()
        )));
    }
    let boxed: Vec<Box<dyn FlClient>> = clients
        .iter()
        .map(|s| {
            Box::new(FedForecasterClient::new(
                s,
                cfg.valid_fraction,
                cfg.test_fraction,
            )) as Box<dyn FlClient>
        })
        .collect();
    let rt = FederatedRuntime::new(boxed);
    // Bounded payload retention; see `build_runtime_from`.
    rt.log().set_retention(Retention::counting_default());
    Ok(rt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use ff_metalearn::kb::KnowledgeBase;
    use ff_metalearn::metamodel::MetaClassifierKind;
    use ff_metalearn::synth::synthetic_kb;
    use ff_timeseries::synthesis::{generate, SeasonSpec, SynthesisSpec, TrendSpec};

    fn tiny_metamodel() -> MetaModel {
        let kb = KnowledgeBase::build(&synthetic_kb(8), &[2], 50);
        MetaModel::train(&kb, MetaClassifierKind::RandomForest, 0).unwrap()
    }

    fn federation() -> Vec<TimeSeries> {
        let s = generate(
            &SynthesisSpec {
                n: 800,
                trend: TrendSpec::Linear(0.01),
                seasons: vec![SeasonSpec {
                    period: 12.0,
                    amplitude: 2.0,
                }],
                snr: Some(20.0),
                ..Default::default()
            },
            9,
        );
        s.split_clients(3)
    }

    #[test]
    fn full_pipeline_produces_finite_result() {
        let cfg = EngineConfig {
            budget: Budget::Iterations(6),
            ..Default::default()
        };
        let meta = tiny_metamodel();
        let engine = FedForecaster::new(cfg, &meta);
        let result = engine.run(&federation()).unwrap();
        assert!(result.best_valid_loss.is_finite());
        assert!(result.test_mse.is_finite());
        assert_eq!(result.evaluations, 6);
        assert_eq!(result.loss_history.len(), 6);
        assert!(!result.recommended.is_empty());
        assert!(result.bytes_to_server > 0);
    }

    #[test]
    fn engine_beats_mean_predictor() {
        let cfg = EngineConfig {
            budget: Budget::Iterations(8),
            ..Default::default()
        };
        let meta = tiny_metamodel();
        let engine = FedForecaster::new(cfg, &meta);
        let clients = federation();
        let result = engine.run(&clients).unwrap();
        // Mean-forecast baseline on the same test region.
        let mut baseline = 0.0;
        let mut total = 0usize;
        for c in &clients {
            let n = c.len();
            let test_start = (n as f64 * 0.85).round() as usize;
            let train: Vec<f64> = c.values()[..test_start].to_vec();
            let mean = ff_linalg::vector::mean(&train);
            for &v in &c.values()[test_start..] {
                baseline += (v - mean) * (v - mean);
                total += 1;
            }
        }
        baseline /= total as f64;
        assert!(
            result.test_mse < baseline,
            "engine {} vs mean baseline {}",
            result.test_mse,
            baseline
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = EngineConfig {
            budget: Budget::Iterations(4),
            seed: 123,
            ..Default::default()
        };
        let meta = tiny_metamodel();
        let a = FedForecaster::new(cfg.clone(), &meta)
            .run(&federation())
            .unwrap();
        let b = FedForecaster::new(cfg, &meta).run(&federation()).unwrap();
        assert_eq!(a.best_algorithm, b.best_algorithm);
        assert_eq!(a.loss_history, b.loss_history);
        assert!((a.test_mse - b.test_mse).abs() < 1e-12);
    }

    #[test]
    fn ablations_run() {
        let cfg = EngineConfig {
            budget: Budget::Iterations(3),
            disable_feature_engineering: true,
            disable_warm_start: true,
            ..Default::default()
        };
        let meta = tiny_metamodel();
        let result = FedForecaster::new(cfg, &meta).run(&federation()).unwrap();
        assert!(result.test_mse.is_finite());
        assert_eq!(result.recommended.len(), AlgorithmKind::all().len());
    }

    #[test]
    fn portfolio_override_restricts_search() {
        let cfg = EngineConfig {
            budget: Budget::Iterations(2),
            portfolio: Some(vec![AlgorithmKind::LASSO]),
            ..Default::default()
        };
        let meta = tiny_metamodel();
        let result = FedForecaster::new(cfg, &meta).run(&federation()).unwrap();
        assert_eq!(result.recommended, vec![AlgorithmKind::LASSO]);
        assert_eq!(result.best_algorithm, AlgorithmKind::LASSO);
        // An empty portfolio is a configuration error, not a silent no-op.
        let bad = EngineConfig {
            portfolio: Some(vec![]),
            ..Default::default()
        };
        assert!(FedForecaster::new(bad, &meta).run(&federation()).is_err());
    }

    #[test]
    fn empty_federation_rejected() {
        let meta = tiny_metamodel();
        let engine = FedForecaster::new(EngineConfig::default(), &meta);
        assert!(engine.run(&[]).is_err());
    }

    #[test]
    fn short_client_rejected() {
        let tiny = TimeSeries::with_regular_index(0, 60, vec![1.0; 10]);
        let meta = tiny_metamodel();
        let engine = FedForecaster::new(EngineConfig::default(), &meta);
        assert!(engine.run(&[tiny]).is_err());
    }

    #[test]
    fn phase_byte_accounting_sums_to_totals() {
        let cfg = EngineConfig {
            budget: Budget::Iterations(3),
            ..Default::default()
        };
        let meta = tiny_metamodel();
        let result = FedForecaster::new(cfg, &meta).run(&federation()).unwrap();
        assert_eq!(result.phase_bytes.len(), 4);
        let down: usize = result.phase_bytes.iter().map(|p| p.to_clients).sum();
        let up: usize = result.phase_bytes.iter().map(|p| p.to_server).sum();
        assert_eq!(down, result.bytes_to_clients);
        assert_eq!(up, result.bytes_to_server);
        // Every phase actually communicates.
        for p in &result.phase_bytes {
            assert!(p.to_clients > 0, "{} sent nothing down", p.phase);
            assert!(p.to_server > 0, "{} sent nothing up", p.phase);
        }
        // Optimization dominates downstream traffic relative to the
        // meta-feature phase only when budgets are large; just check order
        // of phases is stable.
        assert_eq!(result.phase_bytes[0].phase, "meta_features");
        assert_eq!(result.phase_bytes[3].phase, "finalization");
    }

    #[test]
    fn forced_xgb_finalize_builds_ensemble_union() {
        use ff_bayesopt::space::{Configuration, ParamValue};
        let clients = federation();
        let cfg = EngineConfig::default();
        let rt = build_runtime(&clients, &cfg).unwrap();
        let spec = GlobalFeatureSpec::lags_only(4);
        run_feature_engineering(&rt, &spec, 0.95).unwrap();
        let mut config = Configuration::new();
        config.insert("algorithm".into(), ParamValue::Cat("XGBRegressor".into()));
        let (model, mse) = finalize(&rt, &config).unwrap();
        assert!(mse.is_finite());
        match model {
            GlobalModel::Ensemble { algorithm, members } => {
                assert_eq!(algorithm, AlgorithmKind::XGB_REGRESSOR);
                assert_eq!(members, clients.len());
            }
            other => panic!("expected ensemble union, got {other:?}"),
        }
        // PerClient mode still works on the same runtime.
        let (model, mse2) =
            finalize_with(&rt, &config, crate::config::TreeAggregation::PerClient).unwrap();
        assert!(matches!(model, GlobalModel::PerClient { .. }));
        assert!(mse2.is_finite());
    }

    #[test]
    fn auto_aggregation_avoids_biased_union_on_trending_non_iid_data() {
        use ff_bayesopt::space::{Configuration, ParamValue};
        // A strong trend split by time ⇒ clients live at disjoint levels;
        // the tree union cannot extrapolate and must be rejected by the
        // validation comparison.
        let series = generate(
            &SynthesisSpec {
                n: 800,
                trend: TrendSpec::Linear(0.2),
                snr: Some(50.0),
                ..Default::default()
            },
            77,
        );
        let clients = series.split_clients(4);
        let cfg = EngineConfig::default();
        let rt = build_runtime(&clients, &cfg).unwrap();
        run_feature_engineering(&rt, &GlobalFeatureSpec::lags_only(4), 0.95).unwrap();
        let mut config = Configuration::new();
        config.insert("algorithm".into(), ParamValue::Cat("XGBRegressor".into()));
        let (model, auto_mse) =
            finalize_with(&rt, &config, crate::config::TreeAggregation::Auto).unwrap();
        assert!(
            matches!(model, GlobalModel::PerClient { .. }),
            "auto mode should reject the biased union, got {model:?}"
        );
        // And the auto choice should not be worse than the forced union.
        let (_, union_mse) =
            finalize_with(&rt, &config, crate::config::TreeAggregation::EnsembleUnion).unwrap();
        assert!(
            auto_mse <= union_mse * 1.01,
            "auto {auto_mse} vs forced union {union_mse}"
        );
    }

    #[test]
    fn lag_count_derivation_is_clamped() {
        let clients = federation();
        let cfg = EngineConfig::default();
        let rt = build_runtime(&clients, &cfg).unwrap();
        let (global, max_len) = collect_global_meta(&rt).unwrap();
        let lags = derive_lag_count(&global, 10);
        assert!((3..=10).contains(&lags));
        assert!(max_len > 0);
    }
}
