//! Phase III trial evaluation: one federated fit-and-validate round per
//! candidate configuration, aggregated by Equation 1.

use super::rounds::{quorum_unmet, tolerant_round};
use crate::client::OP;
use crate::report::RoundReport;
use crate::search_space::config_to_map;
use crate::{EngineError, Result};
use ff_bayesopt::space::Configuration;
use ff_fl::config::ConfigMapExt;
use ff_fl::message::{Instruction, Reply};
use ff_fl::runtime::{FederatedRuntime, RoundPolicy};
use ff_fl::strategy::aggregate_loss;

/// Evaluates one configuration across the federation: clients fit locally
/// and report validation losses; the server aggregates via Equation 1.
pub fn evaluate_config(rt: &FederatedRuntime, config: &Configuration) -> Result<f64> {
    let replies = rt.broadcast_all(&Instruction::Fit {
        params: vec![],
        config: config_to_map(config).with_str(OP, "fit_eval"),
    })?;
    let mut losses = Vec::new();
    for (_, r) in &replies {
        match r {
            Reply::FitRes {
                num_examples,
                metrics,
                ..
            } => {
                let loss = metrics.float_or("valid_loss", f64::INFINITY);
                losses.push((if loss.is_finite() { loss } else { 1e30 }, *num_examples));
            }
            other => {
                return Err(EngineError::InvalidData(format!(
                    "unexpected reply {other:?}"
                )))
            }
        }
    }
    aggregate_loss(&losses).map_err(EngineError::Federation)
}

/// Fault-tolerant [`evaluate_config`]: the global loss is aggregated over
/// the responsive clients with finite validation losses; non-finite losses
/// and application errors are per-round dropouts. Fails with
/// [`ff_fl::FlError::Quorum`] — which the engine treats as a failed
/// *trial*, not a failed run — when fewer than `min_responses` usable
/// losses remain.
pub fn evaluate_config_tolerant(
    rt: &FederatedRuntime,
    config: &Configuration,
    policy: &RoundPolicy,
    rounds: &mut Vec<RoundReport>,
) -> Result<f64> {
    let ins = Instruction::Fit {
        params: vec![],
        config: config_to_map(config).with_str(OP, "fit_eval"),
    };
    let (outcome, idx) = tolerant_round(rt, "optimization", &ins, policy, rounds)?;
    let mut losses = Vec::new();
    for (id, r) in &outcome.replies {
        match r {
            Reply::FitRes {
                num_examples,
                metrics,
                ..
            } => {
                if let Some(err) = metrics.get("error").and_then(|v| v.as_str()) {
                    rounds[idx].app_errors.push((*id, err.to_string()));
                    continue;
                }
                let loss = metrics.float_or("valid_loss", f64::NAN);
                if loss.is_finite() {
                    losses.push((loss, *num_examples));
                } else {
                    rounds[idx].non_finite.push(*id);
                }
            }
            Reply::Error(e) => rounds[idx].app_errors.push((*id, e.clone())),
            other => rounds[idx]
                .app_errors
                .push((*id, format!("unexpected reply {other:?}"))),
        }
    }
    rounds[idx].usable = losses.len();
    let required = policy.min_responses.max(1);
    if losses.len() < required {
        return Err(quorum_unmet(rounds, idx, losses.len(), required));
    }
    aggregate_loss(&losses).map_err(EngineError::Federation)
}
