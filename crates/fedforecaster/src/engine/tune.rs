//! Phase III trial evaluation: one federated fit-and-validate round per
//! candidate configuration, aggregated by Equation 1.
//!
//! Candidates from the composed pipeline space need no special handling
//! here: the `pipeline` selector and node hyperparameters travel inside
//! the same wire `ConfigMap` as the algorithm dimensions, and the client
//! dispatches on their presence (see
//! [`crate::search_space::pipeline_space`]).

use super::rounds::{quorum_unmet, record_screen, tolerant_round, RobustCtx};
use crate::client::OP;
use crate::report::RoundReport;
use crate::search_space::config_to_map;
use crate::{EngineError, Result};
use ff_bayesopt::space::Configuration;
use ff_fl::config::ConfigMapExt;
use ff_fl::message::{Instruction, Reply};
use ff_fl::runtime::{FederatedRuntime, RoundPolicy};
use ff_fl::strategy::aggregate_loss;

/// Evaluates one configuration across the federation: clients fit locally
/// and report validation losses; the server aggregates via Equation 1.
pub fn evaluate_config(rt: &FederatedRuntime, config: &Configuration) -> Result<f64> {
    let replies = rt.broadcast_all(&Instruction::Fit {
        params: vec![],
        config: config_to_map(config).with_str(OP, "fit_eval"),
    })?;
    let mut losses = Vec::new();
    for (_, r) in &replies {
        match r {
            Reply::FitRes {
                num_examples,
                metrics,
                ..
            } => {
                let loss = metrics.float_or("valid_loss", f64::INFINITY);
                losses.push((if loss.is_finite() { loss } else { 1e30 }, *num_examples));
            }
            other => {
                return Err(EngineError::InvalidData(format!(
                    "unexpected reply {other:?}"
                )))
            }
        }
    }
    aggregate_loss(&losses).map_err(EngineError::Federation)
}

/// Fault-tolerant [`evaluate_config`]: the global loss is aggregated over
/// the responsive clients with finite validation losses; non-finite losses
/// and application errors are per-round dropouts. Fails with
/// [`ff_fl::FlError::Quorum`] — which the engine treats as a failed
/// *trial*, not a failed run — when fewer than `min_responses` usable
/// losses remain.
pub fn evaluate_config_tolerant(
    rt: &FederatedRuntime,
    par: ff_par::ParConfig,
    config: &Configuration,
    policy: &RoundPolicy,
    rounds: &mut Vec<RoundReport>,
    ctx: &mut RobustCtx,
) -> Result<f64> {
    par.scope(|| evaluate_config_tolerant_inner(rt, config, policy, rounds, ctx))
}

fn evaluate_config_tolerant_inner(
    rt: &FederatedRuntime,
    config: &Configuration,
    policy: &RoundPolicy,
    rounds: &mut Vec<RoundReport>,
    ctx: &mut RobustCtx,
) -> Result<f64> {
    let ins = Instruction::Fit {
        params: vec![],
        config: config_to_map(config).with_str(OP, "fit_eval"),
    };
    let (outcome, idx) = tolerant_round(rt, "optimization", &ins, policy, rounds)?;
    // `candidates` keeps client ids and non-finite losses so the robust
    // path can screen them; the legacy path filters exactly as before.
    let mut candidates: Vec<(usize, f64, u64)> = Vec::new();
    for (id, r) in &outcome.replies {
        match r {
            Reply::FitRes {
                num_examples,
                metrics,
                ..
            } => {
                if let Some(err) = metrics.get("error").and_then(|v| v.as_str()) {
                    rounds[idx].app_errors.push((*id, err.to_string()));
                    continue;
                }
                candidates.push((*id, metrics.float_or("valid_loss", f64::NAN), *num_examples));
            }
            Reply::Error(e) => rounds[idx].app_errors.push((*id, e.clone())),
            other => rounds[idx]
                .app_errors
                .push((*id, format!("unexpected reply {other:?}"))),
        }
    }
    let losses: Vec<(f64, u64)> = if ctx.is_robust() {
        // Robust path: every candidate — non-finite included — goes
        // through the guard, whose verdicts feed the health registry.
        let screened = ctx.guard.screen_losses(candidates);
        let accepted_ids: Vec<usize> = screened.accepted.iter().map(|(id, _, _)| *id).collect();
        record_screen(rt, rounds, idx, &accepted_ids, &screened.rejected);
        screened
            .accepted
            .into_iter()
            .map(|(_, loss, n)| (loss, n))
            .collect()
    } else {
        // Legacy path: non-finite losses are excluded, not escalated.
        let mut losses = Vec::new();
        for (id, loss, n) in candidates {
            if loss.is_finite() {
                losses.push((loss, n));
            } else {
                rounds[idx].non_finite.push(id);
            }
        }
        losses
    };
    rounds[idx].usable = losses.len();
    let required = policy.min_responses.max(1);
    if losses.len() < required {
        return Err(quorum_unmet(rounds, idx, losses.len(), required));
    }
    if ctx.is_robust() {
        ctx.strategy
            .aggregate_loss(&losses)
            .map_err(EngineError::Federation)
    } else {
        aggregate_loss(&losses).map_err(EngineError::Federation)
    }
}
