//! Phases I–III prep: meta-feature collection and aggregation, the
//! federated weighted periodogram, lag-count agreement, and federated
//! feature engineering (§4.2).
//!
//! The recommendation feeds both search flavors: it is the whole space
//! for the flat Table 2 search, and the algorithm axis of the composed
//! pipeline space (`EngineConfig::pipelines`).

use super::rounds::{quorum_unmet, tolerant_round};
use crate::client::OP;
use crate::feature_engineering::{select_features, GlobalFeatureSpec};
use crate::{EngineError, Result};
use ff_fl::config::{ConfigMap, ConfigMapExt};
use ff_fl::message::{Instruction, Reply};
use ff_fl::runtime::{FederatedRuntime, RoundPolicy};
use ff_metalearn::aggregate::GlobalMetaFeatures;
use ff_metalearn::features::ClientMetaFeatures;
use ff_timeseries::periodogram;

/// Phase I: collect per-client meta-features and aggregate them.
/// Returns the global vector and the longest client length.
pub fn collect_global_meta(rt: &FederatedRuntime) -> Result<(GlobalMetaFeatures, usize)> {
    let props = rt.collect_properties(&ConfigMap::new().with_str(OP, "meta_features"))?;
    let mut metas = Vec::with_capacity(props.len());
    let mut max_len = 0usize;
    for p in &props {
        let raw = p
            .get("meta_features")
            .and_then(|v| v.as_float_vec())
            .ok_or_else(|| EngineError::InvalidData("client sent no meta-features".into()))?;
        let mf = ClientMetaFeatures::from_vec(raw)
            .ok_or_else(|| EngineError::InvalidData("malformed meta-features".into()))?;
        max_len = max_len.max(p.int_or("n_total", 0) as usize);
        metas.push(mf);
    }
    Ok((GlobalMetaFeatures::aggregate(&metas), max_len))
}

/// §4.2.1(4): the federated weighted periodogram. Clients return spectral
/// summaries on a shared log-period grid; the server weights them by client
/// size and picks the top-N peaks.
pub fn federated_seasonal_periods(
    rt: &FederatedRuntime,
    max_len: usize,
    max_components: usize,
) -> Result<Vec<f64>> {
    if max_len < 16 {
        return Ok(vec![]);
    }
    let grid = periodogram::log_period_grid(max_len as f64 / 2.0);
    let props = rt.collect_properties(
        &ConfigMap::new()
            .with_str(OP, "spectrum")
            .with_floats("grid_periods", grid.clone()),
    )?;
    // Weights: client sizes from a second look at n_total would cost a
    // round; reuse uniform weighting over returned spectra and rely on the
    // per-spectrum normalization (each client's spectrum sums to 1).
    let specs: Vec<&[f64]> = props
        .iter()
        .filter_map(|p| p.get("spectrum").and_then(|v| v.as_float_vec()))
        .filter(|spec| spec.len() == grid.len())
        .collect();
    if specs.is_empty() {
        return Ok(vec![]);
    }
    let agg = sum_spectra(&specs);
    let peaks = periodogram::peaks_on_grid(&grid, &agg, max_components, 5.0, max_len);
    Ok(peaks.into_iter().map(|s| s.period).collect())
}

/// Element-wise sum of client spectra through [`ff_par::par_reduce`]: the
/// combine tree's shape depends only on the spectrum count, so the
/// aggregate is bit-identical at every thread count.
fn sum_spectra(specs: &[&[f64]]) -> Vec<f64> {
    ff_par::par_reduce(
        specs.len(),
        |i| specs[i].to_vec(),
        |mut a, b| {
            for (x, y) in a.iter_mut().zip(&b) {
                *x += y;
            }
            a
        },
    )
    .unwrap_or_default()
}

/// Derives the globally agreed lag count (§4.2.1(3)): the maximum count of
/// significant pACF lags across clients, clamped to `[3, max_lags]`.
pub fn derive_lag_count(global: &GlobalMetaFeatures, max_lags: usize) -> usize {
    let raw = global.get("n_sig_lags_max").unwrap_or(3.0);
    (raw.round() as usize).clamp(3, max_lags.max(3))
}

/// Phase III prep: broadcast the feature spec, collect importances, select
/// features (§4.2.2), and broadcast the selection. Returns the kept column
/// indices.
pub fn run_feature_engineering(
    rt: &FederatedRuntime,
    spec: &GlobalFeatureSpec,
    threshold: f64,
) -> Result<Vec<usize>> {
    let replies = rt.broadcast_all(&Instruction::Fit {
        params: vec![],
        config: spec.to_config_map().with_str(OP, "feature_engineering"),
    })?;
    let mut importances = Vec::new();
    let mut weights = Vec::new();
    for (_, r) in &replies {
        match r {
            Reply::FitRes {
                num_examples,
                metrics,
                ..
            } => {
                if let Some(err) = metrics.get("error").and_then(|v| v.as_str()) {
                    return Err(EngineError::InvalidData(err.to_string()));
                }
                let imp = metrics
                    .get("importances")
                    .and_then(|v| v.as_float_vec())
                    .ok_or_else(|| EngineError::InvalidData("client sent no importances".into()))?;
                importances.push(imp.to_vec());
                weights.push(*num_examples as f64);
            }
            other => {
                return Err(EngineError::InvalidData(format!(
                    "unexpected reply {other:?}"
                )))
            }
        }
    }
    let keep = select_features(&importances, &weights, threshold);
    let keep_f: Vec<f64> = keep.iter().map(|&j| j as f64).collect();
    rt.broadcast_all(&Instruction::Fit {
        params: vec![],
        config: ConfigMap::new()
            .with_str(OP, "apply_selection")
            .with_floats("keep", keep_f),
    })?;
    Ok(keep)
}

/// Fault-tolerant [`collect_global_meta`]: aggregates the meta-features of
/// whichever clients replied usably; malformed or error replies are
/// recorded per client instead of failing the run.
pub fn collect_global_meta_tolerant(
    rt: &FederatedRuntime,
    par: ff_par::ParConfig,
    policy: &RoundPolicy,
    rounds: &mut Vec<crate::report::RoundReport>,
) -> Result<(GlobalMetaFeatures, usize)> {
    par.scope(|| {
        let ins = Instruction::GetProperties(ConfigMap::new().with_str(OP, "meta_features"));
        let (outcome, idx) = tolerant_round(rt, "meta_features", &ins, policy, rounds)?;
        let mut metas = Vec::new();
        let mut max_len = 0usize;
        for (id, r) in &outcome.replies {
            let props = match r {
                Reply::Properties(cfg) => cfg,
                Reply::Error(e) => {
                    rounds[idx].app_errors.push((*id, e.clone()));
                    continue;
                }
                other => {
                    rounds[idx]
                        .app_errors
                        .push((*id, format!("unexpected reply {other:?}")));
                    continue;
                }
            };
            let parsed = props
                .get("meta_features")
                .and_then(|v| v.as_float_vec())
                .and_then(ClientMetaFeatures::from_vec);
            match parsed {
                Some(mf) => {
                    max_len = max_len.max(props.int_or("n_total", 0) as usize);
                    metas.push(mf);
                }
                None => rounds[idx]
                    .app_errors
                    .push((*id, "missing or malformed meta-features".into())),
            }
        }
        rounds[idx].usable = metas.len();
        let required = policy.min_responses.max(1);
        if metas.len() < required {
            return Err(quorum_unmet(rounds, idx, metas.len(), required));
        }
        Ok((GlobalMetaFeatures::aggregate(&metas), max_len))
    })
}

/// Fault-tolerant [`federated_seasonal_periods`]: spectra from responsive
/// clients are aggregated; if nobody returns a usable spectrum the engine
/// degrades gracefully to no seasonality features rather than failing.
pub fn federated_seasonal_periods_tolerant(
    rt: &FederatedRuntime,
    par: ff_par::ParConfig,
    max_len: usize,
    max_components: usize,
    policy: &RoundPolicy,
    rounds: &mut Vec<crate::report::RoundReport>,
) -> Result<Vec<f64>> {
    if max_len < 16 {
        return Ok(vec![]);
    }
    par.scope(|| {
        let grid = periodogram::log_period_grid(max_len as f64 / 2.0);
        let ins = Instruction::GetProperties(
            ConfigMap::new()
                .with_str(OP, "spectrum")
                .with_floats("grid_periods", grid.clone()),
        );
        let (outcome, idx) = tolerant_round(rt, "meta_features", &ins, policy, rounds)?;
        let mut specs: Vec<&[f64]> = Vec::new();
        for (id, r) in &outcome.replies {
            let usable = match r {
                Reply::Properties(p) => p
                    .get("spectrum")
                    .and_then(|v| v.as_float_vec())
                    .filter(|spec| spec.len() == grid.len()),
                _ => None,
            };
            match usable {
                Some(spec) => specs.push(spec),
                None => rounds[idx]
                    .app_errors
                    .push((*id, "missing or mis-sized spectrum".into())),
            }
        }
        rounds[idx].usable = specs.len();
        if specs.is_empty() {
            return Ok(vec![]);
        }
        let agg = sum_spectra(&specs);
        let peaks = periodogram::peaks_on_grid(&grid, &agg, max_components, 5.0, max_len);
        Ok(peaks.into_iter().map(|s| s.period).collect())
    })
}

/// Fault-tolerant [`run_feature_engineering`]: importances are collected
/// from the responsive subset and the selection is broadcast the same way.
/// Clients that miss the selection round keep their full feature set and
/// surface as application errors in later rounds.
pub fn run_feature_engineering_tolerant(
    rt: &FederatedRuntime,
    par: ff_par::ParConfig,
    spec: &GlobalFeatureSpec,
    threshold: f64,
    policy: &RoundPolicy,
    rounds: &mut Vec<crate::report::RoundReport>,
) -> Result<Vec<usize>> {
    par.scope(|| {
        let ins = Instruction::Fit {
            params: vec![],
            config: spec.to_config_map().with_str(OP, "feature_engineering"),
        };
        let (outcome, idx) = tolerant_round(rt, "feature_engineering", &ins, policy, rounds)?;
        let mut importances = Vec::new();
        let mut weights = Vec::new();
        for (id, r) in &outcome.replies {
            match r {
                Reply::FitRes {
                    num_examples,
                    metrics,
                    ..
                } => {
                    if let Some(err) = metrics.get("error").and_then(|v| v.as_str()) {
                        rounds[idx].app_errors.push((*id, err.to_string()));
                        continue;
                    }
                    match metrics.get("importances").and_then(|v| v.as_float_vec()) {
                        Some(imp) => {
                            importances.push(imp.to_vec());
                            weights.push(*num_examples as f64);
                        }
                        None => rounds[idx]
                            .app_errors
                            .push((*id, "client sent no importances".into())),
                    }
                }
                Reply::Error(e) => rounds[idx].app_errors.push((*id, e.clone())),
                other => rounds[idx]
                    .app_errors
                    .push((*id, format!("unexpected reply {other:?}"))),
            }
        }
        rounds[idx].usable = importances.len();
        let required = policy.min_responses.max(1);
        if importances.len() < required {
            return Err(quorum_unmet(rounds, idx, importances.len(), required));
        }
        let keep = select_features(&importances, &weights, threshold);
        let keep_f: Vec<f64> = keep.iter().map(|&j| j as f64).collect();
        let apply = Instruction::Fit {
            params: vec![],
            config: ConfigMap::new()
                .with_str(OP, "apply_selection")
                .with_floats("keep", keep_f),
        };
        tolerant_round(rt, "feature_engineering", &apply, policy, rounds)?;
        Ok(keep)
    })
}
