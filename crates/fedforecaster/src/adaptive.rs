//! Dynamic model adaptation under distribution shift — the paper's first
//! future-work direction (§6: "exploring dynamic model adaptation to adjust
//! for shifting data distributions over time").
//!
//! [`AdaptiveForecaster`] deploys the engine in a walk-forward loop: the
//! pipeline is fitted on a prefix of each client's stream, then monitors the
//! one-step loss over successive evaluation chunks. When the rolling loss
//! degrades beyond `drift_factor ×` the loss observed at fit time, drift is
//! declared and the entire AutoML pipeline re-runs on all data seen so far —
//! algorithm selection included, since a regime change can dethrone the
//! previously best algorithm.

use crate::budget::Budget;
use crate::config::EngineConfig;
use crate::engine::FedForecaster;
use crate::{EngineError, Result};
use ff_metalearn::metamodel::MetaModel;
use ff_models::zoo::AlgorithmKind;
use ff_timeseries::TimeSeries;

/// Configuration of the walk-forward adaptation loop.
#[derive(Debug, Clone)]
pub struct AdaptiveConfig {
    /// Fraction of the stream used for the initial fit.
    pub initial_fraction: f64,
    /// Number of walk-forward evaluation chunks after the initial fit.
    pub n_chunks: usize,
    /// Re-tune when `chunk_loss > drift_factor × reference_loss`.
    pub drift_factor: f64,
    /// Engine settings used for every (re-)tuning run.
    pub engine: EngineConfig,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            initial_fraction: 0.5,
            n_chunks: 5,
            drift_factor: 3.0,
            engine: EngineConfig {
                budget: Budget::Iterations(6),
                ..Default::default()
            },
        }
    }
}

/// One walk-forward step's outcome.
#[derive(Debug, Clone)]
pub struct ChunkReport {
    /// Chunk index (0-based, after the initial fit).
    pub chunk: usize,
    /// Aggregated test MSE of the currently deployed model on this chunk.
    pub loss: f64,
    /// Reference loss the drift detector compared against.
    pub reference: f64,
    /// Whether drift was declared and the pipeline re-tuned.
    pub retuned: bool,
    /// Algorithm deployed *after* this chunk.
    pub algorithm: AlgorithmKind,
}

/// Result of a full adaptive run.
#[derive(Debug, Clone)]
pub struct AdaptiveResult {
    /// Per-chunk reports, in stream order.
    pub chunks: Vec<ChunkReport>,
    /// Number of re-tuning events.
    pub retunes: usize,
    /// Mean chunk loss with adaptation enabled.
    pub mean_loss: f64,
}

/// Walk-forward deployment with drift-triggered re-tuning.
pub struct AdaptiveForecaster<'m> {
    cfg: AdaptiveConfig,
    meta: &'m MetaModel,
}

impl<'m> AdaptiveForecaster<'m> {
    /// Creates the adaptive wrapper around a pre-trained meta-model.
    pub fn new(cfg: AdaptiveConfig, meta: &'m MetaModel) -> AdaptiveForecaster<'m> {
        AdaptiveForecaster { cfg, meta }
    }

    /// Runs the walk-forward loop over full client streams.
    ///
    /// At each step the deployed model's loss on the next unseen chunk is
    /// measured by refitting the engine's final configuration on the data
    /// available *before* the chunk (no leakage) with the chunk as the test
    /// region.
    pub fn run(&self, streams: &[TimeSeries]) -> Result<AdaptiveResult> {
        if streams.is_empty() {
            return Err(EngineError::InvalidData("no client streams".into()));
        }
        let n = streams.iter().map(|s| s.len()).min().unwrap_or(0);
        let initial = ((n as f64) * self.cfg.initial_fraction) as usize;
        if initial < 60 {
            return Err(EngineError::InvalidData(
                "initial fraction leaves too little data".into(),
            ));
        }
        let chunk_len = (n - initial) / self.cfg.n_chunks.max(1);
        if chunk_len < 10 {
            return Err(EngineError::InvalidData("chunks too small".into()));
        }

        // Initial fit on the prefix.
        let prefix: Vec<TimeSeries> = streams.iter().map(|s| s.slice(0, initial)).collect();
        let engine = FedForecaster::new(self.cfg.engine.clone(), self.meta);
        let mut current = engine.run(&prefix)?;
        let mut reference = current.test_mse.max(1e-12);

        let mut chunks = Vec::new();
        let mut retunes = 0;
        for c in 0..self.cfg.n_chunks {
            let end = (initial + (c + 1) * chunk_len).min(n);
            // Evaluate the deployed configuration with the new chunk as the
            // test region: test_fraction chosen so the chunk is exactly the
            // held-out tail.
            let eval_cfg = EngineConfig {
                budget: Budget::Iterations(1),
                test_fraction: chunk_len as f64 / end as f64,
                disable_warm_start: true,
                ..self.cfg.engine.clone()
            };
            let window: Vec<TimeSeries> = streams.iter().map(|s| s.slice(0, end)).collect();
            let loss = evaluate_fixed_config(&eval_cfg, &current, &window)?;

            let drifted = loss > self.cfg.drift_factor * reference;
            if drifted {
                // Full re-tune on everything seen so far.
                current = FedForecaster::new(self.cfg.engine.clone(), self.meta).run(&window)?;
                reference = current.test_mse.max(1e-12);
                retunes += 1;
            } else {
                // Slowly track the observed level so the detector adapts to
                // benign loss inflation (EWMA of the reference).
                reference = 0.8 * reference + 0.2 * loss.max(1e-12);
            }
            chunks.push(ChunkReport {
                chunk: c,
                loss,
                reference,
                retuned: drifted,
                algorithm: current.best_algorithm,
            });
        }
        let mean_loss = chunks.iter().map(|c| c.loss).sum::<f64>() / chunks.len().max(1) as f64;
        Ok(AdaptiveResult {
            chunks,
            retunes,
            mean_loss,
        })
    }
}

/// Refits the given result's winning configuration on `window` (train+valid)
/// and returns the aggregated loss on the held-out tail — a one-iteration
/// engine run seeded at exactly that configuration.
fn evaluate_fixed_config(
    cfg: &EngineConfig,
    current: &crate::engine::RunResult,
    window: &[TimeSeries],
) -> Result<f64> {
    use crate::engine as eng;
    let rt = eng::build_runtime(window, cfg)?;
    let (global, max_len) = eng::collect_global_meta(&rt)?;
    let spec = if cfg.disable_feature_engineering {
        crate::feature_engineering::GlobalFeatureSpec::lags_only(eng::derive_lag_count(
            &global,
            cfg.max_lags,
        ))
    } else {
        crate::feature_engineering::GlobalFeatureSpec {
            lags: (1..=eng::derive_lag_count(&global, cfg.max_lags)).collect(),
            seasonal_periods: eng::federated_seasonal_periods(
                &rt,
                max_len,
                cfg.max_seasonal_components,
            )?,
            use_trend: true,
            use_time: true,
        }
    };
    eng::run_feature_engineering(&rt, &spec, cfg.importance_threshold)?;
    // Final-fit the deployed configuration directly and read the aggregated
    // test loss.
    let (_, test_mse) = eng::finalize(&rt, &current.best_config)?;
    Ok(test_mse)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_metalearn::kb::KnowledgeBase;
    use ff_metalearn::metamodel::MetaClassifierKind;
    use ff_metalearn::synth::synthetic_kb;
    use ff_timeseries::synthesis::{generate, SeasonSpec, SynthesisSpec};

    fn meta() -> MetaModel {
        let kb = KnowledgeBase::build(&synthetic_kb(8), &[2], 50);
        MetaModel::train(&kb, MetaClassifierKind::RandomForest, 0).unwrap()
    }

    fn stationary_streams() -> Vec<TimeSeries> {
        let s = generate(
            &SynthesisSpec {
                n: 1600,
                seasons: vec![SeasonSpec {
                    period: 12.0,
                    amplitude: 3.0,
                }],
                snr: Some(20.0),
                ..Default::default()
            },
            21,
        );
        s.split_clients(2)
    }

    /// Streams where EVERY client's own dynamics flip halfway: amplitude,
    /// level, and noise jump at the midpoint of each client stream.
    fn shifting_streams() -> Vec<TimeSeries> {
        (0..2u64)
            .map(|i| {
                let a = generate(
                    &SynthesisSpec {
                        n: 400,
                        seasons: vec![SeasonSpec {
                            period: 12.0,
                            amplitude: 2.0,
                        }],
                        snr: Some(30.0),
                        level: 10.0,
                        ..Default::default()
                    },
                    22 + i,
                );
                let b = generate(
                    &SynthesisSpec {
                        n: 400,
                        seasons: vec![SeasonSpec {
                            period: 5.0,
                            amplitude: 9.0,
                        }],
                        snr: Some(5.0),
                        level: 60.0,
                        ..Default::default()
                    },
                    40 + i,
                );
                let mut values = a.values().to_vec();
                values.extend_from_slice(b.values());
                TimeSeries::with_regular_index(0, 86_400, values)
            })
            .collect()
    }

    #[test]
    fn stable_stream_rarely_retunes() {
        let meta = meta();
        let cfg = AdaptiveConfig {
            n_chunks: 4,
            ..Default::default()
        };
        let result = AdaptiveForecaster::new(cfg, &meta)
            .run(&stationary_streams())
            .unwrap();
        assert_eq!(result.chunks.len(), 4);
        assert!(
            result.retunes <= 1,
            "stationary stream retuned {} times",
            result.retunes
        );
        assert!(result.mean_loss.is_finite());
    }

    #[test]
    fn regime_shift_triggers_retune() {
        let meta = meta();
        let cfg = AdaptiveConfig {
            initial_fraction: 0.4, // fit entirely inside regime A
            n_chunks: 4,
            drift_factor: 4.0,
            ..Default::default()
        };
        let result = AdaptiveForecaster::new(cfg, &meta)
            .run(&shifting_streams())
            .unwrap();
        assert!(
            result.retunes >= 1,
            "regime shift must trigger at least one retune: {:?}",
            result
                .chunks
                .iter()
                .map(|c| (c.loss, c.retuned))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn input_validation() {
        let meta = meta();
        let ad = AdaptiveForecaster::new(AdaptiveConfig::default(), &meta);
        assert!(ad.run(&[]).is_err());
        let tiny = TimeSeries::with_regular_index(0, 60, vec![1.0; 50]);
        assert!(ad.run(&[tiny]).is_err());
    }
}
