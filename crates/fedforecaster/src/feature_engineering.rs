//! Client-side automated feature engineering (§4.2).
//!
//! Given the *globally agreed* parameters (lag count from the aggregated
//! meta-features, seasonal periods from the federated weighted periodogram)
//! each client builds, from its own private data only:
//!
//! 1. **Trend feature** — a Prophet-style trend (flat / piecewise-linear /
//!    logistic chosen by ADF) fitted on the training split and evaluated at
//!    every row's index.
//! 2. **Time features** — cyclic encodings of hour-of-day, day-of-week, and
//!    month-of-year from the row's timestamp.
//! 3. **Lag features** — the agreed number of lagged target values.
//! 4. **Seasonality features** — sin/cos at each agreed global period.

use ff_fl::config::{ConfigMap, ConfigMapExt};
use ff_linalg::Matrix;
use ff_timeseries::calendar;

/// Exogenous covariates aligned with a client's series — the contained step
/// toward the paper's multivariate future work (§6). Each row holds the
/// covariate values *known at prediction time* for that timestamp (weather
/// forecasts, holiday flags, tariff schedules…).
///
/// Every client in a federation must use the identical covariate schema
/// (same names, same order); FedAvg over the resulting coefficients is
/// otherwise meaningless, and the runtime rejects mismatched dimensions at
/// aggregation time.
#[derive(Debug, Clone)]
pub struct ExogenousData {
    /// Column names (shared schema across the federation).
    pub names: Vec<String>,
    /// One row per series observation.
    pub values: Matrix,
}

impl ExogenousData {
    /// Builds and validates the covariate block.
    ///
    /// # Panics
    /// Panics if the column count does not match `names`.
    pub fn new(names: Vec<String>, values: Matrix) -> ExogenousData {
        assert_eq!(names.len(), values.cols(), "exogenous schema mismatch");
        ExogenousData { names, values }
    }
}

/// Globally agreed feature-engineering parameters, decided by the server
/// from aggregated (privacy-preserving) statistics and broadcast to all
/// clients so every client builds the *same feature schema*.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalFeatureSpec {
    /// Lag offsets (1-based).
    pub lags: Vec<usize>,
    /// Seasonal periods in samples.
    pub seasonal_periods: Vec<f64>,
    /// Include the trend feature.
    pub use_trend: bool,
    /// Include cyclic time features.
    pub use_time: bool,
}

impl GlobalFeatureSpec {
    /// The raw-lags-only spec used by the feature-engineering ablation.
    pub fn lags_only(n_lags: usize) -> GlobalFeatureSpec {
        GlobalFeatureSpec {
            lags: (1..=n_lags.max(1)).collect(),
            seasonal_periods: vec![],
            use_trend: false,
            use_time: false,
        }
    }

    /// Column names of the engineered matrix, in order.
    pub fn feature_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.lags.iter().map(|l| format!("lag_{l}")).collect();
        if self.use_trend {
            names.push("trend".into());
        }
        if self.use_time {
            names.extend(calendar::TIME_FEATURE_NAMES.iter().map(|s| s.to_string()));
        }
        for p in &self.seasonal_periods {
            names.push(format!("season_sin_{p:.1}"));
            names.push(format!("season_cos_{p:.1}"));
        }
        names
    }

    /// Number of feature columns.
    pub fn dim(&self) -> usize {
        self.feature_names().len()
    }

    /// Serializes for the server→client broadcast.
    pub fn to_config_map(&self) -> ConfigMap {
        ConfigMap::new()
            .with_floats("lags", self.lags.iter().map(|&l| l as f64).collect())
            .with_floats("seasonal_periods", self.seasonal_periods.clone())
            .with_int("use_trend", i64::from(self.use_trend))
            .with_int("use_time", i64::from(self.use_time))
    }

    /// Parses the broadcast form.
    pub fn from_config_map(map: &ConfigMap) -> Option<GlobalFeatureSpec> {
        let lags = map
            .get("lags")?
            .as_float_vec()?
            .iter()
            .map(|&l| l as usize)
            .filter(|&l| l > 0)
            .collect::<Vec<_>>();
        if lags.is_empty() {
            return None;
        }
        Some(GlobalFeatureSpec {
            lags,
            seasonal_periods: map.get("seasonal_periods")?.as_float_vec()?.to_vec(),
            use_trend: map.int_or("use_trend", 1) != 0,
            use_time: map.int_or("use_time", 1) != 0,
        })
    }
}

/// The engineered supervised matrices of one client, split by time.
#[derive(Debug, Clone)]
pub struct EngineeredData {
    /// Feature column names.
    pub feature_names: Vec<String>,
    /// Training design matrix.
    pub x_train: Matrix,
    /// Training targets.
    pub y_train: Vec<f64>,
    /// Validation design matrix.
    pub x_valid: Matrix,
    /// Validation targets.
    pub y_valid: Vec<f64>,
    /// Test design matrix.
    pub x_test: Matrix,
    /// Test targets.
    pub y_test: Vec<f64>,
}

impl EngineeredData {
    /// Restricts all matrices to the given column subset (feature
    /// selection, §4.2.2).
    pub fn select_columns(&self, keep: &[usize]) -> EngineeredData {
        let pick = |m: &Matrix| -> Matrix {
            Matrix::from_fn(m.rows(), keep.len(), |i, j| m.get(i, keep[j]))
        };
        EngineeredData {
            feature_names: keep
                .iter()
                .map(|&j| self.feature_names[j].clone())
                .collect(),
            x_train: pick(&self.x_train),
            y_train: self.y_train.clone(),
            x_valid: pick(&self.x_valid),
            y_valid: self.y_valid.clone(),
            x_test: pick(&self.x_test),
            y_test: self.y_test.clone(),
        }
    }
}

/// Builds the engineered matrices from a client's interpolated values and
/// timestamps, with `train_end`/`valid_end` marking the time-ordered split
/// boundaries. Returns `None` when the training region is too short to
/// produce a row.
pub fn engineer(
    values: &[f64],
    timestamps: &[i64],
    train_end: usize,
    valid_end: usize,
    spec: &GlobalFeatureSpec,
) -> Option<EngineeredData> {
    engineer_with_exog(values, timestamps, train_end, valid_end, spec, None)
}

/// [`engineer`] with optional exogenous covariates appended as extra feature
/// columns (their row `t` values are used for predicting `y[t]`).
pub fn engineer_with_exog(
    values: &[f64],
    timestamps: &[i64],
    train_end: usize,
    valid_end: usize,
    spec: &GlobalFeatureSpec,
    exog: Option<&ExogenousData>,
) -> Option<EngineeredData> {
    let n = values.len();
    if n != timestamps.len() || train_end == 0 || train_end > valid_end || valid_end > n {
        return None;
    }
    if let Some(e) = exog {
        if e.values.rows() != n {
            return None;
        }
    }
    let max_lag = *spec.lags.iter().max()?;
    if train_end <= max_lag + 2 {
        return None;
    }
    // Trend feature: a *causal* trend estimate — an expanding exponential
    // moving average of past values. The paper extracts the Prophet trend
    // component as a feature; a fitted-once trend curve is nearly collinear
    // with the lag features in-sample yet diverges out-of-sample (models
    // that split weight onto it break at test time on level-shifting
    // series), so we evaluate the trend causally: the value at row `t`
    // summarizes observations strictly before `t` on every split. Same
    // semantic role, no leakage, no train/test distribution shift.
    let trend = if spec.use_trend {
        Some(causal_trend(values))
    } else {
        None
    };
    let mut names = spec.feature_names();
    if let Some(e) = exog {
        names.extend(e.names.iter().map(|n| format!("exog_{n}")));
    }
    let dim = names.len();

    let mut rows: [Vec<Vec<f64>>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    let mut targets: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for t in max_lag..n {
        let mut row = Vec::with_capacity(dim);
        for &l in &spec.lags {
            row.push(values[t - l]);
        }
        if let Some(tr) = &trend {
            row.push(tr[t]);
        }
        if spec.use_time {
            row.extend_from_slice(&calendar::time_features(timestamps[t]));
        }
        for &p in &spec.seasonal_periods {
            let ang = std::f64::consts::TAU * t as f64 / p.max(2.0);
            row.push(ang.sin());
            row.push(ang.cos());
        }
        if let Some(e) = exog {
            row.extend_from_slice(e.values.row(t));
        }
        let bucket = if t < train_end {
            0
        } else if t < valid_end {
            1
        } else {
            2
        };
        rows[bucket].push(row);
        targets[bucket].push(values[t]);
    }
    if rows[0].is_empty() {
        return None;
    }
    let build = |rs: &Vec<Vec<f64>>| -> Matrix { Matrix::from_fn(rs.len(), dim, |i, j| rs[i][j]) };
    Some(EngineeredData {
        feature_names: names,
        x_train: build(&rows[0]),
        y_train: targets[0].clone(),
        x_valid: build(&rows[1]),
        y_valid: targets[1].clone(),
        x_test: build(&rows[2]),
        y_test: targets[2].clone(),
    })
}

/// Causal trend estimate: `trend[t]` is an exponential moving average of
/// `values[..t]` (span `n/10`, clamped to `[5, 60]`), seeded at the first
/// observation. Strictly causal: `trend[t]` never sees `values[t]`.
///
/// The EMA kernel itself lives in [`ff_models::pipeline::causal_ema_trend`]
/// — it is also the `trend_ema` pipeline node, where the span is tunable;
/// this wrapper keeps the feature-engineering span heuristic.
pub fn causal_trend(values: &[f64]) -> Vec<f64> {
    let span = (values.len() / 10).clamp(5, 60) as f64;
    ff_models::pipeline::causal_ema_trend(values, span)
}

/// Server-side feature selection (§4.2.2): averages the clients' importance
/// vectors with the given weights and keeps the smallest set of columns
/// whose cumulative importance reaches `threshold`. Always keeps at least
/// one column; returns sorted column indices.
pub fn select_features(importances: &[Vec<f64>], weights: &[f64], threshold: f64) -> Vec<usize> {
    assert_eq!(importances.len(), weights.len());
    assert!(!importances.is_empty());
    let dim = importances[0].len();
    let wsum: f64 = weights.iter().sum::<f64>().max(1e-300);
    let mut avg = vec![0.0; dim];
    for (imp, &w) in importances.iter().zip(weights) {
        assert_eq!(imp.len(), dim);
        for (a, &v) in avg.iter_mut().zip(imp) {
            *a += w / wsum * v.max(0.0);
        }
    }
    let total: f64 = avg.iter().sum();
    if total <= 0.0 {
        return (0..dim).collect();
    }
    let mut order: Vec<usize> = (0..dim).collect();
    order.sort_by(|&a, &b| avg[b].total_cmp(&avg[a]));
    let mut kept = Vec::new();
    let mut acc = 0.0;
    for &j in &order {
        kept.push(j);
        acc += avg[j] / total;
        if acc >= threshold {
            break;
        }
    }
    kept.sort_unstable();
    kept
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> GlobalFeatureSpec {
        GlobalFeatureSpec {
            lags: vec![1, 2, 3],
            seasonal_periods: vec![7.0],
            use_trend: true,
            use_time: true,
        }
    }

    fn sample_data(n: usize) -> (Vec<f64>, Vec<i64>) {
        let values: Vec<f64> = (0..n)
            .map(|t| 10.0 + 0.05 * t as f64 + (std::f64::consts::TAU * t as f64 / 7.0).sin())
            .collect();
        let timestamps: Vec<i64> = (0..n as i64).map(|t| t * 86_400).collect();
        (values, timestamps)
    }

    #[test]
    fn engineered_shapes_and_names() {
        let (v, ts) = sample_data(100);
        let e = engineer(&v, &ts, 70, 85, &spec()).unwrap();
        // 3 lags + trend + 6 time + 2 seasonal = 12 columns.
        assert_eq!(e.feature_names.len(), 12);
        assert_eq!(e.x_train.cols(), 12);
        // Rows: 100 − 3 = 97 total, split at 70/85.
        assert_eq!(e.y_train.len(), 67);
        assert_eq!(e.y_valid.len(), 15);
        assert_eq!(e.y_test.len(), 15);
    }

    #[test]
    fn lag_columns_hold_true_history() {
        let (v, ts) = sample_data(50);
        let e = engineer(&v, &ts, 40, 45, &spec()).unwrap();
        // First row is t = 3: lag_1 = v[2], lag_2 = v[1], lag_3 = v[0].
        assert_eq!(e.x_train.get(0, 0), v[2]);
        assert_eq!(e.x_train.get(0, 1), v[1]);
        assert_eq!(e.x_train.get(0, 2), v[0]);
        assert_eq!(e.y_train[0], v[3]);
    }

    #[test]
    fn trend_feature_tracks_level_causally() {
        let (v, ts) = sample_data(200);
        let e = engineer(&v, &ts, 150, 175, &spec()).unwrap();
        let trend_col = e.feature_names.iter().position(|n| n == "trend").unwrap();
        // The trend rises with the upward slope and KEEPS tracking through
        // validation and test (causal estimate, not a frozen fit).
        let first = e.x_train.get(0, trend_col);
        let last_train = e.x_train.get(e.x_train.rows() - 1, trend_col);
        let last_test = e.x_test.get(e.x_test.rows() - 1, trend_col);
        assert!(last_train > first, "trend {first} → {last_train}");
        assert!(
            last_test > last_train,
            "trend must keep tracking: {last_train} → {last_test}"
        );
    }

    #[test]
    fn causal_trend_never_sees_the_current_value() {
        // A single spike at position k must not affect trend[k].
        let mut v = vec![1.0; 50];
        v[30] = 100.0;
        let tr = causal_trend(&v);
        assert!((tr[30] - 1.0).abs() < 1e-9, "leaked: {}", tr[30]);
        assert!(tr[31] > 1.0, "spike must enter the next step");
    }

    #[test]
    fn causal_trend_converges_to_level() {
        let v = vec![7.5; 200];
        let tr = causal_trend(&v);
        assert!((tr[199] - 7.5).abs() < 1e-6);
    }

    #[test]
    fn spec_roundtrips_via_config_map() {
        let s = spec();
        let m = s.to_config_map();
        let back = GlobalFeatureSpec::from_config_map(&m).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn lags_only_ablation_spec() {
        let s = GlobalFeatureSpec::lags_only(4);
        assert_eq!(s.dim(), 4);
        assert_eq!(s.feature_names(), vec!["lag_1", "lag_2", "lag_3", "lag_4"]);
    }

    #[test]
    fn too_short_train_is_none() {
        let (v, ts) = sample_data(10);
        assert!(engineer(&v, &ts, 4, 7, &spec()).is_none());
    }

    #[test]
    fn exogenous_columns_are_appended_and_aligned() {
        let (v, ts) = sample_data(80);
        // Covariate = the index itself, so alignment is directly checkable.
        let exog = ExogenousData::new(
            vec!["temp".into()],
            ff_linalg::Matrix::from_fn(80, 1, |i, _| i as f64 * 10.0),
        );
        let e = engineer_with_exog(&v, &ts, 55, 68, &spec(), Some(&exog)).unwrap();
        assert_eq!(*e.feature_names.last().unwrap(), "exog_temp");
        let col = e.feature_names.len() - 1;
        // First train row is t = 3 → exog value 30.
        assert_eq!(e.x_train.get(0, col), 30.0);
        // First test row is t = 68 → exog value 680.
        assert_eq!(e.x_test.get(0, col), 680.0);
    }

    #[test]
    fn exogenous_row_mismatch_is_rejected() {
        let (v, ts) = sample_data(80);
        let exog = ExogenousData::new(vec!["temp".into()], ff_linalg::Matrix::zeros(40, 1));
        assert!(engineer_with_exog(&v, &ts, 55, 68, &spec(), Some(&exog)).is_none());
    }

    #[test]
    fn select_features_cumulative_rule() {
        // Importances: col1 dominates.
        let imps = vec![vec![0.1, 0.8, 0.05, 0.05], vec![0.1, 0.8, 0.05, 0.05]];
        let kept = select_features(&imps, &[1.0, 1.0], 0.85);
        assert_eq!(kept, vec![0, 1]); // 0.8 + 0.1 ≥ 0.85, sorted
        let all = select_features(&imps, &[1.0, 1.0], 1.0);
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn select_features_weighted_average() {
        // Client A loves col0, client B loves col1; B has all the weight.
        let imps = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let kept = select_features(&imps, &[0.01, 0.99], 0.9);
        assert_eq!(kept, vec![1]);
    }

    #[test]
    fn zero_importances_keep_everything() {
        let imps = vec![vec![0.0, 0.0, 0.0]];
        assert_eq!(select_features(&imps, &[1.0], 0.95), vec![0, 1, 2]);
    }

    #[test]
    fn column_selection_preserves_rows() {
        let (v, ts) = sample_data(60);
        let e = engineer(&v, &ts, 40, 50, &spec()).unwrap();
        let sel = e.select_columns(&[0, 3]);
        assert_eq!(sel.x_train.cols(), 2);
        assert_eq!(sel.y_train, e.y_train);
        assert_eq!(sel.feature_names[0], "lag_1");
        assert_eq!(sel.feature_names[1], "trend");
        assert_eq!(sel.x_train.get(0, 1), e.x_train.get(0, 3));
    }
}
