//! End-to-end observability tests: a traced engine run must yield the
//! full Algorithm-1 span tree plus the two sinks (JSON-lines and human
//! summary), and enabling tracing must not perturb the run itself.

use fedforecaster::engine::FedForecaster;
use fedforecaster::prelude::*;
use ff_metalearn::kb::KnowledgeBase;
use ff_metalearn::metamodel::{MetaClassifierKind, MetaModel};
use ff_metalearn::synth::synthetic_kb;
use ff_timeseries::synthesis::{generate, SeasonSpec, SynthesisSpec};
use ff_timeseries::TimeSeries;

fn metamodel() -> MetaModel {
    let kb = KnowledgeBase::build(&synthetic_kb(10), &[3], 40);
    MetaModel::train(&kb, MetaClassifierKind::RandomForest, 0).expect("meta-model")
}

fn federation() -> Vec<TimeSeries> {
    generate(
        &SynthesisSpec {
            n: 700,
            seasons: vec![SeasonSpec {
                period: 12.0,
                amplitude: 3.0,
            }],
            snr: Some(15.0),
            ..Default::default()
        },
        21,
    )
    .split_clients(3)
}

fn config(trace: TraceConfig) -> EngineConfig {
    EngineConfig {
        budget: Budget::Iterations(8),
        trace,
        ..Default::default()
    }
}

#[test]
fn traced_run_produces_full_span_tree_and_both_sinks() {
    let meta = metamodel();
    let result = FedForecaster::new(config(TraceConfig::enabled()), &meta)
        .run(&federation())
        .unwrap();
    let telemetry = result.telemetry.expect("tracing was enabled");
    let trace = &telemetry.trace;

    // Span tree: one root `run` span with all four Algorithm-1 phases as
    // direct children, every span closed.
    let runs = trace.spans_named("run");
    assert_eq!(runs.len(), 1);
    let run_id = runs[0].id;
    assert_eq!(runs[0].parent, None);
    for phase in [
        "phase.meta_features",
        "phase.feature_engineering",
        "phase.optimization",
        "phase.finalization",
    ] {
        let spans = trace.spans_named(phase);
        assert_eq!(spans.len(), 1, "{phase} should run exactly once");
        assert_eq!(spans[0].parent, Some(run_id), "{phase} parents to run");
    }
    assert!(trace.spans.iter().all(|s| s.end_us.is_some()));

    // Trials nest under the optimization phase, labeled 1..=budget.
    let opt_id = trace.spans_named("phase.optimization")[0].id;
    let trials = trace.spans_named("trial");
    assert_eq!(trials.len(), 8);
    for (i, t) in trials.iter().enumerate() {
        assert_eq!(t.parent, Some(opt_id));
        assert_eq!(t.label, Some(i as u64 + 1));
    }

    // Federated rounds and GP stages appear below the phases.
    let rounds = trace.spans_named("fl.round");
    assert!(!rounds.is_empty());
    assert!(rounds.iter().all(|r| r.parent.is_some()));
    assert!(trace.counter("fl.rounds") >= rounds.len() as u64);
    assert!(!trace.spans_named("gp.fit").is_empty());
    assert!(!trace.spans_named("gp.acquire").is_empty());

    // Metrics: byte histograms fed by the message log, the budget gauge
    // drained to zero, and an incumbent loss matching the result.
    let to_server = trace
        .histogram_merged("fl.msg_bytes_to_server")
        .expect("per-client byte histograms");
    assert!(to_server.count() > 0);
    assert!(trace.histogram_merged("fl.msg_bytes_to_client").is_some());
    assert_eq!(trace.gauge("engine.budget_remaining"), Some(0.0));
    let incumbent = trace.gauge("bo.incumbent_loss").expect("incumbent gauge");
    assert!((incumbent - result.best_valid_loss).abs() < 1e-12);

    // Per-client comms rows cover the whole federation.
    assert_eq!(telemetry.clients.len(), 3);
    assert!(telemetry.clients.iter().all(|c| c.bytes_to_server > 0));

    // Sink 1: JSON-lines — one object per line, spans and metrics present.
    let json = telemetry.to_json_lines();
    assert!(!json.is_empty());
    for line in json.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "line: {line}");
    }
    let run_line = json
        .lines()
        .find(|l| l.contains(r#""kind":"span""#) && l.contains(r#""name":"run""#))
        .expect("run span in JSON export");
    assert!(run_line.contains(r#""parent":null"#));
    assert!(json.contains(r#""kind":"histogram","name":"fl.msg_bytes_to_server""#));

    // Sink 2: aligned human summary — phase table, client table, BO
    // trial percentiles.
    let summary = telemetry.render_summary();
    for needle in [
        "phase.meta_features",
        "phase.optimization",
        "client",
        "BO trials: 8",
        "p50",
        "p95",
    ] {
        assert!(
            summary.contains(needle),
            "summary missing {needle:?}:\n{summary}"
        );
    }
}

#[test]
fn full_observability_run_attaches_profile_and_flight_recorder() {
    use ff_trace::{ExpoConfig, RecorderConfig};
    let meta = metamodel();
    let trace = TraceConfig::enabled()
        .with_profile()
        .with_recorder(RecorderConfig::default())
        .with_expo(ExpoConfig::default());
    let result = FedForecaster::new(config(trace), &meta)
        .run(&federation())
        .unwrap();
    let telemetry = result.telemetry.expect("tracing was enabled");

    // Profile: rows exist, the root `run` span carries self time, and the
    // critical path starts at the root.
    let profile = telemetry.profile.as_ref().expect("profiler was enabled");
    assert!(!profile.rows.is_empty());
    assert!(profile.rows.iter().any(|r| r.name == "run"));
    assert!(profile.total_self_us() > 0);
    assert_eq!(
        profile.critical_path.first().map(|h| h.name),
        Some("run"),
        "critical path must start at the root span"
    );
    // Folded stacks are exportable and root every line at `run`.
    let folded = telemetry.folded_stacks();
    assert!(!folded.is_empty());
    for line in folded.lines() {
        assert!(line.starts_with("run"), "stack not rooted at run: {line}");
    }
    // The human summary gains the self-time table.
    assert!(telemetry.render_summary().contains("top self-time spans"));

    // Flight recorder: one frame per fault-tolerant round report (the
    // clean run never trips a dump trigger), newest rounds retained.
    let capacity = RecorderConfig::default().capacity;
    assert_eq!(
        telemetry.recorder_frames.len(),
        result.rounds.len().min(capacity)
    );
    let tail = &result.rounds[result.rounds.len() - telemetry.recorder_frames.len()..];
    for (frame, report) in telemetry.recorder_frames.iter().zip(tail) {
        assert_eq!(frame.round, report.round);
        assert_eq!(frame.phase, report.phase);
        assert_eq!(frame.accepted, report.usable as u64);
        assert!(frame.quorum_met);
    }
    assert!(
        telemetry.recorder_dumps.is_empty(),
        "healthy run should not trip a forensic dump"
    );

    // Open-span accounting: every phase closed by snapshot time, so no
    // phase row reports open spans (the open-span path is covered by
    // ff-trace's own regression test).
    assert!(telemetry.trace.phase_totals().iter().all(|p| p.open == 0));
}

#[test]
fn tracing_does_not_perturb_the_run() {
    let meta = metamodel();
    let clients = federation();
    let traced = FedForecaster::new(config(TraceConfig::enabled()), &meta)
        .run(&clients)
        .unwrap();
    let plain = FedForecaster::new(config(TraceConfig::disabled()), &meta)
        .run(&clients)
        .unwrap();

    // Bit-identical numerics: tracing observes, it must not steer.
    assert!(plain.telemetry.is_none());
    assert_eq!(traced.best_algorithm, plain.best_algorithm);
    assert_eq!(traced.loss_history, plain.loss_history);
    assert_eq!(
        traced.best_valid_loss.to_bits(),
        plain.best_valid_loss.to_bits()
    );
    assert_eq!(traced.test_mse.to_bits(), plain.test_mse.to_bits());
    assert_eq!(traced.bytes_to_server, plain.bytes_to_server);
}
