//! The disabled-checkpoint guarantee: with `EngineConfig::checkpoint =
//! None` the engine's commit points are a branch and a return — zero
//! heap allocations, zero bytes written (there is no sink to write to).
//! Asserted with a counting global allocator; one test per file so no
//! parallel test pollutes the counter (same pattern as ff-trace's
//! `no_alloc`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn disabled_checkpoint_path_makes_no_allocations() {
    // A realistic report history: the phase commit point would fingerprint
    // all of this if it ran — it must not even look at it when disabled.
    let rounds: Vec<fedforecaster::prelude::RoundReport> = (0..32)
        .map(|i| fedforecaster::prelude::RoundReport {
            phase: "optimization",
            round: i,
            participants: 8,
            responses: 8,
            usable: 8,
            dropouts: vec![(3, "timeout".into())],
            app_errors: Vec::new(),
            non_finite: Vec::new(),
            rejected: Vec::new(),
            quorum_met: true,
        })
        .collect();
    let mut sink: Option<fedforecaster::ckpt::CkptSink> = None;
    let replay: Option<fedforecaster::ckpt::Replay> = None;
    let mut cursor = 0usize;

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..1000 {
        fedforecaster::engine::checkpoint_phase(&mut sink, &replay, &mut cursor, 0, &rounds)
            .unwrap();
        fedforecaster::engine::checkpoint_phase(&mut sink, &replay, &mut cursor, 1, &rounds)
            .unwrap();
        // The trial and finalization commit points are `if let Some(sink)`
        // around the same `Option` — the None arm is the same branch this
        // exercises.
        assert!(sink.is_none());
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "disabled checkpoint path allocated {} times",
        after - before
    );
}
