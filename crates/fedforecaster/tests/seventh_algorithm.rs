//! Extensibility proof: a seventh algorithm registered through the
//! registry alone — this file is the only place it exists. No edits to the
//! engine, the search-space builder, or the client dispatch: the spec's
//! declared params, grid, builder, and finalize strategy are enough to run
//! it end-to-end.

use fedforecaster::budget::Budget;
use fedforecaster::config::EngineConfig;
use fedforecaster::engine::FedForecaster;
use fedforecaster::search_space::{algorithm_of, table2_space, to_hyperparams, warm_start_configs};
use ff_bayesopt::space::ParamValue;
use ff_linalg::Matrix;
use ff_metalearn::kb::KnowledgeBase;
use ff_metalearn::metamodel::{MetaClassifierKind, MetaModel};
use ff_metalearn::synth::synthetic_kb;
use ff_models::spec::{register, AlgorithmSpec, FinalizeStrategy, ParamDef, ParamKind};
use ff_models::zoo::{AlgorithmKind, HyperParams};
use ff_models::{ModelError, Regressor};
use ff_timeseries::synthesis::{generate, SeasonSpec, SynthesisSpec, TrendSpec};
use ff_timeseries::TimeSeries;
use std::sync::OnceLock;

/// A seasonal-naive-style forecaster: fit picks the single lag column (up
/// to `snaive_max_lag`) that best matches the target and predicts exactly
/// that column. The fitted model is an affine predictor (a unit coordinate
/// projection), so `CoefficientAverage` finalization applies: the probed
/// parameters are the unit vector of the chosen lag.
struct BestLagNaive {
    max_lag: usize,
    col: Option<usize>,
}

impl Regressor for BestLagNaive {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> ff_models::Result<()> {
        if x.rows() == 0 || x.cols() == 0 {
            return Err(ModelError::InvalidData("empty design matrix".into()));
        }
        let candidates = self.max_lag.max(1).min(x.cols());
        let mut best = (0usize, f64::INFINITY);
        for j in 0..candidates {
            let sse: f64 = (0..x.rows())
                .map(|i| {
                    let d = x.get(i, j) - y[i];
                    d * d
                })
                .sum();
            if sse < best.1 {
                best = (j, sse);
            }
        }
        self.col = Some(best.0);
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> ff_models::Result<Vec<f64>> {
        let col = self.col.ok_or(ModelError::NotFitted)?;
        if col >= x.cols() {
            return Err(ModelError::InvalidData("lag column out of range".into()));
        }
        Ok((0..x.rows()).map(|i| x.get(i, col)).collect())
    }
}

fn snaive_grid(max_lags: &[f64]) -> Vec<HyperParams> {
    max_lags
        .iter()
        .map(|&m| {
            let mut hp = HyperParams::default();
            hp.extras.insert("snaive_max_lag".into(), m);
            hp
        })
        .collect()
}

/// Registers the seventh algorithm exactly once per process and returns
/// its kind. Everything downstream — search space, warm start, decode,
/// client final fit, finalize — picks it up from the registry.
fn seventh() -> AlgorithmKind {
    static SEVENTH: OnceLock<AlgorithmKind> = OnceLock::new();
    *SEVENTH.get_or_init(|| {
        register(AlgorithmSpec::new(
            "SeasonalNaive",
            "snaive_",
            FinalizeStrategy::CoefficientAverage,
            |hp: &HyperParams| {
                let max_lag = hp.extras.get("snaive_max_lag").copied().unwrap_or(4.0);
                Box::new(BestLagNaive {
                    max_lag: max_lag.round().max(1.0) as usize,
                    col: None,
                })
            },
            snaive_grid(&[2.0, 4.0, 8.0]),
            vec![ParamDef::extra(
                "snaive_max_lag",
                ParamKind::Integer { lo: 1, hi: 10 },
                4.0,
            )],
        ))
        .expect("seventh algorithm registers cleanly")
    })
}

fn federation() -> Vec<TimeSeries> {
    let s = generate(
        &SynthesisSpec {
            n: 700,
            trend: TrendSpec::Linear(0.01),
            seasons: vec![SeasonSpec {
                period: 12.0,
                amplitude: 2.0,
            }],
            snr: Some(20.0),
            ..Default::default()
        },
        31,
    );
    s.split_clients(3)
}

#[test]
fn registry_extension_flows_into_space_warm_start_and_decode() {
    let kind = seventh();
    assert_eq!(kind.name(), "SeasonalNaive");
    assert!(AlgorithmKind::all().contains(&kind));
    assert!(!AlgorithmKind::builtin().contains(&kind));

    // The search-space builder picks up the new dimension untouched.
    let space = table2_space(&[kind]);
    let names: Vec<&str> = space.params().iter().map(|(n, _)| n.as_str()).collect();
    assert!(names.contains(&"algorithm"));
    assert!(names.contains(&"snaive_max_lag"));

    // The warm start is the grid sweet spot (middle entry: max_lag = 4).
    let warm = warm_start_configs(&[kind]);
    assert_eq!(warm.len(), 1);
    assert_eq!(
        warm[0].get("algorithm"),
        Some(&ParamValue::Cat("SeasonalNaive".into()))
    );
    assert_eq!(warm[0].get("snaive_max_lag"), Some(&ParamValue::Int(4)));

    // Decode routes through the extras binding.
    let mut cfg = warm[0].clone();
    cfg.insert("snaive_max_lag".into(), ParamValue::Int(7));
    assert_eq!(algorithm_of(&cfg), Some(kind));
    let hp = to_hyperparams(&cfg);
    assert_eq!(hp.extras.get("snaive_max_lag"), Some(&7.0));

    // And the registry builder instantiates a working model.
    let mut model = kind.spec().build(&hp);
    let x = Matrix::from_fn(20, 3, |i, j| (i + j) as f64);
    let y: Vec<f64> = (0..20).map(|i| i as f64 + 1.0).collect();
    model.fit(&x, &y).unwrap();
    assert_eq!(model.predict(&x).unwrap().len(), 20);
}

#[test]
fn seventh_algorithm_runs_end_to_end_through_the_engine() {
    let kind = seventh();
    // Forcing the portfolio exercises the full pipeline — meta-features,
    // feature engineering, tolerant tuning rounds, and coefficient-average
    // finalization — with an algorithm the engine has never heard of.
    let cfg = EngineConfig {
        budget: Budget::Iterations(3),
        portfolio: Some(vec![kind]),
        ..Default::default()
    };
    let kb = KnowledgeBase::build(&synthetic_kb(8), &[2], 50);
    let meta = MetaModel::train(&kb, MetaClassifierKind::RandomForest, 0).unwrap();
    let result = FedForecaster::new(cfg, &meta).run(&federation()).unwrap();

    assert_eq!(result.best_algorithm, kind);
    assert_eq!(result.recommended, vec![kind]);
    assert!(result.best_valid_loss.is_finite());
    assert!(result.test_mse.is_finite());
    assert!(
        !result.rounds.is_empty(),
        "tolerant rounds should be logged"
    );
    assert!(result.rounds.iter().all(|r| r.quorum_met));
    // The deployed model is a FedAvg-ed affine predictor.
    match &result.global_model {
        fedforecaster::aggregate::GlobalModel::Linear {
            algorithm, coef, ..
        } => {
            assert_eq!(*algorithm, kind);
            assert!(!coef.is_empty());
        }
        other => panic!("expected a linear global model, got {other:?}"),
    }
}
