//! Kill-at-any-point crash tolerance: for every [`CrashPoint`] in the
//! taxonomy, a run killed there and resumed via
//! [`FedForecaster::resume`] must produce a [`RunResult`] bit-identical
//! (by [`run_fingerprint`]) to the uninterrupted run — including across
//! thread counts, and after the crash's WAL tail has been further
//! truncated, bit-flipped, or buried under garbage.

use fedforecaster::ckpt::{run_fingerprint, Record};
use fedforecaster::prelude::*;
use fedforecaster::EngineError;
use ff_ckpt::{corrupt, read_wal, CkptError, CrashPoint};
use ff_metalearn::kb::KnowledgeBase;
use ff_metalearn::metamodel::{MetaClassifierKind, MetaModel};
use ff_timeseries::synthesis::{generate, SeasonSpec, SynthesisSpec, TrendSpec};
use ff_timeseries::TimeSeries;
use std::path::PathBuf;
use std::sync::OnceLock;

const BUDGET: usize = 5;

fn train_meta() -> MetaModel {
    let kb = KnowledgeBase::build(&ff_metalearn::synth::synthetic_kb(8), &[2], 50);
    MetaModel::train(&kb, MetaClassifierKind::RandomForest, 0).unwrap()
}

fn federation() -> Vec<TimeSeries> {
    let s = generate(
        &SynthesisSpec {
            n: 800,
            trend: TrendSpec::Linear(0.01),
            seasons: vec![SeasonSpec {
                period: 12.0,
                amplitude: 2.0,
            }],
            snr: Some(20.0),
            ..Default::default()
        },
        9,
    );
    s.split_clients(3)
}

fn wal_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ff-crash-recovery-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    path
}

fn cfg(checkpoint: Option<CkptConfig>, threads: usize) -> EngineConfig {
    EngineConfig {
        budget: Budget::Iterations(BUDGET),
        seed: 123,
        par: ff_par::ParConfig::with_threads(threads),
        checkpoint,
        ..Default::default()
    }
}

/// The uninterrupted, checkpoint-free reference fingerprint (computed
/// once; every test compares against it).
fn baseline_fp() -> u64 {
    static FP: OnceLock<u64> = OnceLock::new();
    *FP.get_or_init(|| {
        let result = FedForecaster::new(cfg(None, 1), &train_meta())
            .run(&federation())
            .unwrap();
        run_fingerprint(&result)
    })
}

fn expect_injected_crash(result: Result<RunResult, EngineError>, what: &str) {
    match result {
        Err(EngineError::Checkpoint(CkptError::Crash(_))) => {}
        Err(e) => panic!("{what}: expected an injected crash, got error {e}"),
        Ok(_) => panic!("{what}: expected an injected crash, run completed"),
    }
}

/// Crashes a run at `point`, then resumes with the crash disarmed and
/// returns the resumed result's fingerprint.
fn crash_then_resume(name: &str, point: CrashPoint, threads: usize) -> u64 {
    let path = wal_path(name);
    let mut ck = CkptConfig::at(&path);
    ck.crash = Some(point);
    let crashed = FedForecaster::new(cfg(Some(ck), threads), &train_meta()).run(&federation());
    expect_injected_crash(crashed, name);
    let resumed = FedForecaster::new(cfg(Some(CkptConfig::at(&path)), threads), &train_meta())
        .resume(&federation())
        .unwrap();
    run_fingerprint(&resumed)
}

#[test]
fn checkpointed_run_matches_uncheckpointed_baseline() {
    let path = wal_path("clean.wal");
    let result = FedForecaster::new(cfg(Some(CkptConfig::at(&path)), 1), &train_meta())
        .run(&federation())
        .unwrap();
    let fp = run_fingerprint(&result);
    assert_eq!(fp, baseline_fp(), "checkpointing changed the result");
    // The log closed cleanly: header, two phases, one TrialDone per
    // trial, the member blobs, and a footer whose fingerprint matches.
    let read = read_wal(&path).unwrap();
    assert!(!read.is_torn());
    let records: Vec<Record> = read
        .records
        .iter()
        .map(|p| Record::decode(p))
        .collect::<Result<_, _>>()
        .unwrap();
    assert!(matches!(records[0], Record::RunStart { n_clients: 3, .. }));
    let trials = records
        .iter()
        .filter(|r| matches!(r, Record::TrialDone { .. }))
        .count();
    assert_eq!(trials, BUDGET);
    match records.last().unwrap() {
        Record::RunDone { result_fp } => assert_eq!(*result_fp, fp),
        other => panic!("log should end with RunDone, got {other:?}"),
    }
}

#[test]
fn kill_after_each_trial_resumes_bit_identical() {
    for n in 1..=BUDGET as u32 {
        let fp = crash_then_resume(&format!("trial{n}.wal"), CrashPoint::AfterTrial(n), 1);
        assert_eq!(fp, baseline_fp(), "resume after trial {n} diverged");
    }
}

#[test]
fn kill_after_record_resumes_bit_identical() {
    // Record 1 is the run header; 2–3 the phase commits; 4+ the trials.
    for n in [1u32, 2, 3, 4, 6] {
        let fp = crash_then_resume(&format!("record{n}.wal"), CrashPoint::AfterRecord(n), 1);
        assert_eq!(fp, baseline_fp(), "resume after record {n} diverged");
    }
}

#[test]
fn kill_mid_record_leaves_torn_tail_and_resumes_bit_identical() {
    for n in [1u32, 3, 5] {
        let name = format!("midrecord{n}.wal");
        let path = wal_path(&name);
        let mut ck = CkptConfig::at(&path);
        ck.crash = Some(CrashPoint::MidRecord(n));
        let crashed = FedForecaster::new(cfg(Some(ck), 1), &train_meta()).run(&federation());
        expect_injected_crash(crashed, &name);
        assert!(
            read_wal(&path).unwrap().is_torn(),
            "mid-record crash {n} should leave a torn tail"
        );
        let resumed = FedForecaster::new(cfg(Some(CkptConfig::at(&path)), 1), &train_meta())
            .resume(&federation())
            .unwrap();
        assert_eq!(
            run_fingerprint(&resumed),
            baseline_fp(),
            "resume over torn record {n} diverged"
        );
    }
}

#[test]
fn resume_is_bit_identical_across_thread_counts() {
    // Crash single-threaded, resume on four workers — and vice versa.
    // The checkpoint fingerprint deliberately excludes the thread policy;
    // PR 5/6's determinism contract makes the results interchangeable.
    let fp_1_to_4 = {
        let path = wal_path("threads14.wal");
        let mut ck = CkptConfig::at(&path);
        ck.crash = Some(CrashPoint::AfterTrial(3));
        expect_injected_crash(
            FedForecaster::new(cfg(Some(ck), 1), &train_meta()).run(&federation()),
            "threads14",
        );
        let resumed = FedForecaster::new(cfg(Some(CkptConfig::at(&path)), 4), &train_meta())
            .resume(&federation())
            .unwrap();
        run_fingerprint(&resumed)
    };
    assert_eq!(fp_1_to_4, baseline_fp(), "1-thread crash → 4-thread resume");
    let fp_4_to_1 = crash_then_resume("threads41.wal", CrashPoint::AfterTrial(2), 4);
    assert_eq!(fp_4_to_1, baseline_fp(), "4-thread crash → 1-thread resume");
}

#[test]
fn corrupted_tail_after_crash_still_resumes_bit_identical() {
    // Each corruption lands on the log a real crash left behind; recovery
    // must fall back to the last valid record and re-execute the rest.
    type Corruption = fn(&std::path::Path);
    let corruptions: [(&str, Corruption); 3] = [
        ("truncated", |p| corrupt::truncate_tail(p, 7).unwrap()),
        ("bitflipped", |p| {
            let len = std::fs::metadata(p).unwrap().len();
            corrupt::flip_bit(p, len - 9, 3).unwrap();
        }),
        ("garbage", |p| {
            corrupt::append_garbage(p, 64, 0xC0FFEE).unwrap()
        }),
    ];
    for (what, corrupt_fn) in corruptions {
        let name = format!("corrupt-{what}.wal");
        let path = wal_path(&name);
        let mut ck = CkptConfig::at(&path);
        ck.crash = Some(CrashPoint::AfterTrial(3));
        expect_injected_crash(
            FedForecaster::new(cfg(Some(ck), 1), &train_meta()).run(&federation()),
            &name,
        );
        corrupt_fn(&path);
        let resumed = FedForecaster::new(cfg(Some(CkptConfig::at(&path)), 1), &train_meta())
            .resume(&federation())
            .unwrap();
        assert_eq!(
            run_fingerprint(&resumed),
            baseline_fp(),
            "resume after {what} tail diverged"
        );
    }
}

#[test]
fn compaction_is_transparent_and_survives_pre_rename_crash() {
    // A threshold far below the log's natural size forces a compaction
    // after nearly every trial commit.
    let path = wal_path("compact.wal");
    let mut ck = CkptConfig::at(&path);
    ck.compact_after_bytes = Some(512);
    let result = FedForecaster::new(cfg(Some(ck), 1), &train_meta())
        .run(&federation())
        .unwrap();
    assert_eq!(
        run_fingerprint(&result),
        baseline_fp(),
        "compaction changed the result"
    );

    // Die during the first compaction, after the temp file is written but
    // before the atomic rename: the old log must survive untouched.
    let path = wal_path("prerename.wal");
    let mut ck = CkptConfig::at(&path);
    ck.compact_after_bytes = Some(512);
    ck.crash = Some(CrashPoint::PreRename(1));
    expect_injected_crash(
        FedForecaster::new(cfg(Some(ck), 1), &train_meta()).run(&federation()),
        "prerename",
    );
    let mut ck = CkptConfig::at(&path);
    ck.compact_after_bytes = Some(512);
    let resumed = FedForecaster::new(cfg(Some(ck), 1), &train_meta())
        .resume(&federation())
        .unwrap();
    assert_eq!(
        run_fingerprint(&resumed),
        baseline_fp(),
        "resume after pre-rename crash diverged"
    );
}

#[test]
fn resume_over_a_completed_log_reproduces_the_result() {
    let path = wal_path("completed.wal");
    let engine_cfg = cfg(Some(CkptConfig::at(&path)), 1);
    let first = FedForecaster::new(engine_cfg.clone(), &train_meta())
        .run(&federation())
        .unwrap();
    let again = FedForecaster::new(engine_cfg, &train_meta())
        .resume(&federation())
        .unwrap();
    assert_eq!(run_fingerprint(&again), run_fingerprint(&first));
}

#[test]
fn resume_on_a_missing_log_degrades_to_a_fresh_run() {
    let path = wal_path("never-written.wal");
    let result = FedForecaster::new(cfg(Some(CkptConfig::at(&path)), 1), &train_meta())
        .resume(&federation())
        .unwrap();
    assert_eq!(run_fingerprint(&result), baseline_fp());
    assert!(path.exists(), "the fresh run should have started a new log");
}

#[test]
fn resume_without_checkpoint_config_is_refused() {
    let err = FedForecaster::new(cfg(None, 1), &train_meta())
        .resume(&federation())
        .unwrap_err();
    assert!(matches!(err, EngineError::InvalidData(_)), "got {err}");
}

#[test]
fn log_from_a_different_run_is_refused() {
    let path = wal_path("foreign.wal");
    let mut ck = CkptConfig::at(&path);
    ck.crash = Some(CrashPoint::AfterTrial(2));
    expect_injected_crash(
        FedForecaster::new(cfg(Some(ck), 1), &train_meta()).run(&federation()),
        "foreign",
    );
    // Different seed ⇒ different run: the header check must refuse it.
    let mut other = cfg(Some(CkptConfig::at(&path)), 1);
    other.seed = 124;
    let err = FedForecaster::new(other, &train_meta())
        .resume(&federation())
        .unwrap_err();
    assert!(
        matches!(err, EngineError::Checkpoint(CkptError::Corrupt(_))),
        "got {err}"
    );
    // A different budget changes the config fingerprint too.
    let mut other = cfg(Some(CkptConfig::at(&path)), 1);
    other.budget = Budget::Iterations(BUDGET + 1);
    assert!(FedForecaster::new(other, &train_meta())
        .resume(&federation())
        .is_err());
}

#[test]
fn a_file_that_was_never_a_log_is_a_clean_error() {
    let path = wal_path("nonsense.wal");
    std::fs::write(&path, b"this was never a checkpoint log").unwrap();
    let err = FedForecaster::new(cfg(Some(CkptConfig::at(&path)), 1), &train_meta())
        .resume(&federation())
        .unwrap_err();
    assert!(
        matches!(err, EngineError::Checkpoint(CkptError::Corrupt(_))),
        "got {err}"
    );
}

#[test]
fn ff_crash_at_syntax_covers_the_whole_taxonomy() {
    // The env-var syntax the CI smoke uses maps onto the same taxonomy
    // the tests above exercise directly.
    assert_eq!(
        CrashPoint::parse("trial:2"),
        Some(CrashPoint::AfterTrial(2))
    );
    assert_eq!(
        CrashPoint::parse("record:4"),
        Some(CrashPoint::AfterRecord(4))
    );
    assert_eq!(
        CrashPoint::parse("mid-record:1"),
        Some(CrashPoint::MidRecord(1))
    );
    assert_eq!(
        CrashPoint::parse("pre-rename:1"),
        Some(CrashPoint::PreRename(1))
    );
}
