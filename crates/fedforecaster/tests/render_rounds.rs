//! Golden tests for the per-round fault-tolerance report: the text log is
//! consumed by humans diffing runs, so its exact alignment is part of the
//! contract — a width change should fail loudly here, not silently shift
//! columns in someone's terminal.

use fedforecaster::report::{render_rounds, RoundReport};

fn report(
    phase: &'static str,
    round: u64,
    participants: usize,
    responses: usize,
    usable: usize,
) -> RoundReport {
    RoundReport {
        phase,
        round,
        participants,
        responses,
        usable,
        dropouts: vec![],
        app_errors: vec![],
        non_finite: vec![],
        rejected: vec![],
        quorum_met: true,
    }
}

#[test]
fn golden_alignment() {
    let rounds = vec![
        report("meta_features", 1, 4, 4, 4),
        RoundReport {
            dropouts: vec![(3, "timeout".into())],
            app_errors: vec![(5, "bad split".into())],
            non_finite: vec![0],
            rejected: vec![(7, "non-finite parameters".into())],
            ..report("optimization", 12, 10, 9, 8)
        },
    ];
    let expected = "\
round  phase                part. resp. usable  dropouts
    1  meta_features            4     4      4  -
   12  optimization            10     9      8  #3: timeout; #5: app error: bad split; #0: non-finite loss; #7: rejected: non-finite parameters
";
    assert_eq!(render_rounds(&rounds), expected);
}

#[test]
fn columns_stay_aligned_across_magnitudes() {
    // Rounds and counts of different digit widths must still start every
    // notes column at the same byte offset as the header's "dropouts".
    let rounds = vec![
        report("meta_features", 1, 2, 2, 2),
        report("feature_engineering", 99, 10, 10, 10),
        report("optimization", 12345, 100, 99, 98),
    ];
    let log = render_rounds(&rounds);
    let lines: Vec<&str> = log.lines().collect();
    let notes_col = lines[0].find("dropouts").unwrap();
    for line in &lines[1..] {
        assert_eq!(
            line.find('-'),
            Some(notes_col),
            "notes column drifted in {line:?}"
        );
    }
}

#[test]
fn unmet_quorum_is_called_out() {
    let rounds = vec![RoundReport {
        quorum_met: false,
        ..report("optimization", 8, 2, 0, 0)
    }];
    let log = render_rounds(&rounds);
    assert!(log.contains("QUORUM UNMET"), "log was: {log}");

    // With other notes present, the quorum marker is appended last.
    let rounds = vec![RoundReport {
        quorum_met: false,
        dropouts: vec![(1, "panic".into())],
        ..report("optimization", 9, 3, 1, 1)
    }];
    let log = render_rounds(&rounds);
    assert!(log.contains("#1: panic; QUORUM UNMET"), "log was: {log}");
}
