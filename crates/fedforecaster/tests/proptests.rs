//! Property-based tests for the engine's pure components: feature
//! engineering, selection, the search space, and the report machinery.

use fedforecaster::feature_engineering::{
    causal_trend, engineer, select_features, GlobalFeatureSpec,
};
use fedforecaster::report::fmt_loss;
use fedforecaster::search_space::{
    algorithm_of, config_to_map, from_hyperparams, map_to_config, pipeline_of, pipeline_space,
    table2_space, to_hyperparams, to_pipeline_hyperparams,
};
use ff_bayesopt::space::ParamValue;
use ff_models::pipeline::{NodeId, PipelineId};
use ff_models::spec::SpecValue;
use ff_models::zoo::AlgorithmKind;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #[test]
    fn causal_trend_is_strictly_causal(values in prop::collection::vec(-100.0f64..100.0, 10..60)) {
        let tr = causal_trend(&values);
        prop_assert_eq!(tr.len(), values.len());
        // Changing the tail must not change earlier trend values.
        let mut perturbed = values.clone();
        let last = perturbed.len() - 1;
        perturbed[last] += 1000.0;
        let tr2 = causal_trend(&perturbed);
        for (a, b) in tr.iter().zip(&tr2) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn causal_trend_stays_in_value_hull(values in prop::collection::vec(-50.0f64..50.0, 5..40)) {
        let tr = causal_trend(&values);
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for &t in &tr {
            prop_assert!(t >= lo - 1e-9 && t <= hi + 1e-9);
        }
    }

    #[test]
    fn engineered_rows_partition_and_lags_are_history(
        seed in 0u64..200,
        n in 60usize..200,
    ) {
        let mut state = seed;
        let values: Vec<f64> = (0..n).map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 30) as f64) * 10.0
        }).collect();
        let timestamps: Vec<i64> = (0..n as i64).map(|t| t * 3600).collect();
        let train_end = n * 7 / 10;
        let valid_end = n * 85 / 100;
        let spec = GlobalFeatureSpec {
            lags: vec![1, 2, 4],
            seasonal_periods: vec![7.0],
            use_trend: true,
            use_time: true,
        };
        let e = engineer(&values, &timestamps, train_end, valid_end, &spec).unwrap();
        // Partition: rows cover every index from max_lag to n.
        let total = e.y_train.len() + e.y_valid.len() + e.y_test.len();
        prop_assert_eq!(total, n - 4);
        // lag_1 of every train row equals the previous value.
        for (i, &y) in e.y_train.iter().enumerate() {
            let t = 4 + i; // row index in the original series
            prop_assert_eq!(y, values[t]);
            prop_assert_eq!(e.x_train.get(i, 0), values[t - 1]);
            prop_assert_eq!(e.x_train.get(i, 2), values[t - 4]);
        }
    }

    #[test]
    fn selection_is_sorted_unique_and_nonempty(
        imps in prop::collection::vec(prop::collection::vec(0.0f64..1.0, 8), 1..5),
        threshold in 0.05f64..1.0,
    ) {
        let weights = vec![1.0; imps.len()];
        let kept = select_features(&imps, &weights, threshold);
        prop_assert!(!kept.is_empty());
        prop_assert!(kept.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(kept.iter().all(|&j| j < 8));
        // Monotone: a higher threshold keeps at least as many features.
        let kept_more = select_features(&imps, &weights, (threshold + 0.3).min(1.0));
        prop_assert!(kept_more.len() >= kept.len());
    }

    #[test]
    fn search_space_samples_always_instantiate(seed in 0u64..300) {
        let space = table2_space(&AlgorithmKind::all());
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = space.sample(&mut rng);
        let algo = algorithm_of(&cfg).unwrap();
        let hp = to_hyperparams(&cfg);
        // Every sampled configuration builds a model without panicking.
        let _ = ff_models::zoo::build_regressor(algo, &hp);
        // Wire roundtrip is lossless.
        let back = map_to_config(&config_to_map(&cfg));
        prop_assert_eq!(back, cfg);
    }

    #[test]
    fn sample_decode_encode_decode_is_stable(seed in 0u64..500) {
        // For every registered algorithm: sample → decode → encode →
        // decode is a fixed point (registry encode/decode are inverse on
        // canonicalized values).
        let space = table2_space(&AlgorithmKind::all());
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = space.sample(&mut rng);
        let algo = algorithm_of(&cfg).unwrap();
        let hp = to_hyperparams(&cfg);
        let encoded = from_hyperparams(algo, &hp);
        let hp2 = to_hyperparams(&encoded);
        prop_assert_eq!(&hp2, &hp);
        prop_assert_eq!(from_hyperparams(algo, &hp2), encoded);
    }

    #[test]
    fn unselected_algorithm_dimensions_never_leak(seed in 0u64..300, poison in -1e9f64..1e9) {
        // Poisoning every foreign-namespace dimension must not change the
        // decoded bundle of the selected algorithm.
        let space = table2_space(&AlgorithmKind::all());
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cfg = space.sample(&mut rng);
        let algo = algorithm_of(&cfg).unwrap();
        let clean = to_hyperparams(&cfg);
        for other in AlgorithmKind::all() {
            if other == algo {
                continue;
            }
            for pd in other.spec().params() {
                cfg.insert(pd.key().to_string(), ParamValue::Float(poison));
            }
        }
        prop_assert_eq!(to_hyperparams(&cfg), clean);
    }

    #[test]
    fn pipeline_sample_encode_decode_encode_is_stable(seed in 0u64..500) {
        // Joint-space roundtrip across node namespaces: sample → decode →
        // encode → decode → encode is a fixed point for both the selected
        // structure's node params and the selected algorithm's params.
        let space = pipeline_space(&AlgorithmKind::all(), &PipelineId::builtin());
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = space.sample(&mut rng);
        let pipe = pipeline_of(&cfg).unwrap();
        let algo = algorithm_of(&cfg).unwrap();
        let hp = to_pipeline_hyperparams(&cfg);
        // Re-encode into a fresh configuration holding only the selected
        // branches, then decode again.
        let mut cfg2 = from_hyperparams(algo, &hp);
        cfg2.insert(
            fedforecaster::search_space::PIPELINE_KEY.to_string(),
            ParamValue::Cat(pipe.name().to_string()),
        );
        let encoded = pipe.spec().encode(&hp);
        for (key, value) in &encoded {
            let pv = match value {
                SpecValue::Float(v) => ParamValue::Float(*v),
                SpecValue::Int(v) => ParamValue::Int(*v),
                SpecValue::Cat(s) => ParamValue::Cat(s.clone()),
            };
            cfg2.insert(key.clone(), pv);
        }
        let hp2 = to_pipeline_hyperparams(&cfg2);
        prop_assert_eq!(&hp2, &hp);
        prop_assert_eq!(pipe.spec().encode(&hp2), encoded);
    }

    #[test]
    fn unselected_pipeline_branch_params_never_leak(seed in 0u64..300, poison in -1e9f64..1e9) {
        // Poisoning the node dimensions of every structure the sample did
        // NOT select (and every foreign algorithm namespace) must not
        // change the decoded bundle — the conditional space's inert
        // dimensions are truly inert.
        let space = pipeline_space(&AlgorithmKind::all(), &PipelineId::builtin());
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cfg = space.sample(&mut rng);
        let pipe = pipeline_of(&cfg).unwrap();
        let algo = algorithm_of(&cfg).unwrap();
        let clean = to_pipeline_hyperparams(&cfg);
        for node in NodeId::builtin() {
            if pipe.spec().nodes().contains(&node) {
                continue;
            }
            for pd in node.spec().params() {
                cfg.insert(pd.key().to_string(), ParamValue::Float(poison));
            }
        }
        for other in AlgorithmKind::all() {
            if other == algo {
                continue;
            }
            for pd in other.spec().params() {
                cfg.insert(pd.key().to_string(), ParamValue::Float(poison));
            }
        }
        prop_assert_eq!(to_pipeline_hyperparams(&cfg), clean);
        // Foreign node keys never reach the extras map at all.
        let decoded = to_pipeline_hyperparams(&cfg);
        for node in NodeId::builtin() {
            if !pipe.spec().nodes().contains(&node) {
                for pd in node.spec().params() {
                    prop_assert!(!decoded.extras.contains_key(pd.key()));
                }
            }
        }
    }

    #[test]
    fn fmt_loss_parses_back_close(v in 1e-6f64..1e6) {
        let s = fmt_loss(v);
        let parsed: f64 = s.parse().unwrap();
        prop_assert!((parsed - v).abs() <= 0.002 * v.abs() + 1e-12, "{v} → {s}");
    }
}
