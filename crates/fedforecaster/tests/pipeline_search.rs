//! End-to-end pipeline search: the engine tunes the joint
//! structure-conditional space (pipeline × node params × algorithm ×
//! algorithm params), finalizes the winning composed forecaster by
//! ensemble union of blob-v3 members, and stays deterministic and
//! bit-identical across worker-thread counts.

use fedforecaster::budget::Budget;
use fedforecaster::config::EngineConfig;
use fedforecaster::engine::FedForecaster;
use fedforecaster::report::best_model_label;
use ff_metalearn::kb::KnowledgeBase;
use ff_metalearn::metamodel::{MetaClassifierKind, MetaModel};
use ff_metalearn::synth::synthetic_kb;
use ff_models::pipeline::PipelineId;
use ff_timeseries::synthesis::{generate, SeasonSpec, SynthesisSpec, TrendSpec};
use ff_timeseries::TimeSeries;

fn tiny_metamodel() -> MetaModel {
    let kb = KnowledgeBase::build(&synthetic_kb(8), &[2], 50);
    MetaModel::train(&kb, MetaClassifierKind::RandomForest, 0).unwrap()
}

/// A trending seasonal federation — the shape the two-branch pipelines
/// (polyfit trend ⊕ lagged regression) are built for.
fn federation() -> Vec<TimeSeries> {
    let s = generate(
        &SynthesisSpec {
            n: 800,
            trend: TrendSpec::Linear(0.02),
            seasons: vec![SeasonSpec {
                period: 12.0,
                amplitude: 2.0,
            }],
            snr: Some(25.0),
            ..Default::default()
        },
        31,
    );
    s.split_clients(3)
}

fn pipeline_cfg() -> EngineConfig {
    EngineConfig {
        budget: Budget::Iterations(8),
        pipelines: Some(PipelineId::builtin().to_vec()),
        ..Default::default()
    }
}

#[test]
fn pipeline_search_runs_end_to_end_and_records_the_structure() {
    let meta = tiny_metamodel();
    let result = FedForecaster::new(pipeline_cfg(), &meta)
        .run(&federation())
        .unwrap();
    assert!(result.best_valid_loss.is_finite());
    assert!(result.test_mse.is_finite());
    assert_eq!(result.evaluations, 8);
    // Every configuration in the composed space selects a structure, so
    // the winner always reports one.
    let structure = result.best_pipeline.as_deref().expect("structure recorded");
    assert!(PipelineId::from_name(structure).is_some(), "{structure}");
    // Report label composes structure and algorithm.
    let label = best_model_label(&result);
    assert!(
        label.starts_with(structure) && label.contains('/'),
        "{label}"
    );
}

#[test]
fn flat_runs_report_no_pipeline() {
    let meta = tiny_metamodel();
    let cfg = EngineConfig {
        budget: Budget::Iterations(3),
        ..Default::default()
    };
    let result = FedForecaster::new(cfg, &meta).run(&federation()).unwrap();
    assert!(result.best_pipeline.is_none());
    assert_eq!(
        best_model_label(&result),
        result.best_algorithm.name().to_string()
    );
}

#[test]
fn pipeline_search_is_deterministic_given_seed() {
    let meta = tiny_metamodel();
    let a = FedForecaster::new(pipeline_cfg(), &meta)
        .run(&federation())
        .unwrap();
    let b = FedForecaster::new(pipeline_cfg(), &meta)
        .run(&federation())
        .unwrap();
    assert_eq!(a.best_pipeline, b.best_pipeline);
    assert_eq!(a.best_config, b.best_config);
    assert_eq!(a.loss_history, b.loss_history);
    assert!((a.test_mse - b.test_mse).abs() < 1e-15);
}

#[test]
fn pipeline_search_is_bit_identical_across_thread_counts() {
    let meta = tiny_metamodel();
    let seq = EngineConfig {
        par: ff_par::ParConfig::sequential(),
        ..pipeline_cfg()
    };
    let par8 = EngineConfig {
        par: ff_par::ParConfig::with_threads(8),
        ..pipeline_cfg()
    };
    let a = FedForecaster::new(seq, &meta).run(&federation()).unwrap();
    let b = FedForecaster::new(par8, &meta).run(&federation()).unwrap();
    assert_eq!(a.best_pipeline, b.best_pipeline);
    assert_eq!(a.loss_history, b.loss_history, "losses diverged");
    assert_eq!(
        a.test_mse.to_bits(),
        b.test_mse.to_bits(),
        "test MSE not bit-identical: {} vs {}",
        a.test_mse,
        b.test_mse
    );
    assert_eq!(a.best_valid_loss.to_bits(), b.best_valid_loss.to_bits());
}

#[test]
fn restricted_structure_set_is_honored() {
    // A single-structure space still searches algorithms and node params.
    let meta = tiny_metamodel();
    let cfg = EngineConfig {
        budget: Budget::Iterations(4),
        pipelines: Some(vec![PipelineId::TREND_LAGGED]),
        ..Default::default()
    };
    let result = FedForecaster::new(cfg, &meta).run(&federation()).unwrap();
    assert_eq!(result.best_pipeline.as_deref(), Some("trend_lagged"));
    assert!(result.test_mse.is_finite());
}
