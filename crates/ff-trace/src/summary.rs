//! Human-readable summary sink: aligned text tables for the three
//! questions an operator asks after a run — where did the wall-clock go
//! (per-phase table), what did each client cost (comms/dropout table),
//! and how slow were BO trials (latency percentiles).

use crate::tracer::Telemetry;
use std::fmt::Write as _;

/// One row of the per-client comms table. The caller (the engine) builds
/// these from its message log and health registry; `ff-trace` only
/// renders them.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClientCommsRow {
    /// Client identifier.
    pub client_id: u64,
    /// Bytes sent server → client.
    pub bytes_to_client: u64,
    /// Bytes sent client → server.
    pub bytes_to_server: u64,
    /// Total messages in either direction.
    pub messages: u64,
    /// Rounds this client dropped out of (timeout/app error/panic).
    pub dropouts: u64,
    /// Health state at the end of the run (`healthy` / `suspect` /
    /// `quarantined`).
    pub state: String,
}

/// Renders the aligned text summary: per-phase wall-clock, per-client
/// comms + dropouts, BO trial latency percentiles, then all counters.
pub fn render_summary(t: &Telemetry, clients: &[ClientCommsRow]) -> String {
    let mut out = String::new();

    out.push_str("=== trace summary ===\n");
    let run_us: u64 = t
        .spans_named("run")
        .iter()
        .filter_map(|s| s.duration_us())
        .sum();
    if run_us > 0 {
        let _ = writeln!(out, "total wall-clock: {}", fmt_us(run_us));
    }

    let phases = t.phase_totals();
    if !phases.is_empty() {
        out.push_str("\nphase                     time      calls  share\n");
        let total: u64 = phases.iter().map(|r| r.total_us).sum();
        for row in &phases {
            let share = if total > 0 {
                100.0 * row.total_us as f64 / total as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "{:<24} {:>9} {:>6} {:>5.1}%{}",
                row.name,
                fmt_us(row.total_us),
                row.calls,
                share,
                if row.open > 0 {
                    format!("  ({} open)", row.open)
                } else {
                    String::new()
                }
            );
        }
    }

    // Self-time attribution: where the wall-clock actually went, not
    // just which phase enclosed it.
    if !t.spans.is_empty() {
        let profile = crate::profile::Profile::build(t);
        let table = profile.render_table(12);
        if !table.is_empty() {
            out.push_str("\ntop self-time spans\n");
            out.push_str(&table);
        }
    }

    // Pool imbalance: the per-worker task-count histogram the engine
    // records from ff-par's load counters.
    if let Some(h) = t.histogram_merged("par.worker_tasks") {
        if h.count() > 0 {
            let _ = writeln!(
                out,
                "\npool balance: {} workers, tasks/worker min {:.0} mean {:.1} max {:.0}",
                h.count(),
                h.min().unwrap_or(0.0),
                h.mean().unwrap_or(0.0),
                h.max().unwrap_or(0.0),
            );
        }
    }

    if !clients.is_empty() {
        out.push_str("\nclient  to-client   to-server    msgs  drops  state\n");
        for row in clients {
            let _ = writeln!(
                out,
                "{:>6} {:>10} {:>11} {:>7} {:>6}  {}",
                row.client_id,
                fmt_bytes(row.bytes_to_client),
                fmt_bytes(row.bytes_to_server),
                row.messages,
                row.dropouts,
                row.state
            );
        }
    }

    let trial_durs = t.durations_us("trial");
    if !trial_durs.is_empty() {
        let mut h = crate::hist::Histogram::new();
        for d in &trial_durs {
            h.record(*d as f64);
        }
        let _ = writeln!(
            out,
            "\nBO trials: {}  p50 {}  p95 {}  max {}",
            trial_durs.len(),
            fmt_us(h.percentile(0.50).unwrap_or(0.0) as u64),
            fmt_us(h.percentile(0.95).unwrap_or(0.0) as u64),
            fmt_us(h.max().unwrap_or(0.0) as u64),
        );
    }
    for (name, src) in [("gp.fit", "GP fits"), ("gp.acquire", "acquisitions")] {
        let durs = t.durations_us(name);
        if durs.is_empty() {
            continue;
        }
        let total: u64 = durs.iter().sum();
        let _ = writeln!(out, "{}: {} totalling {}", src, durs.len(), fmt_us(total));
    }

    // Robust-aggregation guard activity gets its own headline: a nonzero
    // rejection count means the run survived Byzantine replies, which a
    // reader should not have to dig out of the counter dump.
    let rejected = t.counter("fl.updates_rejected");
    if rejected > 0 {
        let _ = writeln!(
            out,
            "\nbyzantine defense: {} updates rejected, {} clients suspected",
            rejected,
            t.counter("fl.byzantine_suspected"),
        );
    }

    if !t.counters.is_empty() {
        out.push_str("\ncounters\n");
        for (id, v) in &t.counters {
            match id.label {
                Some(l) => {
                    let _ = writeln!(out, "  {:<28} [{}] {}", id.name, l, v);
                }
                None => {
                    let _ = writeln!(out, "  {:<28} {}", id.name, v);
                }
            }
        }
    }
    if !t.gauges.is_empty() {
        out.push_str("\ngauges\n");
        for (id, v) in &t.gauges {
            let _ = writeln!(out, "  {:<28} {:.6}", id.name, v);
        }
    }
    out
}

/// Formats a microsecond duration with an adaptive unit (`µs`, `ms`, `s`).
pub fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.2}ms", us as f64 / 1e3)
    } else {
        format!("{us}µs")
    }
}

/// Formats a byte count with an adaptive unit (`B`, `KiB`, `MiB`).
pub fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{:.2}MiB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1}KiB", b as f64 / 1024.0)
    } else {
        format!("{b}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::Tracer;

    #[test]
    fn summary_lists_phases_clients_and_counters() {
        let t = Tracer::enabled();
        {
            let _run = t.span("run");
            {
                let _p = t.span("phase.meta_features");
            }
            {
                let _p = t.span("phase.optimization");
                let _trial = t.span("trial");
            }
            t.counter_add("fl.retries", 3);
            t.gauge_set("bo.incumbent_loss", 0.25);
        }
        let clients = vec![
            ClientCommsRow {
                client_id: 0,
                bytes_to_client: 2048,
                bytes_to_server: 4096,
                messages: 12,
                dropouts: 0,
                state: "healthy".into(),
            },
            ClientCommsRow {
                client_id: 1,
                bytes_to_client: 100,
                bytes_to_server: 0,
                messages: 2,
                dropouts: 5,
                state: "quarantined".into(),
            },
        ];
        let s = render_summary(&t.snapshot(), &clients);
        assert!(
            !s.contains("byzantine defense"),
            "no guard activity, no headline: {s}"
        );
        t.counter_add("fl.updates_rejected", 4);
        t.counter_add("fl.byzantine_suspected", 2);
        let s2 = render_summary(&t.snapshot(), &clients);
        assert!(
            s2.contains("byzantine defense: 4 updates rejected, 2 clients suspected"),
            "summary was: {s2}"
        );
        assert!(s.contains("phase.meta_features"));
        assert!(s.contains("phase.optimization"));
        assert!(s.contains("BO trials: 1"));
        assert!(s.contains("p50"));
        assert!(s.contains("p95"));
        assert!(s.contains("2.0KiB"));
        assert!(s.contains("quarantined"));
        assert!(s.contains("fl.retries"));
        assert!(s.contains("bo.incumbent_loss"));
        // Client table rows align: same column start for the state field.
        let rows: Vec<&str> = s
            .lines()
            .filter(|l| l.contains("healthy") || l.contains("quarantined"))
            .collect();
        assert_eq!(rows.len(), 2);
        let col = |l: &str, needle: &str| l.find(needle).unwrap();
        assert_eq!(col(rows[0], "healthy"), col(rows[1], "quarantined"));
    }

    #[test]
    fn empty_telemetry_renders_header_only() {
        let t = Tracer::enabled();
        let s = render_summary(&t.snapshot(), &[]);
        assert!(s.starts_with("=== trace summary ==="));
        assert!(!s.contains("phase."));
        assert!(!s.contains("client"));
    }

    #[test]
    fn formatting_helpers_pick_units() {
        assert_eq!(fmt_us(900), "900µs");
        assert_eq!(fmt_us(1500), "1.50ms");
        assert_eq!(fmt_us(2_500_000), "2.50s");
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(2048), "2.0KiB");
        assert_eq!(fmt_bytes(3 << 20), "3.00MiB");
    }
}
