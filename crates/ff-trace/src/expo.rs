//! Live metrics exposition: a tiny std-only TCP listener serving
//! Prometheus text-format snapshots plus a `/healthz` round-liveness
//! probe.
//!
//! Deliberately bounded: one named thread, sequential connection
//! handling (the accept loop *is* the handler, so concurrency is exactly
//! one), a request-size cap, a read timeout, and snapshot-on-scrape —
//! each `/metrics` hit takes one fresh [`Telemetry`] snapshot and
//! renders it, so a scrape can never observe torn state. Off by
//! default: nothing listens unless the engine was configured with an
//! exposition port.

use crate::hist::Histogram;
use crate::tracer::{MetricId, Telemetry, Tracer};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Exposition-endpoint configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpoConfig {
    /// Port to bind on 127.0.0.1 (0 picks an ephemeral port; read it
    /// back from [`ExpoServer::addr`]).
    pub port: u16,
    /// Request-line cap; longer requests get `414` and a closed socket.
    pub max_request_bytes: usize,
    /// Per-connection read timeout.
    pub read_timeout: Duration,
    /// `/healthz` staleness window: the probe reports `503` when the
    /// newest span/event activity is older than this at scrape time.
    pub liveness_window: Duration,
}

impl Default for ExpoConfig {
    fn default() -> Self {
        ExpoConfig {
            port: 0,
            max_request_bytes: 4096,
            read_timeout: Duration::from_millis(500),
            liveness_window: Duration::from_secs(30),
        }
    }
}

/// The running exposition server. Dropping it stops the listener thread.
#[derive(Debug)]
pub struct ExpoServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    served: Arc<AtomicU64>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ExpoServer {
    /// Binds 127.0.0.1:`cfg.port` and serves scrapes of `tracer` until
    /// dropped. The tracer may be disabled — scrapes then see an empty
    /// snapshot (and `/healthz` reports stale), but the listener itself
    /// works, so a probe can distinguish "process up, tracing off" from
    /// "process gone".
    pub fn start(tracer: Tracer, cfg: ExpoConfig) -> std::io::Result<ExpoServer> {
        let listener = TcpListener::bind(("127.0.0.1", cfg.port))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let served = Arc::new(AtomicU64::new(0));
        let (stop2, served2) = (Arc::clone(&stop), Arc::clone(&served));
        let handle = std::thread::Builder::new()
            .name("ff-expo".into())
            .spawn(move || {
                while !stop2.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            // Sequential by construction: the accept loop is
                            // the handler, so at most one connection is ever
                            // in flight.
                            if handle_conn(stream, &tracer, &cfg).is_ok() {
                                served2.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(10)),
                    }
                }
            })?;
        Ok(ExpoServer {
            addr,
            stop,
            served,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections served so far.
    pub fn requests_served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }
}

impl Drop for ExpoServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn handle_conn(mut stream: TcpStream, tracer: &Tracer, cfg: &ExpoConfig) -> std::io::Result<()> {
    stream.set_read_timeout(Some(cfg.read_timeout))?;
    stream.set_nodelay(true).ok();
    let mut buf = vec![0u8; cfg.max_request_bytes];
    let mut len = 0usize;
    // Read until the end of the request head (blank line) or the cap.
    loop {
        match stream.read(&mut buf[len..]) {
            Ok(0) => break,
            Ok(n) => {
                len += n;
                if buf[..len].windows(4).any(|w| w == b"\r\n\r\n")
                    || buf[..len].windows(2).any(|w| w == b"\n\n")
                {
                    break;
                }
                if len == buf.len() {
                    let r = respond(&mut stream, 414, "text/plain", "request too large\n");
                    // Drain what the client already sent (bounded by the
                    // read timeout and a byte cap) so closing with unread
                    // data does not RST the response away.
                    let mut sink = [0u8; 1024];
                    let mut drained = 0usize;
                    while drained < (1 << 20) {
                        match stream.read(&mut sink) {
                            Ok(0) | Err(_) => break,
                            Ok(n) => drained += n,
                        }
                    }
                    return r;
                }
            }
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&buf[..len]);
    let mut parts = head.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if method != "GET" {
        return respond(&mut stream, 405, "text/plain", "method not allowed\n");
    }
    match path {
        "/metrics" => {
            let body = render_prometheus(&tracer.snapshot());
            respond(
                &mut stream,
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            )
        }
        "/healthz" => {
            let snap = tracer.snapshot();
            let (alive, detail) = liveness(&snap, cfg.liveness_window);
            let rounds = snap.counter("fleet.rounds") + snap.counter("fl.rounds");
            let body = format!(
                "{}\nrounds: {}\n{}\n",
                if alive { "ok" } else { "stale" },
                rounds,
                detail
            );
            respond(
                &mut stream,
                if alive { 200 } else { 503 },
                "text/plain",
                &body,
            )
        }
        _ => respond(&mut stream, 404, "text/plain", "not found\n"),
    }
}

fn respond(stream: &mut TcpStream, code: u16, ctype: &str, body: &str) -> std::io::Result<()> {
    let reason = match code {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        414 => "URI Too Long",
        503 => "Service Unavailable",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {code} {reason}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Round liveness judged from the snapshot itself: the newest span
/// start/end or event timestamp, compared against the capture instant.
/// No side channel between the fleet loop and the server is needed —
/// an active run keeps producing spans, a hung one stops.
fn liveness(t: &Telemetry, window: Duration) -> (bool, String) {
    let mut last: Option<u64> = None;
    for s in &t.spans {
        last = last.max(Some(s.end_us.unwrap_or(s.start_us)));
    }
    for e in &t.events {
        last = last.max(Some(e.at_us));
    }
    match last {
        None => (false, "no activity recorded".into()),
        Some(l) => {
            let idle_us = t.captured_us.saturating_sub(l);
            (
                idle_us <= window.as_micros() as u64,
                format!("idle_us: {idle_us}"),
            )
        }
    }
}

/// Sanitizes a metric name into the Prometheus charset, prefixed `ff_`.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 3);
    out.push_str("ff_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".into()
    } else if v == f64::INFINITY {
        "+Inf".into()
    } else if v == f64::NEG_INFINITY {
        "-Inf".into()
    } else {
        format!("{v}")
    }
}

fn label_suffix(id: &MetricId) -> String {
    match id.label {
        Some(l) => format!("{{label=\"{l}\"}}"),
        None => String::new(),
    }
}

/// Renders one snapshot in the Prometheus text exposition format
/// (version 0.0.4): counters (`_total`-suffixed), gauges, and log-bucket
/// histograms as cumulative `le` series with `_sum`/`_count`.
pub fn render_prometheus(t: &Telemetry) -> String {
    let mut out = String::new();
    // Counters are sorted by MetricId, so equal names are consecutive:
    // emit one TYPE line per family.
    let mut prev: Option<&str> = None;
    for (id, v) in &t.counters {
        let fam = sanitize(id.name);
        if prev != Some(id.name) {
            out.push_str(&format!("# TYPE {fam}_total counter\n"));
            prev = Some(id.name);
        }
        out.push_str(&format!("{fam}_total{} {v}\n", label_suffix(id)));
    }
    prev = None;
    for (id, v) in &t.gauges {
        let fam = sanitize(id.name);
        if prev != Some(id.name) {
            out.push_str(&format!("# TYPE {fam} gauge\n"));
            prev = Some(id.name);
        }
        out.push_str(&format!("{fam}{} {}\n", label_suffix(id), fmt_value(*v)));
    }
    prev = None;
    for (id, h) in &t.histograms {
        let fam = sanitize(id.name);
        if prev != Some(id.name) {
            out.push_str(&format!("# TYPE {fam} histogram\n"));
            prev = Some(id.name);
        }
        push_histogram(&mut out, &fam, id, h);
    }
    out
}

fn push_histogram(out: &mut String, fam: &str, id: &MetricId, h: &Histogram) {
    let extra_label = id.label.map(|l| format!("label=\"{l}\""));
    let mut cumulative = 0u64;
    for (idx, count) in h.buckets() {
        cumulative += count;
        let (_, hi) = Histogram::bucket_bounds(idx);
        let le = if hi.is_finite() {
            format!("{hi}")
        } else {
            "+Inf".into()
        };
        push_hist_sample(
            out,
            fam,
            "_bucket",
            &extra_label,
            Some(&le),
            cumulative as f64,
        );
    }
    push_hist_sample(
        out,
        fam,
        "_bucket",
        &extra_label,
        Some("+Inf"),
        h.count() as f64,
    );
    push_hist_sample(out, fam, "_sum", &extra_label, None, h.sum());
    push_hist_sample(out, fam, "_count", &extra_label, None, h.count() as f64);
}

fn push_hist_sample(
    out: &mut String,
    fam: &str,
    suffix: &str,
    extra_label: &Option<String>,
    le: Option<&str>,
    value: f64,
) {
    out.push_str(fam);
    out.push_str(suffix);
    let mut labels: Vec<String> = Vec::new();
    if let Some(l) = extra_label {
        labels.push(l.clone());
    }
    if let Some(le) = le {
        labels.push(format!("le=\"{le}\""));
    }
    if !labels.is_empty() {
        out.push('{');
        out.push_str(&labels.join(","));
        out.push('}');
    }
    out.push(' ');
    out.push_str(&fmt_value(value));
    out.push('\n');
}

/// Structural validation of a Prometheus text exposition: every sample
/// line parses, every family has a `# TYPE` line *before* its first
/// sample, names are in the legal charset, and histogram samples only
/// use the declared suffixes. Used by the CI smoke step and tests.
pub fn validate_exposition(text: &str) -> Result<(), String> {
    let mut types: Vec<(String, String)> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let (name, kind) = (
                it.next().ok_or(format!("line {n}: TYPE without name"))?,
                it.next().ok_or(format!("line {n}: TYPE without kind"))?,
            );
            if !matches!(
                kind,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err(format!("line {n}: unknown TYPE kind {kind}"));
            }
            types.push((name.to_string(), kind.to_string()));
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let name_end = line
            .find(['{', ' '])
            .ok_or(format!("line {n}: no value separator"))?;
        let name = &line[..name_end];
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
            || name.starts_with(|c: char| c.is_ascii_digit())
        {
            return Err(format!("line {n}: illegal metric name {name:?}"));
        }
        // The family must have been declared before its first sample.
        let declared = types.iter().any(|(t, kind)| {
            name == t
                || (kind == "histogram"
                    && [
                        format!("{t}_bucket"),
                        format!("{t}_sum"),
                        format!("{t}_count"),
                    ]
                    .contains(&name.to_string()))
        });
        if !declared {
            return Err(format!("line {n}: sample {name} precedes its TYPE line"));
        }
        // Labels, if present, must close before the value.
        let rest = &line[name_end..];
        let value_part = if let Some(stripped) = rest.strip_prefix('{') {
            let close = stripped
                .find('}')
                .ok_or(format!("line {n}: unclosed label set"))?;
            stripped[close + 1..].trim_start()
        } else {
            rest.trim_start()
        };
        let value = value_part
            .split_whitespace()
            .next()
            .ok_or(format!("line {n}: missing value"))?;
        let ok = matches!(value, "NaN" | "+Inf" | "-Inf") || value.parse::<f64>().is_ok();
        if !ok {
            return Err(format!("line {n}: unparseable value {value:?}"));
        }
    }
    Ok(())
}

/// The value of the first unlabeled sample named exactly `name`. Test
/// and smoke-step helper.
pub fn sample_value(text: &str, name: &str) -> Option<f64> {
    for line in text.lines() {
        if line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix(name) {
            if let Some(value) = rest.strip_prefix(' ') {
                return value.split_whitespace().next()?.parse().ok();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::Tracer;

    fn scrape(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        let code: u16 = resp.split_whitespace().nth(1).unwrap().parse().unwrap();
        let body = resp
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (code, body)
    }

    fn sample_tracer() -> Tracer {
        let t = Tracer::enabled();
        t.counter_add("fleet.rounds", 4);
        t.counter_add_labeled("client.bytes", 2, 128);
        t.gauge_set("bo.incumbent_loss", 0.5);
        t.gauge_set("engine.budget_remaining", f64::INFINITY);
        t.record("trial.latency_us", 1500.0);
        t.record("trial.latency_us", 90.0);
        t
    }

    #[test]
    fn exposition_is_valid_and_carries_all_metric_kinds() {
        let text = render_prometheus(&sample_tracer().snapshot());
        validate_exposition(&text).unwrap();
        assert!(text.contains("# TYPE ff_fleet_rounds_total counter"));
        assert!(text.contains("ff_fleet_rounds_total 4"));
        assert!(text.contains("ff_client_bytes_total{label=\"2\"} 128"));
        assert!(text.contains("# TYPE ff_bo_incumbent_loss gauge"));
        assert!(text.contains("ff_engine_budget_remaining +Inf"));
        assert!(text.contains("# TYPE ff_trial_latency_us histogram"));
        assert!(text.contains("le=\"+Inf\"} 2"));
        assert!(text.contains("ff_trial_latency_us_count 2"));
        assert_eq!(sample_value(&text, "ff_fleet_rounds_total"), Some(4.0));
        // Cumulative buckets are monotone.
        let mut prev = 0.0;
        for line in text.lines().filter(|l| l.contains("_bucket")) {
            let v: f64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= prev, "bucket series must be cumulative: {line}");
            prev = v;
        }
    }

    #[test]
    fn validator_rejects_malformed_expositions() {
        assert!(validate_exposition("metric_without_type 1\n").is_err());
        assert!(validate_exposition("# TYPE m counter\nm 1\n").is_ok());
        assert!(validate_exposition("# TYPE m counter\nm not_a_number\n").is_err());
        assert!(validate_exposition("# TYPE m counter\n9bad 1\n").is_err());
        assert!(validate_exposition("# TYPE m counter\nm{le=\"x\" 1\n").is_err());
        assert!(validate_exposition(
            "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n"
        )
        .is_ok());
    }

    #[test]
    fn server_serves_metrics_healthz_and_404() {
        let tracer = sample_tracer();
        let server = ExpoServer::start(tracer.clone(), ExpoConfig::default()).unwrap();
        let (code, body) = scrape(server.addr(), "/metrics");
        assert_eq!(code, 200);
        validate_exposition(&body).unwrap();
        assert_eq!(sample_value(&body, "ff_fleet_rounds_total"), Some(4.0));
        // Liveness: activity was seconds ago at most — alive.
        let (code, body) = scrape(server.addr(), "/healthz");
        assert_eq!(code, 200, "healthz said: {body}");
        assert!(body.contains("rounds: 4"));
        let (code, _) = scrape(server.addr(), "/nope");
        assert_eq!(code, 404);
        assert!(server.requests_served() >= 3);
    }

    #[test]
    fn healthz_reports_stale_without_recent_activity() {
        // A tracer with no activity at all: stale by definition.
        let server = ExpoServer::start(Tracer::enabled(), ExpoConfig::default()).unwrap();
        let (code, body) = scrape(server.addr(), "/healthz");
        assert_eq!(code, 503);
        assert!(body.contains("stale"));
        // A tight liveness window ages out old activity.
        let t = Tracer::enabled();
        t.counter_add("fleet.rounds", 1);
        t.gauge_set("x", 1.0);
        std::thread::sleep(Duration::from_millis(20));
        let server = ExpoServer::start(
            t,
            ExpoConfig {
                liveness_window: Duration::from_millis(1),
                ..Default::default()
            },
        )
        .unwrap();
        let (code, _) = scrape(server.addr(), "/healthz");
        assert_eq!(code, 503);
    }

    #[test]
    fn oversized_and_non_get_requests_are_bounded() {
        let server = ExpoServer::start(Tracer::disabled(), ExpoConfig::default()).unwrap();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.write_all(b"POST /metrics HTTP/1.1\r\n\r\n").unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.1 405"));
        let mut s = TcpStream::connect(server.addr()).unwrap();
        let huge = vec![b'a'; 8192];
        s.write_all(b"GET /").unwrap();
        s.write_all(&huge).unwrap();
        s.shutdown(std::net::Shutdown::Write).unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.1 414"), "got: {resp}");
    }
}
