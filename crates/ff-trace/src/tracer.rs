//! The tracer: hierarchical spans, counters, gauges, histograms, and a
//! point-event stream behind one thread-safe handle.
//!
//! A [`Tracer`] is either *enabled* (one shared `Arc` of state) or
//! *disabled* (a `None` — every operation returns immediately without
//! locking, timing, or allocating, so instrumentation left in a hot path
//! costs a branch). Clones share state, so the engine, the FL runtime,
//! and the optimizer all write into one trace.
//!
//! Span nesting is tracked per thread: a span's parent is whatever span
//! was open on the same thread when it started. Guards close spans on
//! drop, which keeps the per-thread stack LIFO even when an enclosing
//! frame unwinds through `catch_unwind` — the guard's destructor runs
//! during unwinding like any other. A guard dropped out of order
//! force-closes every span opened above it on the same thread.

use crate::hist::Histogram;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::thread::ThreadId;
use std::time::Instant;

/// A metric identity: a static name plus an optional numeric label
/// (client id, round number, …). Using `&'static str` keys keeps the
/// enabled fast path free of string allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricId {
    /// Metric name (dot-separated, e.g. `fl.deadline_misses`).
    pub name: &'static str,
    /// Optional numeric label dimension.
    pub label: Option<u64>,
}

/// One completed (or still-open) span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span id (1-based, in creation order).
    pub id: u64,
    /// Enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Span name (e.g. `phase.optimization`, `trial`, `fl.round`).
    pub name: &'static str,
    /// Optional numeric label (round number, trial index, …).
    pub label: Option<u64>,
    /// Small per-tracer thread index (0 = first thread seen).
    pub thread: u64,
    /// Start offset from the tracer epoch, in microseconds.
    pub start_us: u64,
    /// End offset, or `None` if the span was still open at snapshot time.
    pub end_us: Option<u64>,
}

impl SpanRecord {
    /// Wall-clock duration in microseconds, if the span has closed.
    pub fn duration_us(&self) -> Option<u64> {
        self.end_us.map(|e| e.saturating_sub(self.start_us))
    }

    /// Whether the span was still open at snapshot time.
    pub fn is_open(&self) -> bool {
        self.end_us.is_none()
    }

    /// Wall-clock observed so far: the closed duration, or — for a span
    /// still open at snapshot time — the elapsed time up to the snapshot
    /// capture instant. Unlike [`SpanRecord::duration_us`] this never
    /// silently drops open spans.
    pub fn observed_us(&self, captured_us: u64) -> u64 {
        match self.end_us {
            Some(e) => e.saturating_sub(self.start_us),
            None => captured_us.saturating_sub(self.start_us),
        }
    }
}

/// One point event (gauge updates are also mirrored here, so the JSON
/// trace carries gauge *trajectories*, not just final values).
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Event name.
    pub name: &'static str,
    /// Optional numeric label.
    pub label: Option<u64>,
    /// Offset from the tracer epoch, in microseconds.
    pub at_us: u64,
    /// Event value.
    pub value: f64,
}

#[derive(Debug, Default)]
struct State {
    spans: Vec<SpanRecord>,
    stacks: HashMap<ThreadId, Vec<u64>>,
    threads: HashMap<ThreadId, u64>,
    counters: HashMap<MetricId, u64>,
    gauges: HashMap<MetricId, f64>,
    hists: HashMap<MetricId, Histogram>,
    events: Vec<EventRecord>,
}

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    state: Mutex<State>,
}

/// The tracing handle. Cheap to clone (an `Arc`, or nothing at all when
/// disabled); the default is disabled.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Inner>>,
}

impl Tracer {
    /// A disabled tracer: every operation is a branch-and-return, with no
    /// locking, no clock reads, and no allocation.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// An enabled tracer recording into fresh shared state.
    pub fn enabled() -> Tracer {
        Tracer {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                state: Mutex::new(State::default()),
            })),
        }
    }

    /// Whether this tracer records anything. Use to guard instrumentation
    /// whose *inputs* are expensive to compute.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a span; it closes when the returned guard drops.
    #[must_use = "the span closes when the guard drops; binding it to _ closes it immediately"]
    pub fn span(&self, name: &'static str) -> SpanGuard {
        self.span_inner(name, None)
    }

    /// Opens a labeled span (label: round number, trial index, …).
    #[must_use = "the span closes when the guard drops; binding it to _ closes it immediately"]
    pub fn span_labeled(&self, name: &'static str, label: u64) -> SpanGuard {
        self.span_inner(name, Some(label))
    }

    fn span_inner(&self, name: &'static str, label: Option<u64>) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard(None);
        };
        let start_us = inner.epoch.elapsed().as_micros() as u64;
        let tid = std::thread::current().id();
        let mut s = inner.state.lock();
        let next_thread = s.threads.len() as u64;
        let thread = *s.threads.entry(tid).or_insert(next_thread);
        let id = s.spans.len() as u64 + 1;
        let parent = s.stacks.get(&tid).and_then(|st| st.last().copied());
        s.spans.push(SpanRecord {
            id,
            parent,
            name,
            label,
            thread,
            start_us,
            end_us: None,
        });
        s.stacks.entry(tid).or_default().push(id);
        SpanGuard(Some((Arc::clone(inner), id)))
    }

    /// Adds to a counter.
    pub fn counter_add(&self, name: &'static str, by: u64) {
        self.counter_add_labeled_inner(name, None, by);
    }

    /// Adds to a labeled counter.
    pub fn counter_add_labeled(&self, name: &'static str, label: u64, by: u64) {
        self.counter_add_labeled_inner(name, Some(label), by);
    }

    fn counter_add_labeled_inner(&self, name: &'static str, label: Option<u64>, by: u64) {
        let Some(inner) = &self.inner else {
            return;
        };
        let mut s = inner.state.lock();
        *s.counters.entry(MetricId { name, label }).or_insert(0) += by;
    }

    /// Sets a gauge to its latest value and mirrors the update into the
    /// event stream (so the trace carries the gauge's trajectory).
    pub fn gauge_set(&self, name: &'static str, value: f64) {
        let Some(inner) = &self.inner else {
            return;
        };
        let at_us = inner.epoch.elapsed().as_micros() as u64;
        let mut s = inner.state.lock();
        s.gauges.insert(MetricId { name, label: None }, value);
        s.events.push(EventRecord {
            name,
            label: None,
            at_us,
            value,
        });
    }

    /// Records one observation into a histogram.
    pub fn record(&self, name: &'static str, value: f64) {
        self.record_labeled_inner(name, None, value);
    }

    /// Records one observation into a labeled histogram.
    pub fn record_labeled(&self, name: &'static str, label: u64, value: f64) {
        self.record_labeled_inner(name, Some(label), value);
    }

    fn record_labeled_inner(&self, name: &'static str, label: Option<u64>, value: f64) {
        let Some(inner) = &self.inner else {
            return;
        };
        let mut s = inner.state.lock();
        s.hists
            .entry(MetricId { name, label })
            .or_default()
            .record(value);
    }

    /// A consistent snapshot of everything recorded so far. Metrics are
    /// sorted by id; spans and events stay in creation order. Open spans
    /// appear with `end_us: None`.
    pub fn snapshot(&self) -> Telemetry {
        let Some(inner) = &self.inner else {
            return Telemetry::default();
        };
        let s = inner.state.lock();
        // Capture instant taken under the lock, so it is ≥ every recorded
        // start/end offset: open-span elapsed-so-far can never go negative.
        let captured_us = inner.epoch.elapsed().as_micros() as u64;
        let mut counters: Vec<(MetricId, u64)> = s.counters.iter().map(|(k, v)| (*k, *v)).collect();
        counters.sort_by_key(|(k, _)| *k);
        let mut gauges: Vec<(MetricId, f64)> = s.gauges.iter().map(|(k, v)| (*k, *v)).collect();
        gauges.sort_by_key(|(k, _)| *k);
        let mut histograms: Vec<(MetricId, Histogram)> =
            s.hists.iter().map(|(k, v)| (*k, v.clone())).collect();
        histograms.sort_by_key(|(k, _)| *k);
        Telemetry {
            spans: s.spans.clone(),
            events: s.events.clone(),
            counters,
            gauges,
            histograms,
            captured_us,
        }
    }

    /// Number of spans currently open on the calling thread (test hook
    /// for the LIFO-closure property).
    pub fn open_spans_on_this_thread(&self) -> usize {
        let Some(inner) = &self.inner else {
            return 0;
        };
        let s = inner.state.lock();
        s.stacks
            .get(&std::thread::current().id())
            .map(|st| st.len())
            .unwrap_or(0)
    }
}

/// Closes its span on drop. The disabled-tracer guard holds nothing.
#[derive(Debug)]
pub struct SpanGuard(Option<(Arc<Inner>, u64)>);

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some((inner, id)) = self.0.take() else {
            return;
        };
        let end_us = inner.epoch.elapsed().as_micros() as u64;
        let tid = std::thread::current().id();
        let mut s = inner.state.lock();
        // Pop this thread's stack down to (and including) this span,
        // force-closing anything opened above it that leaked its guard.
        // If the guard migrated threads, close just its own span.
        let mut to_close: Vec<u64> = Vec::new();
        if let Some(stack) = s.stacks.get_mut(&tid) {
            if stack.contains(&id) {
                while let Some(top) = stack.pop() {
                    to_close.push(top);
                    if top == id {
                        break;
                    }
                }
            }
        }
        if to_close.is_empty() {
            to_close.push(id);
        }
        for sid in to_close {
            if let Some(rec) = s.spans.get_mut((sid - 1) as usize) {
                if rec.end_us.is_none() {
                    rec.end_us = Some(end_us);
                }
            }
        }
    }
}

/// An immutable snapshot of a tracer's state.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    /// All spans in creation order (open spans have `end_us: None`).
    pub spans: Vec<SpanRecord>,
    /// Point events (including gauge updates) in creation order.
    pub events: Vec<EventRecord>,
    /// Counters, sorted by id.
    pub counters: Vec<(MetricId, u64)>,
    /// Gauges (latest values), sorted by id.
    pub gauges: Vec<(MetricId, f64)>,
    /// Histograms, sorted by id.
    pub histograms: Vec<(MetricId, Histogram)>,
    /// Snapshot capture instant as an offset from the tracer epoch (µs).
    /// Taken under the state lock, so it is ≥ every span/event offset;
    /// open spans measure elapsed-so-far against this.
    pub captured_us: u64,
}

/// One row of the per-phase wall-clock table: spans named `phase.*`
/// aggregated by name, counting open spans' elapsed-so-far explicitly
/// instead of silently dropping them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseTotal {
    /// Phase span name (e.g. `phase.optimization`).
    pub name: &'static str,
    /// Total observed wall-clock across all calls, in microseconds.
    /// Open spans contribute elapsed time up to the snapshot instant.
    pub total_us: u64,
    /// Number of spans with this name (open or closed).
    pub calls: usize,
    /// How many of those were still open at snapshot time.
    pub open: usize,
}

impl Telemetry {
    /// All spans with the given name.
    pub fn spans_named(&self, name: &str) -> Vec<&SpanRecord> {
        self.spans.iter().filter(|s| s.name == name).collect()
    }

    /// The span with the given id.
    pub fn span_by_id(&self, id: u64) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.id == id)
    }

    /// Total of a counter across all labels.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, v)| *v)
            .sum()
    }

    /// Latest value of an unlabeled gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges
            .iter()
            .find(|(k, _)| k.name == name && k.label.is_none())
            .map(|(_, v)| *v)
    }

    /// The unlabeled histogram with the given name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(k, _)| k.name == name && k.label.is_none())
            .map(|(_, h)| h)
    }

    /// The merge of every histogram with the given name across all labels
    /// (e.g. the per-client byte histograms combined federation-wide), or
    /// `None` when nothing was recorded. Merge order cannot matter: rank
    /// statistics of the result are label-order-invariant.
    pub fn histogram_merged(&self, name: &str) -> Option<Histogram> {
        let mut merged: Option<Histogram> = None;
        for (k, h) in &self.histograms {
            if k.name == name {
                merged.get_or_insert_with(Histogram::new).merge(h);
            }
        }
        merged
    }

    /// Durations (µs) of all *closed* spans with the given name.
    pub fn durations_us(&self, name: &str) -> Vec<u64> {
        self.spans
            .iter()
            .filter(|s| s.name == name)
            .filter_map(|s| s.duration_us())
            .collect()
    }

    /// Aggregates spans named `phase.*` into [`PhaseTotal`] rows in
    /// first-seen order — the per-phase wall-clock table. A span still
    /// open at snapshot time contributes its elapsed-so-far (up to
    /// [`Telemetry::captured_us`]) and bumps the row's `open` count.
    pub fn phase_totals(&self) -> Vec<PhaseTotal> {
        let mut rows: Vec<PhaseTotal> = Vec::new();
        for s in &self.spans {
            if !s.name.starts_with("phase.") {
                continue;
            }
            let dur = s.observed_us(self.captured_us);
            let open = usize::from(s.is_open());
            match rows.iter_mut().find(|r| r.name == s.name) {
                Some(row) => {
                    row.total_us += dur;
                    row.calls += 1;
                    row.open += open;
                }
                None => rows.push(PhaseTotal {
                    name: s.name,
                    total_us: dur,
                    calls: 1,
                    open,
                }),
            }
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        {
            let _g = t.span("phase.x");
            t.counter_add("c", 1);
            t.gauge_set("g", 1.0);
            t.record("h", 2.0);
        }
        let snap = t.snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
    }

    #[test]
    fn nested_spans_record_parents_and_close_lifo() {
        let t = Tracer::enabled();
        {
            let _a = t.span("outer");
            {
                let _b = t.span("inner");
                assert_eq!(t.open_spans_on_this_thread(), 2);
            }
            assert_eq!(t.open_spans_on_this_thread(), 1);
        }
        assert_eq!(t.open_spans_on_this_thread(), 0);
        let snap = t.snapshot();
        let outer = &snap.spans_named("outer")[0];
        let inner = &snap.spans_named("inner")[0];
        assert_eq!(outer.parent, None);
        assert_eq!(inner.parent, Some(outer.id));
        assert!(inner.end_us.unwrap() <= outer.end_us.unwrap());
        assert!(outer.start_us <= inner.start_us);
    }

    #[test]
    fn out_of_order_drop_force_closes_children() {
        let t = Tracer::enabled();
        let a = t.span("a");
        let b = t.span("b");
        let _c = t.span("c");
        drop(b); // closes c too
        assert_eq!(t.open_spans_on_this_thread(), 1);
        drop(a);
        let snap = t.snapshot();
        assert!(snap.spans.iter().all(|s| s.end_us.is_some()));
    }

    #[test]
    fn spans_on_other_threads_get_their_own_stack() {
        let t = Tracer::enabled();
        let _main = t.span("server");
        let t2 = t.clone();
        std::thread::spawn(move || {
            let _w = t2.span("worker");
        })
        .join()
        .unwrap();
        let snap = t.snapshot();
        let worker = &snap.spans_named("worker")[0];
        // Not parented to the server span — different thread.
        assert_eq!(worker.parent, None);
        assert_ne!(worker.thread, snap.spans_named("server")[0].thread);
    }

    #[test]
    fn panicking_scope_still_closes_spans() {
        let t = Tracer::enabled();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = t.span("doomed");
            panic!("boom");
        }));
        assert!(result.is_err());
        assert_eq!(t.open_spans_on_this_thread(), 0);
        let snap = t.snapshot();
        assert!(snap.spans_named("doomed")[0].end_us.is_some());
    }

    #[test]
    fn counters_gauges_and_histograms_aggregate() {
        let t = Tracer::enabled();
        t.counter_add("fl.retries", 2);
        t.counter_add("fl.retries", 3);
        t.counter_add_labeled("client.bytes", 1, 10);
        t.gauge_set("bo.incumbent_loss", 0.9);
        t.gauge_set("bo.incumbent_loss", 0.4);
        t.record("lat", 5.0);
        t.record("lat", 9.0);
        let snap = t.snapshot();
        assert_eq!(snap.counter("fl.retries"), 5);
        assert_eq!(snap.counter("client.bytes"), 10);
        assert_eq!(snap.gauge("bo.incumbent_loss"), Some(0.4));
        assert_eq!(snap.histogram("lat").unwrap().count(), 2);
        // The gauge trajectory is in the event stream.
        let gauge_events: Vec<_> = snap
            .events
            .iter()
            .filter(|e| e.name == "bo.incumbent_loss")
            .collect();
        assert_eq!(gauge_events.len(), 2);
        assert_eq!(gauge_events[0].value, 0.9);
    }

    #[test]
    fn phase_totals_aggregate_by_name() {
        let t = Tracer::enabled();
        {
            let _p = t.span("phase.tune");
        }
        {
            let _p = t.span("phase.tune");
        }
        {
            let _p = t.span("phase.final");
        }
        let rows = t.snapshot().phase_totals();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "phase.tune");
        assert_eq!(rows[0].calls, 2);
        assert_eq!(rows[0].open, 0);
        assert_eq!(rows[1].name, "phase.final");
    }

    #[test]
    fn open_phase_spans_count_elapsed_so_far() {
        let t = Tracer::enabled();
        let _open = t.span("phase.live");
        std::thread::sleep(std::time::Duration::from_millis(2));
        let snap = t.snapshot();
        assert!(snap.captured_us >= snap.spans[0].start_us);
        let rows = snap.phase_totals();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].calls, 1);
        assert_eq!(rows[0].open, 1);
        // The open span's elapsed-so-far is visible, not dropped as zero.
        assert!(
            rows[0].total_us >= 2_000,
            "open span contributed {}µs",
            rows[0].total_us
        );
        assert_eq!(
            snap.spans[0].observed_us(snap.captured_us),
            rows[0].total_us
        );
    }

    #[test]
    fn clones_share_state() {
        let t = Tracer::enabled();
        let t2 = t.clone();
        t2.counter_add("x", 1);
        assert_eq!(t.snapshot().counter("x"), 1);
    }
}
