//! Span-tree profiling: self-time attribution, per-phase top-span
//! tables, critical-path extraction, and a folded-stack export that
//! flamegraph tooling consumes directly.
//!
//! *Self time* is a span's observed wall-clock minus the observed
//! wall-clock of its direct children — the time the span itself burned,
//! not what it delegated. Open spans are measured elapsed-so-far against
//! the snapshot capture instant ([`Telemetry::captured_us`]), so a
//! profile built mid-run attributes live work instead of dropping it.
//!
//! Everything here is a pure function of one [`Telemetry`] snapshot:
//! building a profile twice from the same snapshot yields identical
//! output, and an empty snapshot builds an empty profile without
//! allocating (the disabled-path contract of the crate).

use crate::tracer::{SpanRecord, Telemetry};
use std::collections::BTreeMap;

/// One aggregated row of the self-time table: all spans sharing a
/// `(phase, name)` cell, sorted by self time descending.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelfTimeRow {
    /// Enclosing `phase.*` span name (the span's own name if it *is* a
    /// phase span), or `"(outside phases)"` for spans with no phase
    /// ancestor on their thread.
    pub phase: &'static str,
    /// Span name.
    pub name: &'static str,
    /// Total self time across all calls, in microseconds.
    pub self_us: u64,
    /// Total observed wall-clock (children included), in microseconds.
    pub total_us: u64,
    /// Number of spans aggregated into this row.
    pub calls: usize,
    /// How many of those were still open at snapshot time.
    pub open: usize,
}

/// One hop of the critical path: the chain of heaviest spans from the
/// heaviest root down to a leaf.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalHop {
    /// Span name.
    pub name: &'static str,
    /// Span label, if any (round number, trial index, …).
    pub label: Option<u64>,
    /// Observed wall-clock of this span, in microseconds.
    pub total_us: u64,
    /// Self time of this span, in microseconds.
    pub self_us: u64,
}

/// A profile built from one telemetry snapshot: self-time attribution
/// per `(phase, span-name)` cell plus the critical path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Profile {
    /// Self-time rows, heaviest first (ties broken by phase then name,
    /// so the ordering is deterministic).
    pub rows: Vec<SelfTimeRow>,
    /// The heaviest root-to-leaf chain in the span forest.
    pub critical_path: Vec<CriticalHop>,
}

const OUTSIDE: &str = "(outside phases)";

/// Observed duration and per-span self time for every span, by dense id.
/// Returns `(observed, self_us)`; both are empty for an empty snapshot.
fn self_times(t: &Telemetry) -> (Vec<u64>, Vec<u64>) {
    if t.spans.is_empty() {
        return (Vec::new(), Vec::new());
    }
    let n = t.spans.len();
    let mut observed = vec![0u64; n];
    for (i, s) in t.spans.iter().enumerate() {
        observed[i] = s.observed_us(t.captured_us);
    }
    let mut children = vec![0u64; n];
    for s in &t.spans {
        if let Some(p) = s.parent {
            let pi = (p - 1) as usize;
            if pi < n {
                children[pi] = children[pi].saturating_add(observed[(s.id - 1) as usize]);
            }
        }
    }
    let self_us = observed
        .iter()
        .zip(&children)
        .map(|(o, c)| o.saturating_sub(*c))
        .collect();
    (observed, self_us)
}

/// The `phase.*` ancestor (or self) of a span, walking the parent chain.
fn phase_of<'a>(spans: &'a [SpanRecord], span: &'a SpanRecord) -> &'static str {
    let mut cur = span;
    loop {
        if cur.name.starts_with("phase.") {
            return cur.name;
        }
        match cur.parent.and_then(|p| spans.get((p - 1) as usize)) {
            Some(parent) => cur = parent,
            None => return OUTSIDE,
        }
    }
}

impl Profile {
    /// Builds the profile from a snapshot. Pure and deterministic: equal
    /// snapshots yield equal profiles. Does not allocate when the
    /// snapshot holds no spans.
    pub fn build(t: &Telemetry) -> Profile {
        if t.spans.is_empty() {
            return Profile::default();
        }
        let (observed, self_us) = self_times(t);
        // Aggregate by (phase, name) in first-seen order, then sort.
        let mut rows: Vec<SelfTimeRow> = Vec::new();
        for (i, s) in t.spans.iter().enumerate() {
            let phase = phase_of(&t.spans, s);
            let open = usize::from(s.is_open());
            match rows
                .iter_mut()
                .find(|r| r.phase == phase && r.name == s.name)
            {
                Some(row) => {
                    row.self_us += self_us[i];
                    row.total_us += observed[i];
                    row.calls += 1;
                    row.open += open;
                }
                None => rows.push(SelfTimeRow {
                    phase,
                    name: s.name,
                    self_us: self_us[i],
                    total_us: observed[i],
                    calls: 1,
                    open,
                }),
            }
        }
        rows.sort_by(|a, b| {
            b.self_us
                .cmp(&a.self_us)
                .then_with(|| a.phase.cmp(b.phase))
                .then_with(|| a.name.cmp(b.name))
        });
        let critical_path = critical_path(t, &observed, &self_us);
        Profile {
            rows,
            critical_path,
        }
    }

    /// Total self time attributed across all rows (equals the total
    /// observed wall-clock of the root spans).
    pub fn total_self_us(&self) -> u64 {
        self.rows.iter().map(|r| r.self_us).sum()
    }

    /// Renders the per-phase "top self-time spans" table: up to `top_n`
    /// rows, heaviest self time first, with open-span markers.
    pub fn render_table(&self, top_n: usize) -> String {
        if self.rows.is_empty() {
            return String::new();
        }
        let total = self.total_self_us().max(1);
        let mut out = String::new();
        out.push_str(&format!(
            "{:<24} {:<24} {:>10} {:>10} {:>7} {:>6}  {}\n",
            "phase", "span", "self", "total", "calls", "self%", "notes"
        ));
        for r in self.rows.iter().take(top_n) {
            let pct = r.self_us as f64 * 100.0 / total as f64;
            out.push_str(&format!(
                "{:<24} {:<24} {:>10} {:>10} {:>7} {:>5.1}%  {}\n",
                r.phase,
                r.name,
                crate::summary::fmt_us(r.self_us),
                crate::summary::fmt_us(r.total_us),
                r.calls,
                pct,
                if r.open > 0 {
                    format!("{} open", r.open)
                } else {
                    String::new()
                }
            ));
        }
        if !self.critical_path.is_empty() {
            let chain: Vec<String> = self
                .critical_path
                .iter()
                .map(|h| match h.label {
                    Some(l) => format!("{}[{}] {}", h.name, l, crate::summary::fmt_us(h.total_us)),
                    None => format!("{} {}", h.name, crate::summary::fmt_us(h.total_us)),
                })
                .collect();
            out.push_str(&format!("critical path: {}\n", chain.join(" > ")));
        }
        out
    }
}

/// The heaviest root-to-leaf chain: start at the root span with the
/// largest observed duration (ties: lowest id), descend into the child
/// with the largest observed duration (ties: lowest id) until a leaf.
fn critical_path(t: &Telemetry, observed: &[u64], self_us: &[u64]) -> Vec<CriticalHop> {
    let mut path = Vec::new();
    let mut cur: Option<&SpanRecord> =
        t.spans
            .iter()
            .filter(|s| s.parent.is_none())
            .max_by(|a, b| {
                observed[(a.id - 1) as usize]
                    .cmp(&observed[(b.id - 1) as usize])
                    .then_with(|| b.id.cmp(&a.id))
            });
    while let Some(s) = cur {
        let i = (s.id - 1) as usize;
        path.push(CriticalHop {
            name: s.name,
            label: s.label,
            total_us: observed[i],
            self_us: self_us[i],
        });
        cur = t
            .spans
            .iter()
            .filter(|c| c.parent == Some(s.id))
            .max_by(|a, b| {
                observed[(a.id - 1) as usize]
                    .cmp(&observed[(b.id - 1) as usize])
                    .then_with(|| b.id.cmp(&a.id))
            });
    }
    path
}

/// The folded-stack export: one line per distinct root-first span path,
/// `name;name;name <self-µs>`, sorted lexicographically — the input
/// format flamegraph tools consume (sample counts are microseconds of
/// self time). Returns an empty string (no allocation) for a snapshot
/// with no spans.
pub fn folded_stacks(t: &Telemetry) -> String {
    if t.spans.is_empty() {
        return String::new();
    }
    let (_observed, self_us) = self_times(t);
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for (i, s) in t.spans.iter().enumerate() {
        if self_us[i] == 0 {
            continue;
        }
        // Root-first path of names for this span.
        let mut names: Vec<&'static str> = Vec::new();
        let mut cur = Some(s);
        while let Some(c) = cur {
            names.push(c.name);
            cur = c.parent.and_then(|p| t.spans.get((p - 1) as usize));
        }
        names.reverse();
        *folded.entry(names.join(";")).or_insert(0) += self_us[i];
    }
    let mut out = String::new();
    for (stack, samples) in &folded {
        out.push_str(stack);
        out.push(' ');
        out.push_str(&samples.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::Tracer;

    fn busy(ms: u64) {
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }

    #[test]
    fn self_time_subtracts_children() {
        let t = Tracer::enabled();
        {
            let _run = t.span("run");
            busy(2);
            {
                let _p = t.span("phase.optimization");
                {
                    let _tr = t.span("trial");
                    busy(4);
                }
                busy(2);
            }
        }
        let p = Profile::build(&t.snapshot());
        let run = p.rows.iter().find(|r| r.name == "run").unwrap();
        let phase = p
            .rows
            .iter()
            .find(|r| r.name == "phase.optimization")
            .unwrap();
        let trial = p.rows.iter().find(|r| r.name == "trial").unwrap();
        // trial is fully self time; phase excludes trial; run excludes phase.
        assert!(trial.self_us >= 3_000);
        assert!(phase.total_us >= trial.total_us);
        assert!(phase.self_us < phase.total_us);
        assert!(run.self_us < run.total_us);
        // Phase attribution: trial sits inside phase.optimization, run outside.
        assert_eq!(trial.phase, "phase.optimization");
        assert_eq!(run.phase, "(outside phases)");
        // Conservation: self times sum to the root's observed wall-clock.
        assert_eq!(p.total_self_us(), run.total_us);
    }

    #[test]
    fn critical_path_descends_heaviest_children() {
        let t = Tracer::enabled();
        {
            let _run = t.span("run");
            {
                let _light = t.span("light");
            }
            {
                let _heavy = t.span_labeled("heavy", 7);
                busy(3);
            }
        }
        let p = Profile::build(&t.snapshot());
        let names: Vec<&str> = p.critical_path.iter().map(|h| h.name).collect();
        assert_eq!(names, vec!["run", "heavy"]);
        assert_eq!(p.critical_path[1].label, Some(7));
        assert!(p.critical_path[0].total_us >= p.critical_path[1].total_us);
    }

    #[test]
    fn folded_stacks_join_paths_root_first() {
        let t = Tracer::enabled();
        {
            let _run = t.span("run");
            {
                let _p = t.span("phase.tune");
                busy(2);
            }
        }
        let folded = folded_stacks(&t.snapshot());
        assert!(folded.contains("run;phase.tune "));
        for line in folded.lines() {
            let (stack, samples) = line.rsplit_once(' ').unwrap();
            assert!(!stack.is_empty());
            assert!(samples.parse::<u64>().unwrap() > 0);
        }
    }

    #[test]
    fn empty_snapshot_builds_empty_profile() {
        let p = Profile::build(&Telemetry::default());
        assert!(p.rows.is_empty());
        assert!(p.critical_path.is_empty());
        assert_eq!(p.render_table(10), "");
        assert_eq!(folded_stacks(&Telemetry::default()), "");
    }

    #[test]
    fn open_spans_attribute_elapsed_so_far() {
        let t = Tracer::enabled();
        let _open = t.span("phase.live");
        busy(2);
        let p = Profile::build(&t.snapshot());
        let row = p.rows.iter().find(|r| r.name == "phase.live").unwrap();
        assert_eq!(row.open, 1);
        assert!(row.self_us >= 1_000, "open span self {}µs", row.self_us);
        let table = p.render_table(5);
        assert!(table.contains("1 open"));
    }
}
