//! `ff-trace` — zero-dependency structured tracing and metrics for the
//! FedForecaster stack.
//!
//! The paper's Algorithm 1 spends a hard time budget across four
//! federated phases; this crate is the measurement substrate that tells
//! you where that budget went. It provides:
//!
//! - **Hierarchical spans** ([`Tracer::span`]): `run → phase.tune →
//!   trial → gp.fit`, recorded with microsecond wall-clock offsets and
//!   per-thread parentage. Guards close spans on drop, LIFO even across
//!   `catch_unwind`.
//! - **Metrics** ([`Tracer::counter_add`], [`Tracer::gauge_set`],
//!   [`Tracer::record`]): counters, gauges (with the full update
//!   trajectory mirrored into the event stream), and mergeable
//!   log-bucketed [`Histogram`]s whose rank statistics are invariant
//!   under merge order — per-client histograms aggregate at the server
//!   exactly like model updates do.
//! - **Two sinks**: [`to_json_lines`] (one JSON object per line, written
//!   without any JSON dependency) and [`render_summary`] (aligned text:
//!   per-phase time table, per-client comms/dropout table, BO trial
//!   latency percentiles).
//!
//! A disabled [`Tracer`] (the default) is a `None` — every call is a
//! branch-and-return with no locking, no clock reads, and **no
//! allocation**, so instrumentation can stay in hot paths permanently.
//!
//! # Span taxonomy
//!
//! | span | children | label |
//! |------|----------|-------|
//! | `run` | the four phases | — |
//! | `phase.meta_features` | `fl.round` | — |
//! | `phase.feature_engineering` | `fl.round` | — |
//! | `phase.optimization` | `trial` | — |
//! | `phase.finalization` | `fl.round` | — |
//! | `trial` | `gp.fit`, `gp.acquire`, `fl.round` | trial index |
//! | `fl.round` | — | round number |
//! | `gp.fit` / `gp.acquire` | — | — |

#![warn(missing_docs)]

mod hist;
mod json;
mod sketch;
mod summary;
mod tracer;

pub mod expo;
pub mod profile;
pub mod recorder;

pub use expo::{render_prometheus, sample_value, validate_exposition, ExpoConfig, ExpoServer};
pub use hist::{Histogram, BUCKETS_PER_DOUBLING, ZERO_BUCKET};
pub use json::{push_json_f64, push_json_str, to_json_lines};
pub use profile::{folded_stacks, CriticalHop, Profile, SelfTimeRow};
pub use recorder::{FlightRecorder, ForensicDump, RecorderConfig, RoundFrame, Trigger, Triggers};
pub use sketch::{QuantileSketch, SKETCH_BUCKETS_PER_DOUBLING};
pub use summary::{fmt_bytes, fmt_us, render_summary, ClientCommsRow};
pub use tracer::{EventRecord, MetricId, PhaseTotal, SpanGuard, SpanRecord, Telemetry, Tracer};
