//! Signed, weighted, mergeable quantile sketches.
//!
//! [`QuantileSketch`] extends the [`crate::Histogram`] idiom — geometric
//! log-buckets in a `BTreeMap`, merged by adding per-bucket mass — to the
//! needs of **streaming robust aggregation** at fleet scale:
//!
//! - **Signed values.** Model coordinates are positive and negative;
//!   buckets are keyed by `(sign, log-magnitude)` and iterate in true
//!   ascending value order (large-magnitude negatives first).
//! - **Real-valued weights.** Federated updates are weighted by client
//!   example counts, so bucket mass is an `f64` sum, not a `u64` count.
//! - **Finer resolution.** [`SKETCH_BUCKETS_PER_DOUBLING`] = 32 buckets
//!   per doubling (vs the histogram's 4) keeps the value-space relative
//!   error of any rank statistic below [`QuantileSketch::RELATIVE_ERROR`]
//!   ≈ 2.19%.
//!
//! # Error bound
//!
//! Every nonzero value `v` inserted into the sketch lands in the bucket
//! `b = ⌊log2|v|·B⌋` (B = 32), whose value range is `[2^(b/B),
//! 2^((b+1)/B))` — a relative width of `2^(1/B) − 1`. A query returns the
//! **geometric midpoint** `±2^((b+0.5)/B)` of some bucket chosen by rank,
//! and the rank rule is exact over bucket masses, so the chosen bucket
//! always contains a true weighted quantile point. The returned
//! representative `r` therefore satisfies `r/v ∈ [2^(−1/(2B)),
//! 2^(1/(2B))]` for the true quantile `v` of the same sign:
//! a relative error of at most `2^(1/(2B)) − 1 ≈ 1.09%`, conservatively
//! documented as `2^(1/B) − 1 ≈ 2.19%` ([`QuantileSketch::RELATIVE_ERROR`])
//! to absorb ties at bucket boundaries and the upstream convention of
//! midpoint-averaging exact-half ranks. Exact zeros are returned exactly.
//!
//! Memory is **independent of the number of inserts**: occupied buckets
//! are bounded by the number of *distinct magnitudes* at 32-per-doubling
//! resolution (≤ ~68k over the entire f64 range, dozens in practice).
//!
//! # Determinism
//!
//! Bucket mass is a floating-point accumulator, so queries are
//! bit-deterministic for a *fixed insert/merge order*. Callers that need
//! bit-identical results across thread counts (the fleet scheduler) must
//! fix that order — see `ff-fl`'s streaming aggregators, which ingest in
//! cohort order and merge shard partials in a fixed sequence.

use std::collections::BTreeMap;

/// Buckets per doubling of the magnitude range (finer than the
/// observability histogram because aggregation accuracy is the point).
pub const SKETCH_BUCKETS_PER_DOUBLING: i32 = 32;

/// Offset folding `(sign, bucket)` into one ordered `i64` key: positive
/// values map to `+(bucket + OFFSET)`, negatives to `−(bucket + OFFSET)`,
/// zero to `0`, so `BTreeMap` iteration is ascending in value.
const ORD_OFFSET: i64 = 1 << 40;

/// A signed, weighted, mergeable log-bucketed quantile sketch.
#[derive(Debug, Clone, Default)]
pub struct QuantileSketch {
    /// Mass per ordered bucket key.
    mass: BTreeMap<i64, f64>,
    /// Total inserted mass.
    total: f64,
    /// Number of inserted observations (diagnostics only).
    count: u64,
}

impl QuantileSketch {
    /// Documented worst-case relative error of any quantile query
    /// against the exact weighted quantile: one full bucket width.
    pub const RELATIVE_ERROR: f64 = 0.021_897_148_745_892_82; // 2^(1/32) − 1

    /// An empty sketch.
    pub fn new() -> QuantileSketch {
        QuantileSketch::default()
    }

    /// The ordered bucket key for a value, or `None` for non-finite
    /// values (which [`add`](Self::add) ignores).
    fn key_of(v: f64) -> Option<i64> {
        if !v.is_finite() {
            return None;
        }
        if v == 0.0 {
            return Some(0);
        }
        let bucket = (v.abs().log2() * SKETCH_BUCKETS_PER_DOUBLING as f64).floor() as i64;
        let magnitude = bucket + ORD_OFFSET;
        debug_assert!(magnitude > 0);
        Some(if v > 0.0 { magnitude } else { -magnitude })
    }

    /// The representative value of a bucket key: the geometric midpoint
    /// of the bucket's magnitude range, carrying the bucket's sign.
    fn representative(key: i64) -> f64 {
        if key == 0 {
            return 0.0;
        }
        let bucket = key.abs() - ORD_OFFSET;
        let mag = 2f64.powf((bucket as f64 + 0.5) / SKETCH_BUCKETS_PER_DOUBLING as f64);
        if key > 0 {
            mag
        } else {
            -mag
        }
    }

    /// Inserts one observation with the given weight. Non-finite values,
    /// non-finite weights, and weights `<= 0` are ignored.
    pub fn add(&mut self, value: f64, weight: f64) {
        if !(weight.is_finite() && weight > 0.0) {
            return;
        }
        let Some(key) = QuantileSketch::key_of(value) else {
            return;
        };
        *self.mass.entry(key).or_insert(0.0) += weight;
        self.total += weight;
        self.count += 1;
    }

    /// Merges another sketch into this one by adding bucket masses.
    pub fn merge(&mut self, other: &QuantileSketch) {
        for (&key, &w) in &other.mass {
            *self.mass.entry(key).or_insert(0.0) += w;
        }
        self.total += other.total;
        self.count += other.count;
    }

    /// Total inserted weight.
    pub fn total_weight(&self) -> f64 {
        self.total
    }

    /// Number of inserted observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Number of occupied buckets (the sketch's live size).
    pub fn occupied_buckets(&self) -> usize {
        self.mass.len()
    }

    /// Approximate bytes of live state.
    pub fn state_bytes(&self) -> usize {
        // Key + mass per occupied bucket, plus the fixed header.
        self.mass.len() * (8 + 8) + 24
    }

    /// The representative of the bucket containing the weighted
    /// `q`-quantile: the smallest bucket whose cumulative mass strictly
    /// exceeds `q·total` (the `weighted_median` rule at `q = 0.5`).
    /// Returns `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total <= 0.0 {
            return None;
        }
        let target = q.clamp(0.0, 1.0) * self.total;
        let mut seen = 0.0;
        for (&key, &w) in &self.mass {
            seen += w;
            if seen > target {
                return Some(QuantileSketch::representative(key));
            }
        }
        // Floating-point shortfall at q = 1: take the last bucket.
        self.mass
            .keys()
            .next_back()
            .map(|&k| QuantileSketch::representative(k))
    }

    /// The weighted median representative (`quantile(0.5)`).
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Weight-trimmed mean: drops `trim·total` mass from each tail
    /// (splitting boundary buckets fractionally) and returns the
    /// mass-weighted mean of the remaining buckets' representatives.
    /// `trim` is clamped to `[0, 0.4999]`. Returns `None` when empty.
    ///
    /// Note the contract difference vs the batch `TrimmedMean`
    /// aggregator, which drops a *count* of updates per tail: the two
    /// agree (within [`Self::RELATIVE_ERROR`] plus a boundary-mass term)
    /// when update weights are equal, which is how the streaming
    /// aggregator documents its bound.
    pub fn trimmed_mean(&self, trim: f64) -> Option<f64> {
        if self.total <= 0.0 {
            return None;
        }
        let cut = trim.clamp(0.0, 0.4999) * self.total;
        let keep_hi = self.total - cut;
        let mut seen = 0.0;
        let mut acc = 0.0;
        let mut kept = 0.0;
        for (&key, &w) in &self.mass {
            let start = seen;
            let end = seen + w;
            seen = end;
            let lo = start.max(cut);
            let hi = end.min(keep_hi);
            if hi > lo {
                let wk = hi - lo;
                acc += QuantileSketch::representative(key) * wk;
                kept += wk;
            }
        }
        (kept > 0.0).then(|| acc / kept)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact weighted median with the same rank rule as
    /// `ff-fl::robust::weighted_median` (cumulative mass > half).
    fn exact_weighted_median(pairs: &mut [(f64, f64)]) -> f64 {
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        let total: f64 = pairs.iter().map(|p| p.1).sum();
        let mut seen = 0.0;
        for &(v, w) in pairs.iter() {
            seen += w;
            if seen > total / 2.0 {
                return v;
            }
        }
        pairs.last().unwrap().0
    }

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit(state: &mut u64) -> f64 {
        (splitmix(state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    #[test]
    fn empty_sketch_has_no_statistics() {
        let s = QuantileSketch::new();
        assert!(s.is_empty());
        assert_eq!(s.median(), None);
        assert_eq!(s.trimmed_mean(0.1), None);
        assert_eq!(s.total_weight(), 0.0);
    }

    #[test]
    fn keys_order_ascending_in_value() {
        let values = [-1e9, -3.0, -0.25, 0.0, 0.125, 2.0, 7e8];
        let mut keys: Vec<i64> = values
            .iter()
            .map(|&v| QuantileSketch::key_of(v).unwrap())
            .collect();
        let sorted = {
            let mut k = keys.clone();
            k.sort_unstable();
            k
        };
        assert_eq!(keys, sorted);
        // And representatives recover the sign and rough magnitude.
        keys.sort_unstable();
        for (&v, &k) in values.iter().zip(&keys) {
            let r = QuantileSketch::representative(k);
            if v == 0.0 {
                assert_eq!(r, 0.0);
            } else {
                assert_eq!(r.signum(), v.signum());
                let ratio = (r / v).abs();
                assert!(
                    (1.0 - QuantileSketch::RELATIVE_ERROR..=1.0 + QuantileSketch::RELATIVE_ERROR)
                        .contains(&ratio),
                    "value {v} representative {r}"
                );
            }
        }
    }

    #[test]
    fn median_is_within_documented_bound() {
        let mut state = 7u64;
        for case in 0..50 {
            let n = 3 + (case % 40);
            let mut pairs: Vec<(f64, f64)> = (0..n)
                .map(|_| {
                    // Signed, log-uniform magnitudes across 12 decades.
                    let sign = if unit(&mut state) < 0.5 { -1.0 } else { 1.0 };
                    let mag = 10f64.powf(unit(&mut state) * 12.0 - 6.0);
                    let w = 1.0 + (unit(&mut state) * 9.0).floor();
                    (sign * mag, w)
                })
                .collect();
            let mut sketch = QuantileSketch::new();
            for &(v, w) in &pairs {
                sketch.add(v, w);
            }
            let approx = sketch.median().unwrap();
            let exact = exact_weighted_median(&mut pairs);
            let err = (approx - exact).abs();
            assert!(
                err <= QuantileSketch::RELATIVE_ERROR * exact.abs() + 1e-12,
                "case {case}: approx {approx} vs exact {exact}"
            );
        }
    }

    #[test]
    fn merge_equals_sequential_insert() {
        let mut state = 3u64;
        let mut all = QuantileSketch::new();
        let mut parts = vec![QuantileSketch::new(), QuantileSketch::new()];
        for i in 0..200 {
            let v = (unit(&mut state) - 0.5) * 1e6;
            let w = 1.0 + unit(&mut state);
            all.add(v, w);
            parts[i % 2].add(v, w);
        }
        let mut merged = parts.remove(0);
        merged.merge(&parts[0]);
        assert_eq!(merged.count(), all.count());
        assert_eq!(merged.occupied_buckets(), all.occupied_buckets());
        // Same buckets, same (associatively regrouped) masses.
        assert!((merged.total_weight() - all.total_weight()).abs() < 1e-6);
        for q in [0.1, 0.25, 0.5, 0.75, 0.9] {
            assert_eq!(merged.quantile(q), all.quantile(q), "q = {q}");
        }
    }

    #[test]
    fn trimmed_mean_matches_plain_mean_at_zero_trim() {
        let mut sketch = QuantileSketch::new();
        let values = [1.0, 2.0, 4.0, 8.0];
        for &v in &values {
            sketch.add(v, 1.0);
        }
        let tm = sketch.trimmed_mean(0.0).unwrap();
        // Representatives are within one bucket of the true values, so
        // the untrimmed mean is within the bound of the exact mean.
        let exact: f64 = values.iter().sum::<f64>() / values.len() as f64;
        assert!((tm - exact).abs() <= QuantileSketch::RELATIVE_ERROR * exact);
    }

    #[test]
    fn trimmed_mean_discards_outlier_mass() {
        let mut sketch = QuantileSketch::new();
        for _ in 0..98 {
            sketch.add(1.0, 1.0);
        }
        sketch.add(1e12, 1.0);
        sketch.add(-1e12, 1.0);
        // 2% trim per tail removes both outliers entirely.
        let tm = sketch.trimmed_mean(0.02).unwrap();
        assert!(
            (tm - 1.0).abs() <= QuantileSketch::RELATIVE_ERROR + 1e-9,
            "{tm}"
        );
    }

    #[test]
    fn zeros_are_exact_and_non_finite_ignored() {
        let mut sketch = QuantileSketch::new();
        sketch.add(f64::NAN, 1.0);
        sketch.add(f64::INFINITY, 1.0);
        sketch.add(1.0, f64::NAN);
        sketch.add(1.0, -3.0);
        assert!(sketch.is_empty());
        sketch.add(0.0, 5.0);
        sketch.add(0.0, 5.0);
        assert_eq!(sketch.median(), Some(0.0));
    }

    #[test]
    fn state_is_bounded_by_magnitude_spread_not_inserts() {
        let mut sketch = QuantileSketch::new();
        for i in 0..100_000u64 {
            // Two magnitudes only → two buckets, regardless of count.
            sketch.add(if i % 2 == 0 { 1.0 } else { 2.5 }, 1.0);
        }
        assert_eq!(sketch.count(), 100_000);
        assert_eq!(sketch.occupied_buckets(), 2);
        assert!(sketch.state_bytes() < 128);
    }
}
