//! Flight recorder: a bounded ring buffer of per-round frames with
//! dump-on-trigger forensics.
//!
//! The fleet runtime (and the engine's tuning loop) commits one
//! [`RoundFrame`] per federated round. The recorder keeps only the last
//! `capacity` frames — O(capacity) memory regardless of run length — and
//! when a committed frame carries a distress signal (a quarantine, a
//! quorum failure, a guard rejection, a non-finite loss) it freezes the
//! current ring into a [`ForensicDump`]: the black-box record of what
//! led up to the incident.
//!
//! Frames deliberately carry **no wall-clock fields**, so a dump is a
//! pure function of the round sequence: bit-identical across
//! `FF_THREADS` settings and across reruns. Disabled (the default), a
//! recorder is a `None` — `commit_with` never calls its closure, so the
//! disabled path performs zero allocations.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

/// What the flight recorder watches for. All on by default.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Triggers {
    /// Dump when a round newly quarantines a client.
    pub quarantine: bool,
    /// Dump when a round fails its response quorum.
    pub quorum_failure: bool,
    /// Dump when the update guard rejects at least one reply.
    pub guard_rejection: bool,
    /// Dump when a reply is screened out for a non-finite loss.
    pub non_finite_loss: bool,
}

impl Default for Triggers {
    fn default() -> Self {
        Triggers {
            quarantine: true,
            quorum_failure: true,
            guard_rejection: true,
            non_finite_loss: true,
        }
    }
}

/// Flight-recorder configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecorderConfig {
    /// Ring capacity in frames; older frames are evicted. Must be ≥ 1
    /// (a zero is treated as 1).
    pub capacity: usize,
    /// Maximum forensic dumps retained per run; later triggers are
    /// counted but their dumps dropped (the first incidents matter most).
    pub max_dumps: usize,
    /// Which distress signals trigger a dump.
    pub triggers: Triggers,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig {
            capacity: 64,
            max_dumps: 8,
            triggers: Triggers::default(),
        }
    }
}

/// Why a dump was taken, in priority order (a frame carrying several
/// signals reports the most severe).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// A client was newly quarantined this round.
    Quarantine,
    /// The round failed its response quorum.
    QuorumFailure,
    /// A reply was screened out for a non-finite loss.
    NonFiniteLoss,
    /// The update guard rejected at least one reply.
    GuardRejection,
}

impl fmt::Display for Trigger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Trigger::Quarantine => "quarantine",
            Trigger::QuorumFailure => "quorum_failure",
            Trigger::NonFiniteLoss => "non_finite_loss",
            Trigger::GuardRejection => "guard_rejection",
        };
        f.write_str(s)
    }
}

/// One federated round as the flight recorder sees it. No wall-clock
/// fields: a frame (and hence a dump) is bit-identical across thread
/// counts and reruns of the same seeded scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundFrame {
    /// Round number (1-based, shared with the health registry).
    pub round: u64,
    /// Phase the round belongs to (`fleet.fit`, `fleet.eval`,
    /// `optimization`, …).
    pub phase: &'static str,
    /// Cohort size sampled for the round.
    pub cohort: u64,
    /// Clients admitted after health screening.
    pub admitted: u64,
    /// Replies accepted into the aggregate.
    pub accepted: u64,
    /// Quarantine probes piggybacked on the round.
    pub probes: u64,
    /// Guard rejections: `(client_id, reason)`.
    pub rejected: Vec<(u64, String)>,
    /// Transport dropouts: `(client_id, reason)`.
    pub dropouts: Vec<(u64, String)>,
    /// Clients newly quarantined by this round's bookkeeping (sorted).
    pub quarantined: Vec<u64>,
    /// Round loss, when the round produced one.
    pub loss: Option<f64>,
    /// Whether the round met its response quorum.
    pub quorum_met: bool,
    /// Whether any reply was screened out for a non-finite loss.
    pub non_finite: bool,
    /// Per-round counter deltas worth keeping (`(name, delta)`).
    pub counters: Vec<(&'static str, u64)>,
}

impl Default for RoundFrame {
    fn default() -> Self {
        RoundFrame {
            round: 0,
            phase: "",
            cohort: 0,
            admitted: 0,
            accepted: 0,
            probes: 0,
            rejected: Vec::new(),
            dropouts: Vec::new(),
            quarantined: Vec::new(),
            loss: None,
            quorum_met: true,
            non_finite: false,
            counters: Vec::new(),
        }
    }
}

impl RoundFrame {
    /// The most severe trigger this frame carries under `triggers`, if any.
    fn trigger(&self, triggers: &Triggers) -> Option<Trigger> {
        if triggers.quarantine && !self.quarantined.is_empty() {
            return Some(Trigger::Quarantine);
        }
        if triggers.quorum_failure && !self.quorum_met {
            return Some(Trigger::QuorumFailure);
        }
        if triggers.non_finite_loss
            && (self.non_finite || self.loss.is_some_and(|l| !l.is_finite()))
        {
            return Some(Trigger::NonFiniteLoss);
        }
        if triggers.guard_rejection && !self.rejected.is_empty() {
            return Some(Trigger::GuardRejection);
        }
        None
    }

    fn push_json(&self, out: &mut String) {
        use crate::json::{push_json_f64, push_json_str};
        out.push_str("{\"kind\":\"frame\",\"round\":");
        out.push_str(&self.round.to_string());
        out.push_str(",\"phase\":");
        push_json_str(out, self.phase);
        out.push_str(",\"cohort\":");
        out.push_str(&self.cohort.to_string());
        out.push_str(",\"admitted\":");
        out.push_str(&self.admitted.to_string());
        out.push_str(",\"accepted\":");
        out.push_str(&self.accepted.to_string());
        out.push_str(",\"probes\":");
        out.push_str(&self.probes.to_string());
        out.push_str(",\"quorum_met\":");
        out.push_str(if self.quorum_met { "true" } else { "false" });
        out.push_str(",\"non_finite\":");
        out.push_str(if self.non_finite { "true" } else { "false" });
        out.push_str(",\"loss\":");
        match self.loss {
            Some(l) => push_json_f64(out, l),
            None => out.push_str("null"),
        }
        out.push_str(",\"quarantined\":[");
        for (i, id) in self.quarantined.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&id.to_string());
        }
        out.push_str("],\"rejected\":[");
        for (i, (id, why)) in self.rejected.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"client\":");
            out.push_str(&id.to_string());
            out.push_str(",\"reason\":");
            push_json_str(out, why);
            out.push('}');
        }
        out.push_str("],\"dropouts\":[");
        for (i, (id, why)) in self.dropouts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"client\":");
            out.push_str(&id.to_string());
            out.push_str(",\"reason\":");
            push_json_str(out, why);
            out.push('}');
        }
        out.push_str("],\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(out, name);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("}}");
    }
}

/// A frozen copy of the ring at trigger time: the frames leading up to
/// (and including) the incident round.
#[derive(Debug, Clone, PartialEq)]
pub struct ForensicDump {
    /// What fired.
    pub trigger: Trigger,
    /// Round of the triggering frame.
    pub round: u64,
    /// The ring contents, oldest first; the last frame is the trigger.
    pub frames: Vec<RoundFrame>,
}

impl ForensicDump {
    /// Deterministic JSON-lines export: one header object, then one
    /// object per frame. Contains no wall-clock data, so two dumps of
    /// the same round sequence are byte-identical.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"kind\":\"dump\",\"trigger\":\"");
        let _ = fmt::write(&mut out, format_args!("{}", self.trigger));
        out.push_str("\",\"round\":");
        out.push_str(&self.round.to_string());
        out.push_str(",\"frames\":");
        out.push_str(&self.frames.len().to_string());
        out.push_str("}\n");
        for f in &self.frames {
            f.push_json(&mut out);
            out.push('\n');
        }
        out
    }
}

#[derive(Debug)]
struct RecInner {
    cfg: RecorderConfig,
    ring: VecDeque<RoundFrame>,
    dumps: Vec<ForensicDump>,
    triggers_fired: u64,
}

/// The flight-recorder handle. Cheap to clone (an `Arc`, or nothing when
/// disabled); the default is disabled.
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    inner: Option<Arc<Mutex<RecInner>>>,
}

impl FlightRecorder {
    /// A disabled recorder: `commit_with` never calls its closure, so
    /// the disabled path performs no allocation at all.
    pub fn disabled() -> FlightRecorder {
        FlightRecorder { inner: None }
    }

    /// An enabled recorder with the given ring capacity and triggers.
    pub fn enabled(cfg: RecorderConfig) -> FlightRecorder {
        let cfg = RecorderConfig {
            capacity: cfg.capacity.max(1),
            ..cfg
        };
        FlightRecorder {
            inner: Some(Arc::new(Mutex::new(RecInner {
                cfg,
                ring: VecDeque::with_capacity(cfg.capacity),
                dumps: Vec::new(),
                triggers_fired: 0,
            }))),
        }
    }

    /// Whether this recorder records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Commits one round frame, building it lazily: when the recorder is
    /// disabled the closure is never called (the whole call is a branch).
    /// Returns the trigger the frame fired, if any.
    pub fn commit_with(&self, make: impl FnOnce() -> RoundFrame) -> Option<Trigger> {
        let inner = self.inner.as_ref()?;
        let frame = make();
        let mut s = inner.lock();
        let trigger = frame.trigger(&s.cfg.triggers);
        if s.ring.len() == s.cfg.capacity {
            s.ring.pop_front();
        }
        s.ring.push_back(frame);
        if let Some(t) = trigger {
            s.triggers_fired += 1;
            if s.dumps.len() < s.cfg.max_dumps {
                let round = s.ring.back().map(|f| f.round).unwrap_or(0);
                let frames: Vec<RoundFrame> = s.ring.iter().cloned().collect();
                s.dumps.push(ForensicDump {
                    trigger: t,
                    round,
                    frames,
                });
            }
        }
        trigger
    }

    /// The current ring contents, oldest first (empty when disabled).
    pub fn frames(&self) -> Vec<RoundFrame> {
        match &self.inner {
            Some(inner) => inner.lock().ring.iter().cloned().collect(),
            None => Vec::new(),
        }
    }

    /// All forensic dumps taken so far (empty when disabled).
    pub fn dumps(&self) -> Vec<ForensicDump> {
        match &self.inner {
            Some(inner) => inner.lock().dumps.clone(),
            None => Vec::new(),
        }
    }

    /// Total triggers fired, including those past the dump cap.
    pub fn triggers_fired(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.lock().triggers_fired,
            None => 0,
        }
    }

    /// Frames currently held (≤ capacity; 0 when disabled).
    pub fn len(&self) -> usize {
        match &self.inner {
            Some(inner) => inner.lock().ring.len(),
            None => 0,
        }
    }

    /// Whether the ring holds no frames.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ring capacity (0 when disabled).
    pub fn capacity(&self) -> usize {
        match &self.inner {
            Some(inner) => inner.lock().cfg.capacity,
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(round: u64) -> RoundFrame {
        RoundFrame {
            round,
            phase: "fleet.fit",
            cohort: 10,
            admitted: 9,
            accepted: 8,
            ..RoundFrame::default()
        }
    }

    #[test]
    fn disabled_recorder_never_builds_frames() {
        let r = FlightRecorder::disabled();
        let fired = r.commit_with(|| panic!("closure must not run when disabled"));
        assert!(fired.is_none());
        assert!(r.frames().is_empty());
        assert!(r.dumps().is_empty());
        assert!(!r.is_enabled());
        assert_eq!(r.capacity(), 0);
    }

    #[test]
    fn ring_evicts_oldest_beyond_capacity() {
        let r = FlightRecorder::enabled(RecorderConfig {
            capacity: 3,
            ..Default::default()
        });
        for round in 1..=10 {
            r.commit_with(|| frame(round));
        }
        let frames = r.frames();
        assert_eq!(frames.len(), 3);
        let rounds: Vec<u64> = frames.iter().map(|f| f.round).collect();
        assert_eq!(rounds, vec![8, 9, 10]);
    }

    #[test]
    fn triggers_fire_by_severity_and_cap_dumps() {
        let r = FlightRecorder::enabled(RecorderConfig {
            capacity: 4,
            max_dumps: 1,
            ..Default::default()
        });
        assert_eq!(r.commit_with(|| frame(1)), None);
        // Rejection + quarantine in one frame: quarantine wins.
        let fired = r.commit_with(|| RoundFrame {
            rejected: vec![(5, "norm blew up".into())],
            quarantined: vec![5],
            ..frame(2)
        });
        assert_eq!(fired, Some(Trigger::Quarantine));
        // A second trigger is counted, but the dump cap holds at 1.
        let fired2 = r.commit_with(|| RoundFrame {
            quorum_met: false,
            ..frame(3)
        });
        assert_eq!(fired2, Some(Trigger::QuorumFailure));
        assert_eq!(r.triggers_fired(), 2);
        let dumps = r.dumps();
        assert_eq!(dumps.len(), 1);
        assert_eq!(dumps[0].trigger, Trigger::Quarantine);
        assert_eq!(dumps[0].round, 2);
        // The dump ends at the triggering round and contains its events.
        let last = dumps[0].frames.last().unwrap();
        assert_eq!(last.round, 2);
        assert_eq!(last.quarantined, vec![5]);
        assert_eq!(last.rejected[0].0, 5);
    }

    #[test]
    fn non_finite_loss_triggers() {
        let r = FlightRecorder::enabled(RecorderConfig::default());
        let fired = r.commit_with(|| RoundFrame {
            loss: Some(f64::NAN),
            ..frame(1)
        });
        assert_eq!(fired, Some(Trigger::NonFiniteLoss));
        let fired2 = r.commit_with(|| RoundFrame {
            non_finite: true,
            ..frame(2)
        });
        assert_eq!(fired2, Some(Trigger::NonFiniteLoss));
    }

    #[test]
    fn triggers_can_be_masked() {
        let r = FlightRecorder::enabled(RecorderConfig {
            triggers: Triggers {
                guard_rejection: false,
                ..Triggers::default()
            },
            ..Default::default()
        });
        let fired = r.commit_with(|| RoundFrame {
            rejected: vec![(1, "ignored".into())],
            ..frame(1)
        });
        assert_eq!(fired, None);
        assert!(r.dumps().is_empty());
    }

    #[test]
    fn dump_json_is_deterministic_and_structured() {
        let build = || {
            let r = FlightRecorder::enabled(RecorderConfig {
                capacity: 2,
                ..Default::default()
            });
            r.commit_with(|| frame(1));
            r.commit_with(|| RoundFrame {
                quarantined: vec![3],
                dropouts: vec![(3, "client 3 timed out".into())],
                loss: Some(0.25),
                counters: vec![("fleet.retries", 1)],
                ..frame(2)
            });
            r.dumps()[0].to_json_lines()
        };
        let (a, b) = (build(), build());
        assert_eq!(a, b, "dumps of the same sequence must be byte-identical");
        assert!(a.starts_with("{\"kind\":\"dump\",\"trigger\":\"quarantine\",\"round\":2"));
        assert_eq!(a.lines().count(), 3);
        assert!(a.contains("\"quarantined\":[3]"));
        assert!(a.contains("\"reason\":\"client 3 timed out\""));
        assert!(a.contains("\"fleet.retries\":1"));
        // NaN losses serialize as null, keeping the dump valid JSON.
        let r = FlightRecorder::enabled(RecorderConfig::default());
        r.commit_with(|| RoundFrame {
            loss: Some(f64::INFINITY),
            ..frame(9)
        });
        assert!(r.dumps()[0].to_json_lines().contains("\"loss\":null"));
    }
}
