//! JSON-lines sink: one self-describing JSON object per line, written
//! without any JSON dependency (the container is offline; the format is
//! simple enough to emit by hand).
//!
//! Record kinds, discriminated by the `"kind"` field:
//!
//! - `span`      — `{id, parent, name, label, thread, start_us, end_us, duration_us}`
//! - `event`     — `{name, label, at_us, value}` (includes gauge updates)
//! - `counter`   — `{name, label, value}`
//! - `gauge`     — `{name, label, value}` (final value)
//! - `histogram` — `{name, label, count, sum, min, max, p50, p95, buckets: [[idx, n], …]}`
//!
//! Non-finite floats serialize as `null` so every line stays valid JSON.

use crate::tracer::Telemetry;
use std::fmt::Write as _;

/// Serializes a [`Telemetry`] snapshot as JSON lines: spans first (in
/// creation order, so parents precede children), then events, counters,
/// gauges, and histograms.
pub fn to_json_lines(t: &Telemetry) -> String {
    let mut out = String::new();
    for s in &t.spans {
        out.push_str("{\"kind\":\"span\",\"id\":");
        let _ = write!(out, "{}", s.id);
        out.push_str(",\"parent\":");
        match s.parent {
            Some(p) => {
                let _ = write!(out, "{p}");
            }
            None => out.push_str("null"),
        }
        out.push_str(",\"name\":");
        push_json_str(&mut out, s.name);
        push_label(&mut out, s.label);
        let _ = write!(out, ",\"thread\":{}", s.thread);
        let _ = write!(out, ",\"start_us\":{}", s.start_us);
        out.push_str(",\"end_us\":");
        match s.end_us {
            Some(e) => {
                let _ = write!(out, "{e}");
            }
            None => out.push_str("null"),
        }
        out.push_str(",\"duration_us\":");
        match s.duration_us() {
            Some(d) => {
                let _ = write!(out, "{d}");
            }
            None => out.push_str("null"),
        }
        out.push_str("}\n");
    }
    for e in &t.events {
        out.push_str("{\"kind\":\"event\",\"name\":");
        push_json_str(&mut out, e.name);
        push_label(&mut out, e.label);
        let _ = write!(out, ",\"at_us\":{}", e.at_us);
        out.push_str(",\"value\":");
        push_json_f64(&mut out, e.value);
        out.push_str("}\n");
    }
    for (id, v) in &t.counters {
        out.push_str("{\"kind\":\"counter\",\"name\":");
        push_json_str(&mut out, id.name);
        push_label(&mut out, id.label);
        let _ = write!(out, ",\"value\":{v}");
        out.push_str("}\n");
    }
    for (id, v) in &t.gauges {
        out.push_str("{\"kind\":\"gauge\",\"name\":");
        push_json_str(&mut out, id.name);
        push_label(&mut out, id.label);
        out.push_str(",\"value\":");
        push_json_f64(&mut out, *v);
        out.push_str("}\n");
    }
    for (id, h) in &t.histograms {
        out.push_str("{\"kind\":\"histogram\",\"name\":");
        push_json_str(&mut out, id.name);
        push_label(&mut out, id.label);
        let _ = write!(out, ",\"count\":{}", h.count());
        out.push_str(",\"sum\":");
        push_json_f64(&mut out, h.sum());
        out.push_str(",\"min\":");
        push_json_opt_f64(&mut out, h.min());
        out.push_str(",\"max\":");
        push_json_opt_f64(&mut out, h.max());
        out.push_str(",\"p50\":");
        push_json_opt_f64(&mut out, h.percentile(0.50));
        out.push_str(",\"p95\":");
        push_json_opt_f64(&mut out, h.percentile(0.95));
        out.push_str(",\"buckets\":[");
        for (i, (idx, n)) in h.buckets().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{idx},{n}]");
        }
        out.push_str("]}\n");
    }
    out
}

fn push_label(out: &mut String, label: Option<u64>) {
    out.push_str(",\"label\":");
    match label {
        Some(l) => {
            let _ = write!(out, "{l}");
        }
        None => out.push_str("null"),
    }
}

fn push_json_opt_f64(out: &mut String, v: Option<f64>) {
    match v {
        Some(v) => push_json_f64(out, v),
        None => out.push_str("null"),
    }
}

/// Appends an f64 as JSON: non-finite values become `null`, finite ones
/// round-trip via Rust's shortest-representation formatter.
pub fn push_json_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    let _ = write!(out, "{v}");
    // `{}` prints integral floats without a dot; keep them typed as JSON
    // numbers either way (JSON has no int/float split), nothing to fix.
}

/// Appends a string as a JSON string literal with escapes.
pub fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::Tracer;

    #[test]
    fn emits_one_json_object_per_line() {
        let t = Tracer::enabled();
        {
            let _run = t.span("run");
            let _p = t.span_labeled("fl.round", 3);
            t.counter_add("fl.retries", 2);
            t.gauge_set("bo.incumbent_loss", 0.5);
            t.record("lat", 10.0);
        }
        let lines = to_json_lines(&t.snapshot());
        let rows: Vec<&str> = lines.lines().collect();
        // 2 spans + 1 gauge event + 1 counter + 1 gauge + 1 histogram.
        assert_eq!(rows.len(), 6);
        for row in &rows {
            assert!(row.starts_with('{') && row.ends_with('}'), "bad row {row}");
            assert_eq!(row.matches('{').count(), row.matches('}').count());
        }
        assert!(rows[0].contains("\"kind\":\"span\""));
        assert!(rows[0].contains("\"name\":\"run\""));
        assert!(rows[1].contains("\"label\":3"));
        assert!(rows[1].contains("\"parent\":1"));
        assert!(lines.contains("\"kind\":\"counter\""));
        assert!(lines.contains("\"kind\":\"histogram\""));
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut s = String::new();
        push_json_f64(&mut s, f64::NAN);
        s.push(' ');
        push_json_f64(&mut s, f64::INFINITY);
        s.push(' ');
        push_json_f64(&mut s, 1.5);
        assert_eq!(s, "null null 1.5");
    }

    #[test]
    fn strings_are_escaped() {
        let mut s = String::new();
        push_json_str(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn open_span_serializes_null_end() {
        let t = Tracer::enabled();
        let _open = t.span("still.open");
        let lines = to_json_lines(&t.snapshot());
        assert!(lines.contains("\"end_us\":null"));
        assert!(lines.contains("\"duration_us\":null"));
    }
}
