//! Log-bucketed, mergeable histograms.
//!
//! Buckets grow geometrically (four per doubling, ≈ 19% relative width),
//! so one histogram covers byte counts and sub-millisecond latencies
//! alike with a few dozen occupied buckets. Merging adds bucket counts,
//! which makes aggregation **order-invariant**: per-client histograms
//! combine at the server exactly like model updates do, regardless of
//! arrival order. All rank statistics (percentiles) depend only on the
//! integer bucket counts, so they are bit-identical under any merge
//! order; only `sum` is a floating-point accumulator and therefore
//! order-*sensitive* in its last few bits.

use std::collections::BTreeMap;

/// Buckets per doubling of the value range. Four gives a relative bucket
/// width of `2^(1/4) − 1 ≈ 19%`, the usual observability trade-off
/// between memory and quantile accuracy.
pub const BUCKETS_PER_DOUBLING: i32 = 4;

/// Bucket index reserved for values `<= 0` (counts and durations are
/// non-negative, so in practice this holds exact zeros).
pub const ZERO_BUCKET: i32 = i32::MIN;

/// A mergeable log-bucketed histogram.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: BTreeMap<i32, u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    // Not derived: the empty extremes are ±infinity, not zero, so that
    // the first `record` always wins the min/max comparison.
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: BTreeMap::new(),
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The bucket a value falls into, or `None` for non-finite values
    /// (which [`record`](Self::record) ignores).
    pub fn bucket_of(v: f64) -> Option<i32> {
        if !v.is_finite() {
            return None;
        }
        if v <= 0.0 {
            return Some(ZERO_BUCKET);
        }
        Some((v.log2() * BUCKETS_PER_DOUBLING as f64).floor() as i32)
    }

    /// The `[lo, hi)` value range of a bucket ( `(-inf, 0]` for the zero
    /// bucket).
    pub fn bucket_bounds(idx: i32) -> (f64, f64) {
        if idx == ZERO_BUCKET {
            return (f64::NEG_INFINITY, 0.0);
        }
        let lo = 2f64.powf(idx as f64 / BUCKETS_PER_DOUBLING as f64);
        let hi = 2f64.powf((idx + 1) as f64 / BUCKETS_PER_DOUBLING as f64);
        (lo, hi)
    }

    /// Records one observation. Non-finite values are ignored.
    pub fn record(&mut self, v: f64) {
        let Some(idx) = Histogram::bucket_of(v) else {
            return;
        };
        *self.counts.entry(idx).or_insert(0) += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Merges another histogram into this one. Bucket counts, totals,
    /// min, and max all combine commutatively and associatively, so any
    /// aggregation tree over per-client histograms yields the same rank
    /// statistics.
    pub fn merge(&mut self, other: &Histogram) {
        for (&idx, &c) in &other.counts {
            *self.counts.entry(idx).or_insert(0) += c;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Merges a sequence of per-shard histograms into one, in iteration
    /// order. On counts, buckets, min, and max the result is independent
    /// of that order (merge is commutative and associative there); only
    /// the floating-point [`sum`](Histogram::sum) accumulator is
    /// order-sensitive, which is why callers that need a deterministic
    /// `sum` — the serving batcher's per-shard latency partials — must
    /// pass shards in shard index order.
    pub fn merge_all<'a>(shards: impl IntoIterator<Item = &'a Histogram>) -> Histogram {
        let mut out = Histogram::new();
        for h in shards {
            out.merge(h);
        }
        out
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of recorded observations (floating-point accumulator; the one
    /// field whose low bits depend on merge order).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest recorded observation, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded observation, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of recorded observations, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.sum / self.count as f64)
    }

    /// Occupied `(bucket, count)` pairs in ascending bucket order.
    pub fn buckets(&self) -> impl Iterator<Item = (i32, u64)> + '_ {
        self.counts.iter().map(|(&i, &c)| (i, c))
    }

    /// The bucket containing the `q`-quantile (rank `ceil(q·n)` clamped
    /// to `[1, n]`), or `None` when empty.
    pub fn quantile_bucket(&self, q: f64) -> Option<i32> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (&idx, &c) in &self.counts {
            seen += c;
            if seen >= rank {
                return Some(idx);
            }
        }
        self.counts.keys().next_back().copied()
    }

    /// Estimated `q`-percentile: the upper bound of the bucket holding
    /// the exact quantile, so `estimate / true ∈ [1, 2^(1/4))` for
    /// positive values. Returns `None` when empty.
    pub fn percentile(&self, q: f64) -> Option<f64> {
        let idx = self.quantile_bucket(q)?;
        if idx == ZERO_BUCKET {
            return Some(0.0);
        }
        Some(Histogram::bucket_bounds(idx).1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_tracks_min_max_like_new() {
        // Regression: a derived Default would start min at 0.0 and report
        // a phantom minimum forever.
        let mut h = Histogram::default();
        h.record(7.5);
        assert_eq!(h.min(), Some(7.5));
        assert_eq!(h.max(), Some(7.5));
    }

    #[test]
    fn empty_histogram_has_no_statistics() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
    }

    #[test]
    fn records_and_bounds_quantiles() {
        let mut h = Histogram::new();
        for v in [1.0, 2.0, 4.0, 8.0, 1024.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(1024.0));
        // The p50 estimate's bucket must contain the exact median (4.0).
        let b = h.quantile_bucket(0.5).unwrap();
        let (lo, hi) = Histogram::bucket_bounds(b);
        assert!(lo <= 4.0 && 4.0 < hi, "median 4.0 outside [{lo}, {hi})");
        // Estimate overshoots by at most one bucket width.
        let est = h.percentile(0.5).unwrap();
        assert!(est >= 4.0 && est <= 4.0 * 2f64.powf(0.25) + 1e-9);
    }

    #[test]
    fn zero_and_negative_values_use_the_zero_bucket() {
        let mut h = Histogram::new();
        h.record(0.0);
        h.record(-3.0);
        h.record(5.0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.percentile(0.01), Some(0.0));
        assert_eq!(h.min(), Some(-3.0));
    }

    #[test]
    fn non_finite_values_are_ignored() {
        let mut h = Histogram::new();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert!(h.is_empty());
    }

    #[test]
    fn merge_is_order_invariant_on_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for i in 0..100 {
            a.record((i as f64 * 0.37).exp());
            b.record(i as f64 + 0.5);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(
            ab.buckets().collect::<Vec<_>>(),
            ba.buckets().collect::<Vec<_>>()
        );
        assert_eq!(ab.count(), ba.count());
        assert_eq!(ab.min(), ba.min());
        assert_eq!(ab.max(), ba.max());
        for q in [0.0, 0.25, 0.5, 0.95, 1.0] {
            assert_eq!(ab.percentile(q), ba.percentile(q));
        }
    }

    #[test]
    fn merge_all_equals_one_histogram_over_the_concatenation() {
        // The serving batcher records latencies into per-shard partials
        // and merges them in shard order; the result must carry the same
        // statistics as recording every observation into one histogram.
        let values: Vec<f64> = (0..256).map(|i| ((i * 37) % 97) as f64 + 0.25).collect();
        let mut single = Histogram::new();
        for &v in &values {
            single.record(v);
        }
        let shards: Vec<Histogram> = values
            .chunks(21)
            .map(|c| {
                let mut h = Histogram::new();
                for &v in c {
                    h.record(v);
                }
                h
            })
            .collect();
        let merged = Histogram::merge_all(&shards);
        assert_eq!(
            merged.buckets().collect::<Vec<_>>(),
            single.buckets().collect::<Vec<_>>()
        );
        assert_eq!(merged.count(), single.count());
        assert_eq!(merged.min(), single.min());
        assert_eq!(merged.max(), single.max());
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(merged.percentile(q), single.percentile(q));
        }
    }

    #[test]
    fn merged_empty_is_identity() {
        let mut a = Histogram::new();
        a.record(7.0);
        let before: Vec<_> = a.buckets().collect();
        a.merge(&Histogram::new());
        assert_eq!(a.buckets().collect::<Vec<_>>(), before);
        assert_eq!(a.count(), 1);
        assert_eq!(a.min(), Some(7.0));
    }
}
