//! The disabled-sink guarantee: a disabled tracer must be safe to leave
//! in hot paths permanently, meaning every instrumentation call is a
//! branch-and-return with **zero heap allocations**. Asserted with a
//! counting global allocator; this file holds exactly one test so no
//! parallel test can allocate concurrently and pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn disabled_tracer_makes_no_allocations() {
    let tracer = ff_trace::Tracer::disabled();
    let clone = tracer.clone(); // cloning a disabled tracer is also free
    let recorder = ff_trace::FlightRecorder::disabled();
    let rec_clone = recorder.clone();

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for i in 0..1000u64 {
        let _run = tracer.span("run");
        let _phase = tracer.span("phase.optimization");
        let _trial = tracer.span_labeled("trial", i);
        tracer.counter_add("fl.rounds", 1);
        tracer.counter_add_labeled("fl.msg_bytes_to_server", i, 128);
        tracer.gauge_set("engine.budget_remaining", 0.5);
        tracer.record("lat", 3.25);
        tracer.record_labeled("lat", i, 3.25);
        clone.counter_add("fl.retries", 1);
        assert_eq!(tracer.open_spans_on_this_thread(), 0);
        // A disabled recorder never calls the frame builder, so the
        // (allocating) closure body costs nothing here.
        let fired = recorder.commit_with(|| ff_trace::RoundFrame {
            round: i,
            quarantined: vec![1, 2, 3],
            ..ff_trace::RoundFrame::default()
        });
        assert!(fired.is_none());
        assert!(rec_clone.commit_with(|| unreachable!()).is_none());
    }
    // An empty snapshot is empty Vecs, which do not allocate either.
    let snap = tracer.snapshot();
    // Profiling an empty snapshot builds empty collections — also free.
    let profile = ff_trace::Profile::build(&snap);
    let folded = ff_trace::folded_stacks(&snap);
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(
        after - before,
        0,
        "disabled tracer/recorder/profiler allocated {} times",
        after - before
    );
    assert!(snap.spans.is_empty());
    assert!(snap.counters.is_empty());
    assert!(snap.histograms.is_empty());
    assert!(recorder.frames().is_empty());
    assert!(recorder.dumps().is_empty());
    assert!(profile.rows.is_empty());
    assert!(folded.is_empty());
}
