//! Property tests: histogram merge is order-invariant (commutative and
//! associative on everything but the floating-point `sum`), percentile
//! estimates bound the true quantile within one bucket, and span nesting
//! always closes LIFO — even when the enclosing scope unwinds through
//! `catch_unwind`, as the FL runtime's client threads do.

use ff_trace::{Histogram, Tracer};
use proptest::prelude::*;

fn record_all(values: &[f64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

fn buckets(h: &Histogram) -> Vec<(i32, u64)> {
    h.buckets().collect()
}

proptest! {
    #[test]
    fn merge_is_commutative(
        a in prop::collection::vec(-1e6f64..1e9, 0..200),
        b in prop::collection::vec(1e-9f64..1e12, 0..200),
    ) {
        let (ha, hb) = (record_all(&a), record_all(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(buckets(&ab), buckets(&ba));
        prop_assert_eq!(ab.count(), ba.count());
        prop_assert_eq!(ab.min(), ba.min());
        prop_assert_eq!(ab.max(), ba.max());
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(ab.quantile_bucket(q), ba.quantile_bucket(q));
            prop_assert_eq!(ab.percentile(q), ba.percentile(q));
        }
    }

    #[test]
    fn merge_is_associative(
        a in prop::collection::vec(0.0f64..1e9, 0..100),
        b in prop::collection::vec(0.0f64..1e9, 0..100),
        c in prop::collection::vec(0.0f64..1e9, 0..100),
    ) {
        let (ha, hb, hc) = (record_all(&a), record_all(&b), record_all(&c));
        // (a ⊕ b) ⊕ c
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        // a ⊕ (b ⊕ c)
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(buckets(&left), buckets(&right));
        prop_assert_eq!(left.count(), right.count());
        for q in [0.25, 0.5, 0.75, 0.95] {
            prop_assert_eq!(left.quantile_bucket(q), right.quantile_bucket(q));
        }
    }

    #[test]
    fn percentile_bounds_the_true_quantile_within_one_bucket(
        values in prop::collection::vec(1e-6f64..1e12, 1..300),
        q in 0.0f64..1.0,
    ) {
        let h = record_all(&values);
        // Exact quantile: rank ceil(q·n) clamped to [1, n] over the sorted
        // values — the same rank definition the histogram uses.
        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len() as u64;
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let exact = sorted[(rank - 1) as usize];
        // The estimate's bucket must be the bucket containing the exact
        // quantile (compared by index: no float tolerance needed).
        let est_bucket = h.quantile_bucket(q).unwrap();
        prop_assert_eq!(Some(est_bucket), Histogram::bucket_of(exact));
        // And therefore the reported percentile overshoots the exact
        // quantile by at most one bucket width (2^(1/4) relative).
        let est = h.percentile(q).unwrap();
        prop_assert!(est >= exact * (1.0 - 1e-12));
        prop_assert!(est <= exact * 2f64.powf(0.25) * (1.0 + 1e-12));
    }

    #[test]
    fn span_nesting_closes_lifo_across_catch_unwind(
        depth in 1usize..20,
        panic_at in 0usize..20,
    ) {
        let t = Tracer::enabled();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // Guards live in a stack; a panic unwinds them innermost-first.
            fn recurse(t: &Tracer, level: usize, depth: usize, panic_at: usize) {
                if level == depth {
                    return;
                }
                let _g = t.span("nested");
                if level == panic_at {
                    panic!("unwind through open spans");
                }
                recurse(t, level + 1, depth, panic_at);
            }
            recurse(&t, 0, depth, panic_at);
        }));
        prop_assert_eq!(result.is_err(), panic_at < depth);
        // Whatever happened, every span closed and closed LIFO: each
        // child's end time is within its parent's window.
        prop_assert_eq!(t.open_spans_on_this_thread(), 0);
        let snap = t.snapshot();
        for s in &snap.spans {
            prop_assert!(s.end_us.is_some());
            if let Some(parent) = s.parent.and_then(|p| snap.span_by_id(p)) {
                prop_assert!(parent.start_us <= s.start_us);
                prop_assert!(s.end_us.unwrap() <= parent.end_us.unwrap());
            }
        }
    }
}

// --- flight recorder ---------------------------------------------------

fn arb_frame(round: u64, distress: u8) -> ff_trace::RoundFrame {
    let mut f = ff_trace::RoundFrame {
        round,
        phase: "fleet.fit",
        cohort: 100,
        admitted: 90,
        accepted: 80,
        ..ff_trace::RoundFrame::default()
    };
    match distress % 5 {
        1 => f.quarantined = vec![round % 7],
        2 => f.quorum_met = false,
        3 => f.rejected = vec![(round % 7, "norm blew up".into())],
        4 => f.non_finite = true,
        _ => {}
    }
    f
}

proptest! {
    #[test]
    fn recorder_ring_never_exceeds_capacity(
        capacity in 1usize..32,
        distress in prop::collection::vec(0u8..5, 1..200),
    ) {
        let r = ff_trace::FlightRecorder::enabled(ff_trace::RecorderConfig {
            capacity,
            max_dumps: 4,
            ..Default::default()
        });
        for (i, d) in distress.iter().enumerate() {
            r.commit_with(|| arb_frame(i as u64 + 1, *d));
            prop_assert!(r.len() <= capacity, "ring grew past capacity");
        }
        // The ring holds the *newest* frames, contiguous and in order.
        let frames = r.frames();
        prop_assert_eq!(frames.len(), distress.len().min(capacity));
        let first = distress.len() - frames.len();
        for (j, f) in frames.iter().enumerate() {
            prop_assert_eq!(f.round, (first + j) as u64 + 1);
        }
        // Every dump ends at a frame that actually carries distress, and
        // dump count respects the cap while triggers keep counting.
        let dumps = r.dumps();
        prop_assert!(dumps.len() <= 4);
        prop_assert!(r.triggers_fired() >= dumps.len() as u64);
        for d in &dumps {
            let last = d.frames.last().unwrap();
            prop_assert_eq!(last.round, d.round);
            prop_assert!(d.frames.len() <= capacity);
        }
    }

    #[test]
    fn recorder_dumps_are_reproducible(
        capacity in 1usize..16,
        distress in prop::collection::vec(0u8..5, 1..64),
    ) {
        let run = || {
            let r = ff_trace::FlightRecorder::enabled(ff_trace::RecorderConfig {
                capacity,
                ..Default::default()
            });
            for (i, d) in distress.iter().enumerate() {
                r.commit_with(|| arb_frame(i as u64 + 1, *d));
            }
            r.dumps()
                .iter()
                .map(|d| d.to_json_lines())
                .collect::<Vec<_>>()
        };
        // Frames carry no wall-clock data, so two identical round
        // sequences serialize byte-identically.
        prop_assert_eq!(run(), run());
    }
}
