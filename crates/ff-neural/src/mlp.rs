//! A sequential multi-layer perceptron with regression (MSE) and
//! classification (softmax cross-entropy) heads.

use crate::activation::{softmax_rows, Relu};
use crate::adam::Adam;
use crate::dense::Dense;
use crate::{Layer, Parameterized};
use ff_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A ReLU MLP: `Dense → ReLU → … → Dense`.
#[derive(Debug, Clone)]
pub struct Mlp {
    denses: Vec<Dense>,
    relus: Vec<Relu>,
}

impl Mlp {
    /// Builds an MLP with the given layer sizes, e.g. `[8, 32, 32, 3]` for
    /// 8 inputs, two hidden layers of 32, and 3 outputs.
    ///
    /// # Panics
    /// Panics if fewer than two sizes are given.
    pub fn new(sizes: &[usize], seed: u64) -> Mlp {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        let mut rng = StdRng::seed_from_u64(seed);
        let denses: Vec<Dense> = sizes
            .windows(2)
            .map(|w| Dense::new(&mut rng, w[0], w[1]))
            .collect();
        let relus = vec![Relu::new(); denses.len().saturating_sub(1)];
        Mlp { denses, relus }
    }

    /// Forward pass (training mode: caches activations).
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let mut h = x.clone();
        let n = self.denses.len();
        for i in 0..n {
            h = self.denses[i].forward(&h);
            if i + 1 < n {
                h = self.relus[i].forward(&h);
            }
        }
        h
    }

    /// Inference forward through `&self` (no caching).
    pub fn forward_inference(&self, x: &Matrix) -> Matrix {
        let mut h = x.clone();
        let n = self.denses.len();
        for i in 0..n {
            h = self.denses[i].forward_inference(&h);
            if i + 1 < n {
                h = Matrix::from_vec(
                    h.rows(),
                    h.cols(),
                    h.as_slice().iter().map(|&v| v.max(0.0)).collect(),
                );
            }
        }
        h
    }

    /// Backward pass from `∂L/∂output`.
    pub fn backward(&mut self, grad: &Matrix) -> Matrix {
        let mut g = grad.clone();
        let n = self.denses.len();
        for i in (0..n).rev() {
            if i + 1 < n {
                g = self.relus[i].backward(&g);
            }
            g = self.denses[i].backward(&g);
        }
        g
    }

    /// Zeroes all parameter gradients.
    pub fn zero_grad(&mut self) {
        for d in &mut self.denses {
            d.zero_grad();
        }
    }

    /// Visits `(param, grad)` pairs of all layers.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut f64, &mut f64)) {
        for d in &mut self.denses {
            d.visit_params(f);
        }
    }

    /// One MSE training step on a batch; returns the batch loss.
    pub fn train_step_mse(&mut self, x: &Matrix, y: &Matrix, opt: &mut Adam) -> f64 {
        self.zero_grad();
        let pred = self.forward(x);
        let n = (pred.rows() * pred.cols()) as f64;
        let diff = pred.sub(y).expect("target shape mismatch");
        let loss = diff.as_slice().iter().map(|d| d * d).sum::<f64>() / n;
        let grad = diff.scale(2.0 / n);
        self.backward(&grad);
        opt.step(|f| self.visit_params(f));
        loss
    }

    /// One softmax-cross-entropy step on a batch of class labels; returns
    /// the batch loss (nats).
    pub fn train_step_cross_entropy(
        &mut self,
        x: &Matrix,
        labels: &[usize],
        opt: &mut Adam,
    ) -> f64 {
        self.zero_grad();
        let logits = self.forward(x);
        let probs = softmax_rows(&logits);
        let n = x.rows() as f64;
        let mut loss = 0.0;
        let mut grad = probs.clone();
        for (i, &label) in labels.iter().enumerate() {
            loss -= probs.get(i, label).max(1e-12).ln();
            let v = grad.get(i, label) - 1.0;
            grad.set(i, label, v);
        }
        let grad = grad.scale(1.0 / n);
        self.backward(&grad);
        opt.step(|f| self.visit_params(f));
        loss / n
    }

    /// Class probabilities for a batch.
    pub fn predict_proba(&self, x: &Matrix) -> Matrix {
        softmax_rows(&self.forward_inference(x))
    }

    /// Random mini-batch row indices.
    pub fn sample_batch<R: Rng>(rng: &mut R, n_rows: usize, batch: usize) -> Vec<usize> {
        (0..batch.min(n_rows))
            .map(|_| rng.gen_range(0..n_rows))
            .collect()
    }
}

impl Parameterized for Mlp {
    fn params_flat(&mut self) -> Vec<f64> {
        let mut out = Vec::new();
        self.visit_params(&mut |p, _| out.push(*p));
        out
    }

    fn set_params_flat(&mut self, flat: &[f64]) {
        let mut it = flat.iter();
        self.visit_params(&mut |p, _| {
            *p = *it.next().expect("flat parameter vector too short");
        });
        assert!(it.next().is_none(), "flat parameter vector too long");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mlp_learns_xor() {
        let x = Matrix::from_rows(&[&[0.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]]);
        let y = Matrix::from_rows(&[&[0.0], &[1.0], &[1.0], &[0.0]]);
        let mut net = Mlp::new(&[2, 16, 1], 7);
        let mut opt = Adam::new(0.02);
        let mut loss = f64::INFINITY;
        for _ in 0..2000 {
            loss = net.train_step_mse(&x, &y, &mut opt);
        }
        assert!(loss < 0.02, "XOR loss {loss}");
    }

    #[test]
    fn mlp_classifier_separates_clusters() {
        // Three well-separated 2-D clusters.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        let centers = [(0.0, 0.0), (5.0, 5.0), (-5.0, 5.0)];
        let mut state = 1u64;
        for (c, &(cx, cy)) in centers.iter().enumerate() {
            for _ in 0..30 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let dx = ((state >> 33) as f64 / (1u64 << 30) as f64) - 1.0;
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let dy = ((state >> 33) as f64 / (1u64 << 30) as f64) - 1.0;
                rows.push(vec![cx + dx * 0.5, cy + dy * 0.5]);
                labels.push(c);
            }
        }
        let x = Matrix::from_fn(rows.len(), 2, |i, j| rows[i][j]);
        let mut net = Mlp::new(&[2, 24, 3], 11);
        let mut opt = Adam::new(0.01);
        for _ in 0..400 {
            net.train_step_cross_entropy(&x, &labels, &mut opt);
        }
        let probs = net.predict_proba(&x);
        let mut correct = 0;
        for (i, &label) in labels.iter().enumerate() {
            let pred = ff_linalg::vector::argmax(probs.row(i)).unwrap();
            correct += usize::from(pred == label);
        }
        let acc = correct as f64 / labels.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn params_roundtrip() {
        let mut a = Mlp::new(&[3, 8, 2], 1);
        let mut b = Mlp::new(&[3, 8, 2], 2);
        let pa = a.params_flat();
        b.set_params_flat(&pa);
        assert_eq!(pa, b.params_flat());
        // Identical parameters ⇒ identical predictions.
        let x = Matrix::from_rows(&[&[0.1, -0.2, 0.3]]);
        let ya = a.forward_inference(&x);
        let yb = b.forward_inference(&x);
        assert_eq!(ya.as_slice(), yb.as_slice());
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn set_params_wrong_length_panics() {
        let mut net = Mlp::new(&[2, 2], 0);
        net.set_params_flat(&[1.0]);
    }

    #[test]
    fn gradient_check_full_network() {
        let mut net = Mlp::new(&[2, 4, 1], 9);
        let x = Matrix::from_rows(&[&[0.3, -0.6]]);
        let y = Matrix::from_rows(&[&[1.0]]);

        net.zero_grad();
        let pred = net.forward(&x);
        let diff = pred.sub(&y).unwrap();
        net.backward(&diff.scale(2.0));

        let mut analytic = Vec::new();
        net.visit_params(&mut |_, g| analytic.push(*g));

        let loss_of = |net: &Mlp| {
            let p = net.forward_inference(&x);
            let d = p.get(0, 0) - 1.0;
            d * d
        };
        let eps = 1e-6;
        for k in 0..analytic.len() {
            let mut idx = 0;
            net.visit_params(&mut |p, _| {
                if idx == k {
                    *p += eps;
                }
                idx += 1;
            });
            let plus = loss_of(&net);
            idx = 0;
            net.visit_params(&mut |p, _| {
                if idx == k {
                    *p -= 2.0 * eps;
                }
                idx += 1;
            });
            let minus = loss_of(&net);
            idx = 0;
            net.visit_params(&mut |p, _| {
                if idx == k {
                    *p += eps;
                }
                idx += 1;
            });
            let numeric = (plus - minus) / (2.0 * eps);
            assert!(
                (analytic[k] - numeric).abs() < 1e-4 * (1.0 + numeric.abs()),
                "param {k}: analytic {} vs numeric {numeric}",
                analytic[k]
            );
        }
    }
}
