//! The Adam optimizer.

/// Adam optimizer state over a flat parameter vector.
///
/// The caller owns the parameters (inside layers); `Adam` only keeps the
/// first/second moment estimates, indexed by the order in which
/// `visit_params` yields the parameters — which is stable by contract.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    m: Vec<f64>,
    v: Vec<f64>,
}

impl Adam {
    /// Creates an optimizer with the given learning rate and the standard
    /// `β₁ = 0.9, β₂ = 0.999, ε = 1e-8`.
    pub fn new(lr: f64) -> Adam {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f64 {
        self.lr
    }

    /// Performs one update step over parameters exposed by `visit`.
    ///
    /// `visit` must call its callback once per `(param, grad)` pair in the
    /// same order every step.
    pub fn step(&mut self, visit: impl FnOnce(&mut dyn FnMut(&mut f64, &mut f64))) {
        self.t += 1;
        let bias1 = 1.0 - self.beta1.powi(self.t as i32);
        let bias2 = 1.0 - self.beta2.powi(self.t as i32);
        let (beta1, beta2, eps, lr) = (self.beta1, self.beta2, self.eps, self.lr);
        let m = &mut self.m;
        let v = &mut self.v;
        let mut idx = 0usize;
        visit(&mut |p: &mut f64, g: &mut f64| {
            if idx >= m.len() {
                m.push(0.0);
                v.push(0.0);
            }
            m[idx] = beta1 * m[idx] + (1.0 - beta1) * *g;
            v[idx] = beta2 * v[idx] + (1.0 - beta2) * *g * *g;
            let m_hat = m[idx] / bias1;
            let v_hat = v[idx] / bias2;
            *p -= lr * m_hat / (v_hat.sqrt() + eps);
            idx += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_minimizes_quadratic() {
        // Minimize f(x) = (x - 3)² starting from 0.
        let mut x = 0.0f64;
        let mut opt = Adam::new(0.1);
        for _ in 0..500 {
            let mut g = 2.0 * (x - 3.0);
            opt.step(|f| f(&mut x, &mut g));
        }
        assert!((x - 3.0).abs() < 0.05, "x={x}");
    }

    #[test]
    fn adam_handles_multiple_params() {
        let mut params = [10.0f64, -5.0];
        let mut opt = Adam::new(0.2);
        for _ in 0..800 {
            let mut grads = [2.0 * params[0], 2.0 * params[1]];
            opt.step(|f| {
                f(&mut params[0], &mut grads[0]);
                f(&mut params[1], &mut grads[1]);
            });
        }
        assert!(
            params[0].abs() < 0.05 && params[1].abs() < 0.05,
            "{params:?}"
        );
    }

    #[test]
    fn first_step_has_bias_correction() {
        // With bias correction, the very first step ≈ lr · sign(grad).
        let mut x = 0.0f64;
        let mut g = 100.0f64;
        let mut opt = Adam::new(0.5);
        opt.step(|f| f(&mut x, &mut g));
        assert!((x + 0.5).abs() < 1e-6, "x={x}");
    }
}
