//! Fully-connected layer.

use crate::{init, Layer};
use ff_linalg::Matrix;
use rand::Rng;

/// A dense layer `y = x W + b` with `W: in × out`.
#[derive(Debug, Clone)]
pub struct Dense {
    w: Matrix,
    b: Vec<f64>,
    dw: Matrix,
    db: Vec<f64>,
    cached_input: Option<Matrix>,
}

impl Dense {
    /// Creates a dense layer with He-uniform weights and zero bias.
    pub fn new<R: Rng>(rng: &mut R, fan_in: usize, fan_out: usize) -> Dense {
        let w = Matrix::from_fn(fan_in, fan_out, |_, _| init::he_uniform(rng, fan_in));
        Dense {
            w,
            b: vec![0.0; fan_out],
            dw: Matrix::zeros(fan_in, fan_out),
            db: vec![0.0; fan_out],
            cached_input: None,
        }
    }

    /// Input dimension.
    pub fn fan_in(&self) -> usize {
        self.w.rows()
    }

    /// Output dimension.
    pub fn fan_out(&self) -> usize {
        self.w.cols()
    }

    /// Inference-only forward that does not cache (usable through `&self`).
    pub fn forward_inference(&self, x: &Matrix) -> Matrix {
        let mut out = x.matmul(&self.w).expect("dense shape mismatch");
        for i in 0..out.rows() {
            for (o, &bj) in out.row_mut(i).iter_mut().zip(&self.b) {
                *o += bj;
            }
        }
        out
    }
}

impl Layer for Dense {
    fn forward(&mut self, x: &Matrix) -> Matrix {
        let out = self.forward_inference(x);
        self.cached_input = Some(x.clone());
        out
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let x = self
            .cached_input
            .as_ref()
            .expect("backward called before forward");
        // dW += xᵀ grad_out; db += column sums of grad_out.
        let dw = x.transpose().matmul(grad_out).expect("shape");
        self.dw = self.dw.add(&dw).expect("shape");
        for i in 0..grad_out.rows() {
            for (dbj, &g) in self.db.iter_mut().zip(grad_out.row(i)) {
                *dbj += g;
            }
        }
        grad_out.matmul(&self.w.transpose()).expect("shape")
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut f64, &mut f64)) {
        for (w, dw) in self
            .w
            .as_mut_slice()
            .iter_mut()
            .zip(self.dw.as_mut_slice().iter_mut())
        {
            f(w, dw);
        }
        for (b, db) in self.b.iter_mut().zip(self.db.iter_mut()) {
            f(b, db);
        }
    }

    fn zero_grad(&mut self) {
        self.dw.as_mut_slice().fill(0.0);
        self.db.fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_matches_manual_computation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut layer = Dense::new(&mut rng, 2, 1);
        // Overwrite with known weights.
        layer.visit_params(&mut |p, _| *p = 1.0);
        let x = Matrix::from_rows(&[&[2.0, 3.0]]);
        let y = layer.forward(&x);
        // y = 2*1 + 3*1 + 1 (bias) = 6.
        assert!((y.get(0, 0) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn gradient_check_weights() {
        // Finite-difference check of dW on a scalar loss L = sum(y).
        let mut rng = StdRng::seed_from_u64(4);
        let mut layer = Dense::new(&mut rng, 3, 2);
        let x = Matrix::from_rows(&[&[0.5, -1.0, 2.0], &[1.5, 0.3, -0.7]]);

        let y = layer.forward(&x);
        let ones = Matrix::from_fn(y.rows(), y.cols(), |_, _| 1.0);
        layer.backward(&ones);

        // Collect analytic grads.
        let mut analytic = Vec::new();
        layer.visit_params(&mut |_, g| analytic.push(*g));

        // Numeric grads.
        let eps = 1e-6;
        let mut idx;
        let mut numeric = vec![0.0; analytic.len()];
        let total = analytic.len();
        for k in 0..total {
            let mut plus = 0.0;
            let mut minus = 0.0;
            idx = 0;
            layer.visit_params(&mut |p, _| {
                if idx == k {
                    *p += eps;
                }
                idx += 1;
            });
            let y = layer.forward_inference(&x);
            plus += y.as_slice().iter().sum::<f64>();
            idx = 0;
            layer.visit_params(&mut |p, _| {
                if idx == k {
                    *p -= 2.0 * eps;
                }
                idx += 1;
            });
            let y = layer.forward_inference(&x);
            minus += y.as_slice().iter().sum::<f64>();
            idx = 0;
            layer.visit_params(&mut |p, _| {
                if idx == k {
                    *p += eps;
                }
                idx += 1;
            });
            numeric[k] = (plus - minus) / (2.0 * eps);
        }
        for (a, n) in analytic.iter().zip(&numeric) {
            assert!((a - n).abs() < 1e-4, "analytic {a} vs numeric {n}");
        }
    }

    #[test]
    fn backward_input_gradient_shape() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut layer = Dense::new(&mut rng, 4, 3);
        let x = Matrix::zeros(5, 4);
        let y = layer.forward(&x);
        assert_eq!((y.rows(), y.cols()), (5, 3));
        let gin = layer.backward(&Matrix::zeros(5, 3));
        assert_eq!((gin.rows(), gin.cols()), (5, 4));
    }

    #[test]
    fn zero_grad_clears_accumulation() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut layer = Dense::new(&mut rng, 2, 2);
        let x = Matrix::from_rows(&[&[1.0, 1.0]]);
        layer.forward(&x);
        layer.backward(&Matrix::from_rows(&[&[1.0, 1.0]]));
        layer.zero_grad();
        let mut all_zero = true;
        layer.visit_params(&mut |_, g| all_zero &= *g == 0.0);
        assert!(all_zero);
    }
}
