//! Weight initialization.

use rand::Rng;

/// Xavier/Glorot uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform<R: Rng>(rng: &mut R, fan_in: usize, fan_out: usize) -> f64 {
    let a = (6.0 / (fan_in + fan_out) as f64).sqrt();
    rng.gen_range(-a..a)
}

/// He/Kaiming uniform initialization for ReLU networks:
/// `U(-a, a)` with `a = sqrt(6 / fan_in)`.
pub fn he_uniform<R: Rng>(rng: &mut R, fan_in: usize) -> f64 {
    let a = (6.0 / fan_in as f64).sqrt();
    rng.gen_range(-a..a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_within_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = (6.0f64 / 20.0).sqrt();
        for _ in 0..100 {
            let w = xavier_uniform(&mut rng, 10, 10);
            assert!(w.abs() < a);
        }
    }

    #[test]
    fn he_scales_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(2);
        let wide: Vec<f64> = (0..500).map(|_| he_uniform(&mut rng, 1000)).collect();
        let narrow: Vec<f64> = (0..500).map(|_| he_uniform(&mut rng, 10)).collect();
        let spread = |v: &[f64]| v.iter().map(|x| x.abs()).fold(0.0f64, f64::max);
        assert!(spread(&wide) < spread(&narrow));
    }
}
