// Index-based loops across parallel arrays are the clearest form for the
// numeric kernels in this crate; the iterator rewrites clippy suggests
// obscure the math.
#![allow(clippy::needless_range_loop)]

//! Minimal neural-network substrate for FedForecaster.
//!
//! The paper's baselines need two neural models: the N-BEATS forecaster
//! (Oreshkin et al. 2019, §5.1) and an MLP classifier (Table 4). This
//! crate implements both on a tiny manual-backprop engine:
//!
//! - [`dense::Dense`]: fully-connected layer with cached activations.
//! - [`activation`]: ReLU forward/backward.
//! - [`adam::Adam`]: the Adam optimizer over a flat parameter view.
//! - [`mlp::Mlp`]: a sequential ReLU network with MSE and
//!   softmax-cross-entropy heads.
//! - [`nbeats`]: N-BEATS generic/trend/seasonality blocks with doubly
//!   residual stacking, trained for one-step-ahead forecasting.
//! - [`Parameterized`]: flat parameter get/set — the hook `ff-fl` uses for
//!   FedAvg weight aggregation.

pub mod activation;
pub mod adam;
pub mod dense;
pub mod init;
pub mod mlp;
pub mod nbeats;

use ff_linalg::Matrix;

/// A differentiable module with trainable parameters.
pub trait Layer {
    /// Forward pass over a batch (rows = samples). Caches whatever the
    /// backward pass needs.
    fn forward(&mut self, x: &Matrix) -> Matrix;
    /// Backward pass: receives `∂L/∂output`, accumulates parameter
    /// gradients internally, returns `∂L/∂input`.
    fn backward(&mut self, grad_out: &Matrix) -> Matrix;
    /// Visits every `(parameter, gradient)` pair in a stable order.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut f64, &mut f64));
    /// Resets accumulated gradients to zero.
    fn zero_grad(&mut self);
}

/// Models whose parameters can be exported/imported as a flat vector —
/// the contract FedAvg aggregation relies on.
pub trait Parameterized {
    /// All parameters, flattened in a stable order.
    fn params_flat(&mut self) -> Vec<f64>;
    /// Overwrites all parameters from a flat vector produced by
    /// [`Parameterized::params_flat`] on an identically-shaped model.
    ///
    /// # Panics
    /// Panics if the length does not match.
    fn set_params_flat(&mut self, flat: &[f64]);
    /// Number of parameters.
    fn num_params(&mut self) -> usize {
        self.params_flat().len()
    }
}
