//! Activation functions.

use crate::Layer;
use ff_linalg::Matrix;

/// Rectified linear unit, applied elementwise.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU activation layer.
    pub fn new() -> Relu {
        Relu { mask: None }
    }
}

impl Layer for Relu {
    fn forward(&mut self, x: &Matrix) -> Matrix {
        let mask: Vec<bool> = x.as_slice().iter().map(|&v| v > 0.0).collect();
        let out = Matrix::from_vec(
            x.rows(),
            x.cols(),
            x.as_slice().iter().map(|&v| v.max(0.0)).collect(),
        );
        self.mask = Some(mask);
        out
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let mask = self.mask.as_ref().expect("backward before forward");
        Matrix::from_vec(
            grad_out.rows(),
            grad_out.cols(),
            grad_out
                .as_slice()
                .iter()
                .zip(mask)
                .map(|(&g, &m)| if m { g } else { 0.0 })
                .collect(),
        )
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut f64, &mut f64)) {}

    fn zero_grad(&mut self) {}
}

/// Row-wise softmax (numerically stabilized). Not a [`Layer`] — it is fused
/// with cross-entropy in the classifier head, where the combined gradient is
/// simply `p − onehot`.
pub fn softmax_rows(x: &Matrix) -> Matrix {
    let mut out = x.clone();
    for i in 0..out.rows() {
        let row = out.row_mut(i);
        let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let mut relu = Relu::new();
        let x = Matrix::from_rows(&[&[-1.0, 2.0], &[0.0, -3.0]]);
        let y = relu.forward(&x);
        assert_eq!(y.as_slice(), &[0.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn relu_gradient_is_masked() {
        let mut relu = Relu::new();
        let x = Matrix::from_rows(&[&[-1.0, 2.0]]);
        relu.forward(&x);
        let g = relu.backward(&Matrix::from_rows(&[&[5.0, 5.0]]));
        assert_eq!(g.as_slice(), &[0.0, 5.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_order_preserved() {
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[1000.0, 1000.0, 1000.0]]);
        let p = softmax_rows(&x);
        for i in 0..2 {
            let s: f64 = p.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
        assert!(p.get(0, 2) > p.get(0, 1) && p.get(0, 1) > p.get(0, 0));
        // Stability: huge logits must not overflow.
        assert!((p.get(1, 0) - 1.0 / 3.0).abs() < 1e-12);
    }
}
