//! N-BEATS: Neural Basis Expansion Analysis for Time Series
//! (Oreshkin et al., 2019) — the neural baseline of the paper's §5.
//!
//! The architecture is a stack of blocks. Each block runs the input window
//! through a fully-connected trunk, projects to expansion coefficients
//! `θᵇ, θᶠ`, and maps them through fixed basis matrices to a *backcast*
//! (subtracted from the block input — doubly residual stacking) and a
//! *forecast* (summed across blocks). Three basis families are implemented:
//! generic (identity), trend (polynomial), and seasonality (Fourier).

use crate::activation::Relu;
use crate::adam::Adam;
use crate::dense::Dense;
use crate::{Layer, Parameterized};
use ff_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Basis family of a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BasisKind {
    /// Identity basis: θ maps directly to the output window.
    Generic,
    /// Polynomial basis of the given degree (interpretable trend).
    Trend {
        /// Polynomial degree (e.g. 2 ⇒ constant, linear, quadratic).
        degree: usize,
    },
    /// Fourier basis with the given number of harmonics.
    Seasonal {
        /// Number of sine/cosine harmonic pairs.
        harmonics: usize,
    },
}

impl BasisKind {
    /// Dimension of the coefficient vector θ for an output of length `len`.
    fn theta_dim(&self, len: usize) -> usize {
        match self {
            BasisKind::Generic => len,
            BasisKind::Trend { degree } => degree + 1,
            BasisKind::Seasonal { harmonics } => 1 + 2 * harmonics,
        }
    }

    /// The fixed basis matrix mapping θ (rows) to the output grid (cols).
    fn basis_matrix(&self, len: usize) -> Matrix {
        match self {
            BasisKind::Generic => Matrix::identity(len),
            BasisKind::Trend { degree } => Matrix::from_fn(degree + 1, len, |p, t| {
                let x = t as f64 / len.max(1) as f64;
                x.powi(p as i32)
            }),
            BasisKind::Seasonal { harmonics } => Matrix::from_fn(1 + 2 * harmonics, len, |r, t| {
                let x = t as f64 / len.max(1) as f64;
                if r == 0 {
                    1.0
                } else {
                    let h = ((r - 1) / 2 + 1) as f64;
                    let ang = std::f64::consts::TAU * h * x;
                    if r % 2 == 1 {
                        ang.cos()
                    } else {
                        ang.sin()
                    }
                }
            }),
        }
    }
}

/// One N-BEATS block.
#[derive(Debug, Clone)]
struct Block {
    trunk: Vec<Dense>,
    relus: Vec<Relu>,
    backcast_head: Dense,
    forecast_head: Dense,
    basis_b: Matrix,
    basis_f: Matrix,
}

impl Block {
    fn new<R: Rng>(
        rng: &mut R,
        lookback: usize,
        horizon: usize,
        hidden: usize,
        n_layers: usize,
        kind: BasisKind,
    ) -> Block {
        let mut trunk = Vec::with_capacity(n_layers);
        let mut prev = lookback;
        for _ in 0..n_layers {
            trunk.push(Dense::new(rng, prev, hidden));
            prev = hidden;
        }
        let relus = vec![Relu::new(); n_layers];
        Block {
            backcast_head: Dense::new(rng, hidden, kind.theta_dim(lookback)),
            forecast_head: Dense::new(rng, hidden, kind.theta_dim(horizon)),
            basis_b: kind.basis_matrix(lookback),
            basis_f: kind.basis_matrix(horizon),
            trunk,
            relus,
        }
    }

    /// Forward: returns (backcast, forecast).
    fn forward(&mut self, u: &Matrix) -> (Matrix, Matrix) {
        let mut h = u.clone();
        for (d, r) in self.trunk.iter_mut().zip(&mut self.relus) {
            h = r.forward(&d.forward(&h));
        }
        let theta_b = self.backcast_head.forward(&h);
        let theta_f = self.forecast_head.forward(&h);
        let backcast = theta_b.matmul(&self.basis_b).expect("basis shape");
        let forecast = theta_f.matmul(&self.basis_f).expect("basis shape");
        (backcast, forecast)
    }

    fn forward_inference(&self, u: &Matrix) -> (Matrix, Matrix) {
        let mut h = u.clone();
        for d in &self.trunk {
            h = d.forward_inference(&h);
            h = Matrix::from_vec(
                h.rows(),
                h.cols(),
                h.as_slice().iter().map(|&v| v.max(0.0)).collect(),
            );
        }
        let theta_b = self.backcast_head.forward_inference(&h);
        let theta_f = self.forecast_head.forward_inference(&h);
        (
            theta_b.matmul(&self.basis_b).expect("basis shape"),
            theta_f.matmul(&self.basis_f).expect("basis shape"),
        )
    }

    /// Backward from gradients on the block's backcast and forecast outputs;
    /// returns `∂L/∂u` (the block input).
    fn backward(&mut self, d_backcast: &Matrix, d_forecast: &Matrix) -> Matrix {
        let d_theta_b = d_backcast.matmul(&self.basis_b.transpose()).expect("shape");
        let d_theta_f = d_forecast.matmul(&self.basis_f.transpose()).expect("shape");
        let dh_b = self.backcast_head.backward(&d_theta_b);
        let dh_f = self.forecast_head.backward(&d_theta_f);
        let mut g = dh_b.add(&dh_f).expect("shape");
        for i in (0..self.trunk.len()).rev() {
            g = self.relus[i].backward(&g);
            g = self.trunk[i].backward(&g);
        }
        g
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut f64, &mut f64)) {
        for d in &mut self.trunk {
            d.visit_params(f);
        }
        self.backcast_head.visit_params(f);
        self.forecast_head.visit_params(f);
    }

    fn zero_grad(&mut self) {
        for d in &mut self.trunk {
            d.zero_grad();
        }
        self.backcast_head.zero_grad();
        self.forecast_head.zero_grad();
    }
}

/// N-BEATS configuration. The defaults reproduce §5.1 of the paper
/// (batch size 256, learning rate 5e-4, 512 seasonal neurons, 64 trend
/// neurons, 2 layers per block family).
#[derive(Debug, Clone)]
pub struct NBeatsConfig {
    /// Input window length.
    pub lookback: usize,
    /// Forecast horizon.
    pub horizon: usize,
    /// Hidden width of generic blocks.
    pub generic_neurons: usize,
    /// Hidden width of trend blocks.
    pub trend_neurons: usize,
    /// Hidden width of seasonal blocks.
    pub seasonal_neurons: usize,
    /// Trunk layers per block.
    pub layers_per_block: usize,
    /// Number of generic blocks.
    pub generic_blocks: usize,
    /// Number of trend blocks.
    pub trend_blocks: usize,
    /// Number of seasonal blocks.
    pub seasonal_blocks: usize,
    /// Polynomial degree of trend blocks.
    pub trend_degree: usize,
    /// Fourier harmonics of seasonal blocks.
    pub seasonal_harmonics: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Mini-batch size.
    pub batch_size: usize,
    /// RNG seed for initialization and batching.
    pub seed: u64,
}

impl Default for NBeatsConfig {
    fn default() -> Self {
        NBeatsConfig {
            lookback: 24,
            horizon: 1,
            generic_neurons: 128,
            trend_neurons: 64,
            seasonal_neurons: 512,
            layers_per_block: 2,
            generic_blocks: 2,
            trend_blocks: 2,
            seasonal_blocks: 2,
            trend_degree: 2,
            seasonal_harmonics: 4,
            learning_rate: 5e-4,
            batch_size: 256,
            seed: 0,
        }
    }
}

impl NBeatsConfig {
    /// A small configuration for fast tests and budget-constrained federated
    /// training on tiny client splits.
    pub fn small(lookback: usize, seed: u64) -> NBeatsConfig {
        NBeatsConfig {
            lookback,
            generic_neurons: 32,
            trend_neurons: 16,
            seasonal_neurons: 32,
            generic_blocks: 1,
            trend_blocks: 1,
            seasonal_blocks: 1,
            seed,
            ..Default::default()
        }
    }
}

/// The N-BEATS network.
#[derive(Debug, Clone)]
pub struct NBeats {
    blocks: Vec<Block>,
    cfg: NBeatsConfig,
    opt: Adam,
    /// Standardization statistics learned from training data.
    norm_mean: f64,
    norm_std: f64,
}

impl NBeats {
    /// Builds the network from a configuration.
    pub fn new(cfg: NBeatsConfig) -> NBeats {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut blocks = Vec::new();
        for _ in 0..cfg.trend_blocks {
            blocks.push(Block::new(
                &mut rng,
                cfg.lookback,
                cfg.horizon,
                cfg.trend_neurons,
                cfg.layers_per_block,
                BasisKind::Trend {
                    degree: cfg.trend_degree,
                },
            ));
        }
        for _ in 0..cfg.seasonal_blocks {
            blocks.push(Block::new(
                &mut rng,
                cfg.lookback,
                cfg.horizon,
                cfg.seasonal_neurons,
                cfg.layers_per_block,
                BasisKind::Seasonal {
                    harmonics: cfg.seasonal_harmonics,
                },
            ));
        }
        for _ in 0..cfg.generic_blocks {
            blocks.push(Block::new(
                &mut rng,
                cfg.lookback,
                cfg.horizon,
                cfg.generic_neurons,
                cfg.layers_per_block,
                BasisKind::Generic,
            ));
        }
        NBeats {
            blocks,
            opt: Adam::new(cfg.learning_rate),
            cfg,
            norm_mean: 0.0,
            norm_std: 1.0,
        }
    }

    /// The configuration this network was built with.
    pub fn config(&self) -> &NBeatsConfig {
        &self.cfg
    }

    /// Forward pass in inference mode: the summed forecast of all blocks.
    pub fn forecast_batch(&self, windows: &Matrix) -> Matrix {
        let mut residual = windows.clone();
        let mut forecast = Matrix::zeros(windows.rows(), self.cfg.horizon);
        for b in &self.blocks {
            let (backcast, f) = b.forward_inference(&residual);
            residual = residual.sub(&backcast).expect("shape");
            forecast = forecast.add(&f).expect("shape");
        }
        forecast
    }

    /// One training step on a batch of (window, target) pairs; returns the
    /// batch MSE (in normalized space).
    pub fn train_step(&mut self, windows: &Matrix, targets: &Matrix) -> f64 {
        for b in &mut self.blocks {
            b.zero_grad();
        }
        // Forward with per-block residual caching.
        let mut residual = windows.clone();
        let mut forecast = Matrix::zeros(windows.rows(), self.cfg.horizon);
        let mut backcasts = Vec::with_capacity(self.blocks.len());
        for b in &mut self.blocks {
            let (backcast, f) = b.forward(&residual);
            residual = residual.sub(&backcast).expect("shape");
            forecast = forecast.add(&f).expect("shape");
            backcasts.push(());
        }
        let n = (forecast.rows() * forecast.cols()) as f64;
        let diff = forecast.sub(targets).expect("target shape");
        let loss = diff.as_slice().iter().map(|d| d * d).sum::<f64>() / n;
        let d_forecast = diff.scale(2.0 / n);

        // Backward through the doubly-residual stack:
        //   u_{b+1} = u_b − C_b(u_b),  ŷ = Σ F_b(u_b)
        //   g_b = g_{b+1} + ∂/∂u_b [F_b ⊣ dŷ] − ∂/∂u_b [C_b ⊣ g_{b+1}]
        let mut g = Matrix::zeros(windows.rows(), self.cfg.lookback);
        for b in self.blocks.iter_mut().rev() {
            let d_backcast = g.scale(-1.0);
            let du = b.backward(&d_backcast, &d_forecast);
            g = g.add(&du).expect("shape");
        }
        let blocks = &mut self.blocks;
        self.opt.step(|f| {
            for b in blocks.iter_mut() {
                b.visit_params(f);
            }
        });
        loss
    }

    /// Trains on a raw series for up to `max_steps` mini-batch steps or until
    /// `deadline` returns true. Returns the number of steps taken.
    pub fn fit_series(
        &mut self,
        series: &[f64],
        max_steps: usize,
        mut deadline: impl FnMut() -> bool,
    ) -> usize {
        let (windows, targets) = match self.make_windows(series, true) {
            Some(wt) => wt,
            None => return 0,
        };
        let n = windows.rows();
        let mut rng = StdRng::seed_from_u64(self.cfg.seed.wrapping_add(1));
        let mut steps = 0;
        for _ in 0..max_steps {
            if deadline() {
                break;
            }
            let batch = self.cfg.batch_size.min(n);
            let idx: Vec<usize> = (0..batch).map(|_| rng.gen_range(0..n)).collect();
            let bw = Matrix::from_fn(batch, self.cfg.lookback, |i, j| windows.get(idx[i], j));
            let bt = Matrix::from_fn(batch, self.cfg.horizon, |i, j| targets.get(idx[i], j));
            self.train_step(&bw, &bt);
            steps += 1;
        }
        steps
    }

    /// One-step-ahead predictions over a evaluation slice given its history:
    /// for each position in `eval`, the window of `lookback` preceding true
    /// values (teacher forcing) predicts the next value. `history` supplies
    /// the values before `eval[0]`.
    pub fn predict_one_step(&self, history: &[f64], eval: &[f64]) -> Vec<f64> {
        let lb = self.cfg.lookback;
        let mut full: Vec<f64> = history.to_vec();
        full.extend_from_slice(eval);
        let start = history.len();
        let mut preds = Vec::with_capacity(eval.len());
        for t in start..full.len() {
            let window: Vec<f64> = if t >= lb {
                full[t - lb..t].to_vec()
            } else {
                // Pad on the left with the first value.
                let mut w = vec![full[0]; lb - t];
                w.extend_from_slice(&full[..t]);
                w
            };
            let normed: Vec<f64> = window
                .iter()
                .map(|&v| (v - self.norm_mean) / self.norm_std)
                .collect();
            let m = Matrix::from_vec(1, lb, normed);
            let f = self.forecast_batch(&m);
            preds.push(f.get(0, 0) * self.norm_std + self.norm_mean);
        }
        preds
    }

    /// Builds (window, next-value) training pairs, learning normalization
    /// statistics when `fit_norm` is set.
    fn make_windows(&mut self, series: &[f64], fit_norm: bool) -> Option<(Matrix, Matrix)> {
        let lb = self.cfg.lookback;
        let h = self.cfg.horizon;
        if series.len() < lb + h {
            return None;
        }
        if fit_norm {
            let clean: Vec<f64> = series.iter().copied().filter(|v| !v.is_nan()).collect();
            self.norm_mean = ff_linalg::vector::mean(&clean);
            self.norm_std = ff_linalg::vector::stddev(&clean).max(1e-9);
        }
        let n = series.len() - lb - h + 1;
        let norm = |v: f64| (v - self.norm_mean) / self.norm_std;
        let windows = Matrix::from_fn(n, lb, |i, j| norm(series[i + j]));
        let targets = Matrix::from_fn(n, h, |i, j| norm(series[i + lb + j]));
        Some((windows, targets))
    }
}

impl Parameterized for NBeats {
    fn params_flat(&mut self) -> Vec<f64> {
        let mut out = Vec::new();
        for b in &mut self.blocks {
            b.visit_params(&mut |p, _| out.push(*p));
        }
        out
    }

    fn set_params_flat(&mut self, flat: &[f64]) {
        let mut it = flat.iter();
        for b in &mut self.blocks {
            b.visit_params(&mut |p, _| {
                *p = *it.next().expect("flat parameter vector too short");
            });
        }
        assert!(it.next().is_none(), "flat parameter vector too long");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basis_dimensions() {
        assert_eq!(BasisKind::Generic.theta_dim(10), 10);
        assert_eq!(BasisKind::Trend { degree: 3 }.theta_dim(10), 4);
        assert_eq!(BasisKind::Seasonal { harmonics: 2 }.theta_dim(10), 5);
        let b = BasisKind::Trend { degree: 2 }.basis_matrix(5);
        assert_eq!((b.rows(), b.cols()), (3, 5));
        // Row 0 is constant 1.
        assert!(b.row(0).iter().all(|&v| (v - 1.0).abs() < 1e-12));
    }

    #[test]
    fn nbeats_learns_sine_one_step() {
        let series: Vec<f64> = (0..400)
            .map(|t| (std::f64::consts::TAU * t as f64 / 16.0).sin())
            .collect();
        let mut net = NBeats::new(NBeatsConfig {
            batch_size: 64,
            learning_rate: 3e-3,
            ..NBeatsConfig::small(16, 5)
        });
        let steps = net.fit_series(&series, 300, || false);
        assert!(steps > 0);
        let preds = net.predict_one_step(&series[..350], &series[350..]);
        let mse: f64 = preds
            .iter()
            .zip(&series[350..])
            .map(|(p, t)| (p - t) * (p - t))
            .sum::<f64>()
            / preds.len() as f64;
        assert!(mse < 0.1, "sine one-step MSE {mse}");
    }

    #[test]
    fn gradient_check_tiny_network() {
        let cfg = NBeatsConfig {
            lookback: 4,
            horizon: 1,
            generic_neurons: 3,
            trend_neurons: 3,
            seasonal_neurons: 3,
            layers_per_block: 1,
            generic_blocks: 1,
            trend_blocks: 1,
            seasonal_blocks: 1,
            trend_degree: 1,
            seasonal_harmonics: 1,
            learning_rate: 0.0, // keep params fixed during the check
            batch_size: 1,
            seed: 3,
        };
        let mut net = NBeats::new(cfg);
        let x = Matrix::from_rows(&[&[0.5, -0.3, 0.8, 0.1]]);
        let y = Matrix::from_rows(&[&[0.7]]);

        // Analytic gradients (lr = 0 so Adam's step is a no-op on params...
        // actually Adam with lr=0 still updates moments; fine, params stay).
        net.train_step(&x, &y);
        let mut analytic = Vec::new();
        for b in &mut net.blocks {
            b.visit_params(&mut |_, g| analytic.push(*g));
        }

        let loss_of = |net: &NBeats| {
            let f = net.forecast_batch(&x);
            let d = f.get(0, 0) - 0.7;
            d * d
        };
        let eps = 1e-5;
        let n_params = analytic.len();
        // Spot-check a spread of parameters (full check is slow).
        for k in (0..n_params).step_by(7) {
            let mut idx = 0;
            for b in &mut net.blocks {
                b.visit_params(&mut |p, _| {
                    if idx == k {
                        *p += eps;
                    }
                    idx += 1;
                });
            }
            let plus = loss_of(&net);
            idx = 0;
            for b in &mut net.blocks {
                b.visit_params(&mut |p, _| {
                    if idx == k {
                        *p -= 2.0 * eps;
                    }
                    idx += 1;
                });
            }
            let minus = loss_of(&net);
            idx = 0;
            for b in &mut net.blocks {
                b.visit_params(&mut |p, _| {
                    if idx == k {
                        *p += eps;
                    }
                    idx += 1;
                });
            }
            let numeric = (plus - minus) / (2.0 * eps);
            assert!(
                (analytic[k] - numeric).abs() < 1e-3 * (1.0 + numeric.abs()),
                "param {k}: analytic {} vs numeric {numeric}",
                analytic[k]
            );
        }
    }

    #[test]
    fn params_roundtrip_preserves_predictions() {
        let mut a = NBeats::new(NBeatsConfig::small(8, 1));
        let mut b = NBeats::new(NBeatsConfig::small(8, 2));
        let flat = a.params_flat();
        b.set_params_flat(&flat);
        let x = Matrix::from_fn(2, 8, |i, j| (i + j) as f64 * 0.1);
        assert_eq!(
            a.forecast_batch(&x).as_slice(),
            b.forecast_batch(&x).as_slice()
        );
    }

    #[test]
    fn too_short_series_returns_zero_steps() {
        let mut net = NBeats::new(NBeatsConfig::small(24, 0));
        assert_eq!(net.fit_series(&[1.0, 2.0, 3.0], 10, || false), 0);
    }

    #[test]
    fn deadline_stops_training() {
        let series: Vec<f64> = (0..200).map(|t| (t as f64 * 0.1).sin()).collect();
        let mut net = NBeats::new(NBeatsConfig::small(8, 0));
        let mut calls = 0;
        let steps = net.fit_series(&series, 1000, || {
            calls += 1;
            calls > 5
        });
        assert!(steps <= 5);
    }

    #[test]
    fn predict_pads_short_history() {
        let mut net = NBeats::new(NBeatsConfig::small(16, 4));
        let series: Vec<f64> = (0..100).map(|t| t as f64).collect();
        net.fit_series(&series, 20, || false);
        // History shorter than lookback must not panic.
        let preds = net.predict_one_step(&series[..4], &series[4..10]);
        assert_eq!(preds.len(), 6);
        assert!(preds.iter().all(|p| p.is_finite()));
    }
}
