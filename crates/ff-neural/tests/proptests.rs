//! Property-based tests for the neural substrate.

use ff_linalg::Matrix;
use ff_neural::activation::softmax_rows;
use ff_neural::mlp::Mlp;
use ff_neural::nbeats::{NBeats, NBeatsConfig};
use ff_neural::Parameterized;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mlp_params_roundtrip_arbitrary_vectors(
        seed in 0u64..1000,
        offset in -2.0f64..2.0,
    ) {
        let mut net = Mlp::new(&[3, 6, 2], seed);
        let mut flat = net.params_flat();
        for (i, p) in flat.iter_mut().enumerate() {
            *p = offset + i as f64 * 0.01;
        }
        net.set_params_flat(&flat);
        prop_assert_eq!(net.params_flat(), flat);
    }

    #[test]
    fn mlp_forward_is_finite_for_finite_inputs(
        x in prop::collection::vec(-100.0f64..100.0, 6),
        seed in 0u64..50,
    ) {
        let net = Mlp::new(&[3, 8, 2], seed);
        let m = Matrix::from_vec(2, 3, x);
        let y = net.forward_inference(&m);
        prop_assert!(y.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn softmax_rows_are_distributions(
        logits in prop::collection::vec(-50.0f64..50.0, 12),
    ) {
        let m = Matrix::from_vec(3, 4, logits);
        let p = softmax_rows(&m);
        for i in 0..3 {
            let s: f64 = p.row(i).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-9);
            prop_assert!(p.row(i).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn nbeats_params_roundtrip_and_identical_forecasts(seed in 0u64..30) {
        let mut a = NBeats::new(NBeatsConfig::small(8, seed));
        let mut b = NBeats::new(NBeatsConfig::small(8, seed + 1));
        let flat = a.params_flat();
        b.set_params_flat(&flat);
        let x = Matrix::from_fn(3, 8, |i, j| ((i * 3 + j) as f64).sin());
        prop_assert_eq!(
            a.forecast_batch(&x).as_slice().to_vec(),
            b.forecast_batch(&x).as_slice().to_vec()
        );
    }

    #[test]
    fn nbeats_training_reduces_loss_on_learnable_signal(seed in 0u64..8) {
        let series: Vec<f64> = (0..200)
            .map(|t| (std::f64::consts::TAU * t as f64 / 10.0).sin())
            .collect();
        let mut net = NBeats::new(NBeatsConfig {
            batch_size: 32,
            learning_rate: 3e-3,
            ..NBeatsConfig::small(10, seed)
        });
        // Loss over the first few steps vs after training.
        let (w, t) = {
            let x = Matrix::from_fn(32, 10, |i, j| series[i + j]);
            let y = Matrix::from_fn(32, 1, |i, _| series[i + 10]);
            (x, y)
        };
        let before = net.train_step(&w, &t);
        net.fit_series(&series, 120, || false);
        let after = net.train_step(&w, &t);
        prop_assert!(after.is_finite());
        prop_assert!(after < before * 2.0, "before {before} after {after}");
    }
}
