//! Property tests for the Byzantine-robust aggregation layer: the
//! degenerate-knob identity (`TrimmedMean { 0 }` is bit-for-bit FedAvg)
//! and the survival guarantees of the robust estimators when a bounded
//! minority of clients is adversarial. Adversarial updates are produced
//! by real [`ChaosClient::adversarial`] fit calls — the same injection
//! path the end-to-end chaos tests drive — so every failure shrinks to a
//! concrete seed + attacker configuration.

use ff_fl::chaos::{AdversarialMode, ChaosClient};
use ff_fl::client::{EvalOutput, FitOutput, FlClient};
use ff_fl::config::ConfigMap;
use ff_fl::robust::{Aggregator, CoordinateMedian, Krum, TrimmedMean};
use ff_fl::strategy::fedavg;
use proptest::prelude::*;

/// Inner client that reports fixed local parameters (the honest content
/// a wrapper corrupts).
struct Fixed(Vec<f64>);

impl FlClient for Fixed {
    fn get_properties(&mut self, _config: &ConfigMap) -> ConfigMap {
        ConfigMap::new()
    }
    fn fit(&mut self, _params: &[f64], _config: &ConfigMap) -> FitOutput {
        FitOutput {
            params: self.0.clone(),
            num_examples: 1,
            metrics: ConfigMap::new(),
        }
    }
    fn evaluate(&mut self, _params: &[f64], _config: &ConfigMap) -> EvalOutput {
        EvalOutput {
            loss: 0.0,
            num_examples: 1,
            metrics: ConfigMap::new(),
        }
    }
}

/// Runs one fit through a (possibly adversarial) chaos wrapper and
/// returns the parameters the server would receive.
fn fit_through_chaos(honest: Vec<f64>, mode: AdversarialMode, seed: u64) -> Vec<f64> {
    let mut client = ChaosClient::adversarial(Box::new(Fixed(honest)), mode, seed);
    client.fit(&[], &ConfigMap::new()).params
}

fn adversary_mode() -> impl Strategy<Value = AdversarialMode> {
    prop_oneof![
        Just(AdversarialMode::SignFlip),
        (1e3f64..1e9).prop_map(AdversarialMode::ScaleBy),
        Just(AdversarialMode::NanInject),
        (-1e9f64..1e9).prop_map(AdversarialMode::Stuck),
    ]
}

proptest! {
    /// `TrimmedMean { trim_ratio: 0 }` must be *bit-for-bit* FedAvg —
    /// not merely close — so flipping the default strategy knob to the
    /// robust family with zero trimming cannot change any golden output.
    #[test]
    fn trimmed_mean_zero_is_bitwise_fedavg(
        updates in prop::collection::vec(
            (prop::collection::vec(-1e6f64..1e6, 6), 1u64..1000),
            1..8,
        ),
    ) {
        let trimmed = TrimmedMean { trim_ratio: 0.0 }.aggregate(&updates).unwrap();
        let avg = fedavg(&updates).unwrap();
        prop_assert_eq!(trimmed.len(), avg.len());
        for (t, a) in trimmed.iter().zip(&avg) {
            prop_assert_eq!(t.to_bits(), a.to_bits(), "{} != {} bitwise", t, a);
        }
    }

    /// With an honest majority (n odd, f ≤ (n−1)/2 adversaries injected
    /// through real chaos clients), the coordinate median stays finite
    /// and inside the per-coordinate honest hull, whatever the attack.
    #[test]
    fn coordinate_median_survives_minority_adversaries(
        n_half in 2usize..5,                 // n = 2·n_half + 1 ∈ {5, 7, 9}
        f in 0usize..5,
        base in prop::collection::vec(-100.0f64..100.0, 4),
        spread in 0.0f64..10.0,
        mode in adversary_mode(),
        seed in any::<u64>(),
    ) {
        let n = 2 * n_half + 1;
        let f = f.min(n_half);               // honest strict majority
        let honest: Vec<Vec<f64>> = (0..n - f)
            .map(|i| base.iter().map(|b| b + spread * i as f64).collect())
            .collect();
        let mut updates: Vec<(Vec<f64>, u64)> =
            honest.iter().map(|p| (p.clone(), 1)).collect();
        for a in 0..f {
            let received = fit_through_chaos(base.clone(), mode, seed ^ a as u64);
            updates.push((received, 1));
        }
        let agg = CoordinateMedian.aggregate(&updates).unwrap();
        prop_assert_eq!(agg.len(), base.len());
        for (j, v) in agg.iter().enumerate() {
            prop_assert!(v.is_finite(), "coordinate {} not finite: {}", j, v);
            let lo = honest.iter().map(|p| p[j]).fold(f64::INFINITY, f64::min);
            let hi = honest.iter().map(|p| p[j]).fold(f64::NEG_INFINITY, f64::max);
            // The hull bound needs an honest weight majority among the
            // *finite* survivors, which NaN-dropping only strengthens.
            prop_assert!(
                *v >= lo - 1e-9 && *v <= hi + 1e-9,
                "coordinate {} = {} escaped honest hull [{}, {}]",
                j, v, lo, hi
            );
        }
    }

    /// Krum with a correctly provisioned federation (n ≥ 2f + 3) returns
    /// a finite vector — in fact one of the submitted updates verbatim —
    /// no matter what the f adversaries inject.
    #[test]
    fn krum_stays_finite_under_budgeted_adversaries(
        f in 0usize..3,
        extra in 0usize..3,
        base in prop::collection::vec(-100.0f64..100.0, 3),
        spread in 0.0f64..5.0,
        mode in adversary_mode(),
        seed in any::<u64>(),
    ) {
        let n = 2 * f + 3 + extra;
        let honest: Vec<Vec<f64>> = (0..n - f)
            .map(|i| base.iter().map(|b| b + spread * i as f64).collect())
            .collect();
        let mut updates: Vec<(Vec<f64>, u64)> =
            honest.iter().map(|p| (p.clone(), 1)).collect();
        for a in 0..f {
            let received = fit_through_chaos(base.clone(), mode, seed ^ a as u64);
            updates.push((received, 1));
        }
        let agg = Krum { f, m: 1 }.aggregate(&updates).unwrap();
        prop_assert!(agg.iter().all(|v| v.is_finite()), "Krum output not finite: {:?}", agg);
        // Classic Krum selects: the output is one of the finite inputs,
        // bit-for-bit.
        prop_assert!(
            updates.iter().any(|(p, _)| p
                .iter()
                .zip(&agg)
                .all(|(a, b)| a.to_bits() == b.to_bits())),
            "Krum output {:?} is not a submitted update",
            agg
        );
    }
}
