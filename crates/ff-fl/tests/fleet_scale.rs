//! Fleet-scale acceptance: a 10,000-client federation survives chaos
//! plus a Byzantine minority, deterministically, in bounded memory.
//!
//! The fault schedule is seeded from `CHAOS_SEED` (the CI chaos matrix
//! exports 0, 1, 2) via [`ChaosConfig::fleet_profile`]; every assertion
//! here is seed-independent by design — a seed that breaks one is a bug
//! in the fleet machinery, not in the test.

use ff_fl::chaos::{ChaosClient, ChaosConfig};
use ff_fl::client::{EvalOutput, FitOutput, FlClient};
use ff_fl::config::ConfigMap;
use ff_fl::fleet::{FleetConfig, FleetRuntime};
use ff_fl::health::ClientState;
use ff_fl::robust::AggregationStrategy;
use ff_fl::runtime::RoundPolicy;

const FLEET: usize = 10_000;
const DIM: usize = 32;

fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Honest client: constant unit parameters, loss = distance to broadcast.
struct Honest;

impl FlClient for Honest {
    fn get_properties(&mut self, _config: &ConfigMap) -> ConfigMap {
        ConfigMap::new()
    }
    fn fit(&mut self, _params: &[f64], _config: &ConfigMap) -> FitOutput {
        FitOutput {
            params: vec![1.0; DIM],
            num_examples: 1,
            metrics: ConfigMap::new(),
        }
    }
    fn evaluate(&mut self, params: &[f64], _config: &ConfigMap) -> EvalOutput {
        let center = params.first().copied().unwrap_or(0.0);
        EvalOutput {
            loss: (1.0 - center).abs(),
            num_examples: 1,
            metrics: ConfigMap::new(),
        }
    }
}

/// Builds the 10,000-client fleet: every client wrapped in its
/// deterministic chaos profile — `byz` Byzantine, `fault` availability-
/// faulty, both seeded from `(seed, client_id)`.
fn chaotic_fleet(seed: u64, byz: f64, fault: f64) -> Vec<Box<dyn FlClient>> {
    (0..FLEET)
        .map(|id| {
            let profile = ChaosConfig::fleet_profile(seed, id, byz, fault);
            Box::new(ChaosClient::new(Box::new(Honest), profile)) as Box<dyn FlClient>
        })
        .collect()
}

fn fleet_config() -> FleetConfig {
    FleetConfig {
        fraction: 0.1, // cohort of 1,000 per round
        seed: 42,
        strategy: AggregationStrategy::CoordinateMedian,
        ..FleetConfig::default()
    }
}

fn policy() -> RoundPolicy {
    RoundPolicy {
        deadline: None, // chaos drops surface as deterministic timeouts
        min_responses: 1,
        retries: 1,
        backoff: std::time::Duration::ZERO,
    }
}

/// The headline acceptance test: 2% Byzantine + 3% flaky links across
/// 10,000 clients. Every round must complete, the robust aggregate must
/// stay within tolerance of the clean (all-honest) value, repeat
/// offenders must end up quarantined, and nobody honest may be.
#[test]
fn ten_thousand_client_rounds_survive_chaos_and_byzantine() {
    let seed = chaos_seed();
    let (byz, fault) = (0.02, 0.03);
    let fleet = FleetRuntime::new(chaotic_fleet(seed, byz, fault), fleet_config()).unwrap();
    let policy = policy();

    // 20 rounds: the 10%-participation sampler cycles the full fleet
    // twice, so every persistent attacker is observed (and rejected) at
    // least twice — enough for the health registry to quarantine it.
    for round in 1..=20u64 {
        let out = fleet
            .run_fit_round(vec![0.0; DIM], ConfigMap::new(), &policy)
            .unwrap();
        assert_eq!(out.round, round);
        assert_eq!(out.global.len(), DIM);
        // Clean-run aggregate is exactly 1.0 per coordinate; the sketch
        // phase may add its documented ~2.2% relative error.
        for g in &out.global {
            assert!(
                (g - 1.0).abs() < 0.05,
                "round {round}: aggregate drifted to {g} under attack"
            );
        }
        // Aggregation state must stay far below materializing the
        // cohort: 1,000 updates × 32 coords × 8 bytes would be 256 KiB
        // before overheads.
        assert!(
            out.agg_state_peak_bytes < 1_000 * DIM * 8 / 2,
            "round {round}: aggregation state {} approaches O(cohort × model)",
            out.agg_state_peak_bytes
        );
    }

    // Quarantine precision: every quarantined client misbehaves by
    // construction; no honest client may be collateral damage.
    let mut quarantined_byzantine = 0usize;
    let mut quarantined = 0usize;
    for id in 0..FLEET {
        if fleet.client_state(id) == Some(ClientState::Quarantined) {
            quarantined += 1;
            let profile = ChaosConfig::fleet_profile(seed, id, byz, fault);
            assert!(
                profile.is_byzantine() || profile.drop_prob > 0.0 || profile.corrupt_prob > 0.0,
                "honest client {id} was quarantined"
            );
            if profile.is_byzantine() {
                quarantined_byzantine += 1;
            }
        }
    }
    assert!(
        quarantined_byzantine > 0,
        "no Byzantine client was quarantined after 20 rounds \
         ({quarantined} quarantined total)"
    );
}

/// The determinism acceptance test: a fixed seed must produce the same
/// cohorts and a bit-identical aggregate whether the scheduler runs on
/// one worker or four.
#[test]
fn fleet_rounds_are_bit_identical_across_thread_counts() {
    /// Cohort, accepted, dropout ids, and aggregate bits for one round.
    type RoundTrace = (Vec<usize>, Vec<usize>, Vec<usize>, Vec<u64>);
    let seed = chaos_seed();
    let run = |threads: usize| {
        ff_par::with_threads(threads, || {
            let fleet = FleetRuntime::new(chaotic_fleet(seed, 0.02, 0.03), fleet_config()).unwrap();
            let policy = policy();
            let mut trace: Vec<RoundTrace> = Vec::new();
            for _ in 0..3 {
                let out = fleet
                    .run_fit_round(vec![0.0; DIM], ConfigMap::new(), &policy)
                    .unwrap();
                trace.push((
                    out.cohort,
                    out.accepted,
                    out.dropouts.into_iter().map(|(id, _)| id).collect(),
                    out.global.iter().map(|g| g.to_bits()).collect(),
                ));
            }
            trace
        })
    };
    assert_eq!(run(1), run(4));
}

/// The memory acceptance test: scaling the engaged cohort 10× must not
/// scale the server's aggregation state 10× — it is bounded by
/// O(model × shards), not O(cohort × model).
#[test]
fn aggregation_state_is_bounded_by_model_not_cohort() {
    let peak_for = |n: usize| {
        let clients: Vec<Box<dyn FlClient>> = (0..n)
            .map(|_| Box::new(Honest) as Box<dyn FlClient>)
            .collect();
        let fleet = FleetRuntime::new(
            clients,
            FleetConfig {
                fraction: 1.0,
                strategy: AggregationStrategy::CoordinateMedian,
                ..FleetConfig::default()
            },
        )
        .unwrap();
        fleet
            .run_fit_round(vec![0.0; DIM], ConfigMap::new(), &policy())
            .unwrap()
            .agg_state_peak_bytes
    };
    let small = peak_for(1_000);
    let large = peak_for(10_000);
    assert!(
        large < small * 4,
        "10× the cohort cost {small} -> {large} aggregation bytes"
    );
}
