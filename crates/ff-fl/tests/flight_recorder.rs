//! End-to-end forensics: a fleet under Byzantine attack must leave a
//! deterministic flight-recorder trail — a dump naming the quarantined
//! client and its round, bit-identical across thread counts — and the
//! live exposition endpoint must serve a scrape whose counters match the
//! in-process snapshot.

use ff_fl::chaos::{AdversarialMode, ChaosClient};
use ff_fl::client::{EvalOutput, FitOutput, FlClient};
use ff_fl::config::ConfigMap;
use ff_fl::fleet::{FleetConfig, FleetRuntime};
use ff_fl::robust::AggregationStrategy;
use ff_fl::runtime::RoundPolicy;
use ff_trace::{FlightRecorder, RecorderConfig, Tracer, Trigger};

const FLEET: usize = 200;
const DIM: usize = 8;
const BYZANTINE_ID: usize = 5;

/// Honest client: constant unit parameters, one example.
struct Honest;

impl FlClient for Honest {
    fn get_properties(&mut self, _config: &ConfigMap) -> ConfigMap {
        ConfigMap::new()
    }
    fn fit(&mut self, _params: &[f64], _config: &ConfigMap) -> FitOutput {
        FitOutput {
            params: vec![1.0; DIM],
            num_examples: 1,
            metrics: ConfigMap::new(),
        }
    }
    fn evaluate(&mut self, params: &[f64], _config: &ConfigMap) -> EvalOutput {
        let center = params.first().copied().unwrap_or(0.0);
        EvalOutput {
            loss: (1.0 - center).abs(),
            num_examples: 1,
            metrics: ConfigMap::new(),
        }
    }
}

/// Full-participation fleet with exactly one persistent attacker.
fn fleet_with_one_attacker() -> FleetRuntime {
    let clients: Vec<Box<dyn FlClient>> = (0..FLEET)
        .map(|id| {
            if id == BYZANTINE_ID {
                Box::new(ChaosClient::adversarial(
                    Box::new(Honest),
                    AdversarialMode::ScaleBy(1e9),
                    7,
                )) as Box<dyn FlClient>
            } else {
                Box::new(Honest) as Box<dyn FlClient>
            }
        })
        .collect();
    FleetRuntime::new(
        clients,
        FleetConfig {
            fraction: 1.0,
            seed: 42,
            strategy: AggregationStrategy::CoordinateMedian,
            ..FleetConfig::default()
        },
    )
    .unwrap()
}

fn policy() -> RoundPolicy {
    RoundPolicy {
        deadline: None,
        min_responses: 1,
        retries: 0,
        backoff: std::time::Duration::ZERO,
    }
}

/// Runs `rounds` fit rounds with a fresh recorder; returns the recorder.
fn run_recorded(rounds: usize) -> FlightRecorder {
    let fleet = fleet_with_one_attacker();
    let recorder = FlightRecorder::enabled(RecorderConfig::default());
    fleet.set_recorder(recorder.clone());
    for _ in 0..rounds {
        fleet
            .run_fit_round(vec![0.0; DIM], ConfigMap::new(), &policy())
            .unwrap();
    }
    recorder
}

/// The headline forensic guarantee: the quarantine of the attacker fires
/// a dump whose triggering frame names the client and the round it
/// happened in.
#[test]
fn byzantine_quarantine_dump_names_the_client_and_round() {
    let recorder = run_recorded(6);
    let dumps = recorder.dumps();
    assert!(!dumps.is_empty(), "attack produced no forensic dump");
    let quarantine_dump = dumps
        .iter()
        .find(|d| d.trigger == Trigger::Quarantine)
        .expect("no quarantine-triggered dump");
    // The triggering frame is the dump's last: it must name the attacker
    // and carry the dump's round number.
    let last = quarantine_dump.frames.last().unwrap();
    assert_eq!(last.round, quarantine_dump.round);
    assert!(
        last.quarantined.contains(&(BYZANTINE_ID as u64)),
        "quarantine frame {:?} does not name client {BYZANTINE_ID}",
        last.quarantined
    );
    // The ring history leading up to it shows the guard rejecting the
    // same client in earlier rounds.
    let rejected_earlier = quarantine_dump
        .frames
        .iter()
        .any(|f| f.rejected.iter().any(|(id, _)| *id == BYZANTINE_ID as u64));
    assert!(
        rejected_earlier,
        "dump history shows no guard rejection of the attacker"
    );
    // The JSON-lines export names the client too (string-level check so
    // the serialized forensics are useful without this crate).
    let text = quarantine_dump.to_json_lines();
    assert!(text.contains("\"trigger\":\"quarantine\""));
    assert!(text.contains(&format!("\"quarantined\":[{BYZANTINE_ID}]")));
}

/// Forensic dumps carry no wall-clock data, so the full serialized dump
/// set is bit-identical whether the fleet ran on one worker or four.
#[test]
fn forensic_dumps_are_bit_identical_across_thread_counts() {
    let dump_text = |threads: usize| {
        ff_par::with_threads(threads, || {
            run_recorded(6)
                .dumps()
                .iter()
                .map(|d| d.to_json_lines())
                .collect::<Vec<String>>()
        })
    };
    let one = dump_text(1);
    let four = dump_text(4);
    assert!(!one.is_empty());
    assert_eq!(one, four, "dumps differ across FF_THREADS 1 vs 4");
}

/// A live scrape taken mid-run is parseable Prometheus text whose
/// counters match the tracer snapshot taken at the same moment.
#[test]
fn live_scrape_matches_the_snapshot() {
    use std::io::{Read as _, Write as _};
    let fleet = fleet_with_one_attacker();
    let tracer = Tracer::enabled();
    fleet.set_tracer(tracer.clone());
    let server = ff_trace::ExpoServer::start(tracer.clone(), ff_trace::ExpoConfig::default())
        .expect("bind exposition endpoint");
    for _ in 0..4 {
        fleet
            .run_fit_round(vec![0.0; DIM], ConfigMap::new(), &policy())
            .unwrap();
    }
    let mut s = std::net::TcpStream::connect(server.addr()).unwrap();
    write!(s, "GET /metrics HTTP/1.0\r\n\r\n").unwrap();
    s.shutdown(std::net::Shutdown::Write).unwrap();
    let mut response = String::new();
    s.read_to_string(&mut response).unwrap();
    let body = response.split_once("\r\n\r\n").unwrap().1;
    ff_trace::validate_exposition(body).expect("invalid exposition format");
    // No round ran between the scrape and this snapshot, so the scraped
    // counters must agree exactly.
    let snapshot = tracer.snapshot();
    for (name, metric) in [
        ("fleet.rounds", "ff_fleet_rounds_total"),
        ("fleet.updates_rejected", "ff_fleet_updates_rejected_total"),
    ] {
        let expect = snapshot.counter(name);
        assert!(expect > 0, "{name} never incremented");
        assert_eq!(
            ff_trace::sample_value(body, metric),
            Some(expect as f64),
            "scraped {metric} disagrees with the snapshot"
        );
    }
}
