//! Chaos-driven integration tests: rounds must complete with the healthy
//! survivors, re-weight FedAvg correctly, and never block past the
//! configured deadline, no matter how the faulty clients misbehave.

use std::time::{Duration, Instant};

use ff_fl::chaos::{ChaosClient, ChaosConfig};
use ff_fl::client::{EvalOutput, FitOutput, FlClient};
use ff_fl::config::ConfigMap;
use ff_fl::health::ClientState;
use ff_fl::message::{Instruction, Reply};
use ff_fl::runtime::{FederatedRuntime, RoundPolicy};
use ff_fl::strategy::{fedavg, unwrap_fit_replies};
use ff_fl::FlError;

/// Toy client holding a constant parameter and a FedAvg weight.
struct ValueClient {
    value: f64,
    weight: u64,
}

impl FlClient for ValueClient {
    fn get_properties(&mut self, _config: &ConfigMap) -> ConfigMap {
        ConfigMap::new()
    }
    fn fit(&mut self, _params: &[f64], _config: &ConfigMap) -> FitOutput {
        FitOutput {
            params: vec![self.value],
            num_examples: self.weight,
            metrics: ConfigMap::new(),
        }
    }
    fn evaluate(&mut self, _params: &[f64], _config: &ConfigMap) -> EvalOutput {
        EvalOutput {
            loss: self.value,
            num_examples: self.weight,
            metrics: ConfigMap::new(),
        }
    }
}

fn value(value: f64, weight: u64) -> Box<dyn FlClient> {
    Box::new(ValueClient { value, weight })
}

fn fit_ins() -> Instruction {
    Instruction::Fit {
        params: vec![],
        config: ConfigMap::new(),
    }
}

fn policy(deadline_ms: u64, min_responses: usize) -> RoundPolicy {
    RoundPolicy {
        deadline: Some(Duration::from_millis(deadline_ms)),
        min_responses,
        retries: 0,
        backoff: Duration::ZERO,
    }
}

#[test]
fn panicking_client_drops_out_and_fedavg_reweights_over_survivors() {
    let clients: Vec<Box<dyn FlClient>> = vec![
        value(1.0, 1),
        ChaosClient::panicking(value(100.0, 1000)).into_boxed(),
        value(4.0, 3),
    ];
    let rt = FederatedRuntime::new(clients);
    let outcome = rt.run_round(&fit_ins(), &policy(2000, 2)).unwrap();
    assert_eq!(
        outcome
            .replies
            .iter()
            .map(|(id, _)| *id)
            .collect::<Vec<_>>(),
        vec![0, 2]
    );
    assert_eq!(outcome.dropouts, vec![(1, FlError::ClientPanicked(1))]);
    // FedAvg over survivors only: (1*1 + 4*3) / 4 = 3.25. The panicked
    // client's huge value must not contribute.
    let pairs = unwrap_fit_replies(outcome.replies).unwrap();
    let agg = fedavg(&pairs).unwrap();
    assert!((agg[0] - 3.25).abs() < 1e-12, "got {agg:?}");
}

#[test]
fn slower_than_deadline_client_times_out_without_blocking_the_round() {
    let clients: Vec<Box<dyn FlClient>> = vec![
        value(2.0, 1),
        ChaosClient::hanging(value(9.0, 1), Duration::from_secs(10)).into_boxed(),
    ];
    let mut rt = FederatedRuntime::new(clients);
    rt.set_shutdown_timeout(Duration::from_millis(200));
    let started = Instant::now();
    let outcome = rt.run_round(&fit_ins(), &policy(80, 1)).unwrap();
    assert!(
        started.elapsed() < Duration::from_millis(900),
        "round blocked on straggler: {:?}",
        started.elapsed()
    );
    assert_eq!(outcome.replies.len(), 1);
    assert_eq!(outcome.dropouts, vec![(1, FlError::Timeout(1))]);
    // Drop must detach the still-sleeping thread, not wait the full 10 s.
    let drop_started = Instant::now();
    drop(rt);
    assert!(drop_started.elapsed() < Duration::from_secs(2));
}

#[test]
fn corrupt_reply_client_surfaces_as_codec_dropout() {
    let clients: Vec<Box<dyn FlClient>> = vec![
        value(5.0, 2),
        ChaosClient::corrupting(value(7.0, 2), 99).into_boxed(),
    ];
    let rt = FederatedRuntime::new(clients);
    let outcome = rt.run_round(&fit_ins(), &policy(2000, 1)).unwrap();
    assert_eq!(outcome.replies.len(), 1);
    assert_eq!(outcome.replies[0].0, 0);
    assert_eq!(outcome.dropouts.len(), 1);
    assert_eq!(outcome.dropouts[0].0, 1);
    assert!(matches!(outcome.dropouts[0].1, FlError::Codec(_)));
}

#[test]
fn dropped_replies_are_recovered_by_retries() {
    // Drops exactly the first reply, answers cleanly afterwards.
    struct DropFirst {
        inner: Box<dyn FlClient>,
        dropped: bool,
    }
    impl FlClient for DropFirst {
        fn get_properties(&mut self, config: &ConfigMap) -> ConfigMap {
            self.inner.get_properties(config)
        }
        fn fit(&mut self, params: &[f64], config: &ConfigMap) -> FitOutput {
            self.inner.fit(params, config)
        }
        fn evaluate(&mut self, params: &[f64], config: &ConfigMap) -> EvalOutput {
            self.inner.evaluate(params, config)
        }
        fn wire_transform(&mut self, encoded_reply: Vec<u8>) -> Option<Vec<u8>> {
            if self.dropped {
                Some(encoded_reply)
            } else {
                self.dropped = true;
                None
            }
        }
    }
    let clients: Vec<Box<dyn FlClient>> = vec![
        value(1.0, 1),
        Box::new(DropFirst {
            inner: value(3.0, 1),
            dropped: false,
        }),
    ];
    let rt = FederatedRuntime::new(clients);
    let tolerant = RoundPolicy {
        deadline: Some(Duration::from_millis(150)),
        min_responses: 2,
        retries: 1,
        backoff: Duration::from_millis(5),
    };
    let outcome = rt.run_round(&fit_ins(), &tolerant).unwrap();
    // The retry resend reaches the now-behaving client: full quorum, no
    // dropouts, and both clients recorded healthy.
    assert_eq!(outcome.replies.len(), 2);
    assert!(outcome.dropouts.is_empty());
    assert_eq!(rt.client_state(1), Some(ClientState::Healthy));
}

#[test]
fn quarantined_client_is_skipped_then_probed_and_readmitted() {
    // Panics on handler calls 1 and 2, recovers afterwards.
    let chaotic = ChaosClient::new(
        value(6.0, 1),
        ChaosConfig {
            panic_on_calls: vec![1, 2],
            ..ChaosConfig::default()
        },
    );
    let clients: Vec<Box<dyn FlClient>> = vec![value(1.0, 1), value(2.0, 1), Box::new(chaotic)];
    let rt = FederatedRuntime::new(clients);
    let p = policy(2000, 1);
    let mut participant_counts = Vec::new();
    let mut reply_ids_per_round = Vec::new();
    for _ in 0..5 {
        let outcome = rt.run_round(&fit_ins(), &p).unwrap();
        participant_counts.push(outcome.participants.len());
        reply_ids_per_round.push(
            outcome
                .replies
                .iter()
                .map(|(id, _)| *id)
                .collect::<Vec<_>>(),
        );
    }
    // Rounds 1-2: client 2 participates and panics (suspect, then
    // quarantined). Round 3: excluded. Round 4 (probe_base = 2): probed,
    // succeeds, re-admitted. Round 5: fully back.
    assert_eq!(participant_counts, vec![3, 3, 2, 3, 3]);
    assert_eq!(reply_ids_per_round[2], vec![0, 1]);
    assert_eq!(reply_ids_per_round[3], vec![0, 1, 2]);
    assert_eq!(rt.client_state(2), Some(ClientState::Healthy));
    // The recovered client's reply is usable again.
    match &rt.run_round(&fit_ins(), &p).unwrap().replies[2].1 {
        Reply::FitRes { params, .. } => assert_eq!(params, &vec![6.0]),
        other => panic!("unexpected {other:?}"),
    }
}

/// Helper so chaos wrappers box cleanly at the call site.
trait IntoBoxed {
    fn into_boxed(self) -> Box<dyn FlClient>;
}

impl IntoBoxed for ChaosClient {
    fn into_boxed(self) -> Box<dyn FlClient> {
        Box::new(self)
    }
}
