//! Property tests for the fleet-scale layer: the streaming aggregation
//! contracts (bit-identity within `exact_cap`, the documented error
//! bounds after spill) and the cohort sampler contracts (pure function
//! of `(seed, round)`, no starvation over a bounded horizon).

use ff_fl::fleet::CohortSampler;
use ff_fl::robust::{AggregationStrategy, Aggregator, CoordinateMedian, TrimmedMean};
use ff_fl::stream::StreamAgg;
use ff_trace::QuantileSketch;
use proptest::prelude::*;
use std::collections::BTreeSet;

fn updates_strategy(max_n: usize, dim: usize) -> impl Strategy<Value = Vec<(Vec<f64>, u64)>> {
    prop::collection::vec(
        (prop::collection::vec(-1e3f64..1e3, dim), 1u64..20),
        2..max_n,
    )
}

/// Sorted per-coordinate lower/upper weighted-median endpoints. The
/// batch rule midpoint-averages exact ties, so the streaming bound is
/// stated against either endpoint.
fn weighted_median_endpoints(col: &mut [(f64, u64)]) -> (f64, f64) {
    col.sort_by(|a, b| a.0.total_cmp(&b.0));
    let half = col.iter().map(|&(_, w)| w).sum::<u64>() as f64 / 2.0;
    let (mut lo, mut hi) = (col[0].0, col[col.len() - 1].0);
    let mut cum = 0.0;
    let mut found_lo = false;
    for &(v, w) in col.iter() {
        cum += w as f64;
        if !found_lo && cum >= half {
            lo = v;
            found_lo = true;
        }
        if cum > half {
            hi = v;
            break;
        }
    }
    (lo, hi)
}

proptest! {
    /// While the update count stays within `exact_cap`, the streaming
    /// coordinate median is *bit-identical* to the batch rule — the
    /// fleet scheduler's exact phase is not approximately right, it is
    /// the same computation.
    #[test]
    fn streaming_median_within_cap_is_bitwise_batch(
        updates in updates_strategy(16, 4),
    ) {
        let mut agg = StreamAgg::new(&AggregationStrategy::CoordinateMedian, 16).unwrap();
        for (p, w) in &updates {
            agg.fold(p.clone(), *w).unwrap();
        }
        prop_assert!(!agg.spilled());
        let stream = agg.finalize().unwrap();
        let batch = CoordinateMedian.aggregate(&updates).unwrap();
        for (s, b) in stream.iter().zip(&batch) {
            prop_assert_eq!(s.to_bits(), b.to_bits(), "{} != {} bitwise", s, b);
        }
    }

    /// After spilling, the streaming median stays within the documented
    /// `ε·|m|` bound of a true weighted-median endpoint per coordinate.
    #[test]
    fn streaming_median_after_spill_is_within_bound(
        updates in updates_strategy(120, 3),
    ) {
        let mut agg = StreamAgg::new(&AggregationStrategy::CoordinateMedian, 4).unwrap();
        for (p, w) in &updates {
            agg.fold(p.clone(), *w).unwrap();
        }
        let stream = agg.finalize().unwrap();
        for (j, s) in stream.iter().enumerate() {
            let mut col: Vec<(f64, u64)> =
                updates.iter().map(|(p, w)| (p[j], *w)).collect();
            let (lo, hi) = weighted_median_endpoints(&mut col);
            let ok = [lo, hi].iter().any(|m| {
                (s - m).abs() <= QuantileSketch::RELATIVE_ERROR * m.abs() + 1e-9
            });
            prop_assert!(ok, "coord {}: {} outside bound of [{}, {}]", j, s, lo, hi);
        }
    }

    /// After spilling with equal weights, the streaming trimmed mean
    /// stays within the documented
    /// `ε·max|v| + 2·range/(n·(1−2·trim))` bound of the batch rule.
    #[test]
    fn streaming_trimmed_mean_after_spill_is_within_bound(
        raw in updates_strategy(120, 3),
        trim in 0.05f64..0.3,
    ) {
        let updates: Vec<(Vec<f64>, u64)> =
            raw.into_iter().map(|(p, _)| (p, 1)).collect();
        let strategy = AggregationStrategy::TrimmedMean { trim_ratio: trim };
        let mut agg = StreamAgg::new(&strategy, 4).unwrap();
        for (p, w) in &updates {
            agg.fold(p.clone(), *w).unwrap();
        }
        let stream = agg.finalize().unwrap();
        let batch = TrimmedMean { trim_ratio: trim }.aggregate(&updates).unwrap();
        let n = updates.len() as f64;
        for (j, (s, b)) in stream.iter().zip(&batch).enumerate() {
            let col: Vec<f64> = updates.iter().map(|(p, _)| p[j]).collect();
            let max_abs = col.iter().fold(0.0f64, |m, v| m.max(v.abs()));
            let range = col.iter().fold(f64::MIN, |m, &v| m.max(v))
                - col.iter().fold(f64::MAX, |m, &v| m.min(v));
            let bound = QuantileSketch::RELATIVE_ERROR * max_abs
                + 2.0 * range / (n * (1.0 - 2.0 * trim));
            prop_assert!(
                (s - b).abs() <= bound,
                "coord {}: stream {} vs batch {} (bound {})", j, s, b, bound
            );
        }
    }

    /// Sharded fold + in-order merge equals a sequential fold for the
    /// rank family whenever everything stays exact, regardless of how
    /// the updates are split into shards.
    #[test]
    fn sharded_rank_merge_is_bitwise_sequential_when_exact(
        updates in updates_strategy(24, 3),
        n_shards in 1usize..6,
    ) {
        let cap = 64;
        let mut seq = StreamAgg::new(&AggregationStrategy::CoordinateMedian, cap).unwrap();
        for (p, w) in &updates {
            seq.fold(p.clone(), *w).unwrap();
        }
        let mut parts: Vec<StreamAgg> = (0..n_shards)
            .map(|_| StreamAgg::new(&AggregationStrategy::CoordinateMedian, cap).unwrap())
            .collect();
        // Contiguous split, like the fleet scheduler's chunking.
        let chunk = updates.len().div_ceil(n_shards);
        for (i, (p, w)) in updates.iter().enumerate() {
            parts[i / chunk].fold(p.clone(), *w).unwrap();
        }
        let mut it = parts.into_iter();
        let mut merged = it.next().unwrap();
        for part in it {
            merged.merge(part).unwrap();
        }
        prop_assert!(!merged.spilled());
        let a = seq.finalize().unwrap();
        let b = merged.finalize().unwrap();
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// The cohort for `(n, fraction, seed, round)` is a pure function:
    /// two independently built samplers agree everywhere, and cohorts
    /// are always sorted, deduplicated, in-range, and non-empty.
    #[test]
    fn sampler_is_a_pure_function_of_seed_and_round(
        n in 1usize..400,
        fraction in 0.01f64..1.0,
        seed in any::<u64>(),
        round in 1u64..200,
    ) {
        let a = CohortSampler::new(n, fraction, seed).unwrap();
        let b = CohortSampler::new(n, fraction, seed).unwrap();
        let cohort = a.cohort(round);
        prop_assert_eq!(&cohort, &b.cohort(round));
        prop_assert!(!cohort.is_empty());
        prop_assert!(cohort.len() <= a.cohort_size());
        prop_assert!(cohort.windows(2).all(|w| w[0] < w[1]), "sorted + deduped");
        prop_assert!(cohort.iter().all(|&id| id < n));
    }

    /// No starvation: from *any* starting round, every client appears in
    /// some cohort within `2·⌈n/k⌉` consecutive rounds — the window
    /// always contains at least one complete block permutation.
    #[test]
    fn sampler_covers_every_client_in_bounded_rounds(
        n in 1usize..250,
        fraction in 0.02f64..1.0,
        seed in any::<u64>(),
        start in 1u64..1000,
    ) {
        let sampler = CohortSampler::new(n, fraction, seed).unwrap();
        let k = sampler.cohort_size();
        let horizon = 2 * n.div_ceil(k) as u64;
        let mut seen = BTreeSet::new();
        for round in start..start + horizon {
            seen.extend(sampler.cohort(round));
        }
        prop_assert_eq!(
            seen.len(), n,
            "{} of {} clients never sampled in rounds {}..{}",
            n - seen.len(), n, start, start + horizon
        );
    }
}
