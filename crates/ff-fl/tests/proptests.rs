//! Property tests: codec round-trips, aggregation invariants, and
//! liveness of the health state machine.

use ff_fl::config::{ConfigMap, ConfigValue};
use ff_fl::health::{ClientState, HealthPolicy, HealthRegistry};
use ff_fl::message::{Instruction, Reply};
use ff_fl::strategy::{aggregate_loss, fedavg};
use proptest::prelude::*;

fn config_value() -> impl Strategy<Value = ConfigValue> {
    prop_oneof![
        (-1e6f64..1e6).prop_map(ConfigValue::Float),
        any::<i64>().prop_map(ConfigValue::Int),
        "[a-z0-9 ]{0,20}".prop_map(ConfigValue::Str),
        prop::collection::vec(any::<u8>(), 0..64).prop_map(ConfigValue::Bytes),
        prop::collection::vec(-1e6f64..1e6, 0..16).prop_map(ConfigValue::FloatVec),
    ]
}

fn config_map() -> impl Strategy<Value = ConfigMap> {
    prop::collection::btree_map("[a-z_]{1,12}", config_value(), 0..8)
}

proptest! {
    #[test]
    fn instruction_encode_decode_roundtrip(
        params in prop::collection::vec(-1e6f64..1e6, 0..32),
        cfg in config_map(),
    ) {
        for ins in [
            Instruction::GetProperties(cfg.clone()),
            Instruction::Fit { params: params.clone(), config: cfg.clone() },
            Instruction::Evaluate { params: params.clone(), config: cfg.clone() },
            Instruction::Shutdown,
        ] {
            let decoded = Instruction::decode(ins.encode()).unwrap();
            prop_assert_eq!(ins, decoded);
        }
    }

    #[test]
    fn reply_encode_decode_roundtrip(
        params in prop::collection::vec(-1e6f64..1e6, 0..32),
        cfg in config_map(),
        loss in -1e9f64..1e9,
        n in 0u64..1_000_000,
    ) {
        for reply in [
            Reply::Properties(cfg.clone()),
            Reply::FitRes { params: params.clone(), num_examples: n, metrics: cfg.clone() },
            Reply::EvaluateRes { loss, num_examples: n, metrics: cfg.clone() },
            Reply::ShutdownAck,
            Reply::Error("boom".into()),
            Reply::Panicked("index out of bounds".into()),
        ] {
            let decoded = Reply::decode(reply.encode()).unwrap();
            prop_assert_eq!(reply, decoded);
        }
    }

    #[test]
    fn fedavg_result_in_convex_hull(
        a in prop::collection::vec(-100.0f64..100.0, 4),
        b in prop::collection::vec(-100.0f64..100.0, 4),
        wa in 1u64..1000,
        wb in 1u64..1000,
    ) {
        let agg = fedavg(&[(a.clone(), wa), (b.clone(), wb)]).unwrap();
        for ((&x, &y), &z) in a.iter().zip(&b).zip(&agg) {
            let lo = x.min(y) - 1e-9;
            let hi = x.max(y) + 1e-9;
            prop_assert!(z >= lo && z <= hi, "{z} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn fedavg_weights_on_simplex_scale_invariance(
        p in prop::collection::vec(-10.0f64..10.0, 3),
        w in 1u64..100,
        k in 1u64..10,
    ) {
        // Scaling all weights by k must not change the average.
        let a = fedavg(&[(p.clone(), w), (p.clone(), w * 2)]).unwrap();
        let b = fedavg(&[(p.clone(), w * k), (p.clone(), w * 2 * k)]).unwrap();
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn aggregate_loss_between_min_and_max(
        losses in prop::collection::vec((0.0f64..100.0, 1u64..1000), 1..8),
    ) {
        let agg = aggregate_loss(&losses).unwrap();
        let lo = losses.iter().map(|(l, _)| *l).fold(f64::INFINITY, f64::min);
        let hi = losses.iter().map(|(l, _)| *l).fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(agg >= lo - 1e-9 && agg <= hi + 1e-9);
    }

    /// Quarantine plus probe backoff never starves a recovered client:
    /// whatever the policy and however long the client misbehaved, once it
    /// starts succeeding it is probed, re-admitted, and back to `Healthy`
    /// within a bounded number of rounds (the probe backoff is capped at
    /// `probe_max`).
    #[test]
    fn quarantine_never_starves_a_recovered_client(
        quarantine_after in 1u32..5,
        probe_base in 1u64..6,
        probe_max in 1u64..24,
        fail_rounds in 1u64..40,
    ) {
        let policy = HealthPolicy { quarantine_after, probe_base, probe_max };
        let mut reg = HealthRegistry::new(1, policy);
        // Phase 1: the client fails every round it participates in.
        for _ in 0..fail_rounds {
            let round = reg.begin_round();
            if reg.admitted(round).contains(&0) {
                let _ = reg.record_failure(0);
            }
        }
        // Phase 2: the client has recovered and succeeds whenever probed.
        // It must reach Healthy within probe_max + 1 further rounds.
        let mut healthy_after = None;
        for extra in 1..=(probe_max + 1) {
            let round = reg.begin_round();
            if reg.admitted(round).contains(&0) {
                reg.record_success(0);
            }
            if reg.state(0) == Some(ClientState::Healthy) {
                healthy_after = Some(extra);
                break;
            }
        }
        prop_assert!(
            healthy_after.is_some(),
            "client still {:?} after {} recovery rounds",
            reg.state(0),
            probe_max + 1
        );
    }
}
