//! Event-driven round scheduler for 10,000-client fleets.
//!
//! [`FederatedRuntime`](crate::runtime::FederatedRuntime) is
//! thread-per-client and broadcast-to-everyone — the right shape for the
//! paper's 8-client experiments, unusable at 10,000 clients (10,000 OS
//! threads, O(clients × model) server memory). [`FleetRuntime`] is the
//! fleet-scale shape:
//!
//! - **Seeded cohort sampling** ([`CohortSampler`]): each round engages a
//!   deterministic cohort — a window into a seeded block permutation of
//!   the fleet, so the cohort for `(seed, round)` is a pure function and
//!   consecutive rounds cover every client (no starvation; see the
//!   sampler docs for the exact coverage contract).
//! - **Sharded execution**: clients live in [`Mutex`] slots, not
//!   threads. A round partitions its cohort into shards sized by the
//!   *cohort* (never by the machine's thread count) and drives them on
//!   the [`ff_par`] scoped pool; each shard sequentially locks, invokes,
//!   and screens its clients.
//! - **Streaming aggregation** ([`StreamAgg`]): each shard folds accepted
//!   updates as they arrive and drops them; shard partials merge in shard
//!   index order. Server aggregation memory is O(model), not
//!   O(cohort × model) — measured per round and reported as
//!   [`FleetRoundOutcome::agg_state_peak_bytes`].
//! - **Screen-then-fold** ([`UpdateGuard`]): robust rounds screen every
//!   reply against medians **frozen before the round starts**
//!   ([`UpdateGuard::frozen_norm_median`]), so screening is parallel-safe
//!   and order-independent. The first robust round has no history and
//!   skips the ratio screens (documented bypass); accepted values commit
//!   a new history entry once per round.
//!
//! # Determinism
//!
//! With `policy.deadline = None`, a full round is **bit-identical**
//! across thread counts: cohorts depend only on `(seed, round)`, shard
//! partitioning only on the cohort size, fold order within a shard and
//! merge order across shards are fixed, and chaos faults are per-client
//! PRNG streams. A wall-clock `deadline` is supported (checked before
//! each client is driven) but is inherently best-effort and
//! non-deterministic; simulated fleets model stragglers as
//! [`ChaosConfig`](crate::chaos::ChaosConfig) drops, which surface as
//! deterministic
//! [`FlError::Timeout`] dropouts without waiting on any clock.

use crate::client::FlClient;
use crate::config::ConfigMap;
use crate::health::{ClientState, HealthPolicy, HealthRegistry, HealthReport};
use crate::message::{Instruction, Reply};
use crate::robust::{AggregationStrategy, GuardPolicy, RejectReason, UpdateGuard};
use crate::runtime::RoundPolicy;
use crate::stream::StreamAgg;
use crate::{FlError, Result};
use bytes::Bytes;
use ff_trace::{FlightRecorder, RoundFrame, Tracer};
use parking_lot::Mutex;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

// ---------------------------------------------------------------------------
// CohortSampler
// ---------------------------------------------------------------------------

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic per-round client sampler.
///
/// Conceptually the sampler concatenates an infinite sequence of
/// *blocks*, block `b` being a Fisher–Yates permutation of all `n`
/// client ids seeded by `(seed, b)`. Round `r` (1-based) takes positions
/// `[(r−1)·k, r·k)` of that virtual sequence (`k` = cohort size), sorted
/// and deduplicated — a window can straddle two blocks, so a cohort may
/// rarely shrink by a few duplicate ids.
///
/// Contracts (property-tested in `fleet_proptests`):
///
/// - **Deterministic**: `cohort(r)` is a pure function of
///   `(n, k, seed, r)`.
/// - **No starvation**: any `⌈n/k⌉ + 1` consecutive rounds include at
///   least one full block of the virtual sequence, so every client id
///   appears at least once in any `2·⌈n/k⌉` consecutive rounds.
#[derive(Debug, Clone)]
pub struct CohortSampler {
    n: usize,
    k: usize,
    seed: u64,
}

impl CohortSampler {
    /// A sampler over `n` clients engaging `round(n × fraction)` of them
    /// per round (clamped to `[1, n]`).
    pub fn new(n: usize, fraction: f64, seed: u64) -> Result<CohortSampler> {
        if n == 0 {
            return Err(FlError::Client("sampler needs at least one client".into()));
        }
        let k = ((n as f64 * fraction.clamp(0.0, 1.0)).round() as usize).clamp(1, n);
        Ok(CohortSampler { n, k, seed })
    }

    /// Fleet size.
    pub fn fleet_size(&self) -> usize {
        self.n
    }

    /// Nominal cohort size (cohorts may be a few smaller when a round's
    /// window straddles two blocks and deduplicates).
    pub fn cohort_size(&self) -> usize {
        self.k
    }

    /// The seeded Fisher–Yates permutation of all ids for block `b`.
    fn block_perm(&self, b: u64) -> Vec<u32> {
        let mut ids: Vec<u32> = (0..self.n as u32).collect();
        let mut state = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(b.wrapping_mul(0xD1B5_4A32_D192_ED03))
            .wrapping_add(1);
        for i in (1..self.n).rev() {
            let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
            ids.swap(i, j);
        }
        ids
    }

    /// The cohort for `round` (1-based), sorted ascending, deduplicated.
    pub fn cohort(&self, round: u64) -> Vec<usize> {
        assert!(round >= 1, "rounds are 1-based");
        let n = self.n as u64;
        let start = (round - 1).wrapping_mul(self.k as u64);
        let mut block = start / n;
        let mut perm = self.block_perm(block);
        let mut ids = Vec::with_capacity(self.k);
        for i in 0..self.k as u64 {
            let pos = start + i;
            let b = pos / n;
            if b != block {
                block = b;
                perm = self.block_perm(block);
            }
            ids.push(perm[(pos % n) as usize] as usize);
        }
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

// ---------------------------------------------------------------------------
// FleetConfig
// ---------------------------------------------------------------------------

/// Configuration of a [`FleetRuntime`]. See the README's `fleet` section
/// for knob-by-knob guidance.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Fraction of the fleet sampled per round, in `(0, 1]`.
    pub fraction: f64,
    /// Sampler seed; `(seed, round)` fully determines each cohort.
    pub seed: u64,
    /// Rank-family exact-buffer cap per shard partial (see
    /// [`StreamAgg`]); within it rank aggregation is bit-identical to the
    /// batch rules.
    pub exact_cap: usize,
    /// Maximum shards a cohort is split into. Shard size is derived from
    /// the cohort size — never from the machine's thread count — so
    /// results are bit-identical across `FF_THREADS` settings.
    pub max_shards: usize,
    /// Minimum clients per shard (avoids per-shard overhead dominating
    /// tiny cohorts).
    pub min_shard: usize,
    /// Aggregation rule. Krum/Multi-Krum cannot stream and are rejected
    /// at construction.
    pub strategy: AggregationStrategy,
    /// Health state-machine knobs (quarantine threshold, probe backoff).
    pub health: HealthPolicy,
    /// Update/loss screening thresholds for robust rounds.
    pub guard: GuardPolicy,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            fraction: 0.1,
            seed: 0,
            exact_cap: 64,
            max_shards: 64,
            min_shard: 8,
            strategy: AggregationStrategy::FedAvg,
            health: HealthPolicy::default(),
            guard: GuardPolicy::default(),
        }
    }
}

// ---------------------------------------------------------------------------
// Round outcome
// ---------------------------------------------------------------------------

/// Result of one fleet round (fit or evaluate).
#[derive(Debug, Clone)]
pub struct FleetRoundOutcome {
    /// Round number (1-based, shared with the health registry).
    pub round: u64,
    /// The sampled cohort (before health admission).
    pub cohort: Vec<usize>,
    /// Clients actually driven: admitted cohort members plus due
    /// re-admission probes, sorted.
    pub admitted: Vec<usize>,
    /// How many driven clients were quarantine probes.
    pub probes: usize,
    /// Clients whose replies were accepted (and, for fit, folded into the
    /// aggregate), sorted.
    pub accepted: Vec<usize>,
    /// Guard-rejected on-time replies, with reasons, sorted by id.
    pub rejected: Vec<(usize, RejectReason)>,
    /// Clients that produced no usable reply, with the transport error,
    /// sorted by id.
    pub dropouts: Vec<(usize, FlError)>,
    /// Aggregated global parameters (fit rounds; empty for eval).
    pub global: Vec<f64>,
    /// Aggregated global loss (eval rounds; `None` for fit).
    pub loss: Option<f64>,
    /// Total training/validation examples across accepted replies.
    pub total_examples: u64,
    /// High-water mark of live server aggregation state during this
    /// round, in bytes: the sum of concurrent shard partials plus the
    /// merged accumulator. O(model × shards), independent of cohort and
    /// fleet size — the memory contract the fleet tests assert.
    pub agg_state_peak_bytes: usize,
}

// ---------------------------------------------------------------------------
// FleetRuntime
// ---------------------------------------------------------------------------

#[derive(Clone, Copy)]
enum RoundMode {
    Fit {
        /// Broadcast parameter dimension (`None` when broadcasting empty
        /// params, e.g. round one — replies then set the dimension).
        ref_dim: Option<usize>,
        /// Frozen norm-screen median; `None` = first-round bypass or
        /// non-robust strategy.
        norm_median: Option<f64>,
    },
    Eval {
        /// Frozen loss-screen median; `None` = bypass.
        loss_median: Option<f64>,
    },
}

/// Per-shard partial results, merged in shard index order.
struct ShardOut {
    agg: Option<StreamAgg>,
    accepted: Vec<usize>,
    norms: Vec<f64>,
    losses: Vec<(usize, f64, u64)>,
    rejected: Vec<(usize, RejectReason)>,
    dropouts: Vec<(usize, FlError)>,
    retryable: Vec<(usize, FlError)>,
    examples: u64,
    fatal: Option<FlError>,
}

/// Event-driven scheduler for fleets far beyond thread-per-client scale.
/// Clients live in mutex slots; each round drives only its sampled
/// cohort. See the module docs for the architecture.
pub struct FleetRuntime {
    slots: Vec<Mutex<Box<dyn FlClient>>>,
    sampler: CohortSampler,
    cfg: FleetConfig,
    health: Mutex<HealthRegistry>,
    guard: Mutex<UpdateGuard>,
    tracer: Mutex<Tracer>,
    recorder: Mutex<FlightRecorder>,
    /// Which clients have appeared in any cohort so far, plus the count
    /// of distinct ones — feeds the `fleet.cohort_coverage` gauge.
    coverage: Mutex<(Vec<bool>, usize)>,
    peak_agg_bytes: AtomicUsize,
}

impl FleetRuntime {
    /// Builds a fleet over the given clients. Fails fast when the
    /// strategy cannot stream (Krum) or the config is invalid — a
    /// 10,000-client run must not discover a bad rule mid-round.
    pub fn new(clients: Vec<Box<dyn FlClient>>, cfg: FleetConfig) -> Result<FleetRuntime> {
        // Validates the strategy, including the cannot-stream rules.
        StreamAgg::new(&cfg.strategy, cfg.exact_cap)?;
        let sampler = CohortSampler::new(clients.len(), cfg.fraction, cfg.seed)?;
        let n = clients.len();
        Ok(FleetRuntime {
            slots: clients.into_iter().map(Mutex::new).collect(),
            sampler,
            health: Mutex::new(HealthRegistry::new(n, cfg.health.clone())),
            guard: Mutex::new(UpdateGuard::new(cfg.guard)),
            cfg,
            tracer: Mutex::new(Tracer::disabled()),
            recorder: Mutex::new(FlightRecorder::disabled()),
            coverage: Mutex::new((vec![false; n], 0)),
            peak_agg_bytes: AtomicUsize::new(0),
        })
    }

    /// Fleet size.
    pub fn n_clients(&self) -> usize {
        self.slots.len()
    }

    /// The cohort sampler (e.g. to preview a round's cohort).
    pub fn sampler(&self) -> &CohortSampler {
        &self.sampler
    }

    /// Attaches a tracer: rounds get `fleet.round` spans and the
    /// `fleet.rounds` / `fleet.probes` / `fleet.retries` /
    /// `fleet.dropouts` / `fleet.updates_rejected` / `fleet.quarantines`
    /// counters plus the `fleet.agg_state_peak_bytes` gauge.
    pub fn set_tracer(&self, tracer: Tracer) {
        *self.tracer.lock() = tracer;
    }

    /// Attaches a flight recorder: every round commits one
    /// [`RoundFrame`] (including rounds that fail their quorum), and
    /// distress — a fresh quarantine, a quorum failure, a guard
    /// rejection, a non-finite loss — freezes the ring into a forensic
    /// dump. Disabled recorders cost one branch per round.
    pub fn set_recorder(&self, recorder: FlightRecorder) {
        *self.recorder.lock() = recorder;
    }

    /// The attached flight recorder (disabled unless [`set_recorder`]
    /// was called).
    ///
    /// [`set_recorder`]: FleetRuntime::set_recorder
    pub fn recorder(&self) -> FlightRecorder {
        self.recorder.lock().clone()
    }

    /// A snapshot of every client's health state.
    pub fn health_report(&self) -> HealthReport {
        self.health.lock().report()
    }

    /// The health state of one client, or `None` for an unknown id.
    pub fn client_state(&self, id: usize) -> Option<ClientState> {
        self.health.lock().state(id)
    }

    /// High-water mark of server aggregation state across all rounds so
    /// far, in bytes.
    pub fn peak_agg_bytes(&self) -> usize {
        self.peak_agg_bytes.load(Ordering::Relaxed)
    }

    /// Runs one fit round over the sampled cohort: broadcast `params`,
    /// screen and fold replies into the streaming aggregate, return the
    /// new global model. Takes ownership of `params` — no defensive
    /// copies of the model vector are made on the way in.
    pub fn run_fit_round(
        &self,
        params: Vec<f64>,
        config: ConfigMap,
        policy: &RoundPolicy,
    ) -> Result<FleetRoundOutcome> {
        let ref_dim = if params.is_empty() {
            None
        } else {
            Some(params.len())
        };
        let norm_median = if self.cfg.strategy.is_robust() {
            self.guard.lock().frozen_norm_median()
        } else {
            None
        };
        let ins = Instruction::Fit { params, config };
        self.run_round_inner(
            ins,
            RoundMode::Fit {
                ref_dim,
                norm_median,
            },
            policy,
        )
    }

    /// Runs one evaluate round over the sampled cohort, aggregating the
    /// per-client losses (Equation-1 weighted mean, or the weighted
    /// median for robust strategies).
    pub fn run_eval_round(
        &self,
        params: Vec<f64>,
        config: ConfigMap,
        policy: &RoundPolicy,
    ) -> Result<FleetRoundOutcome> {
        let loss_median = if self.cfg.strategy.is_robust() {
            self.guard.lock().frozen_loss_median()
        } else {
            None
        };
        let ins = Instruction::Evaluate { params, config };
        self.run_round_inner(ins, RoundMode::Eval { loss_median }, policy)
    }

    /// Shard size for a pass over `n` clients: derived from the cohort
    /// and config only — never from the live thread count — so the shard
    /// partition (and therefore every fold/merge order) is identical
    /// across `FF_THREADS` settings.
    fn shard_len(&self, n: usize) -> usize {
        ff_par::shard_len(n, self.cfg.max_shards, self.cfg.min_shard)
    }

    /// Decodes the shared instruction, drives one client under
    /// `catch_unwind`, and routes the reply through `wire_transform` —
    /// the same wire semantics as the thread-per-client runtime, without
    /// a thread. A `None` transform (chaos drop) returns
    /// [`FlError::Timeout`] immediately: simulated stragglers cost no
    /// wall-clock time, which is what makes 10,000-client chaos rounds
    /// fast *and* deterministic.
    fn drive_one(&self, id: usize, encoded: &Bytes) -> Result<Reply> {
        let ins = Instruction::decode(encoded.clone())?;
        let mut slot = self.slots[id].lock();
        let client: &mut dyn FlClient = &mut **slot;
        let reply = match catch_unwind(AssertUnwindSafe(|| match ins {
            Instruction::GetProperties(cfg) => Reply::Properties(client.get_properties(&cfg)),
            Instruction::Fit { params, config } => {
                let out = client.fit(&params, &config);
                Reply::FitRes {
                    params: out.params,
                    num_examples: out.num_examples,
                    metrics: out.metrics,
                }
            }
            Instruction::Evaluate { params, config } => {
                let out = client.evaluate(&params, &config);
                Reply::EvaluateRes {
                    loss: out.loss,
                    num_examples: out.num_examples,
                    metrics: out.metrics,
                }
            }
            Instruction::Shutdown => Reply::ShutdownAck,
        })) {
            Ok(reply) => reply,
            Err(_) => return Err(FlError::ClientPanicked(id)),
        };
        let bytes = match slot.wire_transform(reply.encode().to_vec()) {
            Some(bytes) => bytes,
            None => return Err(FlError::Timeout(id)),
        };
        drop(slot);
        Reply::decode(Bytes::from(bytes))
    }

    /// Screens a fit reply against the frozen round state. `Ok` carries
    /// the update's L2 norm.
    fn screen_fit(
        &self,
        mode: &RoundMode,
        params: &[f64],
    ) -> std::result::Result<f64, RejectReason> {
        let RoundMode::Fit {
            ref_dim,
            norm_median,
        } = mode
        else {
            unreachable!("fit screen in eval round");
        };
        if let Some(d) = ref_dim {
            if params.len() != *d {
                return Err(RejectReason::DimensionMismatch {
                    got: params.len(),
                    expected: *d,
                });
            }
        }
        if params.iter().any(|v| !v.is_finite()) {
            return Err(RejectReason::NonFinite);
        }
        let norm = params.iter().map(|v| v * v).sum::<f64>().sqrt();
        if let Some(median) = norm_median {
            if norm > self.cfg.guard.norm_ratio * median {
                return Err(RejectReason::NormOutlier {
                    norm,
                    median: *median,
                });
            }
        }
        Ok(norm)
    }

    /// Screens an eval reply against the frozen round state.
    fn screen_eval(&self, mode: &RoundMode, loss: f64) -> std::result::Result<(), RejectReason> {
        let RoundMode::Eval { loss_median } = mode else {
            unreachable!("eval screen in fit round");
        };
        if !loss.is_finite() {
            return Err(RejectReason::NonFinite);
        }
        if loss < 0.0 {
            return Err(RejectReason::NegativeLoss { loss });
        }
        if let Some(median) = loss_median {
            if loss > self.cfg.guard.loss_ratio * median {
                return Err(RejectReason::LossOutlier {
                    loss,
                    median: *median,
                });
            }
        }
        Ok(())
    }

    /// Drives one pass over `ids`, sharded on the [`ff_par`] pool. Shard
    /// results come back in shard index order regardless of thread count.
    fn drive_pass(
        &self,
        ids: &[usize],
        encoded: &Bytes,
        mode: RoundMode,
        robust: bool,
        deadline: Option<Instant>,
    ) -> Vec<ShardOut> {
        let is_fit = matches!(mode, RoundMode::Fit { .. });
        let shard_len = self.shard_len(ids.len());
        // `exact_cap` is a *round-level* buffer budget: when the whole
        // pass fits, every shard may buffer exactly (bit-identical to
        // batch); otherwise the budget is split across shards so the sum
        // of exact buffers never exceeds ~exact_cap — that split is what
        // keeps pass memory O(model × shards) instead of O(cohort ×
        // model). Derived from the pass size only, never the thread
        // count, so it cannot break cross-thread-count determinism.
        let shard_cap = if ids.len() <= self.cfg.exact_cap {
            self.cfg.exact_cap
        } else {
            let n_shards = ids.len().div_ceil(shard_len);
            (self.cfg.exact_cap / n_shards.max(1)).max(1)
        };
        ff_par::par_chunks_map(ids, shard_len, |_, shard| {
            let mut out = ShardOut {
                agg: is_fit.then(|| {
                    StreamAgg::new(&self.cfg.strategy, shard_cap)
                        .expect("strategy validated at construction")
                }),
                accepted: Vec::new(),
                norms: Vec::new(),
                losses: Vec::new(),
                rejected: Vec::new(),
                dropouts: Vec::new(),
                retryable: Vec::new(),
                examples: 0,
                fatal: None,
            };
            for &id in shard {
                if out.fatal.is_some() {
                    break;
                }
                if let Some(at) = deadline {
                    if Instant::now() >= at {
                        out.retryable.push((id, FlError::Timeout(id)));
                        continue;
                    }
                }
                match self.drive_one(id, encoded) {
                    Err(e @ (FlError::Timeout(_) | FlError::Codec(_))) => {
                        out.retryable.push((id, e));
                    }
                    Err(e) => out.dropouts.push((id, e)),
                    Ok(Reply::Panicked(_)) => {
                        out.dropouts.push((id, FlError::ClientPanicked(id)));
                    }
                    Ok(Reply::Error(msg)) => out.dropouts.push((id, FlError::Client(msg))),
                    Ok(Reply::FitRes {
                        params,
                        num_examples,
                        ..
                    }) if is_fit => {
                        if robust || !params.is_empty() {
                            if robust {
                                match self.screen_fit(&mode, &params) {
                                    Ok(norm) => {
                                        if !params.is_empty() {
                                            out.norms.push(norm);
                                        }
                                    }
                                    Err(reason) => {
                                        out.rejected.push((id, reason));
                                        continue;
                                    }
                                }
                            }
                            if let Err(e) = out
                                .agg
                                .as_mut()
                                .expect("fit pass has an aggregator")
                                .fold(params, num_examples)
                            {
                                // Re-key shard-local fold indices to the
                                // client id before surfacing.
                                out.fatal = Some(match e {
                                    FlError::NonFiniteUpdate { .. } => {
                                        FlError::NonFiniteUpdate { client: id }
                                    }
                                    other => other,
                                });
                                continue;
                            }
                        }
                        out.accepted.push(id);
                        out.examples += num_examples;
                    }
                    Ok(Reply::EvaluateRes {
                        loss, num_examples, ..
                    }) if !is_fit => {
                        if robust {
                            if let Err(reason) = self.screen_eval(&mode, loss) {
                                out.rejected.push((id, reason));
                                continue;
                            }
                        }
                        out.losses.push((id, loss, num_examples));
                        out.accepted.push(id);
                        out.examples += num_examples;
                    }
                    Ok(other) => {
                        out.dropouts
                            .push((id, FlError::Codec(format!("unexpected reply {other:?}"))));
                    }
                }
            }
            out
        })
    }

    fn run_round_inner(
        &self,
        ins: Instruction,
        mode: RoundMode,
        policy: &RoundPolicy,
    ) -> Result<FleetRoundOutcome> {
        let tracer = self.tracer.lock().clone();
        let recorder = self.recorder.lock().clone();
        let (round, cohort, admitted, probes) = {
            let mut health = self.health.lock();
            let round = health.begin_round();
            let cohort = self.sampler.cohort(round);
            let mut admitted: Vec<usize> = cohort
                .iter()
                .copied()
                .filter(|&id| health.is_admitted(id, round))
                .collect();
            // Due re-admission probes ride along with every round,
            // whether or not the sampler picked them — a quarantined
            // client must not wait for the sampler to cycle back.
            let probes = health.probes_due(round);
            let n_probes = probes.len();
            admitted.extend(probes);
            admitted.sort_unstable();
            admitted.dedup();
            (round, cohort, admitted, n_probes)
        };
        let _round_span = tracer.span_labeled("fleet.round", round);
        tracer.counter_add("fleet.rounds", 1);
        if probes > 0 {
            tracer.counter_add("fleet.probes", probes as u64);
        }
        if tracer.is_enabled() {
            // Cohort coverage: fraction of the fleet seen in any cohort
            // so far (the sampler's no-starvation contract, observable).
            let mut cov = self.coverage.lock();
            for &id in &cohort {
                if !cov.0[id] {
                    cov.0[id] = true;
                    cov.1 += 1;
                }
            }
            let seen = cov.1;
            drop(cov);
            tracer.gauge_set(
                "fleet.cohort_coverage",
                seen as f64 / self.slots.len().max(1) as f64,
            );
            // Shard balance: last-shard fill ÷ shard length — 1.0 means
            // perfectly even shards, small values mean a ragged tail.
            if !admitted.is_empty() {
                let shard_len = self.shard_len(admitted.len());
                let n_shards = admitted.len().div_ceil(shard_len);
                let last_fill = admitted.len() - (n_shards - 1) * shard_len;
                tracer.gauge_set("fleet.shards", n_shards as f64);
                tracer.gauge_set("fleet.shard_balance", last_fill as f64 / shard_len as f64);
            }
        }

        let robust = self.cfg.strategy.is_robust();
        let is_fit = matches!(mode, RoundMode::Fit { .. });
        let encoded = ins.encode(); // encode once; shards share the buffer
        drop(ins);

        let mut merged = if is_fit {
            Some(StreamAgg::new(&self.cfg.strategy, self.cfg.exact_cap)?)
        } else {
            None
        };
        let mut accepted: Vec<usize> = Vec::new();
        let mut norms: Vec<f64> = Vec::new();
        let mut losses: Vec<(usize, f64, u64)> = Vec::new();
        let mut rejected: Vec<(usize, RejectReason)> = Vec::new();
        let mut dropouts: Vec<(usize, FlError)> = Vec::new();
        let mut total_examples = 0u64;
        let mut round_peak = 0usize;

        let mut pending = admitted.clone();
        let mut attempt = 0u32;
        let mut round_retries = 0u64;
        while !pending.is_empty() {
            attempt += 1;
            let deadline = policy.deadline.map(|d| Instant::now() + d);
            let outs = self.drive_pass(&pending, &encoded, mode, robust, deadline);
            // Peak memory this pass: every shard partial was live at the
            // barrier, plus the merged accumulator.
            let partial_bytes: usize = outs
                .iter()
                .map(|o| o.agg.as_ref().map_or(0, StreamAgg::peak_state_bytes))
                .sum();
            let mut retry: Vec<(usize, FlError)> = Vec::new();
            for out in outs {
                if let Some(fatal) = out.fatal {
                    return Err(fatal);
                }
                if let (Some(merged), Some(agg)) = (merged.as_mut(), out.agg) {
                    merged.merge(agg)?;
                }
                accepted.extend(out.accepted);
                norms.extend(out.norms);
                losses.extend(out.losses);
                rejected.extend(out.rejected);
                dropouts.extend(out.dropouts);
                retry.extend(out.retryable);
                total_examples += out.examples;
            }
            round_peak =
                round_peak.max(partial_bytes + merged.as_ref().map_or(0, |m| m.state_bytes()));
            let can_retry = attempt <= policy.retries;
            if can_retry && !retry.is_empty() {
                tracer.counter_add("fleet.retries", retry.len() as u64);
                round_retries += retry.len() as u64;
                pending = retry.into_iter().map(|(id, _)| id).collect();
                pending.sort_unstable();
                if !policy.backoff.is_zero() {
                    std::thread::sleep(policy.backoff * attempt);
                }
            } else {
                dropouts.extend(retry);
                pending = Vec::new();
            }
        }

        accepted.sort_unstable();
        rejected.sort_by_key(|(id, _)| *id);
        dropouts.sort_by_key(|(id, _)| *id);

        // Health bookkeeping: one lock, cost O(cohort).
        let mut quarantined_ids: Vec<u64> = Vec::new();
        {
            let mut health = self.health.lock();
            for &id in &accepted {
                health.record_success(id);
                if robust {
                    health.record_accepted(id);
                }
            }
            let mut note_transition =
                |id: usize, before: Option<ClientState>, after: Option<ClientState>| {
                    if after == Some(ClientState::Quarantined)
                        && before != Some(ClientState::Quarantined)
                    {
                        quarantined_ids.push(id as u64);
                    }
                };
            for (id, _) in &rejected {
                // An on-time reply with bad content: transport success,
                // integrity failure.
                health.record_success(*id);
                let before = health.state(*id);
                note_transition(*id, before, health.record_rejection(*id));
            }
            for (id, _) in &dropouts {
                let before = health.state(*id);
                note_transition(*id, before, health.record_failure(*id));
            }
            if !dropouts.is_empty() {
                tracer.counter_add("fleet.dropouts", dropouts.len() as u64);
            }
            if !rejected.is_empty() {
                tracer.counter_add("fleet.updates_rejected", rejected.len() as u64);
            }
            if !quarantined_ids.is_empty() {
                tracer.counter_add("fleet.quarantines", quarantined_ids.len() as u64);
            }
        }
        quarantined_ids.sort_unstable();
        // Commit this round's accepted values into the guard history so
        // the *next* round screens against them (frozen-median contract).
        if robust {
            let mut guard = self.guard.lock();
            if is_fit {
                guard.commit_norms(&mut norms);
            } else {
                let mut vals: Vec<f64> = losses.iter().map(|&(_, l, _)| l).collect();
                guard.commit_losses(&mut vals);
            }
        }

        // Flight-recorder frame for this round. Built lazily (a disabled
        // recorder never runs this) and free of wall-clock data, so dumps
        // are bit-identical across thread counts.
        let make_frame = |quorum_met: bool, loss: Option<f64>| RoundFrame {
            round,
            phase: if is_fit { "fleet.fit" } else { "fleet.eval" },
            cohort: cohort.len() as u64,
            admitted: admitted.len() as u64,
            accepted: accepted.len() as u64,
            probes: probes as u64,
            rejected: rejected
                .iter()
                .map(|(id, r)| (*id as u64, r.to_string()))
                .collect(),
            dropouts: dropouts
                .iter()
                .map(|(id, e)| (*id as u64, e.to_string()))
                .collect(),
            quarantined: quarantined_ids.clone(),
            loss,
            quorum_met,
            non_finite: rejected
                .iter()
                .any(|(_, r)| matches!(r, RejectReason::NonFinite)),
            counters: vec![
                ("fleet.retries", round_retries),
                ("fleet.probes", probes as u64),
            ],
        };

        let required = policy.min_responses.max(1);
        if accepted.len() < required {
            recorder.commit_with(|| make_frame(false, None));
            return Err(FlError::Quorum {
                healthy: accepted.len(),
                required,
            });
        }

        let (global, loss) = match merged {
            Some(agg) => {
                round_peak = round_peak.max(agg.peak_state_bytes());
                (agg.finalize()?, None)
            }
            None => {
                let pairs: Vec<(f64, u64)> = losses.iter().map(|&(_, l, n)| (l, n)).collect();
                (Vec::new(), Some(self.cfg.strategy.aggregate_loss(&pairs)?))
            }
        };
        self.peak_agg_bytes.fetch_max(round_peak, Ordering::Relaxed);
        tracer.gauge_set("fleet.agg_state_peak_bytes", round_peak as f64);
        recorder.commit_with(|| make_frame(true, loss));

        Ok(FleetRoundOutcome {
            round,
            cohort,
            admitted,
            probes,
            accepted,
            rejected,
            dropouts,
            global,
            loss,
            total_examples,
            agg_state_peak_bytes: round_peak,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::{AdversarialMode, ChaosClient};
    use crate::client::{EvalOutput, FitOutput};
    use std::collections::BTreeSet;

    /// Toy client: fit returns a constant vector scaled by `value`.
    struct Constant {
        value: f64,
        dim: usize,
        examples: u64,
    }

    impl FlClient for Constant {
        fn get_properties(&mut self, _config: &ConfigMap) -> ConfigMap {
            ConfigMap::new()
        }
        fn fit(&mut self, _params: &[f64], _config: &ConfigMap) -> FitOutput {
            FitOutput {
                params: vec![self.value; self.dim],
                num_examples: self.examples,
                metrics: ConfigMap::new(),
            }
        }
        fn evaluate(&mut self, params: &[f64], _config: &ConfigMap) -> EvalOutput {
            let center = params.first().copied().unwrap_or(0.0);
            EvalOutput {
                loss: (self.value - center).abs(),
                num_examples: self.examples,
                metrics: ConfigMap::new(),
            }
        }
    }

    fn constant_fleet(n: usize, dim: usize) -> Vec<Box<dyn FlClient>> {
        (0..n)
            .map(|i| {
                Box::new(Constant {
                    value: 1.0 + (i % 7) as f64 * 0.1,
                    dim,
                    examples: 1 + (i % 3) as u64,
                }) as Box<dyn FlClient>
            })
            .collect()
    }

    fn no_deadline() -> RoundPolicy {
        RoundPolicy {
            deadline: None,
            min_responses: 1,
            retries: 0,
            backoff: std::time::Duration::ZERO,
        }
    }

    #[test]
    fn sampler_is_deterministic_and_covers_everyone() {
        let sampler = CohortSampler::new(100, 0.1, 42).unwrap();
        assert_eq!(sampler.cohort_size(), 10);
        for round in 1..=5 {
            assert_eq!(sampler.cohort(round), sampler.cohort(round));
        }
        // Rounds 1..=10 walk block 0 exactly: every client appears.
        let mut seen = BTreeSet::new();
        for round in 1..=10 {
            let cohort = sampler.cohort(round);
            assert!(!cohort.is_empty() && cohort.len() <= 10);
            seen.extend(cohort);
        }
        assert_eq!(seen.len(), 100, "starved clients: {}", 100 - seen.len());
        // Different seeds give different schedules.
        let other = CohortSampler::new(100, 0.1, 43).unwrap();
        assert_ne!(
            (1..=10).map(|r| sampler.cohort(r)).collect::<Vec<_>>(),
            (1..=10).map(|r| other.cohort(r)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn fit_round_aggregates_the_sampled_cohort() {
        let fleet = FleetRuntime::new(
            constant_fleet(50, 3),
            FleetConfig {
                fraction: 0.2,
                ..FleetConfig::default()
            },
        )
        .unwrap();
        let out = fleet
            .run_fit_round(vec![0.0; 3], ConfigMap::new(), &no_deadline())
            .unwrap();
        assert_eq!(out.round, 1);
        assert_eq!(out.cohort.len(), 10);
        assert_eq!(out.accepted, out.admitted);
        assert!(out.dropouts.is_empty() && out.rejected.is_empty());
        assert_eq!(out.global.len(), 3);
        // FedAvg of the cohort's constants, weighted by examples.
        let mut num = 0.0;
        let mut den = 0.0;
        for &id in &out.accepted {
            let w = (1 + (id % 3)) as f64;
            num += w * (1.0 + (id % 7) as f64 * 0.1);
            den += w;
        }
        assert!((out.global[0] - num / den).abs() < 1e-12);
        assert!(out.total_examples > 0);
        assert!(out.agg_state_peak_bytes > 0);
    }

    #[test]
    fn round_is_bit_identical_across_thread_counts() {
        let run = |threads: usize| -> (Vec<usize>, Vec<u64>) {
            ff_par::with_threads(threads, || {
                let fleet = FleetRuntime::new(
                    constant_fleet(200, 4),
                    FleetConfig {
                        fraction: 0.25,
                        seed: 7,
                        strategy: AggregationStrategy::CoordinateMedian,
                        ..FleetConfig::default()
                    },
                )
                .unwrap();
                let mut cohorts = Vec::new();
                let mut bits = Vec::new();
                for _ in 0..3 {
                    let out = fleet
                        .run_fit_round(vec![0.0; 4], ConfigMap::new(), &no_deadline())
                        .unwrap();
                    cohorts.extend(out.cohort);
                    bits.extend(out.global.iter().map(|v| v.to_bits()));
                }
                (cohorts, bits)
            })
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn byzantine_updates_are_screened_and_quarantined() {
        let n = 40;
        let dim = 3;
        let clients: Vec<Box<dyn FlClient>> = (0..n)
            .map(|i| {
                let inner = Box::new(Constant {
                    value: 1.0,
                    dim,
                    examples: 1,
                }) as Box<dyn FlClient>;
                if i == 5 {
                    Box::new(ChaosClient::adversarial(
                        inner,
                        AdversarialMode::ScaleBy(1e9),
                        9,
                    )) as Box<dyn FlClient>
                } else {
                    inner
                }
            })
            .collect();
        let fleet = FleetRuntime::new(
            clients,
            FleetConfig {
                fraction: 1.0,
                strategy: AggregationStrategy::CoordinateMedian,
                ..FleetConfig::default()
            },
        )
        .unwrap();
        // Round 1: no history → norm screen bypassed, but the median
        // aggregate still shrugs the attacker off.
        let r1 = fleet
            .run_fit_round(vec![0.0; dim], ConfigMap::new(), &no_deadline())
            .unwrap();
        assert!((r1.global[0] - 1.0).abs() < 0.05, "got {:?}", r1.global);
        // Round 2+: the frozen median from round 1 screens the attacker.
        let r2 = fleet
            .run_fit_round(vec![0.0; dim], ConfigMap::new(), &no_deadline())
            .unwrap();
        assert_eq!(r2.rejected.len(), 1);
        assert_eq!(r2.rejected[0].0, 5);
        assert!(matches!(r2.rejected[0].1, RejectReason::NormOutlier { .. }));
        let _ = fleet.run_fit_round(vec![0.0; dim], ConfigMap::new(), &no_deadline());
        assert_eq!(fleet.client_state(5), Some(ClientState::Quarantined));
    }

    #[test]
    fn chaos_drops_become_deterministic_timeouts_without_waiting() {
        let clients: Vec<Box<dyn FlClient>> = (0..30)
            .map(|i| {
                let inner = Box::new(Constant {
                    value: 2.0,
                    dim: 2,
                    examples: 1,
                }) as Box<dyn FlClient>;
                if i % 3 == 0 {
                    Box::new(ChaosClient::flaky(inner, 1.0, i as u64)) as Box<dyn FlClient>
                } else {
                    inner
                }
            })
            .collect();
        let fleet = FleetRuntime::new(
            clients,
            FleetConfig {
                fraction: 1.0,
                ..FleetConfig::default()
            },
        )
        .unwrap();
        let started = Instant::now();
        let out = fleet
            .run_fit_round(vec![0.0; 2], ConfigMap::new(), &no_deadline())
            .unwrap();
        assert!(
            started.elapsed() < std::time::Duration::from_secs(5),
            "drops must not wait on wall clocks"
        );
        assert_eq!(out.dropouts.len(), 10);
        assert!(out
            .dropouts
            .iter()
            .all(|(id, e)| *e == FlError::Timeout(*id) && id % 3 == 0));
        assert_eq!(out.accepted.len(), 20);
        assert!((out.global[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn probes_ride_along_and_recovering_clients_rejoin() {
        // Client 0 always drops; quarantine it, then verify its probes
        // ride along with later rounds even when unsampled.
        let clients: Vec<Box<dyn FlClient>> = (0..20)
            .map(|i| {
                let inner = Box::new(Constant {
                    value: 1.0,
                    dim: 1,
                    examples: 1,
                }) as Box<dyn FlClient>;
                if i == 0 {
                    Box::new(ChaosClient::flaky(inner, 1.0, 1)) as Box<dyn FlClient>
                } else {
                    inner
                }
            })
            .collect();
        let fleet = FleetRuntime::new(
            clients,
            FleetConfig {
                fraction: 1.0,
                ..FleetConfig::default()
            },
        )
        .unwrap();
        let policy = no_deadline();
        let mut saw_probe = false;
        for _ in 0..12 {
            let out = fleet
                .run_fit_round(vec![0.0], ConfigMap::new(), &policy)
                .unwrap();
            if out.probes > 0 {
                saw_probe = true;
                assert!(out.admitted.contains(&0));
            }
        }
        assert!(saw_probe, "quarantined client was never probed");
        assert_eq!(fleet.client_state(0), Some(ClientState::Quarantined));
    }

    #[test]
    fn eval_round_aggregates_losses() {
        let fleet = FleetRuntime::new(
            constant_fleet(30, 2),
            FleetConfig {
                fraction: 0.5,
                ..FleetConfig::default()
            },
        )
        .unwrap();
        let out = fleet
            .run_eval_round(vec![1.0, 1.0], ConfigMap::new(), &no_deadline())
            .unwrap();
        assert!(out.global.is_empty());
        let loss = out.loss.expect("eval round carries a loss");
        assert!((0.0..=0.6).contains(&loss), "loss {loss}");
    }

    #[test]
    fn quorum_unmet_fails_the_round() {
        let clients: Vec<Box<dyn FlClient>> = (0..10)
            .map(|i| {
                Box::new(ChaosClient::flaky(
                    Box::new(Constant {
                        value: 1.0,
                        dim: 1,
                        examples: 1,
                    }),
                    1.0,
                    i as u64,
                )) as Box<dyn FlClient>
            })
            .collect();
        let fleet = FleetRuntime::new(
            clients,
            FleetConfig {
                fraction: 1.0,
                ..FleetConfig::default()
            },
        )
        .unwrap();
        match fleet.run_fit_round(vec![0.0], ConfigMap::new(), &no_deadline()) {
            Err(FlError::Quorum { healthy, required }) => {
                assert_eq!((healthy, required), (0, 1));
            }
            other => panic!("expected quorum failure, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_replies_retry_then_drop_out() {
        let clients: Vec<Box<dyn FlClient>> = (0..6)
            .map(|i| {
                let inner = Box::new(Constant {
                    value: 1.0,
                    dim: 1,
                    examples: 1,
                }) as Box<dyn FlClient>;
                if i == 2 {
                    Box::new(ChaosClient::corrupting(inner, 3)) as Box<dyn FlClient>
                } else {
                    inner
                }
            })
            .collect();
        let fleet = FleetRuntime::new(
            clients,
            FleetConfig {
                fraction: 1.0,
                ..FleetConfig::default()
            },
        )
        .unwrap();
        let tracer = Tracer::enabled();
        fleet.set_tracer(tracer.clone());
        let policy = RoundPolicy {
            retries: 2,
            backoff: std::time::Duration::ZERO,
            ..no_deadline()
        };
        let out = fleet
            .run_fit_round(vec![0.0], ConfigMap::new(), &policy)
            .unwrap();
        assert_eq!(out.dropouts.len(), 1);
        assert!(matches!(out.dropouts[0], (2, FlError::Codec(_))));
        let snap = tracer.snapshot();
        assert_eq!(snap.counter("fleet.retries"), 2);
        assert_eq!(snap.counter("fleet.rounds"), 1);
        assert_eq!(snap.counter("fleet.dropouts"), 1);
    }

    #[test]
    fn krum_strategy_is_rejected_at_construction() {
        let err = FleetRuntime::new(
            constant_fleet(4, 1),
            FleetConfig {
                strategy: AggregationStrategy::Krum { f: 1 },
                ..FleetConfig::default()
            },
        );
        assert!(err.is_err());
    }

    #[test]
    fn aggregation_memory_is_independent_of_cohort_size() {
        let peak_for = |n: usize| -> usize {
            let fleet = FleetRuntime::new(
                constant_fleet(n, 8),
                FleetConfig {
                    fraction: 1.0,
                    strategy: AggregationStrategy::CoordinateMedian,
                    ..FleetConfig::default()
                },
            )
            .unwrap();
            let out = fleet
                .run_fit_round(vec![0.0; 8], ConfigMap::new(), &no_deadline())
                .unwrap();
            out.agg_state_peak_bytes
        };
        let small = peak_for(100);
        let large = peak_for(2000);
        // 20× the cohort must not cost 20× the aggregation state; the
        // cap is O(model × shards).
        assert!(
            large < small.max(1) * 6,
            "agg state scales with cohort: {small} -> {large}"
        );
    }
}
