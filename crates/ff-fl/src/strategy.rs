//! Aggregation strategies: FedAvg parameter averaging and the weighted
//! global loss of Equation 1.

use crate::message::Reply;
use crate::{FlError, Result};

/// Weighted average of flat parameter vectors:
/// `Σ wᵢ θᵢ / Σ wᵢ` with `wᵢ = num_examples` — McMahan et al.'s FedAvg.
///
/// # Examples
///
/// ```
/// use ff_fl::strategy::fedavg;
///
/// // A client with 3× the data pulls the average 3× harder.
/// let agg = fedavg(&[(vec![0.0], 1), (vec![4.0], 3)]).unwrap();
/// assert_eq!(agg, vec![3.0]);
/// ```
pub fn fedavg(params: &[(Vec<f64>, u64)]) -> Result<Vec<f64>> {
    let mut iter = params.iter().filter(|(p, _)| !p.is_empty());
    let first = iter
        .next()
        .ok_or_else(|| FlError::Client("no parameters to aggregate".into()))?;
    let dim = first.0.len();
    // Non-finite parameters would silently poison every coordinate of
    // the average; reject them with the offending input index, mirroring
    // `aggregate_loss`'s finite-loss contract.
    for (idx, (p, _)) in params.iter().enumerate() {
        if p.iter().any(|v| !v.is_finite()) {
            return Err(FlError::NonFiniteUpdate { client: idx });
        }
    }
    let mut acc = vec![0.0; dim];
    let mut total_w = 0.0;
    for (p, w) in params.iter().filter(|(p, _)| !p.is_empty()) {
        if p.len() != dim {
            return Err(FlError::Client(format!(
                "parameter length mismatch: {} vs {dim}",
                p.len()
            )));
        }
        let wf = *w as f64;
        total_w += wf;
        for (a, &v) in acc.iter_mut().zip(p) {
            *a += wf * v;
        }
    }
    if total_w <= 0.0 {
        return Err(FlError::Client("zero total weight".into()));
    }
    for a in acc.iter_mut() {
        *a /= total_w;
    }
    Ok(acc)
}

/// Weighted global loss `Σ αⱼ Lⱼ` with `αⱼ = nⱼ / Σ n` (Equation 1).
/// Non-finite client losses are treated as failures and propagated.
pub fn aggregate_loss(losses: &[(f64, u64)]) -> Result<f64> {
    let total: u64 = losses.iter().map(|(_, n)| n).sum();
    if total == 0 {
        return Err(FlError::Client("zero total examples".into()));
    }
    let mut acc = 0.0;
    for &(loss, n) in losses {
        if !loss.is_finite() {
            return Err(FlError::Client(format!("non-finite client loss {loss}")));
        }
        acc += loss * n as f64 / total as f64;
    }
    Ok(acc)
}

/// Extracts `(params, num_examples)` pairs from fit replies, propagating
/// client errors.
pub fn unwrap_fit_replies(replies: Vec<(usize, Reply)>) -> Result<Vec<(Vec<f64>, u64)>> {
    replies
        .into_iter()
        .map(|(_, r)| match r {
            Reply::FitRes {
                params,
                num_examples,
                ..
            } => Ok((params, num_examples)),
            Reply::Error(e) => Err(FlError::Client(e)),
            Reply::Panicked(m) => Err(FlError::Client(format!("client panicked: {m}"))),
            other => Err(FlError::Codec(format!("unexpected reply {other:?}"))),
        })
        .collect()
}

/// Extracts `(client_id, params, num_examples)` triples from fit
/// replies, preserving client ids so pre-aggregation screening (the
/// [`robust`](crate::robust) guard) can attribute rejections.
pub fn fit_updates(replies: Vec<(usize, Reply)>) -> Result<Vec<(usize, Vec<f64>, u64)>> {
    replies
        .into_iter()
        .map(|(id, r)| match r {
            Reply::FitRes {
                params,
                num_examples,
                ..
            } => Ok((id, params, num_examples)),
            Reply::Error(e) => Err(FlError::Client(e)),
            Reply::Panicked(m) => Err(FlError::Client(format!("client panicked: {m}"))),
            other => Err(FlError::Codec(format!("unexpected reply {other:?}"))),
        })
        .collect()
}

/// Extracts `(loss, num_examples)` pairs from evaluate replies.
pub fn unwrap_eval_replies(replies: Vec<(usize, Reply)>) -> Result<Vec<(f64, u64)>> {
    replies
        .into_iter()
        .map(|(_, r)| match r {
            Reply::EvaluateRes {
                loss, num_examples, ..
            } => Ok((loss, num_examples)),
            Reply::Error(e) => Err(FlError::Client(e)),
            Reply::Panicked(m) => Err(FlError::Client(format!("client panicked: {m}"))),
            other => Err(FlError::Codec(format!("unexpected reply {other:?}"))),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fedavg_weighted_mean() {
        let agg = fedavg(&[(vec![1.0, 0.0], 1), (vec![4.0, 3.0], 3)]).unwrap();
        assert!((agg[0] - 3.25).abs() < 1e-12);
        assert!((agg[1] - 2.25).abs() < 1e-12);
    }

    #[test]
    fn fedavg_single_client_is_identity() {
        let p = vec![0.5, -1.5, 3.0];
        let agg = fedavg(&[(p.clone(), 10)]).unwrap();
        assert_eq!(agg, p);
    }

    #[test]
    fn fedavg_skips_empty_params() {
        let agg = fedavg(&[(vec![], 100), (vec![2.0], 1)]).unwrap();
        assert_eq!(agg, vec![2.0]);
    }

    #[test]
    fn fedavg_rejects_mismatched_dims() {
        assert!(fedavg(&[(vec![1.0], 1), (vec![1.0, 2.0], 1)]).is_err());
    }

    #[test]
    fn fedavg_rejects_empty_input() {
        assert!(fedavg(&[]).is_err());
    }

    #[test]
    fn loss_aggregation_matches_equation_one() {
        // α = (0.25, 0.75).
        let l = aggregate_loss(&[(4.0, 1), (8.0, 3)]).unwrap();
        assert!((l - 7.0).abs() < 1e-12);
    }

    #[test]
    fn loss_aggregation_rejects_nan() {
        assert!(aggregate_loss(&[(f64::NAN, 1)]).is_err());
        assert!(aggregate_loss(&[]).is_err());
    }

    #[test]
    fn fedavg_rejects_non_finite_params_naming_the_client() {
        let params = vec![(vec![1.0], 2u64), (vec![f64::NAN], 3), (vec![2.0], 1)];
        match fedavg(&params) {
            Err(FlError::NonFiniteUpdate { client }) => assert_eq!(client, 1),
            other => panic!("expected NonFiniteUpdate, got {other:?}"),
        }
        assert!(fedavg(&[(vec![f64::INFINITY], 1)]).is_err());
    }

    #[test]
    fn fit_updates_preserves_client_ids() {
        let replies = vec![
            (
                4usize,
                Reply::FitRes {
                    params: vec![1.0, 2.0],
                    num_examples: 7,
                    metrics: crate::config::ConfigMap::new(),
                },
            ),
            (
                9usize,
                Reply::FitRes {
                    params: vec![],
                    num_examples: 3,
                    metrics: crate::config::ConfigMap::new(),
                },
            ),
        ];
        let updates = fit_updates(replies).unwrap();
        assert_eq!(updates[0], (4, vec![1.0, 2.0], 7));
        assert_eq!(updates[1], (9, vec![], 3));
    }

    #[test]
    fn unwrap_helpers_propagate_errors() {
        let replies = vec![(0usize, Reply::Error("bad".into()))];
        assert!(unwrap_fit_replies(replies.clone()).is_err());
        assert!(unwrap_eval_replies(replies).is_err());
    }
}
