//! Typed configuration maps exchanged between server and clients —
//! the equivalent of Flower's `Config` / `Metrics` dictionaries.

use std::collections::BTreeMap;

/// One configuration value.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigValue {
    /// 64-bit float.
    Float(f64),
    /// 64-bit signed integer.
    Int(i64),
    /// UTF-8 string.
    Str(String),
    /// Opaque bytes (e.g. a serialized tree ensemble).
    Bytes(Vec<u8>),
    /// A vector of floats (e.g. a meta-feature vector).
    FloatVec(Vec<f64>),
}

impl ConfigValue {
    /// Float accessor (also accepts ints).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            ConfigValue::Float(v) => Some(*v),
            ConfigValue::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Integer accessor.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            ConfigValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            ConfigValue::Str(v) => Some(v),
            _ => None,
        }
    }

    /// Bytes accessor.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            ConfigValue::Bytes(v) => Some(v),
            _ => None,
        }
    }

    /// Float-vector accessor.
    pub fn as_float_vec(&self) -> Option<&[f64]> {
        match self {
            ConfigValue::FloatVec(v) => Some(v),
            _ => None,
        }
    }
}

/// An ordered string-keyed map of configuration values. `BTreeMap` keeps the
/// wire encoding deterministic.
pub type ConfigMap = BTreeMap<String, ConfigValue>;

/// Builder-style helpers for constructing config maps tersely.
pub trait ConfigMapExt {
    /// Inserts a float.
    fn with_float(self, key: &str, v: f64) -> Self;
    /// Inserts an int.
    fn with_int(self, key: &str, v: i64) -> Self;
    /// Inserts a string.
    fn with_str(self, key: &str, v: &str) -> Self;
    /// Inserts bytes.
    fn with_bytes(self, key: &str, v: Vec<u8>) -> Self;
    /// Inserts a float vector.
    fn with_floats(self, key: &str, v: Vec<f64>) -> Self;
    /// Float accessor with default.
    fn float_or(&self, key: &str, default: f64) -> f64;
    /// Int accessor with default.
    fn int_or(&self, key: &str, default: i64) -> i64;
    /// Str accessor with default.
    fn str_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str;
}

impl ConfigMapExt for ConfigMap {
    fn with_float(mut self, key: &str, v: f64) -> Self {
        self.insert(key.to_string(), ConfigValue::Float(v));
        self
    }

    fn with_int(mut self, key: &str, v: i64) -> Self {
        self.insert(key.to_string(), ConfigValue::Int(v));
        self
    }

    fn with_str(mut self, key: &str, v: &str) -> Self {
        self.insert(key.to_string(), ConfigValue::Str(v.to_string()));
        self
    }

    fn with_bytes(mut self, key: &str, v: Vec<u8>) -> Self {
        self.insert(key.to_string(), ConfigValue::Bytes(v));
        self
    }

    fn with_floats(mut self, key: &str, v: Vec<f64>) -> Self {
        self.insert(key.to_string(), ConfigValue::FloatVec(v));
        self
    }

    fn float_or(&self, key: &str, default: f64) -> f64 {
        self.get(key).and_then(|v| v.as_float()).unwrap_or(default)
    }

    fn int_or(&self, key: &str, default: i64) -> i64 {
        self.get(key).and_then(|v| v.as_int()).unwrap_or(default)
    }

    fn str_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).and_then(|v| v.as_str()).unwrap_or(default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_accessors() {
        let m = ConfigMap::new()
            .with_float("lr", 0.1)
            .with_int("rounds", 5)
            .with_str("algo", "lasso")
            .with_floats("mf", vec![1.0, 2.0]);
        assert_eq!(m.float_or("lr", 0.0), 0.1);
        assert_eq!(m.int_or("rounds", 0), 5);
        assert_eq!(m.str_or("algo", ""), "lasso");
        assert_eq!(m["mf"].as_float_vec().unwrap(), &[1.0, 2.0]);
        assert_eq!(m.float_or("missing", 7.0), 7.0);
    }

    #[test]
    fn int_coerces_to_float() {
        let m = ConfigMap::new().with_int("k", 3);
        assert_eq!(m.float_or("k", 0.0), 3.0);
    }

    #[test]
    fn wrong_type_accessors_return_none() {
        let m = ConfigMap::new().with_str("s", "x");
        assert!(m["s"].as_float().is_none());
        assert!(m["s"].as_int().is_none());
        assert!(m["s"].as_bytes().is_none());
    }
}
